//! Disaggregated prefill/decode serving analysis (paper §6).
//!
//! The paper argues SpInfer's decode-phase optimisation fits the emerging
//! prefill/decode-disaggregated architectures (DistServe, Splitwise,
//! Mooncake): prefill is compute-bound — where SpInfer concedes up to
//! ~12% to dense GEMM — while decode is memory-bound, where TCA-BME's
//! compression converts into throughput. This module quantifies that
//! split: per-pool rates, the best framework per pool, and the goodput of
//! a disaggregated deployment versus a colocated one.

use crate::config::ModelConfig;
use crate::engine::{simulate, InferenceConfig};
use crate::frameworks::Framework;
use gpu_sim::spec::GpuSpec;
use spinfer_core::SpinferError;

/// A disaggregated deployment plan.
#[derive(Clone, Copy, Debug)]
pub struct DisaggPlan {
    /// GPUs in the prefill pool.
    pub prefill_gpus: usize,
    /// GPUs in the decode pool.
    pub decode_gpus: usize,
    /// Framework serving the prefill pool.
    pub prefill_framework: Framework,
    /// Framework serving the decode pool.
    pub decode_framework: Framework,
}

impl DisaggPlan {
    /// Rejects plans with an empty pool: `(gpus / tp).max(1)` in the
    /// rate model used to silently pretend a zero-GPU pool still held
    /// one replica, yielding nonsense stage rates.
    pub fn validate(&self) -> Result<(), SpinferError> {
        if self.prefill_gpus == 0 || self.decode_gpus == 0 {
            return Err(SpinferError::DegenerateDisagg {
                prefill_gpus: self.prefill_gpus,
                decode_gpus: self.decode_gpus,
            });
        }
        Ok(())
    }
}

/// Throughput analysis of one deployment.
#[derive(Clone, Copy, Debug)]
pub struct DisaggReport {
    /// Requests/s the prefill pool sustains.
    pub prefill_rps: f64,
    /// Requests/s the decode pool sustains.
    pub decode_rps: f64,
    /// System goodput: min of the two stages.
    pub goodput_rps: f64,
}

/// One request's shape.
#[derive(Clone, Copy, Debug)]
pub struct RequestShape {
    /// Prompt tokens.
    pub input_len: usize,
    /// Generated tokens.
    pub output_len: usize,
    /// Decode batch size per GPU group.
    pub batch: usize,
}

/// Rates for a single pool running `framework` with `tp`-way parallelism
/// per replica and `gpus` total GPUs.
fn pool_rates(
    spec: &GpuSpec,
    model: &ModelConfig,
    framework: Framework,
    sparsity: f64,
    req: &RequestShape,
    gpus: usize,
    tp: usize,
) -> (f64, f64) {
    let replicas = (gpus / tp).max(1) as f64;
    let cfg = InferenceConfig {
        model: *model,
        framework,
        sparsity,
        batch: req.batch,
        input_len: req.input_len,
        output_len: req.output_len,
        tp,
    };
    let r = simulate(spec, &cfg);
    if r.oom {
        return (0.0, 0.0);
    }
    // Prefill: requests/s if the pool only ran prefill.
    let prefill_rps = replicas * req.batch as f64 / r.prefill_sec;
    // Decode: requests/s if the pool only ran decode.
    let decode_rps = replicas * req.batch as f64 / (r.per_step_sec * req.output_len as f64);
    (prefill_rps, decode_rps)
}

/// Evaluates a disaggregated plan, rejecting degenerate ones (an empty
/// prefill or decode pool) with a typed error.
pub fn try_evaluate(
    spec: &GpuSpec,
    model: &ModelConfig,
    sparsity: f64,
    req: &RequestShape,
    plan: &DisaggPlan,
    tp: usize,
) -> Result<DisaggReport, SpinferError> {
    plan.validate()?;
    Ok(evaluate(spec, model, sparsity, req, plan, tp))
}

/// Evaluates a disaggregated plan. `tp` is the per-replica parallelism in
/// both pools (must divide the pool sizes for full utilisation).
///
/// # Panics
///
/// Panics on a degenerate plan (an empty pool); use [`try_evaluate`] to
/// get the typed [`SpinferError::DegenerateDisagg`] instead.
pub fn evaluate(
    spec: &GpuSpec,
    model: &ModelConfig,
    sparsity: f64,
    req: &RequestShape,
    plan: &DisaggPlan,
    tp: usize,
) -> DisaggReport {
    if let Err(e) = plan.validate() {
        panic!("{e}");
    }
    let (prefill_rps, _) = pool_rates(
        spec,
        model,
        plan.prefill_framework,
        sparsity,
        req,
        plan.prefill_gpus,
        tp,
    );
    let (_, decode_rps) = pool_rates(
        spec,
        model,
        plan.decode_framework,
        sparsity,
        req,
        plan.decode_gpus,
        tp,
    );
    DisaggReport {
        prefill_rps,
        decode_rps,
        goodput_rps: prefill_rps.min(decode_rps),
    }
}

/// Colocated baseline: all GPUs run both phases with one framework.
pub fn evaluate_colocated(
    spec: &GpuSpec,
    model: &ModelConfig,
    framework: Framework,
    sparsity: f64,
    req: &RequestShape,
    gpus: usize,
    tp: usize,
) -> f64 {
    let replicas = (gpus / tp).max(1) as f64;
    let cfg = InferenceConfig {
        model: *model,
        framework,
        sparsity,
        batch: req.batch,
        input_len: req.input_len,
        output_len: req.output_len,
        tp,
    };
    let r = simulate(spec, &cfg);
    if r.oom {
        return 0.0;
    }
    replicas * req.batch as f64 / r.total_sec
}

/// Searches the GPU split (and per-pool framework, fixing SpInfer for
/// decode) for the best goodput over `total_gpus`.
pub fn best_split(
    spec: &GpuSpec,
    model: &ModelConfig,
    sparsity: f64,
    req: &RequestShape,
    total_gpus: usize,
    tp: usize,
) -> (DisaggPlan, DisaggReport) {
    let mut best: Option<(DisaggPlan, DisaggReport)> = None;
    for prefill_gpus in (tp..total_gpus).step_by(tp) {
        let decode_gpus = total_gpus - prefill_gpus;
        if decode_gpus < tp {
            continue;
        }
        for prefill_fw in [Framework::FasterTransformer, Framework::SpInfer] {
            let plan = DisaggPlan {
                prefill_gpus,
                decode_gpus,
                prefill_framework: prefill_fw,
                decode_framework: Framework::SpInfer,
            };
            let rep = evaluate(spec, model, sparsity, req, &plan, tp);
            if best
                .as_ref()
                .map(|(_, b)| rep.goodput_rps > b.goodput_rps)
                .unwrap_or(true)
            {
                best = Some((plan, rep));
            }
        }
    }
    best.expect("at least one split must be feasible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> RequestShape {
        RequestShape {
            input_len: 512,
            output_len: 256,
            batch: 16,
        }
    }

    #[test]
    fn decode_pool_prefers_spinfer() {
        // SpInfer's decode rate beats dense FT's on the same pool.
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let (_, dec_sp) = pool_rates(&spec, &model, Framework::SpInfer, 0.6, &req(), 2, 2);
        let (_, dec_ft) = pool_rates(
            &spec,
            &model,
            Framework::FasterTransformer,
            0.6,
            &req(),
            2,
            2,
        );
        assert!(dec_sp > dec_ft, "SpInfer decode {dec_sp} vs FT {dec_ft}");
    }

    #[test]
    fn prefill_pool_gap_is_small() {
        // In the compute-bound prefill, SpInfer concedes only a little
        // (paper: ≤11.8%); dense may win but not by a wide margin.
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let (pre_sp, _) = pool_rates(&spec, &model, Framework::SpInfer, 0.6, &req(), 2, 2);
        let (pre_ft, _) = pool_rates(
            &spec,
            &model,
            Framework::FasterTransformer,
            0.6,
            &req(),
            2,
            2,
        );
        let ratio = pre_ft / pre_sp;
        assert!(ratio < 1.35, "prefill gap too wide: {ratio}");
    }

    #[test]
    fn degenerate_plans_are_typed_errors() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let mk = |prefill_gpus, decode_gpus| DisaggPlan {
            prefill_gpus,
            decode_gpus,
            prefill_framework: Framework::FasterTransformer,
            decode_framework: Framework::SpInfer,
        };
        // Both empty-pool edges fail with the plan echoed back.
        assert_eq!(
            try_evaluate(&spec, &model, 0.6, &req(), &mk(0, 4), 2).unwrap_err(),
            SpinferError::DegenerateDisagg {
                prefill_gpus: 0,
                decode_gpus: 4
            }
        );
        assert_eq!(
            try_evaluate(&spec, &model, 0.6, &req(), &mk(4, 0), 2).unwrap_err(),
            SpinferError::DegenerateDisagg {
                prefill_gpus: 4,
                decode_gpus: 0
            }
        );
        // A populated plan passes validation and evaluates.
        let r = try_evaluate(&spec, &model, 0.6, &req(), &mk(2, 2), 2).unwrap();
        assert!(r.goodput_rps > 0.0);
    }

    #[test]
    #[should_panic(expected = "disaggregated plan needs GPUs in both pools")]
    fn unchecked_evaluate_panics_on_empty_pool() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let plan = DisaggPlan {
            prefill_gpus: 0,
            decode_gpus: 0,
            prefill_framework: Framework::SpInfer,
            decode_framework: Framework::SpInfer,
        };
        evaluate(&spec, &model, 0.6, &req(), &plan, 2);
    }

    #[test]
    fn goodput_is_min_of_stages() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let plan = DisaggPlan {
            prefill_gpus: 2,
            decode_gpus: 2,
            prefill_framework: Framework::FasterTransformer,
            decode_framework: Framework::SpInfer,
        };
        let r = evaluate(&spec, &model, 0.6, &req(), &plan, 2);
        assert_eq!(r.goodput_rps, r.prefill_rps.min(r.decode_rps));
        assert!(r.goodput_rps > 0.0);
    }

    #[test]
    fn best_split_balances_pools() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let (plan, rep) = best_split(&spec, &model, 0.6, &req(), 8, 2);
        assert_eq!(plan.prefill_gpus + plan.decode_gpus, 8);
        // A balanced split should not leave one stage starved by >4x.
        let imbalance =
            rep.prefill_rps.max(rep.decode_rps) / rep.prefill_rps.min(rep.decode_rps).max(1e-9);
        assert!(imbalance < 4.0, "imbalance {imbalance}");
    }

    #[test]
    fn disaggregation_beats_or_matches_colocated_goodput() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let (_, rep) = best_split(&spec, &model, 0.6, &req(), 8, 2);
        let colo = evaluate_colocated(&spec, &model, Framework::SpInfer, 0.6, &req(), 8, 2);
        // Pipelined stages overlap, so stage-min goodput should be at
        // least comparable to the serial colocated rate.
        assert!(
            rep.goodput_rps > 0.8 * colo,
            "disagg {} vs colo {colo}",
            rep.goodput_rps
        );
    }
}
