//! # spinfer-llm — end-to-end sparse LLM inference simulation
//!
//! Reproduces the paper's framework-level evaluation (§5.2): a model zoo
//! ([`config`]), per-GPU memory model with OOM detection ([`memory`]),
//! Megatron-style tensor-parallel communication ([`parallel`]), framework
//! profiles for SpInfer / Flash-LLM / FasterTransformer / DeepSpeed
//! ([`frameworks`]), the prefill+decode engine ([`engine`]), and the
//! wall-time decomposition ([`breakdown`]) behind Figures 2 and 15.

// Lane IDs and coordinate loops are semantic indices here, as in the
// sibling GPU crates.
#![allow(clippy::needless_range_loop)]

pub mod breakdown;
pub mod cluster;
pub mod config;
pub mod disagg;
pub mod engine;
pub mod frameworks;
pub mod memory;
pub mod model;
pub mod parallel;
pub mod serving;
pub mod spec;

pub use breakdown::Breakdown;
pub use cluster::{
    simulate_cluster, simulate_cluster_instrumented, AdmissionPolicy, ClusterConfig,
    ClusterFaultPlan, ClusterReport, DegradationPolicy, ReplicaStats, RetryPolicy, RouterPolicy,
};
pub use config::{LayerMatrix, ModelConfig};
pub use engine::{simulate, simulate_ctx, InferenceConfig, InferenceReport};
pub use frameworks::{framework_for_kernel, Framework};
pub use memory::{footprint, MemoryReport};
pub use serving::{
    serve, serve_checked, serve_spec, serve_spec_checked, serve_spec_ctx, serve_with, LengthMix,
    ServingConfig, ServingReport,
};
pub use spec::{DraftModel, SpecConfig, SpecServingReport, SpecStats, TreeShape, TreeVerifier};
