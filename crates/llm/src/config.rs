//! Transformer model zoo.
//!
//! Shape sheets for every model family the paper draws weight matrices
//! from (§5.1): OPT, LLaMA2, LLaMA3, Qwen2, and Mixtral-8×7B. These drive
//! both the kernel benchmark shapes (Figure 10) and the end-to-end
//! engine (Figures 13–15).

/// Architecture description sufficient to derive every weight shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Decoder layers.
    pub layers: usize,
    /// Hidden size.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Key/value heads (GQA; equals `heads` for MHA models).
    pub kv_heads: usize,
    /// FFN intermediate size.
    pub ffn_hidden: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Gated FFN (SwiGLU: gate + up + down) vs classic 2-matrix FFN.
    pub gated_ffn: bool,
    /// Experts per FFN (1 = dense model); Mixtral routes to 2 of them.
    pub experts: usize,
    /// Experts active per token.
    pub active_experts: usize,
}

impl ModelConfig {
    /// Head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Total parameter count (approximate, in elements).
    pub fn param_count(&self) -> usize {
        let h = self.hidden;
        let attn = h * h + 2 * h * (self.kv_heads * self.head_dim()) + h * h;
        let ffn_mats = if self.gated_ffn { 3 } else { 2 };
        let ffn = ffn_mats * h * self.ffn_hidden * self.experts;
        let embed = 2 * self.vocab * h; // Embedding + LM head.
        self.layers * (attn + ffn) + embed
    }

    /// The per-layer weight matrices `(label, M, K, instances)` a sparse
    /// framework prunes and multiplies, with `M×K` weights applied to a
    /// `K×N` activation. Expert FFNs count active instances for compute;
    /// memory accounting multiplies by `experts` separately.
    pub fn layer_matrices(&self) -> Vec<LayerMatrix> {
        let h = self.hidden;
        let kv = self.kv_heads * self.head_dim();
        let mut v = vec![
            LayerMatrix {
                label: "qkv_proj",
                m: h + 2 * kv,
                k: h,
                compute_instances: 1,
                memory_instances: 1,
                col_parallel: true,
            },
            LayerMatrix {
                label: "attn_out",
                m: h,
                k: h,
                compute_instances: 1,
                memory_instances: 1,
                col_parallel: false,
            },
        ];
        if self.gated_ffn {
            v.push(LayerMatrix {
                label: "ffn_gate_up",
                m: 2 * self.ffn_hidden,
                k: h,
                compute_instances: self.active_experts,
                memory_instances: self.experts,
                col_parallel: true,
            });
        } else {
            v.push(LayerMatrix {
                label: "ffn_up",
                m: self.ffn_hidden,
                k: h,
                compute_instances: self.active_experts,
                memory_instances: self.experts,
                col_parallel: true,
            });
        }
        v.push(LayerMatrix {
            label: "ffn_down",
            m: h,
            k: self.ffn_hidden,
            compute_instances: self.active_experts,
            memory_instances: self.experts,
            col_parallel: false,
        });
        v
    }

    // --- OPT family (Zhang et al., 2022) ---

    /// OPT-13B.
    pub fn opt_13b() -> Self {
        Self::opt("OPT-13B", 40, 5120, 40)
    }

    /// OPT-30B.
    pub fn opt_30b() -> Self {
        Self::opt("OPT-30B", 48, 7168, 56)
    }

    /// OPT-66B.
    pub fn opt_66b() -> Self {
        Self::opt("OPT-66B", 64, 9216, 72)
    }

    /// OPT-175B.
    pub fn opt_175b() -> Self {
        Self::opt("OPT-175B", 96, 12288, 96)
    }

    fn opt(name: &'static str, layers: usize, hidden: usize, heads: usize) -> Self {
        ModelConfig {
            name,
            layers,
            hidden,
            heads,
            kv_heads: heads,
            ffn_hidden: 4 * hidden,
            vocab: 50272,
            gated_ffn: false,
            experts: 1,
            active_experts: 1,
        }
    }

    // --- LLaMA2 family ---

    /// LLaMA2-7B.
    pub fn llama2_7b() -> Self {
        ModelConfig {
            name: "LLaMA2-7B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 32,
            ffn_hidden: 11008,
            vocab: 32000,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    /// LLaMA2-13B.
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "LLaMA2-13B",
            layers: 40,
            hidden: 5120,
            heads: 40,
            kv_heads: 40,
            ffn_hidden: 13824,
            vocab: 32000,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    /// LLaMA2-70B.
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "LLaMA2-70B",
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 28672,
            vocab: 32000,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    // --- LLaMA3 family ---

    /// LLaMA3-8B.
    pub fn llama3_8b() -> Self {
        ModelConfig {
            name: "LLaMA3-8B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            ffn_hidden: 14336,
            vocab: 128256,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    /// LLaMA3-70B.
    pub fn llama3_70b() -> Self {
        ModelConfig {
            name: "LLaMA3-70B",
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 28672,
            vocab: 128256,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    // --- Qwen2 family ---

    /// Qwen2-7B.
    pub fn qwen2_7b() -> Self {
        ModelConfig {
            name: "Qwen2-7B",
            layers: 28,
            hidden: 3584,
            heads: 28,
            kv_heads: 4,
            ffn_hidden: 18944,
            vocab: 152064,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    /// Qwen2-72B.
    pub fn qwen2_72b() -> Self {
        ModelConfig {
            name: "Qwen2-72B",
            layers: 80,
            hidden: 8192,
            heads: 64,
            kv_heads: 8,
            ffn_hidden: 29568,
            vocab: 152064,
            gated_ffn: true,
            experts: 1,
            active_experts: 1,
        }
    }

    // --- MoE ---

    /// Mixtral-8×7B.
    pub fn mixtral_8x7b() -> Self {
        ModelConfig {
            name: "Mixtral-8x7B",
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            ffn_hidden: 14336,
            vocab: 32000,
            gated_ffn: true,
            experts: 8,
            active_experts: 2,
        }
    }

    /// The full model zoo used for kernel benchmark shapes (Figure 10).
    pub fn zoo() -> Vec<ModelConfig> {
        vec![
            Self::opt_13b(),
            Self::opt_30b(),
            Self::opt_66b(),
            Self::opt_175b(),
            Self::llama2_7b(),
            Self::llama2_13b(),
            Self::llama2_70b(),
            Self::llama3_8b(),
            Self::llama3_70b(),
            Self::qwen2_7b(),
            Self::qwen2_72b(),
            Self::mixtral_8x7b(),
        ]
    }
}

/// One pruned weight matrix of a layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerMatrix {
    /// Role label.
    pub label: &'static str,
    /// Output dimension.
    pub m: usize,
    /// Reduction dimension.
    pub k: usize,
    /// Instances multiplied per token (active experts).
    pub compute_instances: usize,
    /// Instances resident in memory (all experts).
    pub memory_instances: usize,
    /// Megatron split: `true` = column-parallel (M divided over GPUs),
    /// `false` = row-parallel (K divided, all-reduce after).
    pub col_parallel: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt13b_parameter_count() {
        let p = ModelConfig::opt_13b().param_count() as f64 / 1e9;
        assert!((p - 12.9).abs() < 0.7, "OPT-13B params {p}B");
    }

    #[test]
    fn opt66b_parameter_count() {
        let p = ModelConfig::opt_66b().param_count() as f64 / 1e9;
        assert!((p - 66.0).abs() < 4.0, "OPT-66B params {p}B");
    }

    #[test]
    fn llama2_70b_parameter_count() {
        let p = ModelConfig::llama2_70b().param_count() as f64 / 1e9;
        assert!((p - 69.0).abs() < 4.0, "LLaMA2-70B params {p}B");
    }

    #[test]
    fn figure1_shape_is_llama2_70b_ffn() {
        // The paper's Figure 1 uses M/K = 28672/8192: LLaMA2-70B FFN down
        // transpose / up projection.
        let mats = ModelConfig::llama2_70b().layer_matrices();
        assert!(mats
            .iter()
            .any(|m| (m.m, m.k) == (57344, 8192) || (m.m, m.k) == (8192, 28672)));
    }

    #[test]
    fn opt_models_have_square_attn_and_4x_ffn() {
        let m = ModelConfig::opt_30b();
        let mats = m.layer_matrices();
        assert_eq!(mats[0].m, 3 * 7168);
        assert_eq!(mats[2].m, 28672);
        assert_eq!(mats[3].k, 28672);
    }

    #[test]
    fn gqa_shrinks_qkv() {
        let mha = ModelConfig::llama2_13b().layer_matrices()[0].m;
        let gqa = ModelConfig::llama3_70b().layer_matrices()[0].m;
        assert_eq!(mha, 3 * 5120);
        assert_eq!(gqa, 8192 + 2 * 1024);
    }

    #[test]
    fn mixtral_memory_vs_compute_instances() {
        let mats = ModelConfig::mixtral_8x7b().layer_matrices();
        let ffn = mats.iter().find(|m| m.label == "ffn_down").unwrap();
        assert_eq!(ffn.memory_instances, 8);
        assert_eq!(ffn.compute_instances, 2);
    }

    #[test]
    fn zoo_has_twelve_models() {
        assert_eq!(ModelConfig::zoo().len(), 12);
    }

    #[test]
    fn head_dims_are_standard() {
        for m in ModelConfig::zoo() {
            assert_eq!(m.head_dim() * m.heads, m.hidden, "{}", m.name);
            assert!(m.head_dim() == 128 || m.head_dim() == 96 || m.head_dim() == 64);
        }
    }
}
