//! Tensor-parallel communication model.
//!
//! Megatron-style tensor parallelism needs two all-reduces per decoder
//! layer (after attention output and after the FFN down projection). The
//! cost model uses the standard ring all-reduce volume
//! `2 (tp−1)/tp × bytes` over the node interconnect — PCIe at 30.5 GB/s
//! on the RTX4090 platform, pairwise NVLink on the A6000 platform — plus
//! a per-operation latency. The paper's Figure 15 attributes SpInfer's
//! extra edge on the PCIe platform to *avoiding* this term by fitting the
//! model on fewer GPUs.

use gpu_sim::spec::GpuSpec;

/// Time for one all-reduce of `bytes` across `tp` GPUs, in seconds.
pub fn allreduce_sec(spec: &GpuSpec, tp: usize, bytes: u64) -> f64 {
    if tp <= 1 {
        return 0.0;
    }
    let link = spec.interconnect.bandwidth_bytes_per_sec();
    let volume = 2.0 * (tp as f64 - 1.0) / tp as f64 * bytes as f64;
    volume / link + spec.interconnect.latency_sec()
}

/// Communication per decoder layer per forward pass: two all-reduces of
/// the activation tile (`tokens × hidden` FP16).
pub fn layer_comm_sec(spec: &GpuSpec, tp: usize, tokens: usize, hidden: usize) -> f64 {
    2.0 * allreduce_sec(spec, tp, (tokens * hidden * 2) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_gpu_is_free() {
        let spec = GpuSpec::rtx4090();
        assert_eq!(allreduce_sec(&spec, 1, 1 << 20), 0.0);
        assert_eq!(layer_comm_sec(&spec, 1, 16, 5120), 0.0);
    }

    #[test]
    fn cost_grows_with_bytes_and_tp_fraction() {
        let spec = GpuSpec::rtx4090();
        let t2 = allreduce_sec(&spec, 2, 1 << 20);
        let t4 = allreduce_sec(&spec, 4, 1 << 20);
        assert!(t4 > t2);
        let big = allreduce_sec(&spec, 2, 16 << 20);
        assert!(big > 4.0 * t2);
    }

    #[test]
    fn nvlink_beats_pcie() {
        let pcie = allreduce_sec(&GpuSpec::rtx4090(), 2, 8 << 20);
        let nvl = allreduce_sec(&GpuSpec::a6000(), 2, 8 << 20);
        assert!(nvl < pcie);
    }

    #[test]
    fn decode_step_comm_magnitude() {
        // OPT-13B, BS=16, tp=2 on PCIe: ~160 KB per all-reduce; two per
        // layer -> tens of microseconds.
        let spec = GpuSpec::rtx4090();
        let t = layer_comm_sec(&spec, 2, 16, 5120);
        assert!(t > 10.0e-6 && t < 100.0e-6, "t {t}");
    }
}
