//! Inference framework profiles.
//!
//! The end-to-end comparison (paper §5.2) pits SpInfer against Flash-LLM
//! (both sparse, integrated into FasterTransformer), dense
//! FasterTransformer, and dense DeepSpeed. A profile determines how
//! linear-layer weights are stored (memory model) and which simulated
//! kernel executes them (latency model).

use gpu_sim::spec::GpuSpec;
use spinfer_baselines::formats::tiled_csl::TiledCsl;
use spinfer_baselines::kernels::{CublasGemm, FlashLlmSpmm, FlashLlmStats};
use spinfer_core::{FormatStats, SpinferError, SpinferSpmm, SpinferSpmmInt8};

/// An inference framework under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Framework {
    /// SpInfer: TCA-BME weights + SpInfer-SpMM kernels.
    SpInfer,
    /// SpInfer with INT8 weight payloads: TCA-BME-INT8 weights + the
    /// `SpInfer-INT8` kernel. A precision rung below [`Framework::SpInfer`]
    /// in the degradation ladder, not part of the paper's FP16 comparison
    /// roster ([`Framework::all`]).
    SpInferInt8,
    /// Flash-LLM: Tiled-CSL weights + Load-as-Sparse-Compute-as-Dense.
    FlashLlm,
    /// FasterTransformer: dense FP16 weights + cuBLAS.
    FasterTransformer,
    /// DeepSpeed-Inference: dense FP16 weights + cuBLAS with less fused
    /// surrounding kernels (measured slower in the paper).
    DeepSpeed,
}

impl Framework {
    /// Display name matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            Framework::SpInfer => "SpInfer",
            Framework::SpInferInt8 => "SpInfer-INT8",
            Framework::FlashLlm => "Flash-LLM",
            Framework::FasterTransformer => "FT",
            Framework::DeepSpeed => "DS",
        }
    }

    /// Whether the framework exploits weight sparsity.
    pub fn is_sparse(self) -> bool {
        matches!(
            self,
            Framework::SpInfer | Framework::SpInferInt8 | Framework::FlashLlm
        )
    }

    /// Stored bytes for an `m×k` linear weight at `sparsity`.
    pub fn weight_bytes(self, m: usize, k: usize, sparsity: f64) -> usize {
        let nnz = ((m * k) as f64 * (1.0 - sparsity)).round() as usize;
        match self {
            Framework::SpInfer => FormatStats::synthetic_storage_bytes(m, k, sparsity),
            Framework::SpInferInt8 => FormatStats::synthetic(m, k, sparsity).storage_bytes_int8(),
            Framework::FlashLlm => TiledCsl::storage_bytes_formula(m, k, nnz),
            Framework::FasterTransformer | Framework::DeepSpeed => 2 * m * k,
        }
    }

    /// Simulated time of one `m×k × k×n` linear layer in seconds.
    pub fn linear_sec(self, spec: &GpuSpec, m: usize, k: usize, n: usize, sparsity: f64) -> f64 {
        match self {
            Framework::SpInfer => SpinferSpmm::new()
                .estimate(spec, &FormatStats::synthetic(m, k, sparsity), n)
                .chain
                .time_sec(),
            Framework::SpInferInt8 => SpinferSpmmInt8::new()
                .estimate(spec, &FormatStats::synthetic(m, k, sparsity), n)
                .chain
                .time_sec(),
            Framework::FlashLlm => FlashLlmSpmm::new()
                .estimate(spec, &FlashLlmStats::synthetic(m, k, sparsity), n)
                .chain
                .time_sec(),
            Framework::FasterTransformer => {
                CublasGemm::new().estimate(spec, m, k, n).chain.time_sec()
            }
            // DeepSpeed's linear path is also cuBLAS; its measured gap
            // comes from less aggressive fusion around it.
            Framework::DeepSpeed => {
                CublasGemm::new().estimate(spec, m, k, n).chain.time_sec() * 1.04
            }
        }
    }

    /// Per-layer non-GEMM overhead in seconds (layernorms, residual adds,
    /// kernel launches). DeepSpeed's decode path launches more, smaller
    /// kernels than FT's fused path.
    pub fn layer_overhead_sec(self) -> f64 {
        match self {
            Framework::SpInfer
            | Framework::SpInferInt8
            | Framework::FlashLlm
            | Framework::FasterTransformer => 45.0e-6,
            Framework::DeepSpeed => 80.0e-6,
        }
    }

    /// All frameworks in the paper's end-to-end comparison.
    pub fn all() -> [Framework; 4] {
        [
            Framework::SpInfer,
            Framework::FlashLlm,
            Framework::FasterTransformer,
            Framework::DeepSpeed,
        ]
    }
}

/// Resolves a registered kernel name through
/// [`spinfer_baselines::kernel_by_name`] and maps it onto the analytic
/// framework profile that prices its steps — the shared translation
/// behind the cluster degradation ladder and the `spinfer spec` kernel
/// sweep. Unknown names surface the registry's typed
/// [`SpinferError::UnknownKernel`].
pub fn framework_for_kernel(name: &str) -> Result<Framework, SpinferError> {
    let kernel = spinfer_baselines::kernel_by_name(name)?;
    Ok(match kernel.name() {
        "SpInfer" => Framework::SpInfer,
        "SpInfer-INT8" => Framework::SpInferInt8,
        "cuBLAS_TC" => Framework::FasterTransformer,
        // The remaining baselines (Flash-LLM, SparTA, Sputnik, cuSPARSE,
        // SMaT) price closest to the Flash-LLM profile.
        _ => Framework::FlashLlm,
    })
}

/// Extension trait hook: synthetic TCA-BME storage used by the memory
/// model without materialising weights.
trait SyntheticStorage {
    fn synthetic_storage_bytes(m: usize, k: usize, sparsity: f64) -> usize;
}

impl SyntheticStorage for FormatStats {
    fn synthetic_storage_bytes(m: usize, k: usize, sparsity: f64) -> usize {
        FormatStats::synthetic(m, k, sparsity).storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_frameworks_store_less_at_60_percent() {
        let dense = Framework::FasterTransformer.weight_bytes(8192, 8192, 0.6);
        let spinfer = Framework::SpInfer.weight_bytes(8192, 8192, 0.6);
        let flash = Framework::FlashLlm.weight_bytes(8192, 8192, 0.6);
        assert!(spinfer < flash, "TCA-BME must beat Tiled-CSL");
        assert!(flash < dense);
        // TCA-BME at 60%: ~0.47x dense.
        let ratio = spinfer as f64 / dense as f64;
        assert!((ratio - 0.47).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn flash_llm_storage_barely_shrinks_at_50_percent() {
        let dense = Framework::FasterTransformer.weight_bytes(4096, 4096, 0.5);
        let flash = Framework::FlashLlm.weight_bytes(4096, 4096, 0.5);
        assert!((flash as f64 / dense as f64 - 1.0).abs() < 0.05);
    }

    #[test]
    fn int8_rung_shrinks_weights_and_latency_but_stays_off_the_roster() {
        let spec = GpuSpec::rtx4090();
        let fp16 = Framework::SpInfer.weight_bytes(8192, 8192, 0.6);
        let int8 = Framework::SpInferInt8.weight_bytes(8192, 8192, 0.6);
        assert!(int8 < fp16, "int8 {int8} vs fp16 {fp16}");
        let t_fp16 = Framework::SpInfer.linear_sec(&spec, 20480, 5120, 16, 0.6);
        let t_int8 = Framework::SpInferInt8.linear_sec(&spec, 20480, 5120, 16, 0.6);
        assert!(t_int8 < t_fp16, "int8 {t_int8} vs fp16 {t_fp16}");
        assert!(Framework::SpInferInt8.is_sparse());
        // The paper's end-to-end comparison is FP16-only.
        assert!(!Framework::all().contains(&Framework::SpInferInt8));
    }

    #[test]
    fn kernel_names_resolve_to_cost_profiles() {
        assert_eq!(framework_for_kernel("SpInfer").unwrap(), Framework::SpInfer);
        assert_eq!(
            framework_for_kernel("SpInfer-INT8").unwrap(),
            Framework::SpInferInt8
        );
        assert_eq!(
            framework_for_kernel("cuBLAS_TC").unwrap(),
            Framework::FasterTransformer
        );
        assert_eq!(
            framework_for_kernel("Flash-LLM").unwrap(),
            Framework::FlashLlm
        );
        assert!(matches!(
            framework_for_kernel("warp-speed-gemm").unwrap_err(),
            SpinferError::UnknownKernel { .. }
        ));
    }

    #[test]
    fn spinfer_linear_is_fastest_at_60_percent_decode() {
        let spec = GpuSpec::rtx4090();
        let times: Vec<f64> = Framework::all()
            .iter()
            .map(|f| f.linear_sec(&spec, 20480, 5120, 16, 0.6))
            .collect();
        let spinfer = times[0];
        for (i, t) in times.iter().enumerate().skip(1) {
            assert!(spinfer < *t, "framework {i} beat SpInfer: {t} vs {spinfer}");
        }
    }

    #[test]
    fn deepspeed_trails_ft() {
        let spec = GpuSpec::rtx4090();
        let ds = Framework::DeepSpeed.linear_sec(&spec, 20480, 5120, 16, 0.6);
        let ft = Framework::FasterTransformer.linear_sec(&spec, 20480, 5120, 16, 0.6);
        assert!(ds > ft);
        assert!(
            Framework::DeepSpeed.layer_overhead_sec()
                > Framework::FasterTransformer.layer_overhead_sec()
        );
    }
}
