//! Request routing across replicas.
//!
//! Three policies, in increasing awareness of fleet state:
//!
//! * [`RouterPolicy::RoundRobin`] — blind rotation over all replicas,
//!   including crashed ones. Requests routed to a dead replica fail
//!   the attempt; this is the no-resilience baseline.
//! * [`RouterPolicy::LeastLoaded`] — among replicas *currently* up,
//!   pick the one with the fewest queued + running requests (lowest
//!   index breaks ties, so routing is deterministic).
//! * [`RouterPolicy::FailoverAware`] — rotation over replicas the last
//!   health check observed as up. Models a real load balancer whose
//!   view lags the fleet by the probe interval: a replica that crashed
//!   mid-interval still receives traffic until the next probe.

/// Router policy selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterPolicy {
    /// Blind rotation over every replica, up or not.
    RoundRobin,
    /// Fewest queued + running among live replicas.
    LeastLoaded,
    /// Rotation over replicas the last health probe saw as up.
    FailoverAware,
}

impl RouterPolicy {
    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<RouterPolicy> {
        match s {
            "round-robin" => Some(RouterPolicy::RoundRobin),
            "least-loaded" => Some(RouterPolicy::LeastLoaded),
            "failover" => Some(RouterPolicy::FailoverAware),
            _ => None,
        }
    }

    /// Display label (the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastLoaded => "least-loaded",
            RouterPolicy::FailoverAware => "failover",
        }
    }
}

/// The router's view of one replica at routing time.
#[derive(Clone, Copy, Debug)]
pub struct ReplicaView {
    /// Actually up right now (ground truth).
    pub up: bool,
    /// Up as of the last health probe (the router's lagged belief).
    pub probed_up: bool,
    /// Queued requests.
    pub queued: usize,
    /// Requests in the running batch.
    pub running: usize,
}

/// Picks a replica for the next request, advancing `cursor` for the
/// rotating policies. Returns `None` when the policy sees no candidate
/// (e.g. every replica probed down).
pub fn route(policy: RouterPolicy, views: &[ReplicaView], cursor: &mut usize) -> Option<usize> {
    let n = views.len();
    if n == 0 {
        return None;
    }
    match policy {
        RouterPolicy::RoundRobin => {
            let r = *cursor % n;
            *cursor = (*cursor + 1) % n;
            Some(r)
        }
        RouterPolicy::LeastLoaded => views
            .iter()
            .enumerate()
            .filter(|(_, v)| v.up)
            .min_by_key(|(i, v)| (v.queued + v.running, *i))
            .map(|(i, _)| i),
        RouterPolicy::FailoverAware => {
            for step in 0..n {
                let r = (*cursor + step) % n;
                if views[r].probed_up {
                    *cursor = (r + 1) % n;
                    return Some(r);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(up: bool, probed_up: bool, queued: usize, running: usize) -> ReplicaView {
        ReplicaView {
            up,
            probed_up,
            queued,
            running,
        }
    }

    #[test]
    fn round_robin_rotates_blindly() {
        let views = vec![view(true, true, 0, 0), view(false, false, 0, 0)];
        let mut cur = 0;
        assert_eq!(route(RouterPolicy::RoundRobin, &views, &mut cur), Some(0));
        // Blind: the dead replica still gets picked.
        assert_eq!(route(RouterPolicy::RoundRobin, &views, &mut cur), Some(1));
        assert_eq!(route(RouterPolicy::RoundRobin, &views, &mut cur), Some(0));
    }

    #[test]
    fn least_loaded_prefers_light_live_replicas() {
        let views = vec![
            view(true, true, 5, 4),
            view(false, true, 0, 0), // down: excluded despite zero load
            view(true, true, 1, 2),
        ];
        let mut cur = 0;
        assert_eq!(route(RouterPolicy::LeastLoaded, &views, &mut cur), Some(2));
        // Ties break on the lowest index.
        let tied = vec![view(true, true, 1, 1), view(true, true, 2, 0)];
        assert_eq!(route(RouterPolicy::LeastLoaded, &tied, &mut cur), Some(0));
    }

    #[test]
    fn failover_skips_probed_down_and_exhausts_to_none() {
        let views = vec![
            view(true, false, 0, 0), // up but probe hasn't noticed yet
            view(true, true, 0, 0),
        ];
        let mut cur = 0;
        assert_eq!(
            route(RouterPolicy::FailoverAware, &views, &mut cur),
            Some(1)
        );
        let all_down = vec![view(false, false, 0, 0); 3];
        assert_eq!(
            route(RouterPolicy::FailoverAware, &all_down, &mut cur),
            None
        );
    }

    #[test]
    fn labels_round_trip() {
        for p in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::FailoverAware,
        ] {
            assert_eq!(RouterPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(RouterPolicy::parse("magic"), None);
    }
}
