//! Retry policy: capped exponential backoff with deterministic jitter.
//!
//! The backoff schedule is a pure function of `(policy, seed, request,
//! attempt)` — no RNG state — so a retried request fires at the same
//! simulated instant at any host job count, and a property test can pin
//! monotonicity and the cap over the whole attempt range.

use super::fault::ClusterFaultPlan;

/// Per-request retry behaviour.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Master switch; `false` turns every failure terminal.
    pub enabled: bool,
    /// Total attempts per request, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff_sec: f64,
    /// Ceiling on the nominal (pre-jitter) backoff.
    pub backoff_cap_sec: f64,
    /// Jitter amplitude: the drawn backoff is `nominal * (1 + frac*u)`
    /// with `u ∈ [0, 1)` drawn deterministically per (request, attempt).
    pub jitter_frac: f64,
    /// How long a routed request may sit queued before the router gives
    /// up on that replica and re-routes (`0` disables attempt timeouts).
    pub attempt_timeout_sec: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            enabled: true,
            max_attempts: 4,
            base_backoff_sec: 0.05,
            backoff_cap_sec: 2.0,
            jitter_frac: 0.25,
            attempt_timeout_sec: 10.0,
        }
    }
}

impl RetryPolicy {
    /// A policy with retries off — the no-resilience baseline.
    pub fn disabled() -> Self {
        RetryPolicy {
            enabled: false,
            ..RetryPolicy::default()
        }
    }

    /// Nominal (pre-jitter) backoff before attempt `attempt + 1`, given
    /// that `attempt` attempts have failed: `min(base * 2^(attempt-1),
    /// cap)`. Monotone non-decreasing in `attempt` and capped.
    pub fn nominal_backoff_sec(&self, attempt: u32) -> f64 {
        let doublings = attempt.saturating_sub(1).min(62);
        let nominal = self.base_backoff_sec * (1u64 << doublings) as f64;
        nominal.min(self.backoff_cap_sec)
    }

    /// The drawn backoff: nominal, scaled up by deterministic jitter.
    /// Bounded by `cap * (1 + jitter_frac)`.
    pub fn backoff_sec(&self, seed: u64, request_id: u64, attempt: u32) -> f64 {
        let u = ClusterFaultPlan::jitter_u01(seed, request_id, attempt);
        self.nominal_backoff_sec(attempt) * (1.0 + self.jitter_frac * u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_backoff_doubles_then_caps() {
        let p = RetryPolicy {
            base_backoff_sec: 0.1,
            backoff_cap_sec: 1.0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.nominal_backoff_sec(1), 0.1);
        assert_eq!(p.nominal_backoff_sec(2), 0.2);
        assert_eq!(p.nominal_backoff_sec(3), 0.4);
        assert_eq!(p.nominal_backoff_sec(4), 0.8);
        assert_eq!(p.nominal_backoff_sec(5), 1.0);
        assert_eq!(p.nominal_backoff_sec(40), 1.0);
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for req in 0..32u64 {
            for attempt in 1..=8u32 {
                let b = p.backoff_sec(5, req, attempt);
                assert_eq!(b, p.backoff_sec(5, req, attempt));
                let nominal = p.nominal_backoff_sec(attempt);
                assert!(b >= nominal);
                assert!(b < nominal * (1.0 + p.jitter_frac));
            }
        }
    }
}
