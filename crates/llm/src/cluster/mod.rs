//! Fleet-scale serving simulation with resilience as the headline.
//!
//! Composes the single-replica serving pieces — the iteration-level
//! batching loop of [`crate::serving`], the tensor-parallel cost model
//! of [`crate::parallel`], and the per-step costs of [`crate::engine`]
//! — into N replicas behind a router, on one discrete-event simulated
//! clock. The interesting part is what goes wrong:
//!
//! * a [`ClusterFaultPlan`] injects replica crashes, slow-node
//!   degradation, and transient launch failures, all site-keyed off one
//!   seed (the `gpu_sim::fault` splitmix64 scheme, lifted to fleet
//!   granularity);
//! * requests carry deadlines and flow through attempt timeouts →
//!   capped exponential backoff with deterministic jitter
//!   ([`RetryPolicy`]) → rerouting to healthy replicas;
//! * a KV-cache-pressure admission controller sheds or queues load;
//! * a graceful-degradation ladder per replica: drop batch width, drop
//!   the weight payload to INT8, fall back to a cheaper kernel resolved
//!   through the registry, and finally reject new work outright.
//!
//! The event loop is serial and every random decision is a pure hash of
//! the seed, so a run is byte-identical at any host job count — the
//! chaos-determinism CI gate diffs metrics snapshots and Chrome traces
//! across `--jobs 1/2/8`. Events past the simulation horizon are
//! dropped (the heap is a min-heap on time, so the loop just stops),
//! which also bounds retry storms under pathological fault rates.

mod fault;
mod retry;
mod router;

pub use fault::ClusterFaultPlan;
pub use retry::RetryPolicy;
pub use router::{route, ReplicaView, RouterPolicy};

use std::collections::{BinaryHeap, HashMap, VecDeque};

use gpu_sim::fault::site_u01;
use gpu_sim::spec::GpuSpec;
use gpu_sim::trace::{pids, TraceEvent, TraceSink, TrackId};
use spinfer_core::SpinferError;
use spinfer_obs::metrics::{percentile_sorted, Registry};

use crate::config::ModelConfig;
use crate::engine::{decode_overhead_sec, linear_pass_sec};
use crate::frameworks::{framework_for_kernel, Framework};
use crate::serving::{concurrency_cap, LengthMix};
use crate::spec::{SpecConfig, TreeVerifier};

/// Arrival-process salt, disjoint from the fault-site salts.
const SALT_ARRIVAL: u64 = 0x1bbc_d8c2_f5e5_4a91;

/// Wasted wall-clock when a kernel launch fails transiently and the
/// step is retried.
const LAUNCH_RETRY_PENALTY_SEC: f64 = 0.002;

/// Consecutive launch faults that escalate the degradation ladder.
const LAUNCH_FAULT_ESCALATE: u32 = 2;

/// Consecutive steps ending with an empty queue before a replica walks
/// one rung back down the ladder (hysteresis against flapping).
const DEESCALATE_IDLE_STEPS: u64 = 3;

/// Load shedding and queueing at the replica door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Queued requests a replica holds before shedding new arrivals.
    pub queue_cap_per_replica: usize,
    /// Clamp the batch to the KV-memory concurrency cap (the
    /// doubling/binary-search oracle shared with `serving`).
    pub kv_guard: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_cap_per_replica: 64,
            kv_guard: true,
        }
    }
}

/// The graceful-degradation ladder: rung 1 halves the batch, rung 2
/// drops the weight payload to INT8, rung 3 swaps to the fallback
/// kernel, rung 4 rejects new work.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Master switch; `false` pins every replica to rung 0.
    pub enabled: bool,
    /// Rung 1: halve the batch width (min 1).
    pub shrink_batch: bool,
    /// Rung 2: serve from INT8 weight payloads ([`Framework::SpInfer`]
    /// → [`Framework::SpInferInt8`]) — cheaper steps at a bounded
    /// accuracy cost, one rung before abandoning the sparse format
    /// entirely. Only takes effect when the primary framework is
    /// `SpInfer`; other primaries pass straight through to rung 3.
    pub int8_precision: bool,
    /// Rung 3: registered kernel name to fall back to, resolved through
    /// `spinfer_baselines::kernel_by_name` (unknown names are a typed
    /// [`SpinferError::UnknownKernel`] at validation time). `None`
    /// keeps the rung-2 kernel on every later rung.
    pub fallback_kernel: Option<String>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            enabled: true,
            shrink_batch: true,
            int8_precision: true,
            // The dense tensor-core path: slower per token at high
            // sparsity, but immune to sparse-format hazards — the
            // classic "boring fallback".
            fallback_kernel: Some("cuBLAS_TC".to_string()),
        }
    }
}

impl DegradationPolicy {
    /// A policy with the ladder off — the no-resilience baseline.
    pub fn disabled() -> Self {
        DegradationPolicy {
            enabled: false,
            ..DegradationPolicy::default()
        }
    }

    /// Resolves the fallback kernel name through the registry and maps
    /// it onto the analytic cost profile the fleet model prices steps
    /// with (the shared [`framework_for_kernel`] translation). Unknown
    /// names surface the registry's typed error.
    pub fn resolve_fallback(&self) -> Result<Option<Framework>, SpinferError> {
        let Some(name) = &self.fallback_kernel else {
            return Ok(None);
        };
        framework_for_kernel(name).map(Some)
    }
}

/// One fleet scenario.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Model served by every replica.
    pub model: ModelConfig,
    /// Primary framework (rung 0 of the ladder).
    pub framework: Framework,
    /// Weight sparsity.
    pub sparsity: f64,
    /// Tensor-parallel degree within each replica.
    pub tp: usize,
    /// Batch width per replica at rung 0.
    pub max_batch: usize,
    /// Default prompt tokens per request.
    pub input_len: usize,
    /// Default generated tokens per request.
    pub output_len: usize,
    /// Request length mix (shared with [`crate::serving`]).
    pub mix: LengthMix,
    /// Replica count.
    pub replicas: usize,
    /// Mean arrival rate (exponential inter-arrivals, seeded).
    pub arrival_rps: f64,
    /// Simulation horizon in simulated seconds.
    pub duration_sec: f64,
    /// Per-request SLO: completions later than `arrival + deadline_sec`
    /// count as throughput but not goodput.
    pub deadline_sec: f64,
    /// Retry behaviour.
    pub retry: RetryPolicy,
    /// Admission control.
    pub admission: AdmissionPolicy,
    /// Degradation ladder.
    pub degradation: DegradationPolicy,
    /// Routing policy.
    pub router: RouterPolicy,
    /// Health-probe interval feeding the failover router's lagged view.
    pub health_check_sec: f64,
    /// Speculative decoding on every replica. `None` — and, bit for
    /// bit, `Some(SpecConfig::degenerate())` — is the incremental
    /// decode fleet.
    pub spec: Option<SpecConfig>,
    /// Root seed for arrivals and retry jitter (fault sites draw from
    /// the [`ClusterFaultPlan`]'s own seed).
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            model: ModelConfig::opt_13b(),
            framework: Framework::SpInfer,
            sparsity: 0.6,
            tp: 1,
            max_batch: 16,
            input_len: 512,
            output_len: 64,
            mix: LengthMix::Uniform,
            replicas: 4,
            arrival_rps: 4.0,
            duration_sec: 30.0,
            deadline_sec: 10.0,
            retry: RetryPolicy::default(),
            admission: AdmissionPolicy::default(),
            degradation: DegradationPolicy::default(),
            router: RouterPolicy::FailoverAware,
            health_check_sec: 0.5,
            spec: None,
            seed: 0,
        }
    }
}

impl ClusterConfig {
    /// Config-time validation: every reason comes back as a typed
    /// [`SpinferError::InvalidCluster`] (or the more specific error a
    /// component check raises, e.g. an empty length mix or an unknown
    /// fallback kernel).
    pub fn validate(&self) -> Result<(), SpinferError> {
        let invalid = |reason: &str| {
            Err(SpinferError::InvalidCluster {
                reason: reason.to_string(),
            })
        };
        if self.replicas == 0 {
            return invalid("replicas must be >= 1");
        }
        if self.max_batch == 0 {
            return invalid("max_batch must be >= 1");
        }
        if self.duration_sec <= 0.0 || self.duration_sec.is_nan() {
            return invalid("duration_sec must be > 0");
        }
        if self.arrival_rps <= 0.0 || self.arrival_rps.is_nan() {
            return invalid("arrival_rps must be > 0");
        }
        if self.deadline_sec <= 0.0 || self.deadline_sec.is_nan() {
            return invalid("deadline_sec must be > 0");
        }
        if self.health_check_sec <= 0.0 || self.health_check_sec.is_nan() {
            return invalid("health_check_sec must be > 0");
        }
        if self.retry.enabled {
            if self.retry.max_attempts == 0 {
                return invalid("retry.max_attempts must be >= 1");
            }
            if self.retry.base_backoff_sec <= 0.0 || self.retry.base_backoff_sec.is_nan() {
                return invalid("retry.base_backoff_sec must be > 0");
            }
            if self.retry.backoff_cap_sec < self.retry.base_backoff_sec {
                return invalid("retry.backoff_cap_sec must be >= base_backoff_sec");
            }
            if self.retry.jitter_frac < 0.0 || self.retry.jitter_frac.is_nan() {
                return invalid("retry.jitter_frac must be >= 0");
            }
            if self.retry.attempt_timeout_sec < 0.0 || self.retry.attempt_timeout_sec.is_nan() {
                return invalid("retry.attempt_timeout_sec must be >= 0");
            }
        }
        self.mix.validate()?;
        self.degradation.resolve_fallback()?;
        if let Some(spec) = &self.spec {
            spec.validate()?;
        }
        Ok(())
    }
}

/// Per-replica outcome summary.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStats {
    /// Requests this replica completed.
    pub completed: u64,
    /// Crashes suffered.
    pub crashes: u64,
    /// Steps executed (including relaunches).
    pub steps: u64,
    /// Latency percentiles over this replica's completions (0 if none).
    pub p50_latency_s: f64,
    /// 95th percentile.
    pub p95_latency_s: f64,
    /// 99th percentile.
    pub p99_latency_s: f64,
    /// Queue depth when the horizon hit.
    pub final_queue: usize,
    /// Ladder rung when the horizon hit (0 = healthy).
    pub final_level: u8,
}

/// Fleet-level outcome of one simulated run.
#[derive(Clone, Debug, Default)]
pub struct ClusterReport {
    /// Requests that arrived inside the horizon.
    pub arrivals: u64,
    /// Requests that completed (any latency).
    pub completed: u64,
    /// Completions inside their deadline — the goodput numerator.
    pub completed_in_slo: u64,
    /// Requests that terminally failed (retries exhausted or disabled).
    pub failed: u64,
    /// Requests still in flight when the horizon hit.
    pub incomplete: u64,
    /// Retry attempts scheduled.
    pub retries: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Attempt timeouts fired on queued requests.
    pub timeouts: u64,
    /// Replica crashes.
    pub crashes: u64,
    /// Replica recoveries.
    pub recoveries: u64,
    /// Transient launch failures.
    pub launch_faults: u64,
    /// Steps that ran at the slow-node multiplier.
    pub slow_steps: u64,
    /// Ladder escalations across the fleet.
    pub degrade_escalations: u64,
    /// Ladder de-escalations.
    pub degrade_deescalations: u64,
    /// Requests rejected by rung-4 replicas.
    pub degraded_rejects: u64,
    /// Attempts routed to a replica that was down (blind routing).
    pub routed_to_down: u64,
    /// Requests admitted speculatively (0 when speculation is off).
    pub spec_requests: u64,
    /// Decode steps that verified at least one candidate tree.
    pub spec_steps: u64,
    /// Candidate tokens proposed and verified across the fleet.
    pub spec_proposed: u64,
    /// Drafted tokens accepted by the target model.
    pub spec_accepted: u64,
    /// Bonus tokens committed alongside accepted prefixes.
    pub spec_bonus: u64,
    /// Candidate KV entries rolled back after rejection.
    pub spec_rolled_back: u64,
    /// Goodput: SLO-abiding completions per simulated second.
    pub goodput_rps: f64,
    /// Throughput: all completions per simulated second.
    pub throughput_rps: f64,
    /// Fleet-wide latency percentiles (0 if nothing completed).
    pub p50_latency_s: f64,
    /// 95th percentile.
    pub p95_latency_s: f64,
    /// 99th percentile.
    pub p99_latency_s: f64,
    /// Per-replica summaries.
    pub per_replica: Vec<ReplicaStats>,
}

// ---------------------------------------------------------------------
// Event machinery
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Request `id` arrives (and chains the next arrival).
    Arrival(u64),
    /// A replica step completes.
    StepEnd { r: usize, epoch: u64 },
    /// A crashed replica rejoins.
    Recover { r: usize, epoch: u64 },
    /// A backed-off request re-routes.
    Retry(u64),
    /// An attempt timeout on a (possibly still queued) request.
    Timeout { req: u64, attempt: u32 },
    /// The health prober refreshes the router's view.
    Health,
}

#[derive(Clone, Copy, Debug)]
struct Scheduled {
    t: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl Ord for Scheduled {
    // Reversed: BinaryHeap is a max-heap, we want earliest-first with
    // insertion order breaking ties (deterministic at any job count).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .t
            .total_cmp(&self.t)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ReqState {
    Queued(usize),
    Running(usize),
    Backoff,
    Done,
    Failed,
}

#[derive(Clone, Debug)]
struct Req {
    arrival: f64,
    input_len: usize,
    output_len: usize,
    deadline: f64,
    attempt: u32,
    generated: usize,
    speculative: bool,
    state: ReqState,
}

#[derive(Clone, Debug, Default)]
struct Replica {
    up: bool,
    probed_up: bool,
    epoch: u64,
    busy: bool,
    queue: VecDeque<u64>,
    running: Vec<u64>,
    level: u8,
    tick: u64,
    launches: u64,
    consec_launch_faults: u32,
    idle_steps: u64,
    // In-flight step bookkeeping.
    step_tick: u64,
    step_start: f64,
    step_faulted: bool,
    step_prefill_sec: f64,
    step_decode_sec: f64,
    // Stats.
    completed: u64,
    crashes: u64,
    steps: u64,
    latencies: Vec<f64>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Counts {
    arrivals: u64,
    completed: u64,
    completed_in_slo: u64,
    failed: u64,
    retries: u64,
    shed: u64,
    timeouts: u64,
    crashes: u64,
    recoveries: u64,
    launch_faults: u64,
    slow_steps: u64,
    degrade_escalations: u64,
    degrade_deescalations: u64,
    degraded_rejects: u64,
    routed_to_down: u64,
    spec_requests: u64,
    spec_steps: u64,
    spec_proposed: u64,
    spec_accepted: u64,
    spec_bonus: u64,
    spec_rolled_back: u64,
}

struct Sim<'a> {
    spec: &'a GpuSpec,
    cfg: &'a ClusterConfig,
    plan: ClusterFaultPlan,
    fallback_fw: Option<Framework>,
    // Present only when the config's speculation is armed (non-empty
    // tree, positive share), so `spec: None` and the degenerate config
    // run the identical code path.
    verifier: Option<TreeVerifier>,
    caps: HashMap<Framework, usize>,
    linear_cache: HashMap<(Framework, usize), f64>,
    prefill_cache: HashMap<(Framework, usize), f64>,
    draft_cache: HashMap<(Framework, usize), f64>,
    replicas: Vec<Replica>,
    reqs: Vec<Req>,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    cursor: usize,
    sink: Option<&'a TraceSink>,
    c: Counts,
    latencies: Vec<f64>,
}

impl<'a> Sim<'a> {
    fn new(
        spec: &'a GpuSpec,
        cfg: &'a ClusterConfig,
        plan: ClusterFaultPlan,
        fallback_fw: Option<Framework>,
        sink: Option<&'a TraceSink>,
    ) -> Self {
        let verifier = cfg
            .spec
            .as_ref()
            .map(TreeVerifier::new)
            .filter(TreeVerifier::armed);
        // Speculative replicas hold each candidate tree's KV entries
        // between draft and rollback; the cap sizes for them.
        let tree_nodes = verifier.as_ref().map_or(0, |v| v.tree().nodes());
        let (max_in, max_out) = cfg.mix.max_lengths((cfg.input_len, cfg.output_len));
        let mut caps = HashMap::new();
        let mut fws = vec![cfg.framework];
        if cfg.degradation.int8_precision && cfg.framework == Framework::SpInfer {
            fws.push(Framework::SpInferInt8);
        }
        if let Some(f) = fallback_fw {
            fws.push(f);
        }
        for fw in fws {
            caps.entry(fw).or_insert_with(|| {
                concurrency_cap(
                    spec,
                    &cfg.model,
                    fw,
                    cfg.sparsity,
                    cfg.tp,
                    max_in + max_out + tree_nodes,
                )
            });
        }
        let replicas = vec![
            Replica {
                up: true,
                probed_up: true,
                ..Replica::default()
            };
            cfg.replicas
        ];
        if let Some(sink) = sink {
            for r in 0..cfg.replicas {
                sink.name_track(Self::replica_track(r), "cluster", &format!("replica{r}"));
            }
            sink.name_track(Self::router_track(cfg.replicas), "cluster", "router");
        }
        Sim {
            spec,
            cfg,
            plan,
            fallback_fw,
            verifier,
            caps,
            linear_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
            draft_cache: HashMap::new(),
            replicas,
            reqs: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            cursor: 0,
            sink,
            c: Counts::default(),
            latencies: Vec::new(),
        }
    }

    fn replica_track(r: usize) -> TrackId {
        (pids::CLUSTER, r as u32)
    }

    fn router_track(replicas: usize) -> TrackId {
        (pids::CLUSTER, replicas as u32)
    }

    fn schedule(&mut self, t: f64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { t, seq, ev });
    }

    fn instant(&self, track: TrackId, name: &'static str, t: f64) {
        if let Some(sink) = self.sink {
            sink.record(TraceEvent::instant(track, name, "cluster", t * 1e6));
        }
    }

    fn span(&self, track: TrackId, name: &'static str, start: f64, dur: f64) {
        if let Some(sink) = self.sink {
            sink.record(TraceEvent::span(
                track,
                name,
                "cluster",
                start * 1e6,
                dur * 1e6,
            ));
        }
    }

    // -- cost model -----------------------------------------------------

    fn linear_sec(&mut self, fw: Framework, n: usize) -> f64 {
        let cfg = self.cfg;
        *self
            .linear_cache
            .entry((fw, n))
            .or_insert_with(|| linear_pass_sec(self.spec, &cfg.model, fw, cfg.sparsity, cfg.tp, n))
    }

    fn prefill_sec(&mut self, fw: Framework, input_len: usize) -> f64 {
        if let Some(&t) = self.prefill_cache.get(&(fw, input_len)) {
            return t;
        }
        let cfg = self.cfg;
        let t = self.linear_sec(fw, input_len)
            + decode_overhead_sec(self.spec, &cfg.model, fw, cfg.tp, 1, input_len);
        self.prefill_cache.insert((fw, input_len), t);
        t
    }

    /// One decode iteration: the linear passes run at `verify_n` wide
    /// (the batch plus any folded candidate tokens), attention/overhead
    /// at the batch's attributed context. Incremental decode is the
    /// `verify_n == batch` case.
    fn decode_iter_sec(
        &mut self,
        fw: Framework,
        batch: usize,
        verify_n: usize,
        sum_ctx: usize,
    ) -> f64 {
        let cfg = self.cfg;
        self.linear_sec(fw, verify_n)
            + decode_overhead_sec(self.spec, &cfg.model, fw, cfg.tp, batch, sum_ctx)
    }

    /// Draft-model seconds for `spec_batch` speculative requests at this
    /// replica's effective framework; exactly `0.0` when nothing drafts.
    fn draft_sec(&mut self, fw: Framework, spec_batch: usize) -> f64 {
        let Some(v) = &self.verifier else {
            return 0.0;
        };
        if spec_batch == 0 {
            return 0.0;
        }
        let cfg = self.cfg;
        let gpu = self.spec;
        let draft = cfg.spec.as_ref().expect("verifier implies spec").draft;
        *self.draft_cache.entry((fw, spec_batch)).or_insert_with(|| {
            draft.propose_sec(
                gpu,
                &cfg.model,
                fw,
                cfg.sparsity,
                cfg.tp,
                spec_batch,
                v.tree(),
            )
        })
    }

    /// Effective (framework, batch) at a replica's current ladder rung,
    /// clamped by the KV concurrency cap when the guard is on.
    fn effective(&self, r: usize) -> (Framework, usize) {
        let level = self.replicas[r].level;
        let mut fw = self.cfg.framework;
        let mut batch = self.cfg.max_batch;
        if self.cfg.degradation.enabled {
            if level >= 1 && self.cfg.degradation.shrink_batch {
                batch = (batch / 2).max(1);
            }
            if level >= 2 && self.cfg.degradation.int8_precision && fw == Framework::SpInfer {
                fw = Framework::SpInferInt8;
            }
            if level >= 3 {
                if let Some(f) = self.fallback_fw {
                    fw = f;
                }
            }
        }
        if self.cfg.admission.kv_guard {
            batch = batch.min(*self.caps.get(&fw).unwrap_or(&batch));
        }
        (fw, batch)
    }

    // -- ladder ---------------------------------------------------------

    fn escalate(&mut self, r: usize, now: f64) {
        if !self.cfg.degradation.enabled || self.replicas[r].level >= 4 {
            return;
        }
        self.replicas[r].level += 1;
        self.replicas[r].idle_steps = 0;
        self.c.degrade_escalations += 1;
        self.instant(Self::replica_track(r), "degrade", now);
    }

    fn maybe_deescalate(&mut self, r: usize, now: f64) {
        let rep = &mut self.replicas[r];
        if rep.queue.is_empty() {
            rep.idle_steps += 1;
        } else {
            rep.idle_steps = 0;
        }
        if rep.level > 0 && rep.idle_steps >= DEESCALATE_IDLE_STEPS {
            rep.level -= 1;
            rep.idle_steps = 0;
            self.c.degrade_deescalations += 1;
            self.instant(Self::replica_track(r), "restore", now);
        }
    }

    // -- request lifecycle ----------------------------------------------

    /// A routing/serving attempt failed; back off and retry, or fail
    /// terminally when the policy says stop.
    fn fail_attempt(&mut self, id: u64, now: f64) {
        let retry = self.cfg.retry;
        let req = &mut self.reqs[id as usize];
        if retry.enabled && req.attempt < retry.max_attempts {
            let backoff = retry.backoff_sec(self.cfg.seed, id, req.attempt);
            req.attempt += 1;
            req.state = ReqState::Backoff;
            self.c.retries += 1;
            self.instant(Self::router_track(self.cfg.replicas), "retry", now);
            self.schedule(now + backoff, Ev::Retry(id));
        } else {
            req.state = ReqState::Failed;
            self.c.failed += 1;
        }
    }

    fn route_request(&mut self, id: u64, now: f64) {
        let views: Vec<ReplicaView> = self
            .replicas
            .iter()
            .map(|rep| ReplicaView {
                up: rep.up,
                probed_up: rep.probed_up,
                queued: rep.queue.len(),
                running: rep.running.len(),
            })
            .collect();
        let Some(r) = route(self.cfg.router, &views, &mut self.cursor) else {
            // No candidate replica at all (e.g. every probe says down).
            self.fail_attempt(id, now);
            return;
        };
        if !self.replicas[r].up {
            self.c.routed_to_down += 1;
            self.fail_attempt(id, now);
            return;
        }
        if self.cfg.degradation.enabled && self.replicas[r].level >= 4 {
            // Rung 4: the replica rejects new work with a typed error;
            // here that surfaces as a counted rejection the retry path
            // routes around.
            self.c.degraded_rejects += 1;
            self.fail_attempt(id, now);
            return;
        }
        let (_, eff_batch) = self.effective(r);
        if eff_batch == 0 {
            // KV guard says not even one sequence fits on this rung.
            self.c.shed += 1;
            self.instant(Self::router_track(self.cfg.replicas), "shed", now);
            self.fail_attempt(id, now);
            return;
        }
        if self.replicas[r].queue.len() >= self.cfg.admission.queue_cap_per_replica {
            // Pressure: climb the ladder so future steps drain faster,
            // and shed this request to protect the queue.
            self.escalate(r, now);
            self.c.shed += 1;
            self.instant(Self::router_track(self.cfg.replicas), "shed", now);
            self.fail_attempt(id, now);
            return;
        }
        let attempt = self.reqs[id as usize].attempt;
        self.reqs[id as usize].state = ReqState::Queued(r);
        self.replicas[r].queue.push_back(id);
        if self.cfg.retry.enabled && self.cfg.retry.attempt_timeout_sec > 0.0 {
            self.schedule(
                now + self.cfg.retry.attempt_timeout_sec,
                Ev::Timeout { req: id, attempt },
            );
        }
        if !self.replicas[r].busy {
            self.start_step(r, now);
        }
    }

    // -- replica steps --------------------------------------------------

    fn start_step(&mut self, r: usize, now: f64) {
        if self.replicas[r].queue.is_empty() && self.replicas[r].running.is_empty() {
            self.replicas[r].busy = false;
            return;
        }
        let (fw, eff_batch) = self.effective(r);
        let tick = self.replicas[r].tick;
        self.replicas[r].tick += 1;
        self.replicas[r].step_tick = tick;
        self.replicas[r].step_start = now;

        let launch = self.replicas[r].launches;
        self.replicas[r].launches += 1;
        if self.plan.launch_fails(r, launch) {
            // Transient launch failure: the step burns a relaunch
            // penalty and makes no progress.
            self.replicas[r].step_faulted = true;
            self.replicas[r].consec_launch_faults += 1;
            self.c.launch_faults += 1;
            self.instant(Self::replica_track(r), "launch_fault", now);
            if self.replicas[r].consec_launch_faults >= LAUNCH_FAULT_ESCALATE {
                self.escalate(r, now);
                self.replicas[r].consec_launch_faults = 0;
            }
            self.replicas[r].busy = true;
            let epoch = self.replicas[r].epoch;
            self.schedule(now + LAUNCH_RETRY_PENALTY_SEC, Ev::StepEnd { r, epoch });
            return;
        }
        self.replicas[r].consec_launch_faults = 0;
        self.replicas[r].step_faulted = false;

        // Admit from the queue up to the effective batch width.
        let mut admitted_lens = Vec::new();
        while self.replicas[r].running.len() < eff_batch {
            let Some(id) = self.replicas[r].queue.pop_front() else {
                break;
            };
            self.reqs[id as usize].state = ReqState::Running(r);
            admitted_lens.push(self.reqs[id as usize].input_len);
            self.replicas[r].running.push(id);
        }
        if self.replicas[r].running.is_empty() {
            // Nothing admissible (e.g. a zero cap opened up mid-run):
            // shed the queue back into the retry path rather than spin.
            let stuck: Vec<u64> = self.replicas[r].queue.drain(..).collect();
            for id in stuck {
                self.c.shed += 1;
                self.fail_attempt(id, now);
            }
            self.replicas[r].busy = false;
            return;
        }

        let batch = self.replicas[r].running.len();
        // Fold each request's verify width and attributed KV context:
        // speculative requests contribute their whole candidate tree,
        // plain requests one token and their base context. Without an
        // armed verifier this is exactly the incremental plan.
        let mut verify_n = 0usize;
        let mut sum_ctx = 0usize;
        let mut spec_batch = 0usize;
        for &id in &self.replicas[r].running {
            let q = &self.reqs[id as usize];
            let base = q.input_len + q.generated;
            match &self.verifier {
                Some(v) if q.speculative => {
                    spec_batch += 1;
                    verify_n += v.tree().verify_tokens_per_request();
                    sum_ctx += v.tree().attributed_ctx(base);
                }
                _ => {
                    verify_n += 1;
                    sum_ctx += base;
                }
            }
        }
        let mut prefill: f64 = admitted_lens.iter().map(|&n| self.prefill_sec(fw, n)).sum();
        let mut decode =
            self.decode_iter_sec(fw, batch, verify_n, sum_ctx) + self.draft_sec(fw, spec_batch);
        if self.plan.slow(r, tick) {
            let f = self.plan.slow_factor.max(1.0);
            prefill *= f;
            decode *= f;
            self.c.slow_steps += 1;
        }
        self.replicas[r].step_prefill_sec = prefill;
        self.replicas[r].step_decode_sec = decode;
        self.replicas[r].busy = true;
        let epoch = self.replicas[r].epoch;
        self.schedule(now + prefill + decode, Ev::StepEnd { r, epoch });
    }

    fn on_step_end(&mut self, r: usize, epoch: u64, t: f64) {
        if self.replicas[r].epoch != epoch {
            return; // Stale: the replica crashed while this was in flight.
        }
        self.replicas[r].busy = false;
        self.replicas[r].steps += 1;
        let tick = self.replicas[r].step_tick;
        let start = self.replicas[r].step_start;

        if self.plan.crashes(r, tick) {
            self.crash(r, t);
            return;
        }

        if self.replicas[r].step_faulted {
            self.replicas[r].step_faulted = false;
            self.span(Self::replica_track(r), "relaunch", start, t - start);
        } else {
            let prefill = self.replicas[r].step_prefill_sec;
            let decode = self.replicas[r].step_decode_sec;
            if prefill > 0.0 {
                self.span(Self::replica_track(r), "prefill", start, prefill);
            }
            self.span(
                Self::replica_track(r),
                "decode_iter",
                start + prefill,
                decode,
            );
            // Commit tokens; completions leave. Speculative requests
            // commit their accepted prefix plus the bonus token and
            // roll rejected candidates back; plain requests commit one.
            let running = std::mem::take(&mut self.replicas[r].running);
            let mut spec_in_step = 0u64;
            for id in running {
                let commit = match &self.verifier {
                    Some(v) if self.reqs[id as usize].speculative => {
                        let q = &self.reqs[id as usize];
                        let o = v.outcome(id, q.generated as u64, q.output_len - q.generated);
                        spec_in_step += 1;
                        self.c.spec_proposed += v.tree().nodes() as u64;
                        self.c.spec_accepted += o.accepted as u64;
                        self.c.spec_bonus += 1;
                        self.c.spec_rolled_back += o.rolled_back as u64;
                        o.committed
                    }
                    _ => 1,
                };
                let req = &mut self.reqs[id as usize];
                req.generated += commit;
                if req.generated >= req.output_len {
                    req.state = ReqState::Done;
                    let latency = t - req.arrival;
                    let in_slo = t <= req.deadline;
                    self.c.completed += 1;
                    if in_slo {
                        self.c.completed_in_slo += 1;
                    }
                    self.latencies.push(latency);
                    self.replicas[r].completed += 1;
                    self.replicas[r].latencies.push(latency);
                } else {
                    self.replicas[r].running.push(id);
                }
            }
            if spec_in_step > 0 {
                self.c.spec_steps += 1;
            }
        }

        self.maybe_deescalate(r, t);
        if !self.replicas[r].queue.is_empty() || !self.replicas[r].running.is_empty() {
            self.start_step(r, t);
        }
    }

    fn crash(&mut self, r: usize, t: f64) {
        self.c.crashes += 1;
        self.replicas[r].crashes += 1;
        self.instant(Self::replica_track(r), "crash", t);
        self.replicas[r].up = false;
        self.replicas[r].busy = false;
        self.replicas[r].epoch += 1;
        self.replicas[r].consec_launch_faults = 0;
        self.replicas[r].idle_steps = 0;
        // The running batch and the queue are lost; every affected
        // request re-enters through the retry path (or fails terminally
        // when retries are off).
        let mut lost: Vec<u64> = self.replicas[r].running.drain(..).collect();
        lost.extend(self.replicas[r].queue.drain(..));
        for id in lost {
            self.fail_attempt(id, t);
        }
        let epoch = self.replicas[r].epoch;
        self.schedule(
            t + self.plan.recovery_sec.max(0.0),
            Ev::Recover { r, epoch },
        );
    }

    fn on_recover(&mut self, r: usize, epoch: u64, t: f64) {
        if self.replicas[r].epoch != epoch || self.replicas[r].up {
            return;
        }
        self.replicas[r].up = true;
        self.c.recoveries += 1;
        self.instant(Self::replica_track(r), "recover", t);
        if !self.replicas[r].queue.is_empty() || !self.replicas[r].running.is_empty() {
            self.start_step(r, t);
        }
    }

    fn on_timeout(&mut self, id: u64, attempt: u32, t: f64) {
        let req = &self.reqs[id as usize];
        if req.attempt != attempt {
            return; // A newer attempt superseded this timer.
        }
        let ReqState::Queued(r) = req.state else {
            return; // Running or already resolved: let it ride.
        };
        if let Some(pos) = self.replicas[r].queue.iter().position(|&x| x == id) {
            self.replicas[r].queue.remove(pos);
        }
        self.c.timeouts += 1;
        self.instant(Self::router_track(self.cfg.replicas), "timeout", t);
        self.fail_attempt(id, t);
    }

    // -- arrivals -------------------------------------------------------

    fn inter_arrival_gap(&self, i: u64) -> f64 {
        let u = site_u01(self.cfg.seed, SALT_ARRIVAL, i).max(1e-12);
        -u.ln() / self.cfg.arrival_rps
    }

    fn on_arrival(&mut self, i: u64, t: f64) {
        debug_assert_eq!(i as usize, self.reqs.len());
        let (input_len, output_len) = self
            .cfg
            .mix
            .lengths(i as usize, (self.cfg.input_len, self.cfg.output_len));
        let speculative = self.verifier.as_ref().is_some_and(|v| v.speculates(i));
        if speculative {
            self.c.spec_requests += 1;
        }
        self.reqs.push(Req {
            arrival: t,
            input_len,
            output_len,
            deadline: t + self.cfg.deadline_sec,
            attempt: 1,
            generated: 0,
            speculative,
            state: ReqState::Backoff, // placeholder until routed
        });
        self.c.arrivals += 1;
        self.route_request(i, t);
        let next = t + self.inter_arrival_gap(i + 1);
        if next <= self.cfg.duration_sec {
            self.schedule(next, Ev::Arrival(i + 1));
        }
    }

    // -- main loop ------------------------------------------------------

    fn run(&mut self) {
        let first = self.inter_arrival_gap(0);
        if first <= self.cfg.duration_sec {
            self.schedule(first, Ev::Arrival(0));
        }
        self.schedule(self.cfg.health_check_sec, Ev::Health);
        while let Some(Scheduled { t, ev, .. }) = self.heap.pop() {
            if t > self.cfg.duration_sec {
                // Min-heap on time: everything left is also past the
                // horizon. Dropping here bounds retry storms.
                break;
            }
            match ev {
                Ev::Arrival(i) => self.on_arrival(i, t),
                Ev::StepEnd { r, epoch } => self.on_step_end(r, epoch, t),
                Ev::Recover { r, epoch } => self.on_recover(r, epoch, t),
                Ev::Retry(id) => self.route_request(id, t),
                Ev::Timeout { req, attempt } => self.on_timeout(req, attempt, t),
                Ev::Health => {
                    for rep in &mut self.replicas {
                        rep.probed_up = rep.up;
                    }
                    let next = t + self.cfg.health_check_sec;
                    if next <= self.cfg.duration_sec {
                        self.schedule(next, Ev::Health);
                    }
                }
            }
        }
    }

    fn report(&self) -> ClusterReport {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let per_replica = self
            .replicas
            .iter()
            .map(|rep| {
                let mut lat = rep.latencies.clone();
                lat.sort_by(|a, b| a.total_cmp(b));
                ReplicaStats {
                    completed: rep.completed,
                    crashes: rep.crashes,
                    steps: rep.steps,
                    p50_latency_s: percentile_sorted(&lat, 0.50),
                    p95_latency_s: percentile_sorted(&lat, 0.95),
                    p99_latency_s: percentile_sorted(&lat, 0.99),
                    final_queue: rep.queue.len(),
                    final_level: rep.level,
                }
            })
            .collect();
        let c = self.c;
        ClusterReport {
            arrivals: c.arrivals,
            completed: c.completed,
            completed_in_slo: c.completed_in_slo,
            failed: c.failed,
            incomplete: c.arrivals - c.completed - c.failed,
            retries: c.retries,
            shed: c.shed,
            timeouts: c.timeouts,
            crashes: c.crashes,
            recoveries: c.recoveries,
            launch_faults: c.launch_faults,
            slow_steps: c.slow_steps,
            degrade_escalations: c.degrade_escalations,
            degrade_deescalations: c.degrade_deescalations,
            degraded_rejects: c.degraded_rejects,
            routed_to_down: c.routed_to_down,
            spec_requests: c.spec_requests,
            spec_steps: c.spec_steps,
            spec_proposed: c.spec_proposed,
            spec_accepted: c.spec_accepted,
            spec_bonus: c.spec_bonus,
            spec_rolled_back: c.spec_rolled_back,
            goodput_rps: c.completed_in_slo as f64 / self.cfg.duration_sec,
            throughput_rps: c.completed as f64 / self.cfg.duration_sec,
            p50_latency_s: percentile_sorted(&sorted, 0.50),
            p95_latency_s: percentile_sorted(&sorted, 0.95),
            p99_latency_s: percentile_sorted(&sorted, 0.99),
            per_replica,
        }
    }

    fn write_metrics(&self, reg: &mut Registry, report: &ClusterReport) {
        reg.counter_add("cluster.arrivals", report.arrivals);
        reg.counter_add("cluster.completed", report.completed);
        reg.counter_add("cluster.completed_in_slo", report.completed_in_slo);
        reg.counter_add("cluster.failed", report.failed);
        reg.counter_add("cluster.incomplete", report.incomplete);
        reg.counter_add("cluster.retries", report.retries);
        reg.counter_add("cluster.shed", report.shed);
        reg.counter_add("cluster.timeouts", report.timeouts);
        reg.counter_add("cluster.crashes", report.crashes);
        reg.counter_add("cluster.recoveries", report.recoveries);
        reg.counter_add("cluster.launch_faults", report.launch_faults);
        reg.counter_add("cluster.slow_steps", report.slow_steps);
        reg.counter_add("cluster.degrade_escalations", report.degrade_escalations);
        reg.counter_add(
            "cluster.degrade_deescalations",
            report.degrade_deescalations,
        );
        reg.counter_add("cluster.degraded_rejects", report.degraded_rejects);
        reg.counter_add("cluster.routed_to_down", report.routed_to_down);
        // Speculation metrics only exist on speculating fleets — an
        // unarmed run's registry stays byte-identical to pre-spec runs.
        if self.verifier.is_some() {
            reg.counter_add("cluster.spec.requests", report.spec_requests);
            reg.counter_add("cluster.spec.steps", report.spec_steps);
            reg.counter_add("cluster.spec.proposed", report.spec_proposed);
            reg.counter_add("cluster.spec.accepted", report.spec_accepted);
            reg.counter_add("cluster.spec.bonus", report.spec_bonus);
            reg.counter_add("cluster.spec.rolled_back", report.spec_rolled_back);
            let acc = if report.spec_proposed == 0 {
                0.0
            } else {
                report.spec_accepted as f64 / report.spec_proposed as f64
            };
            reg.gauge_set("cluster.spec.acceptance_observed", acc);
        }
        reg.gauge_set("cluster.goodput_rps", report.goodput_rps);
        reg.gauge_set("cluster.throughput_rps", report.throughput_rps);
        reg.gauge_set("cluster.replicas", self.cfg.replicas as f64);
        reg.gauge_set("cluster.duration_sec", self.cfg.duration_sec);
        for &l in &self.latencies {
            reg.histogram_record("cluster.latency_s", l);
        }
        for (r, rep) in self.replicas.iter().enumerate() {
            reg.counter_add(&format!("cluster.replica{r}.completed"), rep.completed);
            reg.counter_add(&format!("cluster.replica{r}.crashes"), rep.crashes);
            reg.counter_add(&format!("cluster.replica{r}.steps"), rep.steps);
            reg.gauge_set(
                &format!("cluster.replica{r}.final_queue"),
                rep.queue.len() as f64,
            );
            for &l in &rep.latencies {
                reg.histogram_record(&format!("cluster.replica{r}.latency_s"), l);
            }
        }
    }
}

/// Runs one fleet scenario. `faults: None` (or an all-zero plan) is the
/// fault-free path.
pub fn simulate_cluster(
    spec: &GpuSpec,
    cfg: &ClusterConfig,
    faults: Option<&ClusterFaultPlan>,
) -> Result<ClusterReport, SpinferError> {
    simulate_cluster_instrumented(spec, cfg, faults, None, None)
}

/// [`simulate_cluster`] with observability attached: a metrics registry
/// receives `cluster.*` counters, gauges, and latency histograms, and a
/// trace sink receives one track per replica (plus a router track) on
/// the simulated clock. Both attachments are outcome-neutral: the
/// report is bit-identical with or without them, and the recorded
/// artifacts are byte-identical at any host job count.
pub fn simulate_cluster_instrumented(
    spec: &GpuSpec,
    cfg: &ClusterConfig,
    faults: Option<&ClusterFaultPlan>,
    metrics: Option<&mut Registry>,
    sink: Option<&TraceSink>,
) -> Result<ClusterReport, SpinferError> {
    cfg.validate()?;
    let fallback_fw = cfg.degradation.resolve_fallback()?;
    let plan = faults.copied().unwrap_or_default();
    let mut sim = Sim::new(spec, cfg, plan, fallback_fw, sink);
    sim.run();
    let report = sim.report();
    if let Some(reg) = metrics {
        sim.write_metrics(reg, &report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> ClusterConfig {
        ClusterConfig {
            replicas: 2,
            arrival_rps: 2.0,
            duration_sec: 10.0,
            max_batch: 8,
            input_len: 128,
            output_len: 16,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn fault_free_cluster_serves_with_goodput() {
        let spec = GpuSpec::rtx4090();
        let r = simulate_cluster(&spec, &smoke_cfg(), None).unwrap();
        assert!(r.arrivals > 0);
        assert!(r.completed > 0, "no completions: {r:?}");
        assert_eq!(r.failed, 0);
        assert_eq!(r.crashes, 0);
        assert!(r.goodput_rps > 0.0);
        assert!(r.p50_latency_s > 0.0);
        assert_eq!(
            r.incomplete,
            r.arrivals - r.completed,
            "incomplete must balance the ledger"
        );
    }

    #[test]
    fn validation_rejects_bad_configs_with_typed_errors() {
        let spec = GpuSpec::rtx4090();
        let bad = ClusterConfig {
            replicas: 0,
            ..smoke_cfg()
        };
        let err = simulate_cluster(&spec, &bad, None).unwrap_err();
        assert_eq!(
            err,
            SpinferError::InvalidCluster {
                reason: "replicas must be >= 1".to_string()
            }
        );
        let empty_mix = ClusterConfig {
            mix: LengthMix::RoundRobin(vec![]),
            ..smoke_cfg()
        };
        assert_eq!(
            simulate_cluster(&spec, &empty_mix, None).unwrap_err(),
            SpinferError::EmptyLengthMix
        );
        let bad_kernel = ClusterConfig {
            degradation: DegradationPolicy {
                fallback_kernel: Some("warp-speed-gemm".to_string()),
                ..DegradationPolicy::default()
            },
            ..smoke_cfg()
        };
        assert!(matches!(
            simulate_cluster(&spec, &bad_kernel, None).unwrap_err(),
            SpinferError::UnknownKernel { .. }
        ));
    }

    #[test]
    fn zero_rate_plan_matches_no_plan() {
        let spec = GpuSpec::rtx4090();
        let cfg = smoke_cfg();
        let none = simulate_cluster(&spec, &cfg, None).unwrap();
        let zero = simulate_cluster(&spec, &cfg, Some(&ClusterFaultPlan::default())).unwrap();
        assert_eq!(format!("{none:?}"), format!("{zero:?}"));
    }

    #[test]
    fn degenerate_spec_fleet_matches_no_spec_fleet() {
        let spec = GpuSpec::rtx4090();
        let base = smoke_cfg();
        let none = simulate_cluster(&spec, &base, None).unwrap();
        let degenerate = ClusterConfig {
            spec: Some(SpecConfig::degenerate()),
            ..base
        };
        let deg = simulate_cluster(&spec, &degenerate, None).unwrap();
        assert_eq!(format!("{none:?}"), format!("{deg:?}"));
    }

    #[test]
    fn speculative_fleet_accepts_and_keeps_serving() {
        let spec = GpuSpec::rtx4090();
        let base = smoke_cfg();
        let none = simulate_cluster(&spec, &base, None).unwrap();
        let speccy = ClusterConfig {
            spec: Some(SpecConfig::default()),
            ..base
        };
        let r = simulate_cluster(&spec, &speccy, None).unwrap();
        assert!(r.spec_requests > 0, "share 1.0 must speculate: {r:?}");
        assert!(r.spec_steps > 0);
        assert!(r.spec_accepted > 0, "rate 0.8 must accept: {r:?}");
        assert!(r.spec_bonus >= r.spec_steps);
        // Multi-token commits can only help completions.
        assert!(r.completed >= none.completed);
        // Invalid spec configs surface the typed error through the
        // cluster validation chain.
        let bad = ClusterConfig {
            spec: Some(SpecConfig {
                acceptance_rate: 2.0,
                ..SpecConfig::default()
            }),
            ..smoke_cfg()
        };
        assert!(matches!(
            simulate_cluster(&spec, &bad, None).unwrap_err(),
            SpinferError::InvalidSpec { .. }
        ));
    }

    #[test]
    fn ladder_steps_through_precision_before_abandoning_the_format() {
        let spec = GpuSpec::rtx4090();
        let cfg = smoke_cfg();
        let fallback = cfg.degradation.resolve_fallback().unwrap();
        let mut sim = Sim::new(&spec, &cfg, ClusterFaultPlan::default(), fallback, None);
        // The INT8 rung's KV cap is pre-sized alongside the primary's.
        assert!(sim.caps.contains_key(&Framework::SpInferInt8));
        let (fw0, b0) = sim.effective(0);
        assert_eq!(fw0, Framework::SpInfer);
        sim.replicas[0].level = 1;
        let (fw1, b1) = sim.effective(0);
        assert_eq!(fw1, Framework::SpInfer, "rung 1 only shrinks the batch");
        assert!(b1 <= b0);
        sim.replicas[0].level = 2;
        let (fw2, _) = sim.effective(0);
        assert_eq!(fw2, Framework::SpInferInt8, "rung 2 drops the payload");
        sim.replicas[0].level = 3;
        let (fw3, _) = sim.effective(0);
        assert_eq!(
            fw3,
            Framework::FasterTransformer,
            "rung 3 abandons the sparse format"
        );
        // The ladder tops out at the reject rung.
        sim.replicas[0].level = 4;
        sim.escalate(0, 0.0);
        assert_eq!(sim.replicas[0].level, 4);
    }

    #[test]
    fn int8_rung_can_be_opted_out() {
        let spec = GpuSpec::rtx4090();
        let cfg = ClusterConfig {
            degradation: DegradationPolicy {
                int8_precision: false,
                ..DegradationPolicy::default()
            },
            ..smoke_cfg()
        };
        let fallback = cfg.degradation.resolve_fallback().unwrap();
        let mut sim = Sim::new(&spec, &cfg, ClusterFaultPlan::default(), fallback, None);
        assert!(!sim.caps.contains_key(&Framework::SpInferInt8));
        sim.replicas[0].level = 2;
        let (fw2, _) = sim.effective(0);
        assert_eq!(fw2, Framework::SpInfer, "rung 2 is a no-op when opted out");
    }

    #[test]
    fn crashes_fire_and_requests_survive_via_retry() {
        let spec = GpuSpec::rtx4090();
        let cfg = ClusterConfig {
            duration_sec: 20.0,
            ..smoke_cfg()
        };
        let plan = ClusterFaultPlan {
            seed: 42,
            crash_rate: 0.05,
            recovery_sec: 1.0,
            ..ClusterFaultPlan::default()
        };
        let r = simulate_cluster(&spec, &cfg, Some(&plan)).unwrap();
        assert!(r.crashes > 0, "plan never fired: {r:?}");
        assert!(r.retries > 0, "crash purge must route through retry");
        assert!(r.goodput_rps > 0.0, "fleet must keep serving: {r:?}");
    }
}
