//! Site-keyed fleet fault injection.
//!
//! Extends the kernel-level scheme in [`gpu_sim::fault`] — every
//! decision is a pure hash of `(seed, salt, site key)` with no mutable
//! RNG state — up to fleet granularity: replica crashes, slow-node
//! degradation, and transient launch failures. Because decisions are
//! stateless, the same seed produces the same fault schedule regardless
//! of host thread count or event interleaving, which is what lets the
//! chaos determinism gates compare byte-identical traces across
//! `--jobs 1/2/8`.

use gpu_sim::fault::{site_fires, site_u01};

/// Distinct salts per fleet fault site, disjoint from the kernel-level
/// salts in `gpu_sim::fault` so a shared seed never correlates a bit
/// flip with a crash.
const SALT_CRASH: u64 = 0xa076_1d64_78bd_642f;
const SALT_SLOW: u64 = 0xe703_7ed1_a0b4_28db;
const SALT_LAUNCH: u64 = 0x8ebc_6af0_9c88_c6e3;
const SALT_JITTER: u64 = 0x5896_27f0_8c7e_f4d1;

/// Packs a (replica, sequence) pair into one site key. Replica counts
/// are tiny and sequence numbers bounded by the simulation horizon, so
/// a 32/32 split never collides.
fn site_key(replica: usize, seq: u64) -> u64 {
    ((replica as u64) << 32) | (seq & 0xffff_ffff)
}

/// A seeded fleet fault schedule. The default has every rate at zero:
/// an armed check short-circuits and the cluster runs fault-free,
/// byte-identical to a build without this module.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterFaultPlan {
    /// Root seed; the only source of randomness.
    pub seed: u64,
    /// Per-step probability that a replica crashes at the step boundary,
    /// losing its running batch and queue.
    pub crash_rate: f64,
    /// Downtime after a crash before the replica rejoins the fleet.
    pub recovery_sec: f64,
    /// Per-step probability that a step runs degraded (thermal
    /// throttling, a noisy neighbour, a failing NVLink lane).
    pub slow_rate: f64,
    /// Duration multiplier applied to slow steps (`>= 1`).
    pub slow_factor: f64,
    /// Per-launch probability that a kernel launch fails transiently and
    /// must be retried after a relaunch penalty.
    pub launch_fail_rate: f64,
}

impl Default for ClusterFaultPlan {
    fn default() -> Self {
        ClusterFaultPlan {
            seed: 0,
            crash_rate: 0.0,
            recovery_sec: 1.0,
            slow_rate: 0.0,
            slow_factor: 2.0,
            launch_fail_rate: 0.0,
        }
    }
}

impl ClusterFaultPlan {
    /// True when any fault site can fire.
    pub fn armed(&self) -> bool {
        self.crash_rate > 0.0 || self.slow_rate > 0.0 || self.launch_fail_rate > 0.0
    }

    /// Does `replica` crash at the end of its `tick`-th step?
    pub fn crashes(&self, replica: usize, tick: u64) -> bool {
        site_fires(
            self.seed,
            self.crash_rate,
            SALT_CRASH,
            site_key(replica, tick),
        )
    }

    /// Does `replica`'s `tick`-th step run slow?
    pub fn slow(&self, replica: usize, tick: u64) -> bool {
        site_fires(
            self.seed,
            self.slow_rate,
            SALT_SLOW,
            site_key(replica, tick),
        )
    }

    /// Does `replica`'s `launch`-th kernel launch fail transiently?
    pub fn launch_fails(&self, replica: usize, launch: u64) -> bool {
        site_fires(
            self.seed,
            self.launch_fail_rate,
            SALT_LAUNCH,
            site_key(replica, launch),
        )
    }

    /// Deterministic uniform draw in `[0, 1)` for backoff jitter, keyed
    /// on a request's identity and attempt number so every retry of
    /// every request jitters independently but reproducibly.
    pub fn jitter_u01(seed: u64, request_id: u64, attempt: u32) -> f64 {
        site_u01(
            seed,
            SALT_JITTER,
            request_id
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(u64::from(attempt)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fire() {
        let plan = ClusterFaultPlan::default();
        assert!(!plan.armed());
        for r in 0..4 {
            for t in 0..512 {
                assert!(!plan.crashes(r, t));
                assert!(!plan.slow(r, t));
                assert!(!plan.launch_fails(r, t));
            }
        }
    }

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let a = ClusterFaultPlan {
            seed: 7,
            crash_rate: 0.1,
            slow_rate: 0.1,
            launch_fail_rate: 0.1,
            ..ClusterFaultPlan::default()
        };
        let b = ClusterFaultPlan { seed: 8, ..a };
        // Purity: the same (seed, site) always answers the same.
        for t in 0..256 {
            assert_eq!(a.crashes(1, t), a.crashes(1, t));
        }
        // Seed sensitivity: a different seed reshuffles the schedule.
        let fires_a: Vec<bool> = (0..4096).map(|t| a.crashes(0, t)).collect();
        let fires_b: Vec<bool> = (0..4096).map(|t| b.crashes(0, t)).collect();
        assert_ne!(fires_a, fires_b);
        // Rate sanity: ~10% of sites fire, loosely bounded.
        let n = fires_a.iter().filter(|&&f| f).count();
        assert!((200..=700).contains(&n), "crash sites fired: {n}");
    }

    #[test]
    fn sites_are_independent_per_replica_and_kind() {
        let plan = ClusterFaultPlan {
            seed: 3,
            crash_rate: 0.5,
            slow_rate: 0.5,
            launch_fail_rate: 0.5,
            ..ClusterFaultPlan::default()
        };
        let r0: Vec<bool> = (0..512).map(|t| plan.crashes(0, t)).collect();
        let r1: Vec<bool> = (0..512).map(|t| plan.crashes(1, t)).collect();
        let s0: Vec<bool> = (0..512).map(|t| plan.slow(0, t)).collect();
        assert_ne!(r0, r1, "replicas share a crash schedule");
        assert_ne!(r0, s0, "crash and slow sites are correlated");
    }

    #[test]
    fn jitter_is_unit_interval_and_stable() {
        for req in 0..64u64 {
            for attempt in 0..8u32 {
                let j = ClusterFaultPlan::jitter_u01(11, req, attempt);
                assert!((0.0..1.0).contains(&j));
                assert_eq!(j, ClusterFaultPlan::jitter_u01(11, req, attempt));
            }
        }
        assert_ne!(
            ClusterFaultPlan::jitter_u01(11, 0, 1),
            ClusterFaultPlan::jitter_u01(11, 0, 2)
        );
    }
}
