//! GPU memory footprint model and OOM detection.
//!
//! The paper's end-to-end memory claims (Figure 13/14 OOM entries, the
//! 14.4 GB vs 27.4 GB OPT-13B comparison) come down to four components
//! per GPU: weights (format-dependent), KV cache (grows with
//! `batch × total_len`), activation workspace, and runtime overhead.

use crate::config::ModelConfig;
use crate::frameworks::Framework;
use gpu_sim::spec::GpuSpec;

/// Per-GPU memory footprint in bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryReport {
    /// Transformer linear weights (format-dependent).
    pub weights: u64,
    /// Embedding + LM head (kept dense by every framework).
    pub embeddings: u64,
    /// KV cache at full output length.
    pub kv_cache: u64,
    /// Activation workspace.
    pub activations: u64,
    /// CUDA context + framework runtime.
    pub runtime: u64,
}

/// CUDA context + cuBLAS/cuDNN workspaces + framework runtime per GPU.
const RUNTIME_OVERHEAD: u64 = 900 << 20;

impl MemoryReport {
    /// Total per-GPU bytes.
    pub fn total(&self) -> u64 {
        self.weights + self.embeddings + self.kv_cache + self.activations + self.runtime
    }

    /// Total in GiB.
    pub fn total_gib(&self) -> f64 {
        self.total() as f64 / (1u64 << 30) as f64
    }

    /// Whether this footprint exceeds the device's capacity.
    pub fn is_oom(&self, spec: &GpuSpec) -> bool {
        self.total() > spec.memory_capacity as u64
    }
}

/// Computes the per-GPU footprint for a model served by `framework` at
/// `sparsity`, tensor-parallel over `tp` GPUs, with `batch` sequences of
/// up to `total_len` tokens.
pub fn footprint(
    model: &ModelConfig,
    framework: Framework,
    sparsity: f64,
    tp: usize,
    batch: usize,
    total_len: usize,
) -> MemoryReport {
    assert!(tp >= 1);
    let s = if framework.is_sparse() { sparsity } else { 0.0 };
    let mut weights = 0u64;
    for mat in model.layer_matrices() {
        // Column-split: each GPU stores m/tp rows of the matrix.
        let per = framework.weight_bytes(mat.m.div_ceil(tp), mat.k, s) as u64;
        weights += per * mat.memory_instances as u64 * model.layers as u64;
    }
    let embeddings = (2 * model.vocab * model.hidden * 2 / tp) as u64;
    let kv_cache =
        (2 * model.layers * model.kv_heads * model.head_dim() * batch * total_len * 2 / tp) as u64;
    // Workspace: a few activation-sized buffers plus the split-K
    // reduction workspace for the widest layer.
    let widest_m = model
        .layer_matrices()
        .iter()
        .map(|m| m.m)
        .max()
        .unwrap_or(model.hidden);
    let activations = (8 * batch * model.hidden * 2 + widest_m / tp * batch * 4 * 4) as u64;
    MemoryReport {
        weights,
        embeddings,
        kv_cache,
        activations,
        runtime: RUNTIME_OVERHEAD,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt13b_dense_matches_paper_scale() {
        // Paper: OPT-13B dense at BS=16, len 256 needs ~27.4 GB.
        let r = footprint(
            &ModelConfig::opt_13b(),
            Framework::FasterTransformer,
            0.0,
            1,
            16,
            256,
        );
        let gib = r.total_gib();
        assert!((gib - 27.4).abs() < 3.5, "dense OPT-13B: {gib} GiB");
    }

    #[test]
    fn opt13b_spinfer_60_matches_paper_scale() {
        // Paper: SpInfer at 60% sparsity needs ~14.4 GB (47.5% less).
        let dense = footprint(
            &ModelConfig::opt_13b(),
            Framework::FasterTransformer,
            0.0,
            1,
            16,
            256,
        );
        let sp = footprint(&ModelConfig::opt_13b(), Framework::SpInfer, 0.6, 1, 16, 256);
        let gib = sp.total_gib();
        assert!((gib - 14.4).abs() < 3.0, "SpInfer OPT-13B: {gib} GiB");
        let reduction = 1.0 - sp.total() as f64 / dense.total() as f64;
        assert!((reduction - 0.475).abs() < 0.12, "reduction {reduction}");
    }

    #[test]
    fn dense_opt13b_oom_on_single_4090() {
        let spec = GpuSpec::rtx4090();
        let dense = footprint(
            &ModelConfig::opt_13b(),
            Framework::FasterTransformer,
            0.0,
            1,
            8,
            256,
        );
        assert!(dense.is_oom(&spec), "dense 13B cannot fit 24 GB");
        let sp = footprint(&ModelConfig::opt_13b(), Framework::SpInfer, 0.6, 1, 8, 256);
        assert!(!sp.is_oom(&spec), "SpInfer 13B fits one 4090");
    }

    #[test]
    fn flash_llm_oom_where_spinfer_fits() {
        // Paper: OPT-13B, 1×4090, BS=8: SpInfer reaches 1024 output
        // tokens; Flash-LLM is limited to 256.
        let spec = GpuSpec::rtx4090();
        let fl = footprint(
            &ModelConfig::opt_13b(),
            Framework::FlashLlm,
            0.6,
            1,
            8,
            64 + 1024,
        );
        let sp = footprint(
            &ModelConfig::opt_13b(),
            Framework::SpInfer,
            0.6,
            1,
            8,
            64 + 1024,
        );
        assert!(
            fl.is_oom(&spec),
            "Flash-LLM at 1024 tokens: {} GiB",
            fl.total_gib()
        );
        assert!(
            !sp.is_oom(&spec),
            "SpInfer at 1024 tokens: {} GiB",
            sp.total_gib()
        );
    }

    #[test]
    fn tensor_parallel_divides_weights_and_kv() {
        let one = footprint(&ModelConfig::opt_30b(), Framework::SpInfer, 0.6, 1, 16, 256);
        let two = footprint(&ModelConfig::opt_30b(), Framework::SpInfer, 0.6, 2, 16, 256);
        let ratio = two.weights as f64 / one.weights as f64;
        assert!((ratio - 0.5).abs() < 0.05, "weight split ratio {ratio}");
        assert_eq!(two.kv_cache * 2, one.kv_cache);
    }

    #[test]
    fn kv_cache_scales_with_batch_and_length() {
        let a = footprint(&ModelConfig::opt_13b(), Framework::SpInfer, 0.6, 1, 8, 128);
        let b = footprint(&ModelConfig::opt_13b(), Framework::SpInfer, 0.6, 1, 16, 256);
        assert_eq!(b.kv_cache, 4 * a.kv_cache);
    }
}
