//! Deterministic token-tree topology for speculative decoding.
//!
//! A [`TreeShape`] names a family of candidate trees (branching width,
//! maximum depth, node budget); [`TokenTree`] materialises the concrete
//! topology by breadth-first expansion under the budget. The tree is a
//! *shape*, not token content: the simulation prices drafting, wide-N
//! verification, and KV traffic off the topology alone, exactly as the
//! serving cost model prices decode steps off batch and context sizes.
//!
//! KV attribution is topology-aware (SpecInfer-style tree attention):
//! the shared prefix is read once per verify pass, and each candidate
//! node additionally touches only its own ancestor chain — not the
//! whole tree — so a deep chain and a wide bush with the same node
//! count cost differently, as they should.

use spinfer_core::SpinferError;

/// Upper bound on a shape's node budget: a verify pass folds
/// `batch × (1 + nodes)` tokens into one launch, and budgets beyond
/// this stop resembling any deployable speculation config.
pub const MAX_TREE_BUDGET: usize = 1024;

/// A candidate-tree family: branching width per node, maximum depth,
/// and a total node budget that truncates breadth-first expansion.
///
/// Any zero field denotes the *degenerate* shape — an empty tree, under
/// which speculative decode collapses bit-for-bit onto the incremental
/// path (pinned by a test in `tests/spec.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeShape {
    /// Children proposed per accepted node.
    pub width: usize,
    /// Maximum tree depth (tokens of lookahead).
    pub depth: usize,
    /// Total candidate-node budget across all levels.
    pub budget: usize,
}

impl TreeShape {
    /// A width/depth shape with `budget` capping the node count.
    pub fn new(width: usize, depth: usize, budget: usize) -> Self {
        TreeShape {
            width,
            depth,
            budget,
        }
    }

    /// A single speculative chain of `depth` tokens (classic
    /// draft-then-verify without branching).
    pub fn chain(depth: usize) -> Self {
        TreeShape::new(1, depth, depth)
    }

    /// The empty shape: no candidates, no drafting, no rollback.
    pub fn degenerate() -> Self {
        TreeShape::new(0, 0, 0)
    }

    /// Compact label used in CLI tables and metric keys: `w2d3b8`.
    pub fn label(&self) -> String {
        format!("w{}d{}b{}", self.width, self.depth, self.budget)
    }

    /// Parses a [`Self::label`]-style string: `w2d3b8`, or `w2d3` with
    /// the budget defaulting to the full `width^1 + … + width^depth`
    /// expansion (saturating, clamped to [`MAX_TREE_BUDGET`]).
    pub fn parse(s: &str) -> Option<TreeShape> {
        let rest = s.strip_prefix('w')?;
        let d_at = rest.find('d')?;
        let width: usize = rest[..d_at].parse().ok()?;
        let rest = &rest[d_at + 1..];
        let (depth, budget) = match rest.find('b') {
            Some(b_at) => (rest[..b_at].parse().ok()?, rest[b_at + 1..].parse().ok()?),
            None => {
                let depth: usize = rest.parse().ok()?;
                let mut budget = 0usize;
                let mut level = 1usize;
                for _ in 0..depth {
                    level = level.saturating_mul(width);
                    budget = budget.saturating_add(level);
                }
                (depth, budget.min(MAX_TREE_BUDGET))
            }
        };
        Some(TreeShape::new(width, depth, budget))
    }

    /// Config-time validation: the budget must stay within
    /// [`MAX_TREE_BUDGET`] so a verify launch cannot be asked to fold an
    /// implausible candidate count.
    pub fn validate(&self) -> Result<(), SpinferError> {
        if self.budget > MAX_TREE_BUDGET {
            return Err(SpinferError::InvalidSpec {
                reason: format!(
                    "tree budget {} exceeds the maximum of {MAX_TREE_BUDGET}",
                    self.budget
                ),
            });
        }
        Ok(())
    }

    /// Materialises the concrete topology under the node budget.
    pub fn build(&self) -> TokenTree {
        let mut levels = Vec::new();
        let mut frontier = 1usize;
        let mut remaining = self.budget;
        for _ in 0..self.depth {
            let count = frontier.saturating_mul(self.width).min(remaining);
            if count == 0 {
                break;
            }
            levels.push(count);
            remaining -= count;
            frontier = count;
        }
        let nodes = levels.iter().sum();
        let depth_sum = levels.iter().enumerate().map(|(i, &c)| (i + 1) * c).sum();
        TokenTree {
            shape: *self,
            levels,
            nodes,
            depth_sum,
        }
    }
}

/// A materialised candidate tree: per-level node counts from
/// breadth-first expansion of a [`TreeShape`] under its budget.
///
/// Level `d` (1-based) holds the candidate tokens `d` positions past
/// the last committed token. The leftmost root-to-leaf chain always
/// exists, so the maximum acceptable prefix length equals
/// [`Self::path_depth`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TokenTree {
    shape: TreeShape,
    levels: Vec<usize>,
    nodes: usize,
    depth_sum: usize,
}

impl TokenTree {
    /// The shape this tree was built from.
    pub fn shape(&self) -> TreeShape {
        self.shape
    }

    /// Total candidate nodes across all levels.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// True for the degenerate (empty) tree.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Number of non-empty levels — the deepest acceptable prefix.
    pub fn path_depth(&self) -> usize {
        self.levels.len()
    }

    /// Candidate nodes at 1-based level `d` (0 past the last level).
    pub fn level_count(&self, d: usize) -> usize {
        if d == 0 {
            return 0;
        }
        self.levels.get(d - 1).copied().unwrap_or(0)
    }

    /// Candidates competing to extend the accepted prefix at level `d`:
    /// the children of the one accepted node at level `d-1`, i.e. at
    /// most `width` of them, fewer if the budget truncated the level.
    pub fn candidates_at(&self, d: usize) -> usize {
        self.level_count(d).min(self.shape.width)
    }

    /// Draft-model frontier entering level `d`: the nodes whose
    /// children populate that level (1 at the root).
    pub fn frontier_at(&self, d: usize) -> usize {
        if d <= 1 {
            1
        } else {
            self.level_count(d - 1)
        }
    }

    /// Σ over nodes of their ancestor-chain length (self included):
    /// `Σ_d d · level_count(d)` — the tree-local KV slots a
    /// topology-aware verify pass touches.
    pub fn depth_sum(&self) -> usize {
        self.depth_sum
    }

    /// Tokens one speculative request folds into the wide-N verify
    /// launch: the last committed token (what incremental decode would
    /// feed) plus every candidate node. Exactly 1 for the empty tree.
    pub fn verify_tokens_per_request(&self) -> usize {
        1 + self.nodes
    }

    /// KV context attributed to one speculative request's verify pass,
    /// given the `base` context an incremental step would read
    /// (prompt + generated + current token): the shared prefix is read
    /// once, and each candidate adds only its ancestor chain. Equals
    /// `base` exactly for the empty tree.
    pub fn attributed_ctx(&self, base: usize) -> usize {
        base + self.depth_sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_expansion_respects_width_depth_and_budget() {
        // w2d3 unbudgeted would be [2, 4, 8]; budget 8 truncates to
        // [2, 4, 2].
        let t = TreeShape::new(2, 3, 8).build();
        assert_eq!(
            (1..=3).map(|d| t.level_count(d)).collect::<Vec<_>>(),
            vec![2, 4, 2]
        );
        assert_eq!(t.nodes(), 8);
        assert_eq!(t.path_depth(), 3);
        // depth_sum = 1*2 + 2*4 + 3*2 = 16.
        assert_eq!(t.depth_sum(), 16);
        assert_eq!(t.verify_tokens_per_request(), 9);
        assert_eq!(t.attributed_ctx(100), 116);
        // Candidates per level are width-capped; frontiers lag a level.
        assert_eq!(t.candidates_at(1), 2);
        assert_eq!(t.candidates_at(3), 2);
        assert_eq!(t.frontier_at(1), 1);
        assert_eq!(t.frontier_at(3), 4);
    }

    #[test]
    fn chains_and_degenerate_shapes() {
        let chain = TreeShape::chain(4).build();
        assert_eq!(chain.nodes(), 4);
        assert_eq!(chain.path_depth(), 4);
        assert_eq!(chain.depth_sum(), 1 + 2 + 3 + 4);
        assert!((1..=4).all(|d| chain.candidates_at(d) == 1));

        for shape in [
            TreeShape::degenerate(),
            TreeShape::new(0, 3, 8),
            TreeShape::new(2, 0, 8),
            TreeShape::new(2, 3, 0),
        ] {
            let t = shape.build();
            assert!(t.is_empty(), "{shape:?}");
            assert_eq!(t.path_depth(), 0);
            assert_eq!(t.verify_tokens_per_request(), 1);
            assert_eq!(t.attributed_ctx(321), 321);
        }
    }

    #[test]
    fn labels_round_trip_and_depth_defaults_budget() {
        let s = TreeShape::new(2, 3, 8);
        assert_eq!(s.label(), "w2d3b8");
        assert_eq!(TreeShape::parse("w2d3b8"), Some(s));
        // Without a budget the full expansion is implied: 2+4+8 = 14.
        assert_eq!(TreeShape::parse("w2d3"), Some(TreeShape::new(2, 3, 14)));
        assert_eq!(TreeShape::parse("w1d4"), Some(TreeShape::chain(4)));
        // Implied budgets clamp instead of overflowing.
        assert_eq!(
            TreeShape::parse("w4d10").map(|s| s.budget),
            Some(MAX_TREE_BUDGET)
        );
        for bad in ["", "w2", "2d3", "wxdy", "w2d3bz"] {
            assert_eq!(TreeShape::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn budget_validation_is_typed() {
        assert!(TreeShape::new(2, 3, MAX_TREE_BUDGET).validate().is_ok());
        let err = TreeShape::new(2, 64, MAX_TREE_BUDGET + 1)
            .validate()
            .unwrap_err();
        assert!(matches!(err, SpinferError::InvalidSpec { .. }));
    }
}
