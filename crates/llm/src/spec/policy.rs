//! Site-hashed acceptance policy for speculative decoding.
//!
//! Whether the target model accepts a drafted token is a *content*
//! question the simulation cannot answer, so it is modelled the way the
//! fleet layer models faults ([`crate::cluster::ClusterFaultPlan`]):
//! every decision is a pure hash of `(seed, salt, site key)` with no
//! mutable RNG state. The same seed therefore produces the same
//! accept/reject schedule at any host job count and under any event
//! interleaving — which is what lets the CI gate diff spec metrics and
//! traces byte-for-byte across `--jobs 1/2/8`.

use gpu_sim::fault::site_u01;

use super::tree::TokenTree;

/// Salt for per-level acceptance draws, disjoint from every
/// `gpu_sim::fault` and `cluster::fault` salt so a shared seed never
/// correlates an accepted token with a crash or a bit flip.
const SALT_ACCEPT: u64 = 0x3c79_ac49_2ba7_b653;

/// Salt for the per-request speculative-assignment draw (mixed
/// spec/non-spec batches).
const SALT_SPECULATE: u64 = 0x51fd_36c2_0d4a_8b17;

/// Weyl increment mixing request identity into site keys (same constant
/// the retry-jitter site uses).
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// One acceptance draw site per (request, verify step, tree level).
fn accept_site(request: u64, step: u64, level: usize) -> u64 {
    request
        .wrapping_mul(GOLDEN)
        .wrapping_add(step)
        .rotate_left(21)
        .wrapping_add(level as u64)
}

/// Per-token draft quality: the probability that any single drafted
/// candidate matches what the target model would have sampled.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AcceptanceModel {
    /// Per-candidate acceptance probability in `[0, 1]`.
    pub rate: f64,
}

impl AcceptanceModel {
    /// A model accepting each candidate with probability `rate`.
    pub fn new(rate: f64) -> Self {
        AcceptanceModel { rate }
    }

    /// Probability that *some* candidate at a level with `candidates`
    /// siblings matches the target: `1 - (1 - rate)^candidates`.
    /// Monotone in both `rate` and `candidates`.
    pub fn level_accept_prob(&self, candidates: usize) -> f64 {
        if candidates == 0 {
            return 0.0;
        }
        1.0 - (1.0 - self.rate).powi(candidates as i32)
    }

    /// Length of the accepted prefix for one verify step: levels are
    /// tried root-down, and the first level whose draw misses ends the
    /// prefix (tree acceptance is consecutive by construction — a
    /// candidate deeper than a rejected ancestor is unreachable).
    ///
    /// Pure in `(seed, request, step)`; for a fixed site the result is
    /// monotone non-decreasing in [`Self::rate`], because each level's
    /// uniform draw is fixed while its threshold only grows (pinned by
    /// proptests in `tests/spec.rs`).
    pub fn accepted_len(&self, seed: u64, request: u64, step: u64, tree: &TokenTree) -> usize {
        for d in 1..=tree.path_depth() {
            let p = self.level_accept_prob(tree.candidates_at(d));
            if site_u01(seed, SALT_ACCEPT, accept_site(request, step, d)) >= p {
                return d - 1;
            }
        }
        tree.path_depth()
    }

    /// Does `request` run speculatively under a `share`-speculative
    /// mixed batch? Pure per (seed, request); `share >= 1` always
    /// speculates (the draw lives in `[0, 1)`), `share <= 0` never.
    pub fn speculates(seed: u64, share: f64, request: u64) -> bool {
        site_u01(seed, SALT_SPECULATE, request.wrapping_mul(GOLDEN)) < share
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tree::TreeShape;

    #[test]
    fn rate_extremes_pin_the_prefix() {
        let tree = TreeShape::new(2, 3, 8).build();
        for req in 0..64u64 {
            for step in 0..16u64 {
                assert_eq!(
                    AcceptanceModel::new(0.0).accepted_len(7, req, step, &tree),
                    0
                );
                assert_eq!(
                    AcceptanceModel::new(1.0).accepted_len(7, req, step, &tree),
                    tree.path_depth()
                );
            }
        }
    }

    #[test]
    fn level_probability_is_monotone_and_bounded() {
        let m = AcceptanceModel::new(0.6);
        assert_eq!(m.level_accept_prob(0), 0.0);
        let mut prev = 0.0;
        for c in 1..=8 {
            let p = m.level_accept_prob(c);
            assert!(p > prev && p < 1.0, "c={c} p={p}");
            prev = p;
        }
        // Two candidates at 0.6 each: 1 - 0.4^2 = 0.84.
        assert!((m.level_accept_prob(2) - 0.84).abs() < 1e-12);
    }

    #[test]
    fn draws_are_pure_and_site_independent() {
        let tree = TreeShape::new(2, 4, 32).build();
        let m = AcceptanceModel::new(0.5);
        // Purity.
        for req in 0..32u64 {
            assert_eq!(
                m.accepted_len(11, req, 3, &tree),
                m.accepted_len(11, req, 3, &tree)
            );
        }
        // Different requests and steps reshuffle the schedule.
        let by_req: Vec<usize> = (0..256).map(|r| m.accepted_len(11, r, 0, &tree)).collect();
        let by_step: Vec<usize> = (0..256).map(|s| m.accepted_len(11, 0, s, &tree)).collect();
        assert!(by_req.iter().any(|&l| l != by_req[0]));
        assert_ne!(by_req, by_step);
        // Mean accepted length lands near the analytic expectation
        // (levels [2,4,2] at rate 0.5 → p = .75/.9375/.75,
        // E[L] = .75 + .75·.9375 + .75·.9375·.75 ≈ 1.98).
        let mean = by_req.iter().sum::<usize>() as f64 / by_req.len() as f64;
        assert!((1.7..=2.3).contains(&mean), "mean accepted {mean}");
    }

    #[test]
    fn speculation_share_extremes_and_determinism() {
        for req in 0..128u64 {
            assert!(AcceptanceModel::speculates(5, 1.0, req));
            assert!(!AcceptanceModel::speculates(5, 0.0, req));
            assert_eq!(
                AcceptanceModel::speculates(5, 0.5, req),
                AcceptanceModel::speculates(5, 0.5, req)
            );
        }
        let half: Vec<bool> = (0..4096)
            .map(|r| AcceptanceModel::speculates(5, 0.5, r))
            .collect();
        let n = half.iter().filter(|&&b| b).count();
        assert!((1600..=2500).contains(&n), "speculative share fired {n}");
    }
}
