//! Draft-model cost model.
//!
//! The draft model is a much smaller network run autoregressively to
//! propose the candidate tree. Rather than instantiate a second model
//! zoo, its per-pass cost is priced as a fraction of the *target*
//! model's linear pass at the same batch width — the standard sizing
//! for speculation drafts (a 125M–1B draft against a 13B–70B target
//! lands around 5–10%) — plus a fixed per-pass launch overhead.
//!
//! Proposing a tree of depth `D` takes `D` draft passes: pass `d` runs
//! the level-`d` frontier through the draft model for every speculative
//! request in the batch. The cost is therefore a pure function of the
//! (framework, speculative-batch, tree) tuple, memoised by the serving
//! loop exactly like the target linear-pass cache.

use gpu_sim::spec::GpuSpec;

use crate::config::ModelConfig;
use crate::engine::linear_pass_sec;
use crate::frameworks::Framework;

use super::tree::TokenTree;

/// Cost profile of the draft model relative to the target model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DraftModel {
    /// Draft linear-pass cost as a fraction of the target's at the same
    /// batch width.
    pub cost_frac: f64,
    /// Fixed overhead per draft expansion pass (launches, sampling,
    /// tree bookkeeping).
    pub pass_overhead_sec: f64,
}

impl Default for DraftModel {
    fn default() -> Self {
        DraftModel {
            cost_frac: 0.08,
            pass_overhead_sec: 2.0e-4,
        }
    }
}

impl DraftModel {
    /// A free draft model — used by the degenerate spec config so the
    /// collapsed path adds exactly `0.0` seconds per step (bitwise
    /// neutral for positive f64 step times).
    pub fn free() -> Self {
        DraftModel {
            cost_frac: 0.0,
            pass_overhead_sec: 0.0,
        }
    }

    /// Candidate-proposal tokens the draft model processes per request
    /// per verify step: one frontier pass per tree level.
    pub fn draft_tokens_per_request(&self, tree: &TokenTree) -> usize {
        (1..=tree.path_depth()).map(|d| tree.frontier_at(d)).sum()
    }

    /// Simulated seconds to propose `tree` for `spec_batch` speculative
    /// requests: one fractional linear pass per level over
    /// `spec_batch × frontier` tokens. Exactly `0.0` when there is
    /// nothing to draft.
    #[allow(clippy::too_many_arguments)]
    pub fn propose_sec(
        &self,
        spec: &GpuSpec,
        model: &ModelConfig,
        framework: Framework,
        sparsity: f64,
        tp: usize,
        spec_batch: usize,
        tree: &TokenTree,
    ) -> f64 {
        if spec_batch == 0 || tree.is_empty() {
            return 0.0;
        }
        let mut t = 0.0;
        for d in 1..=tree.path_depth() {
            let n = spec_batch * tree.frontier_at(d);
            t += self.cost_frac * linear_pass_sec(spec, model, framework, sparsity, tp, n)
                + self.pass_overhead_sec;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tree::TreeShape;

    #[test]
    fn empty_inputs_cost_exactly_zero() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let d = DraftModel::default();
        let tree = TreeShape::new(2, 3, 8).build();
        let empty = TreeShape::degenerate().build();
        assert_eq!(
            d.propose_sec(&spec, &model, Framework::SpInfer, 0.6, 1, 0, &tree),
            0.0
        );
        assert_eq!(
            d.propose_sec(&spec, &model, Framework::SpInfer, 0.6, 1, 8, &empty),
            0.0
        );
        assert_eq!(DraftModel::free().cost_frac, 0.0);
    }

    #[test]
    fn drafting_is_a_small_fraction_of_the_target_pass() {
        let spec = GpuSpec::rtx4090();
        let model = ModelConfig::opt_13b();
        let d = DraftModel::default();
        let tree = TreeShape::new(2, 3, 8).build();
        let draft = d.propose_sec(&spec, &model, Framework::SpInfer, 0.6, 1, 8, &tree);
        let target = linear_pass_sec(&spec, &model, Framework::SpInfer, 0.6, 1, 8);
        assert!(draft > 0.0);
        // Three fractional passes + overhead: well under one target pass.
        assert!(draft < target, "draft {draft} vs target {target}");
        // Deeper trees cost more passes (the budget must grow too —
        // w2d5b8 truncates back to the w2d3b8 topology).
        let deep = TreeShape::new(2, 5, 62).build();
        let draft_deep = d.propose_sec(&spec, &model, Framework::SpInfer, 0.6, 1, 8, &deep);
        assert!(draft_deep > draft);
    }

    #[test]
    fn draft_token_accounting_follows_frontiers() {
        let d = DraftModel::default();
        // w2d3b8 → levels [2,4,2], frontiers [1,2,4] → 7 tokens.
        assert_eq!(
            d.draft_tokens_per_request(&TreeShape::new(2, 3, 8).build()),
            7
        );
        // A chain drafts one token per level.
        assert_eq!(d.draft_tokens_per_request(&TreeShape::chain(4).build()), 4);
        assert_eq!(
            d.draft_tokens_per_request(&TreeShape::degenerate().build()),
            0
        );
    }
}
