//! Speculative decoding with token-tree verification (SpecInfer-style).
//!
//! A small draft model proposes a tree of candidate continuations; the
//! target model verifies *all* candidates of the whole batch in one
//! wide-N pass per layer and commits the longest accepted prefix plus
//! one bonus token. Decode launches widen from `n = batch` to
//! `n = batch × (1 + tree nodes)` — exactly the regime where SpInfer's
//! TCA-BME kernels are most sublinear in `n`, so speculation converts
//! kernel wide-N efficiency into end-to-end tokens/s.
//!
//! The subsystem is deterministic end to end: the tree topology is a
//! pure function of its [`TreeShape`], acceptance decisions are pure
//! seed hashes ([`AcceptanceModel`]), and the serving integration in
//! [`crate::serving::serve_spec_ctx`] mirrors the incremental loop's
//! arithmetic so the degenerate config collapses onto it bit-for-bit.
//!
//! Module layout: [`tree`] (topology + KV attribution), [`draft`]
//! (draft-model cost), [`policy`] (acceptance sampler), [`verify`]
//! (launch planning + commit/rollback outcomes).

pub mod draft;
pub mod policy;
pub mod tree;
pub mod verify;

pub use draft::DraftModel;
pub use policy::AcceptanceModel;
pub use tree::{TokenTree, TreeShape, MAX_TREE_BUDGET};
pub use verify::{plan_step, StepPlan, TreeVerifier, VerifyOutcome};

use spinfer_core::SpinferError;
use spinfer_obs::Registry;

use crate::serving::ServingReport;

/// One speculative-decoding scenario.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecConfig {
    /// Candidate-tree family drafted each verify step.
    pub shape: TreeShape,
    /// Draft-model cost profile.
    pub draft: DraftModel,
    /// Per-candidate acceptance probability in `[0, 1]`.
    pub acceptance_rate: f64,
    /// Fraction of requests that run speculatively (mixed batches);
    /// `1.0` speculates everything.
    pub spec_share: f64,
    /// Seed for acceptance and assignment draws — the only source of
    /// randomness in the subsystem.
    pub seed: u64,
}

impl Default for SpecConfig {
    fn default() -> Self {
        SpecConfig {
            shape: TreeShape::new(2, 3, 8),
            draft: DraftModel::default(),
            acceptance_rate: 0.8,
            spec_share: 1.0,
            seed: 0,
        }
    }
}

impl SpecConfig {
    /// The config under which speculative serving collapses onto the
    /// incremental decode path bit-for-bit: an empty tree, a free
    /// draft, and nothing to accept.
    pub fn degenerate() -> Self {
        SpecConfig {
            shape: TreeShape::degenerate(),
            draft: DraftModel::free(),
            acceptance_rate: 0.0,
            spec_share: 1.0,
            seed: 0,
        }
    }

    /// Config-time validation; every violation is a typed
    /// [`SpinferError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), SpinferError> {
        let invalid = |reason: &str| {
            Err(SpinferError::InvalidSpec {
                reason: reason.to_string(),
            })
        };
        if !(0.0..=1.0).contains(&self.acceptance_rate) {
            return invalid("acceptance_rate must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.spec_share) {
            return invalid("spec_share must be in [0, 1]");
        }
        if !(0.0..=1.0).contains(&self.draft.cost_frac) {
            return invalid("draft.cost_frac must be in [0, 1]");
        }
        if !self.draft.pass_overhead_sec.is_finite() || self.draft.pass_overhead_sec < 0.0 {
            return invalid("draft.pass_overhead_sec must be finite and >= 0");
        }
        self.shape.validate()
    }
}

/// Speculation counters accumulated over one serving run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SpecStats {
    /// Requests admitted speculatively.
    pub spec_requests: u64,
    /// Requests admitted on the incremental path.
    pub plain_requests: u64,
    /// Decode iterations that verified at least one candidate tree.
    pub spec_iterations: u64,
    /// Tokens folded into wide-N decode launches (candidates + current
    /// tokens), across all iterations.
    pub verify_tokens: u64,
    /// Candidate tokens proposed by the draft model and verified.
    pub proposed: u64,
    /// Drafted tokens accepted by the target model.
    pub accepted: u64,
    /// Target-model bonus tokens committed (one per speculative request
    /// per verify step).
    pub bonus: u64,
    /// Candidate KV entries rolled back after rejection.
    pub rolled_back: u64,
    /// Tokens the draft model processed proposing trees.
    pub draft_tokens: u64,
    /// Simulated seconds spent drafting.
    pub draft_sec: f64,
    /// Simulated seconds spent in verify launches (decode iterations).
    pub verify_sec: f64,
}

impl SpecStats {
    /// Fraction of proposed candidates that were accepted (0 when
    /// nothing was proposed).
    pub fn observed_acceptance(&self) -> f64 {
        if self.proposed == 0 {
            0.0
        } else {
            self.accepted as f64 / self.proposed as f64
        }
    }
}

/// Outcome of one speculative serving run: the ordinary serving report
/// (tokens/s, latency, batching) plus the speculation ledger.
#[derive(Clone, Debug)]
pub struct SpecServingReport {
    /// The serving-loop outcome; `tokens_per_sec` and
    /// `tokens_per_iteration` count *committed* tokens, so speedup over
    /// the incremental path reads straight off the report.
    pub serving: ServingReport,
    /// Speculation counters.
    pub stats: SpecStats,
}

impl SpecServingReport {
    /// Mean tokens folded into each decode launch — the wide-N width
    /// speculation buys (equals mean batch for the degenerate config).
    pub fn tokens_per_launch(&self) -> f64 {
        if self.serving.iterations == 0 {
            0.0
        } else {
            self.stats.verify_tokens as f64 / self.serving.iterations as f64
        }
    }

    /// Writes the run into a metrics registry under `prefix` (e.g.
    /// `spec.w2d3b8.r80`): serving gauges, speculation counters, and
    /// the derived acceptance/width gauges.
    pub fn write_metrics(&self, reg: &mut Registry, prefix: &str) {
        let s = &self.serving;
        reg.gauge_set(&format!("{prefix}.tokens_per_sec"), s.tokens_per_sec);
        reg.gauge_set(
            &format!("{prefix}.tokens_per_iteration"),
            s.tokens_per_iteration,
        );
        reg.gauge_set(&format!("{prefix}.throughput_rps"), s.throughput_rps);
        reg.gauge_set(&format!("{prefix}.mean_latency_s"), s.mean_latency_sec);
        reg.gauge_set(&format!("{prefix}.p95_latency_s"), s.p95_latency_sec);
        reg.gauge_set(&format!("{prefix}.mean_batch"), s.mean_batch);
        reg.counter_add(&format!("{prefix}.completed"), s.completed as u64);
        reg.counter_add(&format!("{prefix}.iterations"), s.iterations as u64);
        let t = &self.stats;
        reg.counter_add(&format!("{prefix}.spec_requests"), t.spec_requests);
        reg.counter_add(&format!("{prefix}.plain_requests"), t.plain_requests);
        reg.counter_add(&format!("{prefix}.proposed"), t.proposed);
        reg.counter_add(&format!("{prefix}.accepted"), t.accepted);
        reg.counter_add(&format!("{prefix}.bonus"), t.bonus);
        reg.counter_add(&format!("{prefix}.rolled_back"), t.rolled_back);
        reg.counter_add(&format!("{prefix}.draft_tokens"), t.draft_tokens);
        reg.counter_add(&format!("{prefix}.verify_tokens"), t.verify_tokens);
        reg.gauge_set(
            &format!("{prefix}.acceptance_observed"),
            t.observed_acceptance(),
        );
        reg.gauge_set(
            &format!("{prefix}.tokens_per_launch"),
            self.tokens_per_launch(),
        );
        reg.gauge_set(&format!("{prefix}.draft_sec"), t.draft_sec);
        reg.gauge_set(&format!("{prefix}.verify_sec"), t.verify_sec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_names_the_offending_field() {
        assert!(SpecConfig::default().validate().is_ok());
        assert!(SpecConfig::degenerate().validate().is_ok());
        let cases = [
            (
                SpecConfig {
                    acceptance_rate: 1.5,
                    ..SpecConfig::default()
                },
                "acceptance_rate",
            ),
            (
                SpecConfig {
                    acceptance_rate: f64::NAN,
                    ..SpecConfig::default()
                },
                "acceptance_rate",
            ),
            (
                SpecConfig {
                    spec_share: -0.1,
                    ..SpecConfig::default()
                },
                "spec_share",
            ),
            (
                SpecConfig {
                    draft: DraftModel {
                        cost_frac: 2.0,
                        ..DraftModel::default()
                    },
                    ..SpecConfig::default()
                },
                "cost_frac",
            ),
            (
                SpecConfig {
                    draft: DraftModel {
                        pass_overhead_sec: -1.0,
                        ..DraftModel::default()
                    },
                    ..SpecConfig::default()
                },
                "pass_overhead_sec",
            ),
            (
                SpecConfig {
                    shape: TreeShape::new(2, 64, MAX_TREE_BUDGET + 1),
                    ..SpecConfig::default()
                },
                "budget",
            ),
        ];
        for (cfg, token) in cases {
            match cfg.validate().unwrap_err() {
                SpinferError::InvalidSpec { reason } => {
                    assert!(reason.contains(token), "{reason:?} missing {token:?}");
                }
                other => panic!("expected InvalidSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn stats_derive_acceptance_safely() {
        assert_eq!(SpecStats::default().observed_acceptance(), 0.0);
        let s = SpecStats {
            proposed: 100,
            accepted: 80,
            ..SpecStats::default()
        };
        assert!((s.observed_acceptance() - 0.8).abs() < 1e-12);
    }
}
