//! Tree-verify step planning and acceptance outcomes.
//!
//! One decode iteration of a speculative batch folds *all* candidate
//! tokens of *all* speculative requests — plus the single current token
//! of every non-speculative request — into one wide-N SpMM launch per
//! layer. [`plan_step`] computes that launch's width and the
//! topology-aware KV context the step reads; [`TreeVerifier`] turns the
//! site-hashed acceptance draws into per-request commit/rollback
//! outcomes.
//!
//! The planner's arithmetic deliberately mirrors the incremental decode
//! iteration in [`crate::serving`]: with the degenerate tree every
//! request contributes 1 verify token and `base` context, so the plan
//! — and therefore the priced step time — is bit-identical to the
//! non-speculative path.

use super::policy::AcceptanceModel;
use super::tree::TokenTree;
use super::SpecConfig;

/// One decode iteration's launch plan over a mixed batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepPlan {
    /// Requests in the running batch.
    pub batch: usize,
    /// Of those, requests running speculatively this step.
    pub spec_batch: usize,
    /// Tokens folded into the wide-N verify launch (the GEMM `n`).
    pub verify_tokens: usize,
    /// KV context the step reads, topology-attributed per request.
    pub sum_ctx: usize,
}

/// Plans one decode iteration: `requests` yields, per running request,
/// whether it speculates this step and the `base` context an
/// incremental step would read for it (`input_len + generated + 1`).
pub fn plan_step<I>(requests: I, tree: &TokenTree) -> StepPlan
where
    I: IntoIterator<Item = (bool, usize)>,
{
    let mut plan = StepPlan::default();
    for (speculative, base) in requests {
        plan.batch += 1;
        if speculative && !tree.is_empty() {
            plan.spec_batch += 1;
            plan.verify_tokens += tree.verify_tokens_per_request();
            plan.sum_ctx += tree.attributed_ctx(base);
        } else {
            plan.verify_tokens += 1;
            plan.sum_ctx += base;
        }
    }
    plan
}

/// Outcome of verifying one speculative request for one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Drafted tokens accepted (the consecutive prefix).
    pub accepted: usize,
    /// Tokens committed: the accepted prefix plus the target model's
    /// bonus token from the deepest accepted position.
    pub committed: usize,
    /// Candidate nodes whose KV entries are rolled back.
    pub rolled_back: usize,
}

/// The per-run speculation oracle: tree topology, acceptance sampler,
/// and the speculative-share assignment, all pure in the config's seed.
#[derive(Clone, Debug)]
pub struct TreeVerifier {
    tree: TokenTree,
    acceptance: AcceptanceModel,
    spec_share: f64,
    seed: u64,
}

impl TreeVerifier {
    /// Builds the verifier (and its concrete tree) from a config.
    pub fn new(cfg: &SpecConfig) -> Self {
        TreeVerifier {
            tree: cfg.shape.build(),
            acceptance: AcceptanceModel::new(cfg.acceptance_rate),
            spec_share: cfg.spec_share,
            seed: cfg.seed,
        }
    }

    /// The materialised candidate tree.
    pub fn tree(&self) -> &TokenTree {
        &self.tree
    }

    /// True when speculation can change anything: a non-empty tree and
    /// a positive speculative share.
    pub fn armed(&self) -> bool {
        !self.tree.is_empty() && self.spec_share > 0.0
    }

    /// Does `request` run speculatively? Pure per (seed, request), so
    /// a request keeps its assignment across iterations and replicas.
    pub fn speculates(&self, request: u64) -> bool {
        self.armed() && AcceptanceModel::speculates(self.seed, self.spec_share, request)
    }

    /// Verifies one request's candidate tree at one step. `step` must
    /// uniquely identify the verify site per request (the tokens
    /// generated so far works: it strictly increases). `remaining` is
    /// the tokens the request still needs (`>= 1`); the accepted prefix
    /// is capped so the commit never overruns the request's output
    /// length, and capped-away candidates roll back with the rejects.
    pub fn outcome(&self, request: u64, step: u64, remaining: usize) -> VerifyOutcome {
        let cap = remaining.saturating_sub(1);
        let accepted = self
            .acceptance
            .accepted_len(self.seed, request, step, &self.tree)
            .min(cap);
        VerifyOutcome {
            accepted,
            committed: accepted + 1,
            rolled_back: self.tree.nodes() - accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::tree::TreeShape;

    fn cfg(rate: f64) -> SpecConfig {
        SpecConfig {
            shape: TreeShape::new(2, 3, 8),
            acceptance_rate: rate,
            ..SpecConfig::default()
        }
    }

    #[test]
    fn plan_mixes_speculative_and_plain_requests() {
        let tree = TreeShape::new(2, 3, 8).build();
        let plan = plan_step([(true, 100), (false, 50), (true, 200)], &tree);
        assert_eq!(plan.batch, 3);
        assert_eq!(plan.spec_batch, 2);
        // Spec requests fold 9 tokens each, the plain one folds 1.
        assert_eq!(plan.verify_tokens, 9 + 1 + 9);
        // Spec contexts carry the depth_sum (16) on top of base.
        assert_eq!(plan.sum_ctx, 116 + 50 + 216);
    }

    #[test]
    fn degenerate_plan_is_the_incremental_plan() {
        let empty = TreeShape::degenerate().build();
        let plan = plan_step([(true, 100), (false, 50)], &empty);
        assert_eq!(plan.spec_batch, 0);
        assert_eq!(plan.verify_tokens, 2);
        assert_eq!(plan.sum_ctx, 150);
    }

    #[test]
    fn outcomes_commit_bonus_and_roll_back_rejects() {
        let v = TreeVerifier::new(&cfg(1.0));
        // Full acceptance: 3-deep prefix + bonus, 8 - 3 rolled back.
        let o = v.outcome(1, 0, 100);
        assert_eq!(o.accepted, 3);
        assert_eq!(o.committed, 4);
        assert_eq!(o.rolled_back, 5);

        let v0 = TreeVerifier::new(&cfg(0.0));
        let o0 = v0.outcome(1, 0, 100);
        assert_eq!((o0.accepted, o0.committed, o0.rolled_back), (0, 1, 8));
    }

    #[test]
    fn remaining_tokens_cap_the_commit() {
        let v = TreeVerifier::new(&cfg(1.0));
        // Only 2 tokens left: at most 1 accepted + the bonus.
        let o = v.outcome(1, 0, 2);
        assert_eq!(o.committed, 2);
        assert_eq!(o.rolled_back, 7);
        // Last token: pure bonus, the whole tree rolls back.
        let o1 = v.outcome(1, 0, 1);
        assert_eq!((o1.accepted, o1.committed, o1.rolled_back), (0, 1, 8));
    }

    #[test]
    fn arming_requires_tree_and_share() {
        assert!(TreeVerifier::new(&cfg(0.5)).armed());
        let degenerate = SpecConfig {
            shape: TreeShape::degenerate(),
            ..SpecConfig::default()
        };
        assert!(!TreeVerifier::new(&degenerate).armed());
        let zero_share = SpecConfig {
            spec_share: 0.0,
            ..SpecConfig::default()
        };
        let v = TreeVerifier::new(&zero_share);
        assert!(!v.armed());
        assert!((0..32).all(|r| !v.speculates(r)));
    }
}
