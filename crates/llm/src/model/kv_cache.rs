//! Key/value cache for autoregressive decoding.
//!
//! Stores per-layer, per-head K and V rows in FP16 (as served systems
//! do); appended once per token, read in full by every subsequent
//! attention step.

use gpu_sim::fp16::Half;

/// KV cache for one sequence across all layers.
#[derive(Clone, Debug)]
pub struct KvCache {
    layers: usize,
    kv_heads: usize,
    head_dim: usize,
    capacity: usize,
    len: usize,
    /// `[layer][head]` → `len × head_dim` K rows (flattened FP16).
    keys: Vec<Vec<Half>>,
    /// Same layout for V.
    values: Vec<Vec<Half>>,
}

impl KvCache {
    /// Allocates an empty cache with room for `capacity` positions.
    pub fn new(layers: usize, kv_heads: usize, head_dim: usize, capacity: usize) -> Self {
        let per = layers * kv_heads;
        KvCache {
            layers,
            kv_heads,
            head_dim,
            capacity,
            len: 0,
            keys: vec![Vec::with_capacity(capacity * head_dim); per],
            values: vec![Vec::with_capacity(capacity * head_dim); per],
        }
    }

    /// Current cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no positions are cached.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cache capacity in positions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn slot(&self, layer: usize, head: usize) -> usize {
        debug_assert!(layer < self.layers && head < self.kv_heads);
        layer * self.kv_heads + head
    }

    /// Appends one position's K and V rows for a `(layer, head)`. The
    /// caller appends every layer/head for a position, then calls
    /// [`Self::commit`].
    ///
    /// # Panics
    ///
    /// Panics if the cache is full or the row length is wrong.
    pub fn append(&mut self, layer: usize, head: usize, k_row: &[f32], v_row: &[f32]) {
        assert!(self.len < self.capacity, "KV cache overflow");
        assert_eq!(k_row.len(), self.head_dim);
        assert_eq!(v_row.len(), self.head_dim);
        let s = self.slot(layer, head);
        self.keys[s].extend(k_row.iter().map(|&x| Half::from_f32(x)));
        self.values[s].extend(v_row.iter().map(|&x| Half::from_f32(x)));
    }

    /// Marks one appended position as visible to subsequent reads.
    pub fn commit(&mut self) {
        self.len += 1;
        for s in 0..self.layers * self.kv_heads {
            debug_assert_eq!(self.keys[s].len(), self.len * self.head_dim);
            debug_assert_eq!(self.values[s].len(), self.len * self.head_dim);
        }
    }

    /// K row of `pos` for `(layer, head)` as FP32.
    pub fn key(&self, layer: usize, head: usize, pos: usize) -> Vec<f32> {
        assert!(pos < self.len);
        let s = self.slot(layer, head);
        self.keys[s][pos * self.head_dim..(pos + 1) * self.head_dim]
            .iter()
            .map(|h| h.to_f32())
            .collect()
    }

    /// V row of `pos` for `(layer, head)` as FP32.
    pub fn value(&self, layer: usize, head: usize, pos: usize) -> Vec<f32> {
        assert!(pos < self.len);
        let s = self.slot(layer, head);
        self.values[s][pos * self.head_dim..(pos + 1) * self.head_dim]
            .iter()
            .map(|h| h.to_f32())
            .collect()
    }

    /// Bytes resident (2 B per cached element, K and V).
    pub fn bytes(&self) -> usize {
        2 * 2 * self.layers * self.kv_heads * self.head_dim * self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_commit_read_roundtrip() {
        let mut c = KvCache::new(2, 3, 4, 8);
        assert!(c.is_empty());
        for layer in 0..2 {
            for head in 0..3 {
                let k: Vec<f32> = (0..4).map(|i| (layer * 10 + head + i) as f32).collect();
                let v: Vec<f32> = k.iter().map(|x| -x).collect();
                c.append(layer, head, &k, &v);
            }
        }
        c.commit();
        assert_eq!(c.len(), 1);
        let k = c.key(1, 2, 0);
        assert_eq!(k, vec![12.0, 13.0, 14.0, 15.0]);
        let v = c.value(1, 2, 0);
        assert_eq!(v, vec![-12.0, -13.0, -14.0, -15.0]);
    }

    #[test]
    fn bytes_accounting() {
        let mut c = KvCache::new(1, 1, 4, 8);
        assert_eq!(c.bytes(), 0);
        c.append(0, 0, &[0.0; 4], &[0.0; 4]);
        c.commit();
        assert_eq!(c.bytes(), 2 * 2 * 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut c = KvCache::new(1, 1, 2, 1);
        c.append(0, 0, &[0.0; 2], &[0.0; 2]);
        c.commit();
        c.append(0, 0, &[0.0; 2], &[0.0; 2]);
    }

    #[test]
    fn fp16_quantisation_is_applied() {
        let mut c = KvCache::new(1, 1, 1, 2);
        c.append(0, 0, &[0.1], &[0.1]);
        c.commit();
        // 0.1 is not exactly representable in FP16.
        let k = c.key(0, 0, 0)[0];
        assert!((k - 0.1).abs() < 1e-4);
        assert_ne!(k, 0.1);
    }
}
