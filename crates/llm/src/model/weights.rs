//! Transformer weights for the functional engine, with per-layer pruning
//! and TCA-BME encoding.
//!
//! Weights are randomly initialised at realistic scales (σ ∝ 1/√h). The
//! paper's deployment path — prune every linear layer with Wanda, keep
//! embeddings and the LM head dense — is reproduced by
//! [`TransformerWeights::pruned`].

use crate::config::ModelConfig;
use gpu_sim::matrix::{random_dense, DenseMatrix, ValueDist};
use spinfer_core::SpMMHandle;
use spinfer_pruning::{wanda_prune, Calibration};

/// One decoder layer's parameters (dense form).
#[derive(Clone, Debug)]
pub struct LayerWeights {
    /// Fused QKV projection, `(h + 2·kv) × h`.
    pub qkv: DenseMatrix,
    /// Attention output projection, `h × h`.
    pub attn_out: DenseMatrix,
    /// FFN up (or fused gate+up for SwiGLU), `ffn' × h`.
    pub ffn_up: DenseMatrix,
    /// FFN down, `h × ffn`.
    pub ffn_down: DenseMatrix,
    /// Pre-attention LayerNorm gain.
    pub ln1_gain: Vec<f32>,
    /// Pre-attention LayerNorm bias.
    pub ln1_bias: Vec<f32>,
    /// Pre-FFN LayerNorm gain.
    pub ln2_gain: Vec<f32>,
    /// Pre-FFN LayerNorm bias.
    pub ln2_bias: Vec<f32>,
}

/// Full model parameters (dense form).
#[derive(Clone, Debug)]
pub struct TransformerWeights {
    /// Architecture.
    pub config: ModelConfig,
    /// Token embedding, `vocab × h` (also used as the LM head, tied).
    pub embedding: DenseMatrix,
    /// Decoder layers.
    pub layers: Vec<LayerWeights>,
    /// Final LayerNorm gain.
    pub ln_f_gain: Vec<f32>,
    /// Final LayerNorm bias.
    pub ln_f_bias: Vec<f32>,
}

impl TransformerWeights {
    /// Random initialisation at σ = 1/√h (keeps activations O(1) through
    /// the residual stream).
    pub fn random(config: ModelConfig, seed: u64) -> Self {
        let h = config.hidden;
        let kv = config.kv_heads * config.head_dim();
        let std = 1.0 / (h as f32).sqrt();
        let dist = ValueDist::Normal { std };
        let ffn_out = if config.gated_ffn {
            2 * config.ffn_hidden
        } else {
            config.ffn_hidden
        };
        let mut layers = Vec::with_capacity(config.layers);
        for l in 0..config.layers {
            let s = seed.wrapping_add(1 + l as u64 * 10);
            layers.push(LayerWeights {
                qkv: random_dense(h + 2 * kv, h, dist, s),
                attn_out: random_dense(h, h, dist, s + 1),
                ffn_up: random_dense(ffn_out, h, dist, s + 2),
                ffn_down: random_dense(h, config.ffn_hidden, dist, s + 3),
                ln1_gain: vec![1.0; h],
                ln1_bias: vec![0.0; h],
                ln2_gain: vec![1.0; h],
                ln2_bias: vec![0.0; h],
            });
        }
        TransformerWeights {
            config,
            embedding: random_dense(config.vocab, h, ValueDist::Normal { std: 0.02 }, seed),
            layers,
            ln_f_gain: vec![1.0; h],
            ln_f_bias: vec![0.0; h],
        }
    }

    /// Prunes every linear layer with Wanda at `sparsity` and encodes it
    /// into TCA-BME (embeddings/LM head stay dense, as in the paper).
    pub fn pruned(&self, sparsity: f64, seed: u64) -> SparseTransformerWeights {
        let h = self.config.hidden;
        let calib_h = Calibration::synthetic(h, 32, seed);
        let calib_ffn = Calibration::synthetic(self.config.ffn_hidden, 32, seed + 1);
        let layers = self
            .layers
            .iter()
            .map(|l| SparseLayerWeights {
                qkv: SpMMHandle::encode(&wanda_prune(&l.qkv, &calib_h, sparsity)),
                attn_out: SpMMHandle::encode(&wanda_prune(&l.attn_out, &calib_h, sparsity)),
                ffn_up: SpMMHandle::encode(&wanda_prune(&l.ffn_up, &calib_h, sparsity)),
                ffn_down: SpMMHandle::encode(&wanda_prune(&l.ffn_down, &calib_ffn, sparsity)),
                ln1_gain: l.ln1_gain.clone(),
                ln1_bias: l.ln1_bias.clone(),
                ln2_gain: l.ln2_gain.clone(),
                ln2_bias: l.ln2_bias.clone(),
            })
            .collect();
        SparseTransformerWeights {
            config: self.config,
            embedding: self.embedding.clone(),
            layers,
            ln_f_gain: self.ln_f_gain.clone(),
            ln_f_bias: self.ln_f_bias.clone(),
        }
    }

    /// Total stored bytes of the dense linear weights (excluding
    /// embeddings), for memory comparisons.
    pub fn linear_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.qkv.dense_bytes()
                    + l.attn_out.dense_bytes()
                    + l.ffn_up.dense_bytes()
                    + l.ffn_down.dense_bytes()
            })
            .sum()
    }
}

/// One decoder layer with TCA-BME-encoded linears.
#[derive(Clone, Debug)]
pub struct SparseLayerWeights {
    /// Encoded QKV projection.
    pub qkv: SpMMHandle,
    /// Encoded attention output projection.
    pub attn_out: SpMMHandle,
    /// Encoded FFN up projection.
    pub ffn_up: SpMMHandle,
    /// Encoded FFN down projection.
    pub ffn_down: SpMMHandle,
    /// Pre-attention LayerNorm gain.
    pub ln1_gain: Vec<f32>,
    /// Pre-attention LayerNorm bias.
    pub ln1_bias: Vec<f32>,
    /// Pre-FFN LayerNorm gain.
    pub ln2_gain: Vec<f32>,
    /// Pre-FFN LayerNorm bias.
    pub ln2_bias: Vec<f32>,
}

/// A pruned, encoded model ready for SpInfer-style serving.
#[derive(Clone, Debug)]
pub struct SparseTransformerWeights {
    /// Architecture.
    pub config: ModelConfig,
    /// Dense token embedding / LM head.
    pub embedding: DenseMatrix,
    /// Encoded decoder layers.
    pub layers: Vec<SparseLayerWeights>,
    /// Final LayerNorm gain.
    pub ln_f_gain: Vec<f32>,
    /// Final LayerNorm bias.
    pub ln_f_bias: Vec<f32>,
}

impl SparseTransformerWeights {
    /// Total encoded bytes of the linear weights.
    pub fn linear_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| {
                l.qkv.storage_bytes()
                    + l.attn_out.storage_bytes()
                    + l.ffn_up.storage_bytes()
                    + l.ffn_down.storage_bytes()
            })
            .sum()
    }
}

/// A miniature architecture for functional tests and examples: the full
/// decoder structure at laptop scale.
pub fn tiny_config() -> ModelConfig {
    ModelConfig {
        name: "Tiny-OPT",
        layers: 2,
        hidden: 64,
        heads: 4,
        kv_heads: 4,
        ffn_hidden: 256,
        vocab: 128,
        gated_ffn: false,
        experts: 1,
        active_experts: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_weights_have_expected_shapes() {
        let w = TransformerWeights::random(tiny_config(), 1);
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.layers[0].qkv.rows(), 64 + 2 * 64);
        assert_eq!(w.layers[0].qkv.cols(), 64);
        assert_eq!(w.layers[0].ffn_up.rows(), 256);
        assert_eq!(w.layers[0].ffn_down.cols(), 256);
        assert_eq!(w.embedding.rows(), 128);
    }

    #[test]
    fn pruning_reduces_storage() {
        let w = TransformerWeights::random(tiny_config(), 2);
        let sp = w.pruned(0.6, 3);
        assert!(sp.linear_bytes() < w.linear_bytes());
        // Each layer encoded with the requested sparsity.
        let s = 1.0
            - sp.layers[0].qkv.weights.nnz as f64
                / (sp.layers[0].qkv.weights.m * sp.layers[0].qkv.weights.k) as f64;
        assert!((s - 0.6).abs() < 0.05, "sparsity {s}");
    }

    #[test]
    fn zero_sparsity_pruning_keeps_values() {
        let w = TransformerWeights::random(tiny_config(), 4);
        let sp = w.pruned(0.0, 5);
        assert_eq!(sp.layers[0].qkv.weights.decode(), w.layers[0].qkv);
    }

    #[test]
    fn gated_config_doubles_ffn_up() {
        let mut cfg = tiny_config();
        cfg.gated_ffn = true;
        let w = TransformerWeights::random(cfg, 6);
        assert_eq!(w.layers[0].ffn_up.rows(), 512);
    }
}
