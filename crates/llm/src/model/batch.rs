//! Batched functional decoding.
//!
//! The paper's decode evaluation runs batch sizes 8–32: every sequence
//! advances one token per step and the linear layers see an
//! `h × batch` activation tile. [`BatchGenerator`] reproduces that over
//! the single-sequence [`Generator`](crate::model::forward::Generator)s' machinery: one simulated kernel
//! launch per layer per step for the whole batch (amortising weight
//! reads exactly as the real kernels do), with per-sequence KV caches
//! and greedy sampling.

use crate::model::forward::{ModelRef, SimTelemetry};
use crate::model::kv_cache::KvCache;
use crate::model::ops::{argmax, gelu, layernorm, silu, softmax_inplace, to_half_matrix};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use spinfer_baselines::kernels::CublasGemm;
use spinfer_core::spmm::SpmmKernel;

/// Batched autoregressive generator.
pub struct BatchGenerator<'a> {
    model: ModelRef<'a>,
    spec: GpuSpec,
    caches: Vec<KvCache>,
    /// Telemetry accumulated so far (per-batch kernel launches).
    pub telemetry: SimTelemetry,
}

impl<'a> BatchGenerator<'a> {
    /// Creates a generator for `batch` sequences of up to `max_positions`.
    pub fn new(model: ModelRef<'a>, spec: GpuSpec, batch: usize, max_positions: usize) -> Self {
        assert!(batch >= 1);
        let cfg = model_config(&model);
        let caches = (0..batch)
            .map(|_| KvCache::new(cfg.layers, cfg.kv_heads, cfg.head_dim(), max_positions))
            .collect();
        BatchGenerator {
            model,
            spec,
            caches,
            telemetry: SimTelemetry::default(),
        }
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.caches.len()
    }

    /// Feeds one token per sequence; returns each sequence's next-token
    /// logits.
    ///
    /// # Panics
    ///
    /// Panics on out-of-vocabulary tokens or a full cache.
    pub fn step(&mut self, tokens: &[usize]) -> Vec<Vec<f32>> {
        let b = self.batch();
        assert_eq!(tokens.len(), b, "one token per sequence");
        let cfg = model_config(&self.model);
        let h = cfg.hidden;
        let hd = cfg.head_dim();
        let kv_dim = cfg.kv_heads * hd;
        let group = cfg.heads / cfg.kv_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        // x: per-sequence hidden state.
        let mut x: Vec<Vec<f32>> = tokens
            .iter()
            .map(|&t| {
                assert!(t < cfg.vocab, "token {t} out of vocabulary");
                (0..h)
                    .map(|c| embedding(&self.model).get(t, c).to_f32())
                    .collect()
            })
            .collect();

        let mut normed = vec![vec![0.0f32; h]; b];
        for li in 0..cfg.layers {
            // --- Attention: one batched QKV launch for all sequences ---
            for (xi, ni) in x.iter().zip(normed.iter_mut()) {
                let (g, bias) = ln1(&self.model, li);
                layernorm(xi, g, bias, ni);
            }
            let qkv = self.batched_linear(li, Mat::Qkv, &normed);
            let qkv_rows = h + 2 * kv_dim;

            let mut attn = vec![vec![0.0f32; h]; b];
            for (s, cache) in self.caches.iter_mut().enumerate() {
                let col = |r: usize| qkv[r * b + s];
                let committed = cache.len();
                for head in 0..cfg.kv_heads {
                    let k_row: Vec<f32> = (0..hd).map(|i| col(h + head * hd + i)).collect();
                    let v_row: Vec<f32> =
                        (0..hd).map(|i| col(h + kv_dim + head * hd + i)).collect();
                    cache.append(li, head, &k_row, &v_row);
                }
                let visible = committed + 1;
                for qh in 0..cfg.heads {
                    let kvh = qh / group;
                    let q: Vec<f32> = (0..hd).map(|i| col(qh * hd + i)).collect();
                    let mut scores = Vec::with_capacity(visible);
                    for pos in 0..visible {
                        let krow: Vec<f32> = if pos < committed {
                            cache.key(li, kvh, pos)
                        } else {
                            (0..hd).map(|i| col(h + kvh * hd + i)).collect()
                        };
                        scores.push(q.iter().zip(&krow).map(|(a, c)| a * c).sum::<f32>() * scale);
                    }
                    softmax_inplace(&mut scores);
                    let out = &mut attn[s][qh * hd..(qh + 1) * hd];
                    for (pos, &w) in scores.iter().enumerate() {
                        let vrow: Vec<f32> = if pos < committed {
                            cache.value(li, kvh, pos)
                        } else {
                            (0..hd).map(|i| col(h + kv_dim + kvh * hd + i)).collect()
                        };
                        for (o, v) in out.iter_mut().zip(&vrow) {
                            *o += w * v;
                        }
                    }
                }
            }
            let _ = qkv_rows;

            let proj = self.batched_linear(li, Mat::AttnOut, &attn);
            for (s, xi) in x.iter_mut().enumerate() {
                for (r, v) in xi.iter_mut().enumerate() {
                    *v += proj[r * b + s];
                }
            }

            // --- FFN ---
            for (xi, ni) in x.iter().zip(normed.iter_mut()) {
                let (g, bias) = ln2(&self.model, li);
                layernorm(xi, g, bias, ni);
            }
            let up = self.batched_linear(li, Mat::FfnUp, &normed);
            let ffn = cfg.ffn_hidden;
            let act: Vec<Vec<f32>> = (0..b)
                .map(|s| {
                    if cfg.gated_ffn {
                        (0..ffn)
                            .map(|r| silu(up[r * b + s]) * up[(ffn + r) * b + s])
                            .collect()
                    } else {
                        (0..ffn).map(|r| gelu(up[r * b + s])).collect()
                    }
                })
                .collect();
            let down = self.batched_linear(li, Mat::FfnDown, &act);
            for (s, xi) in x.iter_mut().enumerate() {
                for (r, v) in xi.iter_mut().enumerate() {
                    *v += down[r * b + s];
                }
            }
        }
        for cache in &mut self.caches {
            cache.commit();
        }

        // Final norm + tied LM head, per sequence.
        let (g, bias) = final_ln(&self.model);
        let mut out = Vec::with_capacity(b);
        let mut buf = vec![0.0f32; h];
        for xi in &x {
            layernorm(xi, g, bias, &mut buf);
            let mut logits = vec![0.0f32; cfg.vocab];
            for (t, logit) in logits.iter_mut().enumerate() {
                *logit = (0..h)
                    .map(|c| embedding(&self.model).get(t, c).to_f32() * buf[c])
                    .sum();
            }
            out.push(logits);
        }
        self.telemetry.positions += 1;
        out
    }

    /// Greedy batched generation from one prompt per sequence (all the
    /// same length).
    pub fn generate(&mut self, prompts: &[Vec<usize>], n_new: usize) -> Vec<Vec<usize>> {
        let b = self.batch();
        assert_eq!(prompts.len(), b);
        let plen = prompts[0].len();
        assert!(plen >= 1 && prompts.iter().all(|p| p.len() == plen));
        let mut logits = Vec::new();
        for i in 0..plen {
            let tokens: Vec<usize> = prompts.iter().map(|p| p[i]).collect();
            logits = self.step(&tokens);
        }
        let mut out = vec![Vec::with_capacity(n_new); b];
        for round in 0..n_new {
            let next: Vec<usize> = logits.iter().map(|l| argmax(l)).collect();
            for (o, &t) in out.iter_mut().zip(&next) {
                o.push(t);
            }
            if round + 1 == n_new {
                break;
            }
            logits = self.step(&next);
        }
        out
    }

    /// One batched `W × X` through the simulated kernel, `X` assembled
    /// column-per-sequence; returns row-major `rows(W) × batch` FP32.
    fn batched_linear(&mut self, layer: usize, which: Mat, cols: &[Vec<f32>]) -> Vec<f32> {
        let b = cols.len();
        let k = cols[0].len();
        let mut data = vec![0.0f32; k * b];
        for (s, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                data[r * b + s] = v;
            }
        }
        let xm = to_half_matrix(k, b, &data);
        let run = match (&self.model, which) {
            (ModelRef::Dense(w), _) => {
                let mat = match which {
                    Mat::Qkv => &w.layers[layer].qkv,
                    Mat::AttnOut => &w.layers[layer].attn_out,
                    Mat::FfnUp => &w.layers[layer].ffn_up,
                    Mat::FfnDown => &w.layers[layer].ffn_down,
                };
                CublasGemm::new().run(&self.spec, mat, &xm)
            }
            (ModelRef::Sparse(w), _) => {
                let handle = match which {
                    Mat::Qkv => &w.layers[layer].qkv,
                    Mat::AttnOut => &w.layers[layer].attn_out,
                    Mat::FfnUp => &w.layers[layer].ffn_up,
                    Mat::FfnDown => &w.layers[layer].ffn_down,
                };
                handle.matmul(&self.spec, &xm)
            }
        };
        self.telemetry.linear_sec += run.chain.time_sec();
        self.telemetry.launches += run.chain.launches.len();
        run.output.expect("functional kernels return output")
    }
}

#[derive(Clone, Copy)]
enum Mat {
    Qkv,
    AttnOut,
    FfnUp,
    FfnDown,
}

fn model_config(m: &ModelRef<'_>) -> crate::config::ModelConfig {
    match m {
        ModelRef::Dense(w) => w.config,
        ModelRef::Sparse(w) => w.config,
    }
}

fn embedding<'a>(m: &'a ModelRef<'_>) -> &'a DenseMatrix {
    match m {
        ModelRef::Dense(w) => &w.embedding,
        ModelRef::Sparse(w) => &w.embedding,
    }
}

fn ln1<'a>(m: &'a ModelRef<'_>, layer: usize) -> (&'a [f32], &'a [f32]) {
    match m {
        ModelRef::Dense(w) => (&w.layers[layer].ln1_gain, &w.layers[layer].ln1_bias),
        ModelRef::Sparse(w) => (&w.layers[layer].ln1_gain, &w.layers[layer].ln1_bias),
    }
}

fn ln2<'a>(m: &'a ModelRef<'_>, layer: usize) -> (&'a [f32], &'a [f32]) {
    match m {
        ModelRef::Dense(w) => (&w.layers[layer].ln2_gain, &w.layers[layer].ln2_bias),
        ModelRef::Sparse(w) => (&w.layers[layer].ln2_gain, &w.layers[layer].ln2_bias),
    }
}

fn final_ln<'a>(m: &'a ModelRef<'_>) -> (&'a [f32], &'a [f32]) {
    match m {
        ModelRef::Dense(w) => (&w.ln_f_gain, &w.ln_f_bias),
        ModelRef::Sparse(w) => (&w.ln_f_gain, &w.ln_f_bias),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::forward::Generator;
    use crate::model::weights::{tiny_config, TransformerWeights};

    #[test]
    fn batch_of_one_matches_single_sequence_generator() {
        let w = TransformerWeights::random(tiny_config(), 501);
        let spec = GpuSpec::rtx4090();
        let mut single = Generator::new(ModelRef::Dense(&w), spec.clone(), 16);
        let mut batched = BatchGenerator::new(ModelRef::Dense(&w), spec, 1, 16);
        let ls = single.step(5);
        let lb = batched.step(&[5]);
        for (a, c) in ls.iter().zip(&lb[0]) {
            assert!((a - c).abs() < 1e-3, "single {a} vs batched {c}");
        }
    }

    #[test]
    fn sequences_in_a_batch_are_independent() {
        // Sequence 0's logits must not depend on what sequence 1 decodes.
        let w = TransformerWeights::random(tiny_config(), 502);
        let spec = GpuSpec::rtx4090();
        let mut g1 = BatchGenerator::new(ModelRef::Dense(&w), spec.clone(), 2, 8);
        let a = g1.step(&[3, 7]);
        let mut g2 = BatchGenerator::new(ModelRef::Dense(&w), spec, 2, 8);
        let b = g2.step(&[3, 20]);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert!((x - y).abs() < 1e-4, "cross-sequence leak: {x} vs {y}");
        }
        assert!(a[1].iter().zip(&b[1]).any(|(x, y)| (x - y).abs() > 1e-4));
    }

    #[test]
    fn batched_generate_shapes_and_determinism() {
        let w = TransformerWeights::random(tiny_config(), 503);
        let spec = GpuSpec::rtx4090();
        let prompts = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let mut g = BatchGenerator::new(ModelRef::Dense(&w), spec.clone(), 3, 16);
        let out = g.generate(&prompts, 5);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|o| o.len() == 5));
        let mut g2 = BatchGenerator::new(ModelRef::Dense(&w), spec, 3, 16);
        assert_eq!(out, g2.generate(&prompts, 5));
    }

    #[test]
    fn batching_amortises_simulated_weight_reads() {
        // One batched step launches the same kernels as a single step, so
        // per-sequence simulated linear time must shrink with batch.
        let w = TransformerWeights::random(tiny_config(), 504);
        let spec = GpuSpec::rtx4090();
        let mut b1 = BatchGenerator::new(ModelRef::Dense(&w), spec.clone(), 1, 8);
        b1.step(&[1]);
        let mut b8 = BatchGenerator::new(ModelRef::Dense(&w), spec, 8, 8);
        b8.step(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let per_seq_1 = b1.telemetry.linear_sec;
        let per_seq_8 = b8.telemetry.linear_sec / 8.0;
        assert!(
            per_seq_8 < per_seq_1 * 0.5,
            "batch-8 per-seq {per_seq_8} vs batch-1 {per_seq_1}"
        );
        assert_eq!(b1.telemetry.launches, b8.telemetry.launches);
    }

    #[test]
    fn sparse_batched_path_works() {
        let w = TransformerWeights::random(tiny_config(), 505);
        let sp = w.pruned(0.0, 506);
        let spec = GpuSpec::rtx4090();
        let mut gd = BatchGenerator::new(ModelRef::Dense(&w), spec.clone(), 2, 8);
        let mut gs = BatchGenerator::new(ModelRef::Sparse(&sp), spec, 2, 8);
        let a = gd.step(&[9, 10]);
        let b = gs.step(&[9, 10]);
        for (ra, rb) in a.iter().zip(&b) {
            for (x, y) in ra.iter().zip(rb) {
                assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
