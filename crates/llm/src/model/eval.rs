//! Language-model evaluation over the functional engine.
//!
//! Computes per-token cross-entropy (and its exponential, perplexity) of
//! a model on a token stream — the metric the paper quotes for pruned
//! OPT-13B (Wanda@60% → WikiText ppl 15.9). With random weights the
//! absolute numbers are meaningless, but the *relationships* the paper
//! relies on are testable: sparse-at-0% matches dense exactly, and
//! perplexity degrades monotonically-ish with sparsity.

use crate::model::forward::{Generator, ModelRef};
use crate::model::ops::softmax_inplace;
use gpu_sim::spec::GpuSpec;

/// Cross-entropy evaluation result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalResult {
    /// Mean negative log-likelihood per predicted token (nats).
    pub cross_entropy: f64,
    /// `exp(cross_entropy)` — perplexity.
    pub perplexity: f64,
    /// Tokens scored.
    pub tokens: usize,
}

/// Scores `stream` under the model: each position's logits are evaluated
/// against the next token. At least two tokens are required.
///
/// # Panics
///
/// Panics if `stream.len() < 2` or any token is out of vocabulary.
pub fn evaluate(model: ModelRef<'_>, spec: &GpuSpec, stream: &[usize]) -> EvalResult {
    assert!(stream.len() >= 2, "need at least two tokens to score");
    let mut generator = Generator::new(model, spec.clone(), stream.len());
    let mut nll = 0.0f64;
    let mut scored = 0usize;
    for w in stream.windows(2) {
        let (cur, next) = (w[0], w[1]);
        let mut logits = generator.step(cur);
        softmax_inplace(&mut logits);
        let p = f64::from(logits[next]).max(1e-12);
        nll -= p.ln();
        scored += 1;
    }
    let ce = nll / scored as f64;
    EvalResult {
        cross_entropy: ce,
        perplexity: ce.exp(),
        tokens: scored,
    }
}

/// Deterministic synthetic token stream with local repetition structure
/// (so a model can in principle do better than uniform guessing).
pub fn synthetic_stream(vocab: usize, len: usize, seed: u64) -> Vec<usize> {
    let mut s = seed;
    let mut out = Vec::with_capacity(len);
    let mut prev = 0usize;
    for _ in 0..len {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // 50%: repeat-ish (stay near the previous token); 50%: jump.
        let t = if s & 1 == 0 {
            (prev + ((s >> 33) as usize % 3)) % vocab
        } else {
            (s >> 17) as usize % vocab
        };
        out.push(t);
        prev = t;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weights::{tiny_config, TransformerWeights};

    #[test]
    fn sparse_at_zero_matches_dense_perplexity() {
        let w = TransformerWeights::random(tiny_config(), 301);
        let sp = w.pruned(0.0, 302);
        let spec = GpuSpec::rtx4090();
        let stream = synthetic_stream(tiny_config().vocab, 12, 303);
        let d = evaluate(ModelRef::Dense(&w), &spec, &stream);
        let s = evaluate(ModelRef::Sparse(&sp), &spec, &stream);
        assert!(
            (d.cross_entropy - s.cross_entropy).abs() < 1e-4,
            "dense {} vs sparse@0 {}",
            d.cross_entropy,
            s.cross_entropy
        );
        assert_eq!(d.tokens, 11);
    }

    #[test]
    fn random_model_perplexity_is_near_uniform() {
        // An untrained model should sit near the uniform baseline
        // (perplexity ≈ vocab), sanity-checking the plumbing.
        let w = TransformerWeights::random(tiny_config(), 304);
        let spec = GpuSpec::rtx4090();
        let stream = synthetic_stream(tiny_config().vocab, 16, 305);
        let r = evaluate(ModelRef::Dense(&w), &spec, &stream);
        let vocab = tiny_config().vocab as f64;
        assert!(
            r.perplexity > vocab * 0.2 && r.perplexity < vocab * 5.0,
            "ppl {} vs vocab {vocab}",
            r.perplexity
        );
    }

    #[test]
    fn heavy_pruning_shifts_the_distribution() {
        // For a random model pruning cannot be said to *worsen* quality,
        // but it must change the predictive distribution measurably while
        // staying finite.
        let w = TransformerWeights::random(tiny_config(), 306);
        let spec = GpuSpec::rtx4090();
        let stream = synthetic_stream(tiny_config().vocab, 10, 307);
        let d = evaluate(ModelRef::Dense(&w), &spec, &stream);
        let sp = w.pruned(0.8, 308);
        let s = evaluate(ModelRef::Sparse(&sp), &spec, &stream);
        assert!(s.cross_entropy.is_finite());
        assert!((s.cross_entropy - d.cross_entropy).abs() > 1e-3);
    }

    #[test]
    fn stream_generator_is_deterministic_and_bounded() {
        let a = synthetic_stream(100, 50, 9);
        let b = synthetic_stream(100, 50, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < 100));
        assert_ne!(a, synthetic_stream(100, 50, 10));
    }

    #[test]
    #[should_panic(expected = "two tokens")]
    fn short_stream_panics() {
        let w = TransformerWeights::random(tiny_config(), 309);
        evaluate(ModelRef::Dense(&w), &GpuSpec::rtx4090(), &[1]);
    }
}
