//! The functional transformer: a real forward pass over the simulated
//! kernels.
//!
//! Linear layers execute through the same simulated kernels the paper
//! benchmarks — `SpInfer-SpMM` for TCA-BME weights, dense Tensor-Core
//! GEMM for dense weights — producing both *numerically real* logits and
//! accumulated *simulated device time*. Attention, LayerNorm and the FFN
//! activation run on the host in FP32 with FP16 KV storage, mirroring a
//! serving engine's non-GEMM kernels.
//!
//! Decoding is batch-1, token-at-a-time (the paper's decode phase);
//! prefill feeds prompt tokens through the same path.

use crate::model::kv_cache::KvCache;
use crate::model::ops::{argmax, gelu, layernorm, silu, softmax_inplace, to_half_matrix};
use crate::model::weights::{SparseTransformerWeights, TransformerWeights};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use spinfer_baselines::kernels::CublasGemm;
use spinfer_core::spmm::SpmmKernel;
use spinfer_core::SpMMHandle;

/// Accumulated simulated-device telemetry for a generation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimTelemetry {
    /// Simulated seconds spent in linear-layer kernels.
    pub linear_sec: f64,
    /// Simulated kernel launches issued.
    pub launches: usize,
    /// Forward passes executed (prompt + generated positions).
    pub positions: usize,
}

/// How a linear layer executes.
enum Linear<'a> {
    Dense(&'a DenseMatrix),
    Sparse(&'a SpMMHandle),
}

impl Linear<'_> {
    /// `W × x` for a single activation vector, through the simulated
    /// kernel; returns FP32 output and accrues telemetry.
    fn apply(&self, spec: &GpuSpec, x: &[f32], telemetry: &mut SimTelemetry) -> Vec<f32> {
        let xm = to_half_matrix(x.len(), 1, x);
        match self {
            Linear::Dense(w) => {
                let run = CublasGemm::new().run(spec, w, &xm);
                telemetry.linear_sec += run.chain.time_sec();
                telemetry.launches += run.chain.launches.len();
                run.output.expect("functional GEMM returns output")
            }
            Linear::Sparse(h) => {
                let run = h.matmul(spec, &xm);
                telemetry.linear_sec += run.chain.time_sec();
                telemetry.launches += run.chain.launches.len();
                run.output.expect("functional SpMM returns output")
            }
        }
    }
}

/// Per-layer view over either weight representation.
struct LayerView<'a> {
    qkv: Linear<'a>,
    attn_out: Linear<'a>,
    ffn_up: Linear<'a>,
    ffn_down: Linear<'a>,
    ln1_gain: &'a [f32],
    ln1_bias: &'a [f32],
    ln2_gain: &'a [f32],
    ln2_bias: &'a [f32],
}

/// A model the generator can run: dense or pruned+encoded.
pub enum ModelRef<'a> {
    /// Dense weights through the GEMM baseline.
    Dense(&'a TransformerWeights),
    /// TCA-BME weights through SpInfer-SpMM.
    Sparse(&'a SparseTransformerWeights),
}

impl ModelRef<'_> {
    fn config(&self) -> crate::config::ModelConfig {
        match self {
            ModelRef::Dense(w) => w.config,
            ModelRef::Sparse(w) => w.config,
        }
    }

    fn embedding(&self) -> &DenseMatrix {
        match self {
            ModelRef::Dense(w) => &w.embedding,
            ModelRef::Sparse(w) => &w.embedding,
        }
    }

    fn final_ln(&self) -> (&[f32], &[f32]) {
        match self {
            ModelRef::Dense(w) => (&w.ln_f_gain, &w.ln_f_bias),
            ModelRef::Sparse(w) => (&w.ln_f_gain, &w.ln_f_bias),
        }
    }

    fn layer(&self, i: usize) -> LayerView<'_> {
        match self {
            ModelRef::Dense(w) => {
                let l = &w.layers[i];
                LayerView {
                    qkv: Linear::Dense(&l.qkv),
                    attn_out: Linear::Dense(&l.attn_out),
                    ffn_up: Linear::Dense(&l.ffn_up),
                    ffn_down: Linear::Dense(&l.ffn_down),
                    ln1_gain: &l.ln1_gain,
                    ln1_bias: &l.ln1_bias,
                    ln2_gain: &l.ln2_gain,
                    ln2_bias: &l.ln2_bias,
                }
            }
            ModelRef::Sparse(w) => {
                let l = &w.layers[i];
                LayerView {
                    qkv: Linear::Sparse(&l.qkv),
                    attn_out: Linear::Sparse(&l.attn_out),
                    ffn_up: Linear::Sparse(&l.ffn_up),
                    ffn_down: Linear::Sparse(&l.ffn_down),
                    ln1_gain: &l.ln1_gain,
                    ln1_bias: &l.ln1_bias,
                    ln2_gain: &l.ln2_gain,
                    ln2_bias: &l.ln2_bias,
                }
            }
        }
    }
}

/// Autoregressive generator over a functional model.
pub struct Generator<'a> {
    model: ModelRef<'a>,
    spec: GpuSpec,
    cache: KvCache,
    /// Telemetry accumulated so far.
    pub telemetry: SimTelemetry,
}

impl<'a> Generator<'a> {
    /// Creates a generator with room for `max_positions` tokens.
    pub fn new(model: ModelRef<'a>, spec: GpuSpec, max_positions: usize) -> Self {
        let cfg = model.config();
        let cache = KvCache::new(cfg.layers, cfg.kv_heads, cfg.head_dim(), max_positions);
        Generator {
            model,
            spec,
            cache,
            telemetry: SimTelemetry::default(),
        }
    }

    /// Feeds one token; returns the logits for the next position.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary or the cache is full.
    pub fn step(&mut self, token: usize) -> Vec<f32> {
        let cfg = self.model.config();
        assert!(token < cfg.vocab, "token {token} out of vocabulary");
        let h = cfg.hidden;
        let hd = cfg.head_dim();
        let kv_dim = cfg.kv_heads * hd;
        let group = cfg.heads / cfg.kv_heads;
        let scale = 1.0 / (hd as f32).sqrt();

        // Embedding lookup.
        let mut x: Vec<f32> = (0..h)
            .map(|c| self.model.embedding().get(token, c).to_f32())
            .collect();

        let mut buf = vec![0.0f32; h];
        for li in 0..cfg.layers {
            let layer = self.model.layer(li);

            // --- Attention block ---
            layernorm(&x, layer.ln1_gain, layer.ln1_bias, &mut buf);
            let qkv = layer.qkv.apply(&self.spec, &buf, &mut self.telemetry);
            let (q, rest) = qkv.split_at(h);
            let (k_new, v_new) = rest.split_at(kv_dim);

            // Append this position's K/V, then attend over all committed
            // positions plus the current one. The commit that makes this
            // position visible happens after the last layer has used it,
            // so the current token is never attended twice.
            let committed = self.cache.len();
            for head in 0..cfg.kv_heads {
                self.cache.append(
                    li,
                    head,
                    &k_new[head * hd..(head + 1) * hd],
                    &v_new[head * hd..(head + 1) * hd],
                );
            }
            let visible = committed + 1;

            let mut attn = vec![0.0f32; h];
            for qh in 0..cfg.heads {
                let kvh = qh / group;
                let qv = &q[qh * hd..(qh + 1) * hd];
                let mut scores = Vec::with_capacity(visible);
                for pos in 0..visible {
                    let krow = self.cached_or_current_k(li, kvh, pos, committed, k_new, hd);
                    let dot: f32 = qv.iter().zip(&krow).map(|(a, b)| a * b).sum();
                    scores.push(dot * scale);
                }
                softmax_inplace(&mut scores);
                let out = &mut attn[qh * hd..(qh + 1) * hd];
                for (pos, &w) in scores.iter().enumerate() {
                    let vrow = self.cached_or_current_v(li, kvh, pos, committed, v_new, hd);
                    for (o, val) in out.iter_mut().zip(&vrow) {
                        *o += w * val;
                    }
                }
            }
            if li == cfg.layers - 1 {
                self.cache.commit();
            }
            let proj = layer.attn_out.apply(&self.spec, &attn, &mut self.telemetry);
            for (xi, p) in x.iter_mut().zip(&proj) {
                *xi += p;
            }

            // --- FFN block ---
            layernorm(&x, layer.ln2_gain, layer.ln2_bias, &mut buf);
            let up = layer.ffn_up.apply(&self.spec, &buf, &mut self.telemetry);
            let act: Vec<f32> = if cfg.gated_ffn {
                let (gate, upv) = up.split_at(cfg.ffn_hidden);
                gate.iter().zip(upv).map(|(&g, &u)| silu(g) * u).collect()
            } else {
                up.iter().map(|&u| gelu(u)).collect()
            };
            let down = layer.ffn_down.apply(&self.spec, &act, &mut self.telemetry);
            for (xi, d) in x.iter_mut().zip(&down) {
                *xi += d;
            }
        }

        // Final norm + tied LM head.
        let (gain, bias) = self.model.final_ln();
        layernorm(&x, gain, bias, &mut buf);
        let mut logits = vec![0.0f32; cfg.vocab];
        for (t, logit) in logits.iter_mut().enumerate() {
            let mut dot = 0.0f32;
            for c in 0..h {
                dot += self.model.embedding().get(t, c).to_f32() * buf[c];
            }
            *logit = dot;
        }
        self.telemetry.positions += 1;
        logits
    }

    /// K row for `pos`: from the cache for positions committed before
    /// this step, from the just-computed projection for the current one.
    #[allow(clippy::too_many_arguments)]
    fn cached_or_current_k(
        &self,
        layer: usize,
        head: usize,
        pos: usize,
        committed: usize,
        k_new: &[f32],
        hd: usize,
    ) -> Vec<f32> {
        if pos < committed {
            self.cache.key(layer, head, pos)
        } else {
            k_new[head * hd..(head + 1) * hd].to_vec()
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn cached_or_current_v(
        &self,
        layer: usize,
        head: usize,
        pos: usize,
        committed: usize,
        v_new: &[f32],
        hd: usize,
    ) -> Vec<f32> {
        if pos < committed {
            self.cache.value(layer, head, pos)
        } else {
            v_new[head * hd..(head + 1) * hd].to_vec()
        }
    }

    /// Greedy generation: feeds the prompt, then samples `n_new` tokens.
    pub fn generate(&mut self, prompt: &[usize], n_new: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must not be empty");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.step(t);
        }
        let mut out = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let next = argmax(&logits);
            out.push(next);
            if out.len() == n_new {
                break;
            }
            logits = self.step(next);
        }
        out
    }

    /// Positions currently in the KV cache.
    pub fn cached_positions(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::weights::tiny_config;

    fn spec() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn greedy_generation_is_deterministic_and_in_vocab() {
        let w = TransformerWeights::random(tiny_config(), 42);
        let mut g1 = Generator::new(ModelRef::Dense(&w), spec(), 32);
        let mut g2 = Generator::new(ModelRef::Dense(&w), spec(), 32);
        let a = g1.generate(&[1, 2, 3], 8);
        let b = g2.generate(&[1, 2, 3], 8);
        assert_eq!(a, b);
        assert!(a.iter().all(|&t| t < tiny_config().vocab));
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn sparse_at_zero_sparsity_matches_dense_exactly() {
        let w = TransformerWeights::random(tiny_config(), 43);
        let sp = w.pruned(0.0, 44);
        let mut gd = Generator::new(ModelRef::Dense(&w), spec(), 16);
        let mut gs = Generator::new(ModelRef::Sparse(&sp), spec(), 16);
        let ld = gd.step(5);
        let ls = gs.step(5);
        for (a, b) in ld.iter().zip(&ls) {
            assert!((a - b).abs() < 1e-3, "dense {a} vs sparse {b}");
        }
    }

    #[test]
    fn pruned_model_still_generates_and_is_close_at_low_sparsity() {
        let w = TransformerWeights::random(tiny_config(), 45);
        let sp = w.pruned(0.3, 46);
        let mut gd = Generator::new(ModelRef::Dense(&w), spec(), 24);
        let mut gs = Generator::new(ModelRef::Sparse(&sp), spec(), 24);
        let a = gd.generate(&[7, 8], 6);
        let b = gs.generate(&[7, 8], 6);
        assert_eq!(a.len(), b.len());
        // Pruning perturbs logits; sequences may diverge but must be valid.
        assert!(b.iter().all(|&t| t < tiny_config().vocab));
    }

    #[test]
    fn incremental_decode_matches_full_recompute() {
        // Feeding [a, b, c] token by token must give the same final
        // logits as a fresh generator fed the same sequence: the KV cache
        // must be equivalent to full attention.
        let w = TransformerWeights::random(tiny_config(), 47);
        let mut g1 = Generator::new(ModelRef::Dense(&w), spec(), 8);
        g1.step(3);
        g1.step(4);
        let l1 = g1.step(5);
        let mut g2 = Generator::new(ModelRef::Dense(&w), spec(), 8);
        g2.step(3);
        g2.step(4);
        let l2 = g2.step(5);
        for (a, b) in l1.iter().zip(&l2) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn causality_prefix_logits_independent_of_suffix() {
        let w = TransformerWeights::random(tiny_config(), 48);
        let mut g1 = Generator::new(ModelRef::Dense(&w), spec(), 8);
        let first_1 = g1.step(9);
        let mut g2 = Generator::new(ModelRef::Dense(&w), spec(), 8);
        let first_2 = g2.step(9);
        // Continue differently; the *first* logits already captured must
        // be identical regardless of what comes later.
        g1.step(1);
        g2.step(2);
        for (a, b) in first_1.iter().zip(&first_2) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn telemetry_accumulates_simulated_time() {
        let w = TransformerWeights::random(tiny_config(), 49);
        let mut g = Generator::new(ModelRef::Dense(&w), spec(), 8);
        g.generate(&[1], 3);
        assert!(g.telemetry.linear_sec > 0.0);
        // The final sampled token is never fed back, so 1 prompt + 2
        // feedback positions run: 4 linear kernels × 2 layers × 3.
        assert!(g.telemetry.launches >= 24);
        assert_eq!(g.telemetry.positions, 3);
        assert_eq!(g.cached_positions(), 3);
    }

    #[test]
    fn gated_ffn_path_works() {
        let mut cfg = tiny_config();
        cfg.gated_ffn = true;
        let w = TransformerWeights::random(cfg, 50);
        let mut g = Generator::new(ModelRef::Dense(&w), spec(), 8);
        let out = g.generate(&[0], 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn gqa_path_works() {
        let mut cfg = tiny_config();
        cfg.kv_heads = 2; // 4 query heads sharing 2 KV heads.
        let w = TransformerWeights::random(cfg, 51);
        let mut g = Generator::new(ModelRef::Dense(&w), spec(), 8);
        let out = g.generate(&[2], 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let w = TransformerWeights::random(tiny_config(), 52);
        let mut g = Generator::new(ModelRef::Dense(&w), spec(), 8);
        g.step(usize::MAX);
    }
}
