//! Elementwise and reduction operations for the functional transformer.
//!
//! Activations flow as FP32 host buffers between the simulated FP16
//! matmul kernels, matching how the real framework keeps FP32 accumulator
//! output before re-quantising to FP16 for the next GEMM.

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Numerically stable softmax over a slice, in place.
pub fn softmax_inplace(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum.max(f32::MIN_POSITIVE);
    for x in xs.iter_mut() {
        *x *= inv;
    }
}

/// LayerNorm over `x` (length `h`) with learned `gain`/`bias`.
pub fn layernorm(x: &[f32], gain: &[f32], bias: &[f32], out: &mut [f32]) {
    let h = x.len();
    assert_eq!(gain.len(), h);
    assert_eq!(bias.len(), h);
    assert_eq!(out.len(), h);
    let mean = x.iter().sum::<f32>() / h as f32;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / h as f32;
    let inv_std = 1.0 / (var + 1e-5).sqrt();
    for i in 0..h {
        out[i] = (x[i] - mean) * inv_std * gain[i] + bias[i];
    }
}

/// tanh-approximation GELU, matching common transformer implementations.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + ((0.797_884_6) * (x + 0.044_715 * x * x * x)).tanh())
}

/// SiLU (swish), the gated-FFN activation of the LLaMA family.
pub fn silu(x: f32) -> f32 {
    x / (1.0 + (-x).exp())
}

/// Index of the maximum element (greedy sampling); ties take the first.
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Quantises an FP32 activation matrix (`rows × cols`, row-major) to the
/// FP16 `DenseMatrix` the matmul kernels consume.
pub fn to_half_matrix(rows: usize, cols: usize, data: &[f32]) -> DenseMatrix {
    assert_eq!(data.len(), rows * cols);
    let mut m = DenseMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, Half::from_f32(data[r * cols + c]));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = vec![1.0f32, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let mut a = vec![1000.0f32, 1001.0, 1002.0];
        let mut b = vec![0.0f32, 1.0, 2.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
            assert!(x.is_finite());
        }
    }

    #[test]
    fn softmax_handles_empty_and_single() {
        let mut empty: Vec<f32> = vec![];
        softmax_inplace(&mut empty);
        let mut one = vec![5.0f32];
        softmax_inplace(&mut one);
        assert_eq!(one[0], 1.0);
    }

    #[test]
    fn layernorm_zero_mean_unit_var() {
        let x = vec![1.0f32, 2.0, 3.0, 4.0];
        let gain = vec![1.0f32; 4];
        let bias = vec![0.0f32; 4];
        let mut out = vec![0.0f32; 4];
        layernorm(&x, &gain, &bias, &mut out);
        let mean: f32 = out.iter().sum::<f32>() / 4.0;
        let var: f32 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_gain_and_bias() {
        let x = vec![0.0f32, 2.0];
        let gain = vec![2.0f32, 2.0];
        let bias = vec![1.0f32, 1.0];
        let mut out = vec![0.0f32; 2];
        layernorm(&x, &gain, &bias, &mut out);
        assert!((out[0] - (1.0 - 2.0)).abs() < 1e-4);
        assert!((out[1] - (1.0 + 2.0)).abs() < 1e-4);
    }

    #[test]
    fn gelu_fixed_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn silu_fixed_points() {
        assert_eq!(silu(0.0), 0.0);
        assert!((silu(1.0) - 0.7311).abs() < 1e-3);
        assert!(silu(-20.0).abs() < 1e-3);
    }

    #[test]
    fn argmax_basics() {
        assert_eq!(argmax(&[0.1, 0.9, 0.5]), 1);
        assert_eq!(argmax(&[1.0, 1.0]), 0);
    }

    #[test]
    fn to_half_matrix_roundtrip() {
        let data = vec![0.5f32, -1.25, 2.0, 0.0];
        let m = to_half_matrix(2, 2, &data);
        assert_eq!(m.get(0, 1).to_f32(), -1.25);
        assert_eq!(m.get(1, 1).to_f32(), 0.0);
    }
}
