//! Functional transformer engine: real numerics through the simulated
//! kernels.
//!
//! The analytic engine in [`crate::engine`] answers "how fast"; this
//! module answers "is it *right*": a complete decoder (embedding, causal
//! attention with an FP16 KV cache, LayerNorm, GELU/SwiGLU FFN, tied LM
//! head, greedy sampling) whose linear layers run through the simulated
//! SpInfer-SpMM / dense GEMM kernels, producing bit-real logits plus
//! accumulated simulated device time.

pub mod batch;
pub mod eval;
pub mod forward;
pub mod kv_cache;
pub mod ops;
pub mod weights;

pub use batch::BatchGenerator;
pub use eval::{evaluate, synthetic_stream, EvalResult};
pub use forward::{Generator, ModelRef, SimTelemetry};
pub use kv_cache::KvCache;
pub use weights::{
    tiny_config, LayerWeights, SparseLayerWeights, SparseTransformerWeights, TransformerWeights,
};
