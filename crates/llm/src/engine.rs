//! End-to-end inference simulation (paper §5.2).
//!
//! Simulates autoregressive generation: one prefill pass over the prompt
//! followed by `output_len` decode steps, on `tp` tensor-parallel GPUs.
//! Linear layers go through the framework's simulated kernel (SpMM or
//! GEMM), attention through a bandwidth/compute model, communication
//! through the ring all-reduce model, and per-layer overhead covers the
//! non-GEMM kernels. Decode attention over a growing KV cache is summed
//! in closed form, so a full run costs a handful of kernel estimates.

use crate::breakdown::Breakdown;
use crate::config::ModelConfig;
use crate::frameworks::Framework;
use crate::memory::{footprint, MemoryReport};
use crate::parallel::layer_comm_sec;
use gpu_sim::spec::GpuSpec;
use gpu_sim::trace::{pids, TraceEvent};
use spinfer_core::spmm::LaunchCtx;

/// Fraction of peak DRAM bandwidth decode attention kernels achieve.
const MHA_BW_EFF: f64 = 0.7;
/// Fraction of peak Tensor-Core throughput prefill attention achieves.
const MHA_TC_EFF: f64 = 0.45;
/// Per-layer attention kernel launch floor.
const MHA_LAUNCH_SEC: f64 = 6.0e-6;

/// One end-to-end serving scenario.
#[derive(Clone, Copy, Debug)]
pub struct InferenceConfig {
    /// Model architecture.
    pub model: ModelConfig,
    /// Serving framework.
    pub framework: Framework,
    /// Weight sparsity for sparse frameworks (ignored by dense ones).
    pub sparsity: f64,
    /// Batch size.
    pub batch: usize,
    /// Prompt length.
    pub input_len: usize,
    /// Generated tokens per sequence.
    pub output_len: usize,
    /// Tensor-parallel GPU count.
    pub tp: usize,
}

/// Simulation outcome.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// Prefill latency in seconds.
    pub prefill_sec: f64,
    /// Mean decode step latency in seconds.
    pub per_step_sec: f64,
    /// Total wall time.
    pub total_sec: f64,
    /// Generated tokens per second (`batch × output_len / total`).
    pub tokens_per_sec: f64,
    /// Per-GPU memory footprint.
    pub memory: MemoryReport,
    /// Whether the footprint exceeds device capacity.
    pub oom: bool,
    /// Wall-time decomposition over the whole run.
    pub breakdown: Breakdown,
}

/// Linear-layer time of one forward pass over `n` tokens (all decoder
/// layers plus the LM head), for the serving-level simulators.
pub fn linear_pass_sec(
    spec: &GpuSpec,
    model: &ModelConfig,
    framework: Framework,
    sparsity: f64,
    tp: usize,
    n: usize,
) -> f64 {
    let mut t = 0.0;
    for mat in model.layer_matrices() {
        let (m, k) = if mat.col_parallel {
            (mat.m.div_ceil(tp), mat.k)
        } else {
            (mat.m, mat.k.div_ceil(tp))
        };
        t += framework.linear_sec(spec, m, k, n, sparsity) * mat.compute_instances as f64;
    }
    t *= model.layers as f64;
    t += Framework::FasterTransformer.linear_sec(
        spec,
        model.vocab.div_ceil(tp),
        model.hidden,
        n,
        0.0,
    );
    t
}

/// One decode iteration's non-linear time for a batch whose context
/// lengths sum to `sum_ctx` tokens: KV reads, comm, per-layer overhead.
pub fn decode_overhead_sec(
    spec: &GpuSpec,
    model: &ModelConfig,
    framework: Framework,
    tp: usize,
    batch: usize,
    sum_ctx: usize,
) -> f64 {
    let kv_bytes = (2 * model.kv_heads * model.head_dim() * 2 / tp) as f64
        * sum_ctx as f64
        * model.layers as f64;
    let mha = kv_bytes / (spec.dram_bandwidth * MHA_BW_EFF) + model.layers as f64 * MHA_LAUNCH_SEC;
    let comm = layer_comm_sec(spec, tp, batch, model.hidden) * model.layers as f64;
    let other = framework.layer_overhead_sec() * model.layers as f64;
    mha + comm + other
}

/// Simulates one scenario on the given device type.
/// # Examples
///
/// ```
/// use gpu_sim::GpuSpec;
/// use spinfer_llm::{simulate, Framework, InferenceConfig, ModelConfig};
///
/// let report = simulate(&GpuSpec::rtx4090(), &InferenceConfig {
///     model: ModelConfig::opt_13b(),
///     framework: Framework::SpInfer,
///     sparsity: 0.6,
///     batch: 16,
///     input_len: 64,
///     output_len: 128,
///     tp: 1,
/// });
/// assert!(!report.oom);
/// assert!(report.tokens_per_sec > 100.0);
/// ```
pub fn simulate(spec: &GpuSpec, cfg: &InferenceConfig) -> InferenceReport {
    simulate_ctx(&LaunchCtx::new(spec), cfg)
}

/// [`simulate`] against a capability bundle: the scenario's phases are
/// recorded as `prefill` / `decode` spans (simulation clock, seconds →
/// trace µs) when the context carries a trace sink. A bare context
/// reproduces [`simulate`] bit-identically — the report never depends
/// on what is attached.
pub fn simulate_ctx(ctx: &LaunchCtx<'_>, cfg: &InferenceConfig) -> InferenceReport {
    let spec = ctx.spec;
    assert!(cfg.tp >= 1 && cfg.batch >= 1 && cfg.output_len >= 1);
    let model = &cfg.model;
    let total_len = cfg.input_len + cfg.output_len;
    let memory = footprint(
        model,
        cfg.framework,
        cfg.sparsity,
        cfg.tp,
        cfg.batch,
        total_len,
    );
    let oom = memory.is_oom(spec);

    // --- Per-forward linear time for a given token count n ---
    let linear_sec = |n: usize| -> f64 {
        let mut t = 0.0;
        for mat in model.layer_matrices() {
            let (m, k) = if mat.col_parallel {
                (mat.m.div_ceil(cfg.tp), mat.k)
            } else {
                (mat.m, mat.k.div_ceil(cfg.tp))
            };
            t += cfg.framework.linear_sec(spec, m, k, n, cfg.sparsity)
                * mat.compute_instances as f64;
        }
        t *= model.layers as f64;
        // LM head (dense in every framework).
        t += Framework::FasterTransformer.linear_sec(
            spec,
            model.vocab.div_ceil(cfg.tp),
            model.hidden,
            n,
            0.0,
        );
        t
    };

    // --- Decode ---
    let lin_step = linear_sec(cfg.batch);
    // KV bytes read per decode step at context length L:
    // 2 (K,V) × kv_heads × head_dim × L × batch × 2 B, per layer, / tp.
    let kv_row = (2 * model.kv_heads * model.head_dim() * cfg.batch * 2 / cfg.tp) as f64;
    // Sum of context lengths over all decode steps (closed form).
    let sum_ctx: f64 = (0..cfg.output_len)
        .map(|t| (cfg.input_len + t + 1) as f64)
        .sum();
    let kv_bytes_total = kv_row * sum_ctx * model.layers as f64;
    let mha_decode_total = kv_bytes_total / (spec.dram_bandwidth * MHA_BW_EFF)
        + cfg.output_len as f64 * model.layers as f64 * MHA_LAUNCH_SEC;
    let comm_step = layer_comm_sec(spec, cfg.tp, cfg.batch, model.hidden) * model.layers as f64;
    let other_step = cfg.framework.layer_overhead_sec() * model.layers as f64;
    let decode_sec = cfg.output_len as f64 * (lin_step + comm_step + other_step) + mha_decode_total;

    // --- Prefill ---
    let prefill_tokens = cfg.batch * cfg.input_len;
    let lin_prefill = linear_sec(prefill_tokens.max(1));
    // Attention FLOPs: 2 matmuls (QKᵀ, PV) of b × heads × L² × head_dim.
    let mha_prefill_flops = 4.0
        * cfg.batch as f64
        * model.heads as f64
        * (cfg.input_len as f64).powi(2)
        * model.head_dim() as f64
        * model.layers as f64
        / cfg.tp as f64;
    let mha_prefill = mha_prefill_flops / (spec.peak_tc_flops() * MHA_TC_EFF)
        + model.layers as f64 * MHA_LAUNCH_SEC;
    let comm_prefill =
        layer_comm_sec(spec, cfg.tp, prefill_tokens, model.hidden) * model.layers as f64;
    let other_prefill = cfg.framework.layer_overhead_sec() * model.layers as f64;
    let prefill_sec = lin_prefill + mha_prefill + comm_prefill + other_prefill;

    let total_sec = prefill_sec + decode_sec;
    if let Some(sink) = ctx.sink {
        let track = (pids::SERVING, 1);
        sink.name_track(track, "inference sim (sim µs)", "engine");
        sink.record(TraceEvent::span(
            track,
            "prefill",
            "phase",
            0.0,
            prefill_sec * 1e6,
        ));
        sink.record(
            TraceEvent::span(
                track,
                "decode",
                "phase",
                prefill_sec * 1e6,
                decode_sec * 1e6,
            )
            .with_arg("steps", cfg.output_len as f64),
        );
    }
    let breakdown = Breakdown {
        linear: lin_prefill + cfg.output_len as f64 * lin_step,
        mha: mha_prefill + mha_decode_total,
        comm: comm_prefill + cfg.output_len as f64 * comm_step,
        other: other_prefill + cfg.output_len as f64 * other_step,
    };

    InferenceReport {
        prefill_sec,
        per_step_sec: decode_sec / cfg.output_len as f64,
        total_sec,
        tokens_per_sec: (cfg.batch * cfg.output_len) as f64 / total_sec,
        memory,
        oom,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(framework: Framework, batch: usize, tp: usize, output_len: usize) -> InferenceConfig {
        InferenceConfig {
            model: ModelConfig::opt_13b(),
            framework,
            sparsity: 0.6,
            batch,
            input_len: 64,
            output_len,
            tp,
        }
    }

    #[test]
    fn spinfer_beats_dense_frameworks() {
        let spec = GpuSpec::rtx4090();
        let sp = simulate(&spec, &cfg(Framework::SpInfer, 16, 2, 256));
        let ft = simulate(&spec, &cfg(Framework::FasterTransformer, 16, 2, 256));
        let ds = simulate(&spec, &cfg(Framework::DeepSpeed, 16, 2, 256));
        let fl = simulate(&spec, &cfg(Framework::FlashLlm, 16, 2, 256));
        assert!(sp.tokens_per_sec > fl.tokens_per_sec);
        assert!(fl.tokens_per_sec > ft.tokens_per_sec);
        assert!(ft.tokens_per_sec > ds.tokens_per_sec);
        // Paper-scale speedups: 1.2-1.7x over FT/Flash-LLM.
        let vs_ft = sp.tokens_per_sec / ft.tokens_per_sec;
        assert!(vs_ft > 1.15 && vs_ft < 2.0, "SpInfer vs FT {vs_ft}");
    }

    #[test]
    fn throughput_magnitude_matches_paper() {
        // Paper: OPT-13B, 1×RTX4090, BS=32: SpInfer > 1500 tokens/s.
        let spec = GpuSpec::rtx4090();
        let r = simulate(&spec, &cfg(Framework::SpInfer, 32, 1, 256));
        assert!(
            !r.oom,
            "SpInfer BS=32 must fit: {} GiB",
            r.memory.total_gib()
        );
        assert!(
            r.tokens_per_sec > 1200.0 && r.tokens_per_sec < 2600.0,
            "tokens/s {}",
            r.tokens_per_sec
        );
    }

    #[test]
    fn dense_13b_oom_on_one_4090_but_fits_two() {
        let spec = GpuSpec::rtx4090();
        assert!(simulate(&spec, &cfg(Framework::FasterTransformer, 8, 1, 256)).oom);
        assert!(!simulate(&spec, &cfg(Framework::FasterTransformer, 8, 2, 256)).oom);
    }

    #[test]
    fn linear_dominates_the_breakdown() {
        // Paper Figure 2: GEMM is ~62% of dense decode time.
        let spec = GpuSpec::rtx4090();
        let r = simulate(&spec, &cfg(Framework::FasterTransformer, 16, 2, 256));
        let f = r.breakdown.linear_fraction();
        assert!(f > 0.5 && f < 0.8, "linear fraction {f}");
    }

    #[test]
    fn comm_vanishes_on_single_gpu() {
        let spec = GpuSpec::rtx4090();
        let one = simulate(&spec, &cfg(Framework::SpInfer, 8, 1, 128));
        let two = simulate(&spec, &cfg(Framework::SpInfer, 8, 2, 128));
        assert_eq!(one.breakdown.comm, 0.0);
        assert!(two.breakdown.comm > 0.0);
    }

    #[test]
    fn throughput_grows_with_batch() {
        let spec = GpuSpec::rtx4090();
        let b8 = simulate(&spec, &cfg(Framework::SpInfer, 8, 1, 128));
        let b32 = simulate(&spec, &cfg(Framework::SpInfer, 32, 1, 128));
        assert!(b32.tokens_per_sec > 1.8 * b8.tokens_per_sec);
    }

    #[test]
    fn longer_outputs_slow_per_step_latency_via_kv() {
        let spec = GpuSpec::rtx4090();
        let short = simulate(&spec, &cfg(Framework::SpInfer, 16, 1, 64));
        let long = simulate(&spec, &cfg(Framework::SpInfer, 16, 1, 1024));
        assert!(long.per_step_sec > short.per_step_sec);
    }

    #[test]
    fn a6000_runs_opt66b_on_two_gpus_sparse_only() {
        let spec = GpuSpec::a6000();
        let mk = |fw| InferenceConfig {
            model: ModelConfig::opt_66b(),
            framework: fw,
            sparsity: 0.6,
            batch: 8,
            input_len: 64,
            output_len: 128,
            tp: 2,
        };
        let sp = simulate(&spec, &mk(Framework::SpInfer));
        let ft = simulate(&spec, &mk(Framework::FasterTransformer));
        assert!(
            !sp.oom,
            "SpInfer 66B/2×A6000: {} GiB",
            sp.memory.total_gib()
        );
        assert!(
            ft.oom,
            "dense 66B needs >2 A6000s: {} GiB",
            ft.memory.total_gib()
        );
    }

    #[test]
    fn simulate_ctx_traces_without_perturbing_the_report() {
        use gpu_sim::trace::TraceSink;
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 16, 1, 128);
        let plain = simulate(&spec, &c);
        let sink = TraceSink::new();
        let traced = simulate_ctx(&LaunchCtx::new(&spec).with_sink(&sink), &c);
        assert_eq!(plain.total_sec.to_bits(), traced.total_sec.to_bits());
        assert_eq!(
            plain.tokens_per_sec.to_bits(),
            traced.tokens_per_sec.to_bits()
        );
        let t = sink.finish();
        assert!(t.phase_names("phase").contains(&"prefill"));
        assert!(t.phase_names("phase").contains(&"decode"));
        // The two phase spans tile the scenario: decode starts where
        // prefill ends and the pair sums to the total wall time.
        let spans: Vec<_> = t.events.iter().filter(|e| e.dur_us > 0.0).collect();
        assert_eq!(spans.len(), 2);
        let total: f64 = spans.iter().map(|e| e.dur_us).sum();
        assert!((total - plain.total_sec * 1e6).abs() < 1e-6 * plain.total_sec * 1e6);
    }

    #[test]
    fn prefill_scales_with_input_length() {
        let spec = GpuSpec::rtx4090();
        let mut c = cfg(Framework::SpInfer, 8, 1, 64);
        c.input_len = 64;
        let short = simulate(&spec, &c);
        c.input_len = 512;
        let long = simulate(&spec, &c);
        assert!(long.prefill_sec > 2.0 * short.prefill_sec);
    }
}
