//! Continuous-batching serving simulator (ORCA-style iteration-level
//! scheduling).
//!
//! The paper's end-to-end evaluation uses static batches; production
//! systems admit and retire requests at every decode iteration, bounded
//! by KV-cache memory. This simulator runs that loop over the same cost
//! model: per-iteration linear time from the simulated kernels, KV reads
//! proportional to the live contexts, admission gated by the per-GPU
//! memory model. It shows the deployment-level consequence of SpInfer's
//! two wins — faster steps *and* more KV headroom from compressed
//! weights.

use crate::config::ModelConfig;
use crate::engine::{decode_overhead_sec, linear_pass_sec};
use crate::frameworks::Framework;
use crate::memory::footprint;
use crate::spec::{plan_step, SpecConfig, SpecServingReport, SpecStats, TreeVerifier};
use gpu_sim::spec::GpuSpec;
use gpu_sim::trace::{pids, TraceEvent, TraceSink};
use spinfer_core::spmm::LaunchCtx;
use spinfer_core::SpinferError;
use spinfer_obs::metrics::percentile_sorted;
use std::collections::HashMap;

/// Request length workload: uniform, or a deterministic round-robin mix
/// of (input, output) profiles — short chat turns interleaved with long
/// summarisation requests, say.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LengthMix {
    /// Every request uses the config's `input_len`/`output_len`.
    Uniform,
    /// Request `i` uses `profiles[i % profiles.len()]` as
    /// `(input_len, output_len)`.
    RoundRobin(Vec<(usize, usize)>),
}

impl LengthMix {
    /// A `RoundRobin` mix with no profiles has no defined request
    /// lengths; catching it here (instead of panicking on `i % 0` deep
    /// in the serving loop) is the config-time contract every serving
    /// entry point enforces.
    pub fn validate(&self) -> Result<(), SpinferError> {
        match self {
            LengthMix::RoundRobin(p) if p.is_empty() => Err(SpinferError::EmptyLengthMix),
            _ => Ok(()),
        }
    }

    pub(crate) fn lengths(&self, i: usize, fallback: (usize, usize)) -> (usize, usize) {
        match self {
            LengthMix::Uniform => fallback,
            // Empty profiles are rejected by `validate`; the defensive
            // fallback keeps this total even if a caller skips it.
            LengthMix::RoundRobin(p) if p.is_empty() => fallback,
            LengthMix::RoundRobin(p) => p[i % p.len()],
        }
    }

    pub(crate) fn max_lengths(&self, fallback: (usize, usize)) -> (usize, usize) {
        match self {
            LengthMix::Uniform => fallback,
            LengthMix::RoundRobin(p) if p.is_empty() => fallback,
            LengthMix::RoundRobin(p) => p
                .iter()
                .fold((0, 0), |acc, &(i, o)| (acc.0.max(i), acc.1.max(o))),
        }
    }
}

/// A serving scenario.
#[derive(Clone, Debug)]
pub struct ServingConfig {
    /// Model served.
    pub model: ModelConfig,
    /// Framework.
    pub framework: Framework,
    /// Weight sparsity for sparse frameworks.
    pub sparsity: f64,
    /// Tensor-parallel degree.
    pub tp: usize,
    /// Iteration-level batch cap.
    pub max_batch: usize,
    /// Request arrival rate (requests/s, deterministic spacing).
    pub arrival_rps: f64,
    /// Prompt length per request.
    pub input_len: usize,
    /// Tokens generated per request.
    pub output_len: usize,
    /// Simulated horizon in seconds.
    pub duration_sec: f64,
    /// Request length workload.
    pub mix: LengthMix,
}

impl ServingConfig {
    /// Config-time validation: rejects workloads the serving loop cannot
    /// run (an empty `RoundRobin` profile list used to panic with a
    /// divide-by-zero on the profile index).
    pub fn validate(&self) -> Result<(), SpinferError> {
        self.mix.validate()
    }
}

/// Serving outcome.
#[derive(Clone, Debug)]
pub struct ServingReport {
    /// Requests fully served within the horizon.
    pub completed: usize,
    /// Requests still queued/running at the end.
    pub in_flight: usize,
    /// Served requests per second.
    pub throughput_rps: f64,
    /// Generated tokens per second.
    pub tokens_per_sec: f64,
    /// Mean end-to-end latency of completed requests (s).
    pub mean_latency_sec: f64,
    /// 95th-percentile latency (s).
    pub p95_latency_sec: f64,
    /// Mean decode batch occupancy over iterations.
    pub mean_batch: f64,
    /// Maximum concurrent requests the memory model admitted.
    pub max_concurrency: usize,
    /// Decode iterations executed over the horizon.
    pub iterations: usize,
    /// Mean tokens *committed* per decode iteration. Incremental decode
    /// commits exactly the batch width, so this equals `mean_batch`;
    /// speculative decode commits accepted prefixes plus bonus tokens,
    /// and the ratio against the incremental run is the honest
    /// per-iteration speedup measure.
    pub tokens_per_iteration: f64,
}

#[derive(Clone, Copy, Debug)]
struct Request {
    id: u64,
    arrival: f64,
    generated: usize,
    input_len: usize,
    output_len: usize,
    speculative: bool,
}

/// Upper bound on the admission cap search (sequences per GPU).
pub(crate) const CAP_CEILING: usize = 4096;

/// Maximum concurrent sequences the per-GPU memory supports at full
/// context (weights + KV for `n` sequences must fit).
///
/// The KV footprint is monotone in the sequence count, so instead of
/// probing every `n` up to [`CAP_CEILING`] (thousands of `footprint`
/// evaluations for roomy deployments) we double until the first OOM
/// bracket and binary-search inside it: `O(log cap)` probes, same
/// answer as the linear scan (pinned by a test below).
fn memory_concurrency_cap(spec: &GpuSpec, cfg: &ServingConfig) -> usize {
    let (max_in, max_out) = cfg.mix.max_lengths((cfg.input_len, cfg.output_len));
    concurrency_cap(
        spec,
        &cfg.model,
        cfg.framework,
        cfg.sparsity,
        cfg.tp,
        max_in + max_out,
    )
}

/// The doubling + binary-search admission cap behind
/// [`memory_concurrency_cap`], parameterised on the deployment tuple so
/// the fleet cluster layer can size per-replica KV headroom with the
/// same oracle-pinned search.
pub(crate) fn concurrency_cap(
    spec: &GpuSpec,
    model: &ModelConfig,
    framework: Framework,
    sparsity: f64,
    tp: usize,
    total_len: usize,
) -> usize {
    let fits = |n: usize| !footprint(model, framework, sparsity, tp, n, total_len).is_oom(spec);
    if !fits(1) {
        return 0;
    }
    // Doubling: grow `hi` until it no longer fits (or clears the ceiling).
    let mut lo = 1usize; // invariant: fits(lo)
    let mut hi = 2usize;
    while hi <= CAP_CEILING && fits(hi) {
        lo = hi;
        hi *= 2;
    }
    if lo >= CAP_CEILING {
        return CAP_CEILING;
    }
    let mut hi = hi.min(CAP_CEILING + 1); // invariant: !fits(hi) or hi > ceiling
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

impl ServingReport {
    /// p95 over an ascending latency set — nearest-rank, shared with the
    /// observability histogram code so CLI tables and serving reports
    /// agree on percentile semantics.
    pub fn p95_from_sorted(latencies: &[f64]) -> f64 {
        percentile_sorted(latencies, 0.95)
    }
}

/// Runs the continuous-batching loop.
///
/// # Panics
///
/// Panics if the model cannot serve even one request on this deployment.
pub fn serve(spec: &GpuSpec, cfg: &ServingConfig) -> ServingReport {
    serve_ctx(&LaunchCtx::new(spec), cfg)
}

/// [`serve`] behind config-time validation: an invalid workload (e.g. a
/// `RoundRobin` mix with no profiles) comes back as a typed
/// [`SpinferError`] instead of a panic deep inside the serving loop.
///
/// # Panics
///
/// Still panics if the (valid) model cannot serve even one request on
/// this deployment, matching [`serve`].
pub fn serve_checked(spec: &GpuSpec, cfg: &ServingConfig) -> Result<ServingReport, SpinferError> {
    cfg.validate()?;
    Ok(serve_ctx(&LaunchCtx::new(spec), cfg))
}

/// [`serve`] with optional span recording: each prefill admission and
/// each decode iteration becomes a span on the serving track,
/// timestamped on the *serving simulation clock* (seconds → trace µs).
/// With `sink` absent this is exactly `serve`.
///
/// # Panics
///
/// Panics if the model cannot serve even one request on this deployment.
pub fn serve_with(spec: &GpuSpec, cfg: &ServingConfig, sink: Option<&TraceSink>) -> ServingReport {
    let mut ctx = LaunchCtx::new(spec);
    if let Some(sink) = sink {
        ctx = ctx.with_sink(sink);
    }
    serve_ctx(&ctx, cfg)
}

/// The one serving loop behind [`serve`] and [`serve_with`]: the
/// capability bundle arrives as a [`LaunchCtx`], so serve-time tracing
/// (and any future seam the context grows) composes without another
/// `serve_*` variant. A bare context reproduces `serve` bit-identically.
///
/// # Panics
///
/// Panics if the model cannot serve even one request on this deployment.
pub fn serve_ctx(ctx: &LaunchCtx<'_>, cfg: &ServingConfig) -> ServingReport {
    const ENGINE: (u32, u32) = (pids::SERVING, 0);
    let spec = ctx.spec;
    let sink = ctx.sink;
    let mut spans: Vec<TraceEvent> = Vec::new();
    let mem_cap = memory_concurrency_cap(spec, cfg);
    assert!(
        mem_cap >= 1,
        "{} via {:?} on {}x{} cannot fit a single request",
        cfg.model.name,
        cfg.framework,
        cfg.tp,
        spec.name
    );
    let cap = mem_cap.min(cfg.max_batch).max(1);

    // Memoised per-batch linear pass times (the expensive call).
    let mut lin_cache: HashMap<usize, f64> = HashMap::new();
    let mut lin = |n: usize| {
        *lin_cache.entry(n).or_insert_with(|| {
            linear_pass_sec(spec, &cfg.model, cfg.framework, cfg.sparsity, cfg.tp, n)
        })
    };
    let mut prefill_cache: HashMap<usize, f64> = HashMap::new();
    let mut prefill_cost = |tokens: usize| {
        let tokens = tokens.max(1);
        *prefill_cache.entry(tokens).or_insert_with(|| {
            // Per admitted request: a prefill pass over its prompt.
            linear_pass_sec(
                spec,
                &cfg.model,
                cfg.framework,
                cfg.sparsity,
                cfg.tp,
                tokens,
            ) + decode_overhead_sec(spec, &cfg.model, cfg.framework, cfg.tp, 1, tokens)
        })
    };

    let inter_arrival = 1.0 / cfg.arrival_rps.max(1e-9);
    let mut next_arrival = 0.0f64;
    let mut arrived = 0usize;
    let mut queue: Vec<Request> = Vec::new();
    let mut running: Vec<Request> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut tokens_out = 0usize;
    let mut now = 0.0f64;
    let mut batch_sum = 0.0f64;
    let mut iterations = 0usize;
    let mut max_concurrency = 0usize;

    while now < cfg.duration_sec {
        // Admit arrivals up to `now`.
        while next_arrival <= now {
            let (input_len, output_len) = cfg.mix.lengths(arrived, (cfg.input_len, cfg.output_len));
            queue.push(Request {
                id: arrived as u64,
                arrival: next_arrival,
                generated: 0,
                input_len,
                output_len,
                speculative: false,
            });
            arrived += 1;
            next_arrival = inter_arrival * arrived as f64;
        }
        // Admit queued requests into the running batch (prefill each).
        while running.len() < cap && !queue.is_empty() {
            let r = queue.remove(0);
            let cost = prefill_cost(r.input_len);
            if sink.is_some() {
                spans.push(TraceEvent::span(
                    ENGINE,
                    "prefill",
                    "phase",
                    now * 1e6,
                    cost * 1e6,
                ));
            }
            now += cost;
            running.push(r);
        }
        max_concurrency = max_concurrency.max(running.len());

        if running.is_empty() {
            // Idle until the next arrival.
            if next_arrival >= cfg.duration_sec {
                break;
            }
            now = next_arrival;
            continue;
        }

        // One decode iteration for the whole running batch.
        let b = running.len();
        let sum_ctx: usize = running.iter().map(|r| r.input_len + r.generated + 1).sum();
        let step =
            lin(b) + decode_overhead_sec(spec, &cfg.model, cfg.framework, cfg.tp, b, sum_ctx);
        if sink.is_some() {
            spans.push(
                TraceEvent::span(ENGINE, "decode_iter", "phase", now * 1e6, step * 1e6)
                    .with_arg("batch", b as f64),
            );
        }
        now += step;
        iterations += 1;
        batch_sum += b as f64;
        tokens_out += b;

        // Retire finished requests.
        for r in running.iter_mut() {
            r.generated += 1;
        }
        running.retain(|r| {
            if r.generated >= r.output_len {
                latencies.push(now - r.arrival);
                false
            } else {
                true
            }
        });
    }

    if let Some(sink) = sink {
        sink.name_track(ENGINE, "serving sim (sim µs)", "engine");
        sink.extend(spans);
    }

    latencies.sort_by(f64::total_cmp);
    let completed = latencies.len();
    let mean = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let p95 = ServingReport::p95_from_sorted(&latencies);
    ServingReport {
        completed,
        in_flight: queue.len() + running.len(),
        throughput_rps: completed as f64 / now.max(1e-9),
        tokens_per_sec: tokens_out as f64 / now.max(1e-9),
        mean_latency_sec: mean,
        p95_latency_sec: p95,
        mean_batch: if iterations == 0 {
            0.0
        } else {
            batch_sum / iterations as f64
        },
        max_concurrency,
        iterations,
        tokens_per_iteration: if iterations == 0 {
            0.0
        } else {
            tokens_out as f64 / iterations as f64
        },
    }
}

/// Runs the continuous-batching loop with speculative decoding: requests
/// selected by `spec_cfg.spec_share` draft a candidate tree each decode
/// iteration and verify every candidate inside the batch's single wide-N
/// launch.
///
/// # Panics
///
/// Panics if the model cannot serve even one request on this deployment
/// with the candidate tree's extra KV entries.
pub fn serve_spec(spec: &GpuSpec, cfg: &ServingConfig, spec_cfg: &SpecConfig) -> SpecServingReport {
    serve_spec_ctx(&LaunchCtx::new(spec), cfg, spec_cfg)
}

/// [`serve_spec`] behind config-time validation of both the workload and
/// the speculation config.
///
/// # Panics
///
/// Still panics if the (valid) deployment cannot fit a single request,
/// matching [`serve_spec`].
pub fn serve_spec_checked(
    spec: &GpuSpec,
    cfg: &ServingConfig,
    spec_cfg: &SpecConfig,
) -> Result<SpecServingReport, SpinferError> {
    cfg.validate()?;
    spec_cfg.validate()?;
    Ok(serve_spec_ctx(&LaunchCtx::new(spec), cfg, spec_cfg))
}

/// The speculative serving loop. It deliberately mirrors [`serve_ctx`]
/// operation for operation — same admission order, same caches, same
/// span layout — so that under [`SpecConfig::degenerate`] the report,
/// the counters, and the recorded trace are bit-identical to the
/// incremental path: the degenerate plan prices `lin(b)` over the same
/// `sum_ctx`, and the free draft adds exactly `0.0` seconds.
///
/// # Panics
///
/// Panics if the model cannot serve even one request on this deployment
/// with the candidate tree's extra KV entries.
pub fn serve_spec_ctx(
    ctx: &LaunchCtx<'_>,
    cfg: &ServingConfig,
    spec_cfg: &SpecConfig,
) -> SpecServingReport {
    const ENGINE: (u32, u32) = (pids::SERVING, 0);
    let spec = ctx.spec;
    let sink = ctx.sink;
    let mut spans: Vec<TraceEvent> = Vec::new();
    let verifier = TreeVerifier::new(spec_cfg);
    let tree_nodes = verifier.tree().nodes();
    let draft_tokens_req = spec_cfg.draft.draft_tokens_per_request(verifier.tree());
    // Admission must also fit each candidate tree's KV entries: every
    // speculative request holds `nodes` extra cache slots between draft
    // and rollback. The degenerate tree adds zero, reproducing the
    // incremental cap exactly.
    let (max_in, max_out) = cfg.mix.max_lengths((cfg.input_len, cfg.output_len));
    let mem_cap = concurrency_cap(
        spec,
        &cfg.model,
        cfg.framework,
        cfg.sparsity,
        cfg.tp,
        max_in + max_out + tree_nodes,
    );
    assert!(
        mem_cap >= 1,
        "{} via {:?} on {}x{} cannot fit a single request with a {}-node tree",
        cfg.model.name,
        cfg.framework,
        cfg.tp,
        spec.name,
        tree_nodes
    );
    let cap = mem_cap.min(cfg.max_batch).max(1);

    let mut lin_cache: HashMap<usize, f64> = HashMap::new();
    let mut lin = |n: usize| {
        *lin_cache.entry(n).or_insert_with(|| {
            linear_pass_sec(spec, &cfg.model, cfg.framework, cfg.sparsity, cfg.tp, n)
        })
    };
    let mut prefill_cache: HashMap<usize, f64> = HashMap::new();
    let mut prefill_cost = |tokens: usize| {
        let tokens = tokens.max(1);
        *prefill_cache.entry(tokens).or_insert_with(|| {
            linear_pass_sec(
                spec,
                &cfg.model,
                cfg.framework,
                cfg.sparsity,
                cfg.tp,
                tokens,
            ) + decode_overhead_sec(spec, &cfg.model, cfg.framework, cfg.tp, 1, tokens)
        })
    };
    // Per-speculative-batch draft cost, memoised like the target passes.
    let mut draft_cache: HashMap<usize, f64> = HashMap::new();
    let mut draft_sec_of = |sb: usize| {
        *draft_cache.entry(sb).or_insert_with(|| {
            spec_cfg.draft.propose_sec(
                spec,
                &cfg.model,
                cfg.framework,
                cfg.sparsity,
                cfg.tp,
                sb,
                verifier.tree(),
            )
        })
    };

    let inter_arrival = 1.0 / cfg.arrival_rps.max(1e-9);
    let mut next_arrival = 0.0f64;
    let mut arrived = 0usize;
    let mut queue: Vec<Request> = Vec::new();
    let mut running: Vec<Request> = Vec::new();
    let mut latencies: Vec<f64> = Vec::new();
    let mut tokens_out = 0usize;
    let mut now = 0.0f64;
    let mut batch_sum = 0.0f64;
    let mut iterations = 0usize;
    let mut max_concurrency = 0usize;
    let mut stats = SpecStats::default();

    while now < cfg.duration_sec {
        while next_arrival <= now {
            let (input_len, output_len) = cfg.mix.lengths(arrived, (cfg.input_len, cfg.output_len));
            let id = arrived as u64;
            queue.push(Request {
                id,
                arrival: next_arrival,
                generated: 0,
                input_len,
                output_len,
                speculative: verifier.speculates(id),
            });
            arrived += 1;
            next_arrival = inter_arrival * arrived as f64;
        }
        while running.len() < cap && !queue.is_empty() {
            let r = queue.remove(0);
            let cost = prefill_cost(r.input_len);
            if sink.is_some() {
                spans.push(TraceEvent::span(
                    ENGINE,
                    "prefill",
                    "phase",
                    now * 1e6,
                    cost * 1e6,
                ));
            }
            now += cost;
            if r.speculative {
                stats.spec_requests += 1;
            } else {
                stats.plain_requests += 1;
            }
            running.push(r);
        }
        max_concurrency = max_concurrency.max(running.len());

        if running.is_empty() {
            if next_arrival >= cfg.duration_sec {
                break;
            }
            now = next_arrival;
            continue;
        }

        // One tree-verify iteration for the whole running batch: the
        // plan folds every request's candidates (or single token) into
        // one wide-N launch over the topology-attributed KV context.
        let b = running.len();
        let plan = plan_step(
            running
                .iter()
                .map(|r| (r.speculative, r.input_len + r.generated + 1)),
            verifier.tree(),
        );
        let draft = draft_sec_of(plan.spec_batch);
        let verify = lin(plan.verify_tokens)
            + decode_overhead_sec(spec, &cfg.model, cfg.framework, cfg.tp, b, plan.sum_ctx);
        let step = draft + verify;
        if sink.is_some() {
            if plan.spec_batch == 0 {
                spans.push(
                    TraceEvent::span(ENGINE, "decode_iter", "phase", now * 1e6, step * 1e6)
                        .with_arg("batch", b as f64),
                );
            } else {
                spans.push(
                    TraceEvent::span(ENGINE, "draft", "phase", now * 1e6, draft * 1e6)
                        .with_arg("spec_batch", plan.spec_batch as f64),
                );
                spans.push(
                    TraceEvent::span(ENGINE, "verify", "phase", (now + draft) * 1e6, verify * 1e6)
                        .with_arg("tokens", plan.verify_tokens as f64),
                );
            }
        }
        now += step;
        iterations += 1;
        batch_sum += b as f64;
        stats.verify_tokens += plan.verify_tokens as u64;
        stats.verify_sec += verify;
        if plan.spec_batch > 0 {
            stats.spec_iterations += 1;
            stats.draft_sec += draft;
            stats.draft_tokens += (plan.spec_batch * draft_tokens_req) as u64;
            stats.proposed += (plan.spec_batch * tree_nodes) as u64;
        }

        // Commit: speculative requests take their accepted prefix plus
        // the bonus token and roll the rejected candidates back out of
        // the KV cache; plain requests commit one token as before.
        let mut committed_now = 0usize;
        for r in running.iter_mut() {
            let commit = if r.speculative && tree_nodes > 0 {
                let remaining = r.output_len - r.generated;
                let o = verifier.outcome(r.id, r.generated as u64, remaining);
                stats.accepted += o.accepted as u64;
                stats.bonus += 1;
                stats.rolled_back += o.rolled_back as u64;
                o.committed
            } else {
                1
            };
            r.generated += commit;
            committed_now += commit;
        }
        tokens_out += committed_now;
        if sink.is_some() && plan.spec_batch > 0 {
            spans.push(
                TraceEvent::instant(ENGINE, "accept", "phase", now * 1e6)
                    .with_arg("committed", committed_now as f64),
            );
        }
        running.retain(|r| {
            if r.generated >= r.output_len {
                latencies.push(now - r.arrival);
                false
            } else {
                true
            }
        });
    }

    if let Some(sink) = sink {
        sink.name_track(ENGINE, "serving sim (sim µs)", "engine");
        sink.extend(spans);
    }

    latencies.sort_by(f64::total_cmp);
    let completed = latencies.len();
    let mean = if completed == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / completed as f64
    };
    let p95 = ServingReport::p95_from_sorted(&latencies);
    SpecServingReport {
        serving: ServingReport {
            completed,
            in_flight: queue.len() + running.len(),
            throughput_rps: completed as f64 / now.max(1e-9),
            tokens_per_sec: tokens_out as f64 / now.max(1e-9),
            mean_latency_sec: mean,
            p95_latency_sec: p95,
            mean_batch: if iterations == 0 {
                0.0
            } else {
                batch_sum / iterations as f64
            },
            max_concurrency,
            iterations,
            tokens_per_iteration: if iterations == 0 {
                0.0
            } else {
                tokens_out as f64 / iterations as f64
            },
        },
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(framework: Framework, arrival_rps: f64) -> ServingConfig {
        ServingConfig {
            model: ModelConfig::opt_13b(),
            framework,
            sparsity: 0.6,
            tp: 2,
            max_batch: 32,
            arrival_rps,
            input_len: 64,
            output_len: 128,
            duration_sec: 60.0,
            mix: LengthMix::Uniform,
        }
    }

    #[test]
    fn light_load_is_latency_dominated() {
        let spec = GpuSpec::rtx4090();
        let r = serve(&spec, &cfg(Framework::SpInfer, 0.2));
        assert!(r.completed >= 8, "completed {}", r.completed);
        // At 0.2 rps the server keeps up: throughput ≈ arrival rate.
        assert!(
            (r.throughput_rps - 0.2).abs() < 0.06,
            "rps {}",
            r.throughput_rps
        );
        assert!(r.mean_batch < 4.0, "mean batch {}", r.mean_batch);
    }

    #[test]
    fn heavy_load_saturates_and_batches() {
        let spec = GpuSpec::rtx4090();
        let light = serve(&spec, &cfg(Framework::SpInfer, 0.2));
        let heavy = serve(&spec, &cfg(Framework::SpInfer, 50.0));
        assert!(heavy.mean_batch > 8.0, "mean batch {}", heavy.mean_batch);
        assert!(heavy.tokens_per_sec > 3.0 * light.tokens_per_sec);
        // Overload: queueing delay pushes latency far past service time.
        assert!(heavy.p95_latency_sec > light.p95_latency_sec);
        assert!(heavy.in_flight > 0);
    }

    #[test]
    fn spinfer_sustains_more_load_than_dense() {
        let spec = GpuSpec::rtx4090();
        let rate = 50.0; // Overload both; compare saturated throughput.
        let sp = serve(&spec, &cfg(Framework::SpInfer, rate));
        let ft = serve(&spec, &cfg(Framework::FasterTransformer, rate));
        assert!(
            sp.tokens_per_sec > 1.15 * ft.tokens_per_sec,
            "SpInfer {} vs FT {}",
            sp.tokens_per_sec,
            ft.tokens_per_sec
        );
    }

    #[test]
    fn memory_cap_bounds_concurrency() {
        let spec = GpuSpec::rtx4090();
        // Single GPU: dense 13B cannot serve at all; SpInfer can.
        let mut c = cfg(Framework::SpInfer, 50.0);
        c.tp = 1;
        let r = serve(&spec, &c);
        assert!(r.max_concurrency >= 1);
        assert!(r.max_concurrency <= 32);
        let cap = memory_concurrency_cap(&spec, &c);
        assert!(r.max_concurrency <= cap.min(32));
    }

    #[test]
    fn mixed_lengths_complete_and_differ_in_latency() {
        let spec = GpuSpec::rtx4090();
        let mut c = cfg(Framework::SpInfer, 2.0);
        c.mix = LengthMix::RoundRobin(vec![(32, 32), (256, 512)]);
        let r = serve(&spec, &c);
        assert!(r.completed > 10, "completed {}", r.completed);
        // Long requests stretch the tail: p95 well above the mean.
        assert!(
            r.p95_latency_sec > 1.5 * r.mean_latency_sec,
            "p95 {} vs mean {}",
            r.p95_latency_sec,
            r.mean_latency_sec
        );
    }

    #[test]
    fn empty_round_robin_mix_is_a_typed_error_not_a_panic() {
        let spec = GpuSpec::rtx4090();
        let mut c = cfg(Framework::SpInfer, 2.0);
        c.mix = LengthMix::RoundRobin(vec![]);
        // Config-time validation rejects it...
        assert_eq!(c.validate(), Err(SpinferError::EmptyLengthMix));
        assert_eq!(
            serve_checked(&spec, &c).unwrap_err(),
            SpinferError::EmptyLengthMix
        );
        // ...and even the unchecked loop no longer divides by zero: the
        // defensive fallback serves the config's uniform lengths.
        let degenerate = serve(&spec, &c);
        c.mix = LengthMix::Uniform;
        let uniform = serve(&spec, &c);
        assert_eq!(degenerate.completed, uniform.completed);
        // A populated mix and a Uniform mix both validate.
        assert!(LengthMix::Uniform.validate().is_ok());
        assert!(LengthMix::RoundRobin(vec![(8, 8)]).validate().is_ok());
        assert!(serve_checked(&spec, &c).is_ok());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn infeasible_deployment_panics() {
        let spec = GpuSpec::rtx4090();
        let mut c = cfg(Framework::FasterTransformer, 1.0);
        c.tp = 1; // Dense OPT-13B does not fit one 24 GB GPU.
        serve(&spec, &c);
    }

    /// The linear probe the binary search replaced, kept as the oracle.
    fn linear_cap_oracle(spec: &GpuSpec, cfg: &ServingConfig) -> usize {
        let (max_in, max_out) = cfg.mix.max_lengths((cfg.input_len, cfg.output_len));
        let total_len = max_in + max_out;
        let mut n = 0usize;
        while n < CAP_CEILING {
            let fp = footprint(
                &cfg.model,
                cfg.framework,
                cfg.sparsity,
                cfg.tp,
                n + 1,
                total_len,
            );
            if fp.is_oom(spec) {
                break;
            }
            n += 1;
        }
        n
    }

    #[test]
    fn concurrency_cap_matches_linear_oracle() {
        let spec = GpuSpec::rtx4090();
        for fw in [
            Framework::SpInfer,
            Framework::FasterTransformer,
            Framework::FlashLlm,
        ] {
            for tp in [1usize, 2, 4] {
                let mut c = cfg(fw, 1.0);
                c.tp = tp;
                assert_eq!(
                    memory_concurrency_cap(&spec, &c),
                    linear_cap_oracle(&spec, &c),
                    "{fw:?} tp={tp}"
                );
            }
        }
        // Mixed lengths size KV for the worst-case profile.
        let mut c = cfg(Framework::SpInfer, 1.0);
        c.mix = LengthMix::RoundRobin(vec![(32, 32), (256, 512)]);
        assert_eq!(
            memory_concurrency_cap(&spec, &c),
            linear_cap_oracle(&spec, &c)
        );
    }

    #[test]
    fn serve_ctx_is_the_one_body_behind_both_wrappers() {
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 2.0);
        let plain = serve(&spec, &c);
        let via_ctx = serve_ctx(&LaunchCtx::new(&spec), &c);
        assert_eq!(plain.completed, via_ctx.completed);
        assert_eq!(
            plain.tokens_per_sec.to_bits(),
            via_ctx.tokens_per_sec.to_bits()
        );
        // A sink attached through the context records the same spans as
        // the `serve_with` wrapper.
        let s1 = gpu_sim::trace::TraceSink::new();
        let s2 = gpu_sim::trace::TraceSink::new();
        serve_with(&spec, &c, Some(&s1));
        serve_ctx(&LaunchCtx::new(&spec).with_sink(&s2), &c);
        assert_eq!(s1.finish().events.len(), s2.finish().events.len());
    }

    #[test]
    fn degenerate_spec_collapses_onto_incremental_bitwise() {
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 2.0);
        let plain = serve(&spec, &c);
        let r = serve_spec(&spec, &c, &SpecConfig::degenerate());
        assert_eq!(plain.completed, r.serving.completed);
        assert_eq!(plain.in_flight, r.serving.in_flight);
        assert_eq!(plain.iterations, r.serving.iterations);
        assert_eq!(plain.max_concurrency, r.serving.max_concurrency);
        assert_eq!(
            plain.tokens_per_sec.to_bits(),
            r.serving.tokens_per_sec.to_bits()
        );
        assert_eq!(
            plain.mean_latency_sec.to_bits(),
            r.serving.mean_latency_sec.to_bits()
        );
        assert_eq!(
            plain.p95_latency_sec.to_bits(),
            r.serving.p95_latency_sec.to_bits()
        );
        assert_eq!(
            plain.tokens_per_iteration.to_bits(),
            r.serving.tokens_per_iteration.to_bits()
        );
        // Nothing speculated: the ledger records only the plain path.
        assert_eq!(r.stats.spec_requests, 0);
        assert_eq!(r.stats.spec_iterations, 0);
        assert_eq!(r.stats.proposed, 0);
        assert_eq!(r.stats.draft_sec, 0.0);
        assert_eq!(r.tokens_per_launch().to_bits(), plain.mean_batch.to_bits());
    }

    #[test]
    fn degenerate_spec_records_the_incremental_trace() {
        use gpu_sim::trace::TraceSink;
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 2.0);
        let s_plain = TraceSink::new();
        serve_with(&spec, &c, Some(&s_plain));
        let s_spec = TraceSink::new();
        serve_spec_ctx(
            &LaunchCtx::new(&spec).with_sink(&s_spec),
            &c,
            &SpecConfig::degenerate(),
        );
        let (a, b) = (s_plain.finish(), s_spec.finish());
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(b.events.iter()) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ts_us.to_bits(), y.ts_us.to_bits());
            assert_eq!(x.dur_us.to_bits(), y.dur_us.to_bits());
            assert_eq!(x.arg, y.arg);
        }
    }

    #[test]
    fn high_acceptance_beats_incremental_and_zero_acceptance_loses() {
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 50.0); // saturated: batching regime
        let plain = serve(&spec, &c);
        let fast = serve_spec(
            &spec,
            &c,
            &SpecConfig {
                acceptance_rate: 0.8,
                ..SpecConfig::default()
            },
        );
        assert!(
            fast.serving.tokens_per_sec > 1.2 * plain.tokens_per_sec,
            "spec {} vs incremental {}",
            fast.serving.tokens_per_sec,
            plain.tokens_per_sec
        );
        assert!(fast.serving.tokens_per_iteration > 2.0 * plain.tokens_per_iteration);
        // Acceptance is measured against all 8 proposed candidates but
        // only one depth-3 path can be accepted, so 3/8 is the ceiling;
        // rate 0.8 lands near 2/8.
        assert!(fast.stats.observed_acceptance() > 0.15);
        assert!(fast.stats.observed_acceptance() <= 0.375);
        // Rejecting every candidate still pays for drafting and the
        // 9×-wide verify launches: strictly worse than incremental.
        let slow = serve_spec(
            &spec,
            &c,
            &SpecConfig {
                acceptance_rate: 0.0,
                ..SpecConfig::default()
            },
        );
        assert!(
            slow.serving.tokens_per_sec < plain.tokens_per_sec,
            "spec@0 {} vs incremental {}",
            slow.serving.tokens_per_sec,
            plain.tokens_per_sec
        );
        assert_eq!(slow.stats.accepted, 0);
        assert!(slow.stats.rolled_back > 0);
    }

    #[test]
    fn mixed_share_splits_the_batch_and_commits_within_bounds() {
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 10.0);
        let r = serve_spec(
            &spec,
            &c,
            &SpecConfig {
                spec_share: 0.5,
                ..SpecConfig::default()
            },
        );
        assert!(r.stats.spec_requests > 0);
        assert!(r.stats.plain_requests > 0);
        // Commits never overrun a request's output length: completed
        // tokens are bounded by completed-and-running demand.
        let max_tokens = (r.serving.completed + r.serving.in_flight) * c.output_len;
        assert!(r.stats.accepted + r.stats.bonus <= max_tokens as u64);
    }

    #[test]
    fn p95_index_rounding_edge_cases() {
        // Nearest-rank (`ceil(0.95 n)` clamped to [1, n], 1-based):
        // N=1 → the only sample; N=2 → the larger; N=19 → ceil(18.05) =
        // rank 19 (the max); N=20 → rank 19 of 20 (second-largest).
        let lat = |n: usize| (1..=n).map(|i| i as f64).collect::<Vec<_>>();
        assert_eq!(ServingReport::p95_from_sorted(&lat(1)), 1.0);
        assert_eq!(ServingReport::p95_from_sorted(&lat(2)), 2.0);
        assert_eq!(ServingReport::p95_from_sorted(&lat(19)), 19.0);
        assert_eq!(ServingReport::p95_from_sorted(&lat(20)), 19.0);
        assert_eq!(ServingReport::p95_from_sorted(&[]), 0.0);
    }

    #[test]
    fn traced_serve_matches_untraced_and_covers_the_horizon() {
        use gpu_sim::trace::{EventKind, TraceSink};
        let spec = GpuSpec::rtx4090();
        let c = cfg(Framework::SpInfer, 2.0);
        let plain = serve(&spec, &c);
        let sink = TraceSink::new();
        let traced = serve_with(&spec, &c, Some(&sink));
        // Tracing only records — the report is bit-identical.
        assert_eq!(plain.completed, traced.completed);
        assert_eq!(
            plain.throughput_rps.to_bits(),
            traced.throughput_rps.to_bits()
        );
        assert_eq!(
            plain.p95_latency_sec.to_bits(),
            traced.p95_latency_sec.to_bits()
        );
        let t = sink.finish();
        let spans: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .collect();
        // One span per prefill admission + one per decode iteration; at
        // 2 rps over 60 s there are at least `completed` of each kind.
        assert!(t.phase_names("phase").contains(&"prefill"));
        assert!(t.phase_names("phase").contains(&"decode_iter"));
        assert!(spans.len() >= 2 * plain.completed, "spans {}", spans.len());
        assert!(spans.iter().all(|e| e.dur_us >= 0.0 && e.ts_us >= 0.0));
        // Spans live on the serving sim clock: none extends past the
        // final sim timestamp implied by the horizon plus one step.
        let end = spans.iter().map(|e| e.ts_us + e.dur_us).fold(0.0, f64::max);
        assert!(end < (c.duration_sec + 10.0) * 1e6, "end {end}");
        // Decode spans carry the batch size as an argument.
        assert!(spans
            .iter()
            .filter(|e| e.name == "decode_iter")
            .all(|e| matches!(e.arg, Some(("batch", b)) if b >= 1.0)));
    }
}
