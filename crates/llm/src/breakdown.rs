//! Execution-time breakdown (paper Figures 2 and 15).

use std::ops::AddAssign;

/// Wall-time decomposition of an inference run, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Linear layers: SpMM for sparse frameworks, GEMM for dense ones.
    pub linear: f64,
    /// Multi-head attention (KV-cache reads, score/value products).
    pub mha: f64,
    /// Inter-GPU communication (tensor-parallel all-reduces).
    pub comm: f64,
    /// Everything else: layernorms, residuals, sampling, launch overhead.
    pub other: f64,
}

impl Breakdown {
    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.linear + self.mha + self.comm + self.other
    }

    /// Fraction of total spent in linear layers.
    pub fn linear_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.linear / self.total()
        }
    }

    /// Scales every component (e.g. per-token → per-run).
    pub fn scaled(&self, f: f64) -> Breakdown {
        Breakdown {
            linear: self.linear * f,
            mha: self.mha * f,
            comm: self.comm * f,
            other: self.other * f,
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        self.linear += rhs.linear;
        self.mha += rhs.mha;
        self.comm += rhs.comm;
        self.other += rhs.other;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let b = Breakdown {
            linear: 6.0,
            mha: 2.0,
            comm: 1.0,
            other: 1.0,
        };
        assert_eq!(b.total(), 10.0);
        assert_eq!(b.linear_fraction(), 0.6);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Breakdown {
            linear: 1.0,
            ..Default::default()
        };
        a += Breakdown {
            mha: 2.0,
            ..Default::default()
        };
        let s = a.scaled(2.0);
        assert_eq!(s.linear, 2.0);
        assert_eq!(s.mha, 4.0);
    }

    #[test]
    fn empty_breakdown_fraction_is_zero() {
        assert_eq!(Breakdown::default().linear_fraction(), 0.0);
    }
}
