//! Compute intensity and roofline placement (paper §3.2.2, Eqs. 6–8).
//!
//! The paper works in units of FP16 elements: for `O[M×N] = W[M×K] ×
//! X[K×N]` with `K` fixed, the FLOPs-per-element and traffic terms share
//! the `K` factor, so compute intensity reduces to
//!
//! * `CI_GEMM    = M·N / (M + N)` (Eq. 6),
//! * `CI_SpMM    = M·N / (M/CR + N)` (Eq. 7) — the format's compression
//!   ratio scales the weight-traffic term, and
//! * `CI_Optimal = M·N / (M·(1−s) + N)` (Eq. 8) — zero-overhead indexing.
//!
//! In the memory-bound region performance is linear in CI, which is the
//! paper's core argument: raising CR moves SpMM toward (and past) dense
//! GEMM without touching the kernel.

use gpu_sim::spec::GpuSpec;

/// Eq. 6: compute intensity of dense GEMM.
pub fn ci_gemm(m: usize, n: usize) -> f64 {
    (m as f64 * n as f64) / (m as f64 + n as f64)
}

/// Eq. 7: compute intensity of SpMM under a format with compression
/// ratio `cr`.
pub fn ci_spmm(m: usize, n: usize, cr: f64) -> f64 {
    assert!(cr > 0.0);
    (m as f64 * n as f64) / (m as f64 / cr + n as f64)
}

/// Eq. 8: the zero-index-overhead upper bound at sparsity `s`.
pub fn ci_optimal(m: usize, n: usize, s: f64) -> f64 {
    (m as f64 * n as f64) / (m as f64 * (1.0 - s) + n as f64)
}

/// Converts the paper's element-unit CI to FLOP/byte: each element pair
/// contributes 2 FLOPs and FP16 elements are 2 bytes, so the scale factor
/// is 1.0 — the units coincide.
pub fn ci_to_flop_per_byte(ci_elements: f64) -> f64 {
    ci_elements
}

/// A point on the roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RooflinePoint {
    /// Compute intensity in FLOP/byte.
    pub ci: f64,
    /// Attainable throughput in FLOP/s.
    pub flops: f64,
    /// Whether the point sits in the memory-bound region.
    pub memory_bound: bool,
}

/// Attainable performance at compute intensity `ci` on `spec`'s Tensor
/// Core roofline.
pub fn attainable_flops(spec: &GpuSpec, ci: f64) -> RooflinePoint {
    let mem = ci * spec.dram_bandwidth;
    let peak = spec.peak_tc_flops();
    RooflinePoint {
        ci,
        flops: mem.min(peak),
        memory_bound: mem < peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ci_skinny_n_is_about_n() {
        // For M >> N, CI ≈ N: the decode phase sits deep in the
        // memory-bound region.
        let ci = ci_gemm(28672, 16);
        assert!((ci - 16.0).abs() < 0.1, "ci {ci}");
    }

    #[test]
    fn spmm_ci_with_cr_1_equals_gemm() {
        assert!((ci_spmm(4096, 16, 1.0) - ci_gemm(4096, 16)).abs() < 1e-9);
    }

    #[test]
    fn higher_cr_raises_ci() {
        let lo = ci_spmm(4096, 16, 1.0);
        let hi = ci_spmm(4096, 16, 2.0);
        assert!(hi > lo);
        // But stays below the optimal bound at the matching sparsity:
        // CR(s=0.5) ≤ 2, so CI ≤ CI_optimal(0.5).
        assert!(ci_spmm(4096, 16, 1.78) <= ci_optimal(4096, 16, 0.5) + 1e-9);
    }

    #[test]
    fn optimal_ci_grows_with_sparsity() {
        assert!(ci_optimal(4096, 16, 0.7) > ci_optimal(4096, 16, 0.5));
    }

    #[test]
    fn decode_shapes_are_memory_bound() {
        let spec = GpuSpec::rtx4090();
        for &n in &[8usize, 16, 32] {
            let p = attainable_flops(&spec, ci_gemm(28672, n));
            assert!(p.memory_bound, "N={n} must be memory bound");
        }
    }

    #[test]
    fn prefill_shapes_cross_the_ridge() {
        let spec = GpuSpec::rtx4090();
        let p = attainable_flops(&spec, ci_gemm(28672, 4096));
        assert!(!p.memory_bound);
        assert_eq!(p.flops, spec.peak_tc_flops());
    }

    #[test]
    fn memory_bound_performance_is_linear_in_ci() {
        let spec = GpuSpec::rtx4090();
        let a = attainable_flops(&spec, 8.0);
        let b = attainable_flops(&spec, 16.0);
        assert!((b.flops / a.flops - 2.0).abs() < 1e-9);
    }
}
