//! Compression-ratio curves across formats (paper Eq. 1, Figure 3).

use spinfer_baselines::formats::csr::Csr;
use spinfer_baselines::formats::sparta_fmt::SpartaFormat;
use spinfer_baselines::formats::tiled_csl::TiledCsl;
use spinfer_core::tca_bme::{TcaBme, TcaBmeConfig};

/// A sparse storage format under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Compressed sparse row (Sputnik, cuSPARSE).
    Csr,
    /// Flash-LLM's Tiled-CSL.
    TiledCsl,
    /// SparTA's 2:4 + CSR composite.
    SparTa,
    /// SpInfer's TCA-BME.
    TcaBme,
    /// The zero-overhead theoretical optimum (values only).
    Optimal,
}

impl FormatKind {
    /// Display label matching the paper's Figure 3 legend.
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Csr => "CSR",
            FormatKind::TiledCsl => "Tiled-CSL",
            FormatKind::SparTa => "SparTA",
            FormatKind::TcaBme => "TCA-BME",
            FormatKind::Optimal => "Optimal",
        }
    }

    /// Formats plotted in Figure 3.
    pub fn all() -> [FormatKind; 5] {
        [
            FormatKind::Csr,
            FormatKind::TiledCsl,
            FormatKind::SparTa,
            FormatKind::TcaBme,
            FormatKind::Optimal,
        ]
    }
}

/// Analytical compression ratio of `format` for an `m×k` matrix at
/// uniform sparsity `s` (expected values; Eqs. 2, 3, 5, 9).
pub fn compression_ratio(format: FormatKind, m: usize, k: usize, s: f64) -> f64 {
    assert!((0.0..=1.0).contains(&s));
    let dense = (2 * m * k) as f64;
    let nnz = ((m * k) as f64 * (1.0 - s)).round() as usize;
    let stored = match format {
        FormatKind::Csr => Csr::storage_bytes_formula(m, nnz) as f64,
        FormatKind::TiledCsl => TiledCsl::storage_bytes_formula(m, k, nnz) as f64,
        FormatKind::SparTa => SpartaFormat::storage_bytes_formula(m, k, s),
        FormatKind::TcaBme => {
            TcaBme::storage_bytes_formula(m, k, nnz, TcaBmeConfig::default()) as f64
        }
        FormatKind::Optimal => (2 * nnz).max(1) as f64,
    };
    dense / stored
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: usize = 4096;
    const K: usize = 4096;

    #[test]
    fn figure3_orderings_at_50_percent() {
        // Paper Figure 3 at s = 0.5: Optimal > TCA-BME > SparTA > 1 >
        // Tiled-CSL ≈ 1 > CSR.
        let opt = compression_ratio(FormatKind::Optimal, M, K, 0.5);
        let bme = compression_ratio(FormatKind::TcaBme, M, K, 0.5);
        let sparta = compression_ratio(FormatKind::SparTa, M, K, 0.5);
        let csl = compression_ratio(FormatKind::TiledCsl, M, K, 0.5);
        let csr = compression_ratio(FormatKind::Csr, M, K, 0.5);
        assert!(opt > bme && bme > sparta && sparta > 1.0);
        assert!((csl - 1.0).abs() < 0.05);
        assert!(csr < 1.0);
    }

    #[test]
    fn tca_bme_above_one_even_at_30_percent() {
        assert!(compression_ratio(FormatKind::TcaBme, M, K, 0.3) > 1.0);
    }

    #[test]
    fn csr_crosses_one_around_two_thirds() {
        assert!(compression_ratio(FormatKind::Csr, M, K, 0.6) < 1.0);
        assert!(compression_ratio(FormatKind::Csr, M, K, 0.72) > 1.0);
    }

    #[test]
    fn known_values_at_50_percent() {
        let bme = compression_ratio(FormatKind::TcaBme, M, K, 0.5);
        assert!((bme - 1.78).abs() < 0.02, "TCA-BME {bme}");
        let opt = compression_ratio(FormatKind::Optimal, M, K, 0.5);
        assert!((opt - 2.0).abs() < 0.01);
    }

    #[test]
    fn csr_overtakes_bitmap_at_extreme_sparsity() {
        // Paper §6: above ~90% sparsity the fixed bitmap overhead loses
        // to CSR-style indexing.
        let bme = compression_ratio(FormatKind::TcaBme, M, K, 0.99);
        let csr = compression_ratio(FormatKind::Csr, M, K, 0.99);
        assert!(csr > bme, "CSR {csr} vs TCA-BME {bme} at 99%");
    }

    #[test]
    fn monotone_in_sparsity() {
        for f in [FormatKind::TcaBme, FormatKind::Optimal, FormatKind::Csr] {
            let lo = compression_ratio(f, M, K, 0.4);
            let hi = compression_ratio(f, M, K, 0.8);
            assert!(hi > lo, "{:?}", f);
        }
    }
}
