//! Roofline curve generation and launch classification.
//!
//! Produces the data series behind Figure 4 (attainable-performance curve
//! plus per-format operating points across a sparsity/batch grid) and
//! classifies simulated kernel launches against the device roofline —
//! connecting the analytical model's achieved numbers back to the
//! first-principles bound.

use crate::ci::{attainable_flops, ci_spmm};
use crate::compression::{compression_ratio, FormatKind};
use gpu_sim::kernel::LaunchResult;
use gpu_sim::spec::GpuSpec;

/// One point of a roofline data series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Compute intensity, FLOP/byte.
    pub ci: f64,
    /// Attainable throughput, FLOP/s.
    pub attainable: f64,
}

/// Samples the device roofline at logarithmically spaced CI values in
/// `[ci_min, ci_max]` — the backdrop curve of Figure 4.
pub fn roofline_curve(spec: &GpuSpec, ci_min: f64, ci_max: f64, points: usize) -> Vec<SweepPoint> {
    assert!(ci_min > 0.0 && ci_max > ci_min && points >= 2);
    let step = (ci_max / ci_min).powf(1.0 / (points - 1) as f64);
    let mut ci = ci_min;
    let mut out = Vec::with_capacity(points);
    for _ in 0..points {
        out.push(SweepPoint {
            ci,
            attainable: attainable_flops(spec, ci).flops,
        });
        ci *= step;
    }
    out
}

/// Operating points of every format for an `m×k` weight across batch
/// sizes and sparsities: `(format, n, sparsity, ci, attainable)`.
pub fn format_operating_points(
    spec: &GpuSpec,
    m: usize,
    k: usize,
    batches: &[usize],
    sparsities: &[f64],
) -> Vec<(FormatKind, usize, f64, f64, f64)> {
    let mut out = Vec::new();
    for &n in batches {
        for &s in sparsities {
            for f in FormatKind::all() {
                let ci = match f {
                    FormatKind::Optimal => crate::ci::ci_optimal(m, n, s),
                    _ => ci_spmm(m, n, compression_ratio(f, m, k, s)),
                };
                out.push((f, n, s, ci, attainable_flops(spec, ci).flops));
            }
        }
    }
    out
}

/// How a simulated launch sits relative to the device roofline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaunchClassification {
    /// Achieved FLOP/s (Tensor Core FLOPs over kernel time).
    pub achieved_flops: f64,
    /// Effective compute intensity (TC FLOPs over effective DRAM bytes).
    pub effective_ci: f64,
    /// The roofline bound at that CI.
    pub bound_flops: f64,
    /// Achieved over bound, in `(0, 1]` for a sound model.
    pub efficiency: f64,
    /// Whether the launch sits in the memory-bound region.
    pub memory_bound: bool,
}

/// Classifies a simulated launch against the device roofline.
pub fn classify_launch(spec: &GpuSpec, launch: &LaunchResult) -> LaunchClassification {
    let flops = launch.counters.tc_flops() as f64;
    let achieved = flops / launch.timing.time_sec.max(1e-12);
    let bytes = launch.timing.dram_bytes.max(1) as f64;
    let ci = flops / bytes;
    let point = attainable_flops(spec, ci);
    LaunchClassification {
        achieved_flops: achieved,
        effective_ci: ci,
        bound_flops: point.flops,
        efficiency: achieved / point.flops.max(1.0),
        memory_bound: point.memory_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spinfer_core::{FormatStats, SpinferSpmm};

    #[test]
    fn curve_is_monotone_then_flat() {
        let spec = GpuSpec::rtx4090();
        let curve = roofline_curve(&spec, 1.0, 10_000.0, 64);
        assert_eq!(curve.len(), 64);
        for w in curve.windows(2) {
            assert!(w[1].attainable >= w[0].attainable);
        }
        assert_eq!(curve.last().unwrap().attainable, spec.peak_tc_flops());
    }

    #[test]
    fn operating_points_order_by_compression() {
        // At fixed n and s, the TCA-BME point must sit above CSR's.
        let spec = GpuSpec::rtx4090();
        let pts = format_operating_points(&spec, 4096, 4096, &[16], &[0.5]);
        let get = |f: FormatKind| pts.iter().find(|p| p.0 == f).unwrap().4;
        assert!(get(FormatKind::TcaBme) > get(FormatKind::Csr));
        assert!(get(FormatKind::Optimal) >= get(FormatKind::TcaBme));
    }

    #[test]
    fn classify_decode_launch_as_memory_bound_and_near_bound() {
        // The SpInfer kernel at a decode shape should achieve a healthy
        // fraction of its own roofline bound and be classified
        // memory-bound — the Figure 4 story, measured not assumed.
        let spec = GpuSpec::rtx4090();
        let run = SpinferSpmm::new().estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.6), 16);
        let c = classify_launch(&spec, &run.chain.launches[0]);
        assert!(c.memory_bound);
        assert!(
            c.efficiency > 0.5 && c.efficiency <= 1.0,
            "efficiency {}",
            c.efficiency
        );
    }

    #[test]
    #[should_panic]
    fn bad_curve_range_panics() {
        roofline_curve(&GpuSpec::rtx4090(), 10.0, 1.0, 8);
    }
}
