//! # spinfer-roofline — compute-intensity and roofline analysis
//!
//! Implements the paper's §3.2 analysis: the compression-ratio metric
//! (Eq. 1) across sparse formats (Figure 3) and the compute-intensity /
//! roofline placement of GEMM vs SpMM (Eqs. 6–8, Figure 4).

pub mod ci;
pub mod compression;
pub mod sweep;

pub use ci::{attainable_flops, ci_gemm, ci_optimal, ci_spmm, RooflinePoint};
pub use compression::{compression_ratio, FormatKind};
pub use sweep::{classify_launch, format_operating_points, roofline_curve};
