//! Shared Memory Bitmap Decoding (SMBD), paper §4.3.3 and Algorithm 2.
//!
//! SMBD turns a bitmap-compressed `WTile` in shared memory into the exact
//! per-lane register distribution `mma.m16n8k16` requires, without any
//! stored offsets:
//!
//! * **PopCount** accumulates `__popcll` over preceding BitmapTiles to find
//!   each tile's base offset into the compressed `Values` array.
//! * **MaskedPopCount** gives each lane the number of non-zeros before its
//!   own bit position (`2 × lane` for the register's low half).
//!
//! Decoding is two-phase: Phase I resolves each lane's `a0` (bit `2l`)
//! with one masked popcount; Phase II resolves `a1` (bit `2l + 1`) by
//! *reusing* the Phase I count — if `a0` was non-zero the offset advances
//! by one — so no second popcount is needed.
//!
//! Instruction and shared-memory costs are recorded per decode so the
//! analytic estimator (used at paper-scale shapes) and the functional
//! path share one source of truth: the constants below.

use crate::payload::Payload;
use gpu_sim::bitops::{masked_popc64, popc64, test_bit};
use gpu_sim::counters::Counters;
use gpu_sim::fault::FaultInjector;
use gpu_sim::fp16::{f16_to_f32_slice, pack_f16x2, Half};
use gpu_sim::shared_memory::{
    warp_smem_broadcast_load, warp_smem_gather_load_f, warp_smem_load, warp_smem_load_f, BANK_WORD,
};
use gpu_sim::tensor_core::{lane_quadrant_coords, FragA, QUAD_ORIGINS};

/// A decode invariant violated at runtime — the typed form of what the
/// unchecked decode would do by panicking (overrun) or silently
/// propagating (non-finite values). Mapped to
/// [`crate::error::KernelError`] by the checked SpMM path, which adds
/// the GroupTile coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeFault {
    /// The bitmaps demanded more values than the buffer holds — the
    /// signature of a flipped bitmap bit inflating `popc64` offsets.
    Overrun {
        /// Highest value index the decode tried to touch, plus one.
        needed: usize,
        /// Values actually available.
        available: usize,
    },
    /// A decoded element is NaN/Inf. Weights are finite by contract, so
    /// a non-finite decode means an in-flight value was poisoned.
    NonFinite,
}

/// Integer instructions per lane for Phase I: mask build, popcount, bit
/// test, address add.
pub const INT_INSTS_PHASE1: u64 = 4;
/// Integer instructions per lane for Phase II: bit test, offset select,
/// register pack.
pub const INT_INSTS_PHASE2: u64 = 3;
/// Warp-level integer instructions per BitmapTile for the running base
/// offset (popcount + accumulate).
pub const INT_INSTS_BASE: u64 = 2;
/// Shared-memory load instructions per BitmapTile: one 8-byte bitmap
/// broadcast plus one 2-byte gather per phase.
pub const SMEM_LOADS_PER_BT: u64 = 3;

/// Decodes one 8×8 BitmapTile into the 32 packed `.f16x2` registers of a
/// warp (one register per lane, covering the quadrant).
///
/// `values` is the GroupTile's compressed value buffer (resident in shared
/// memory); `base` is this BitmapTile's starting offset within it, found
/// by accumulating `popc64` over preceding tiles. Returns the packed
/// registers and records the decode's hardware events.
pub fn decode_bitmap_tile(
    counters: &mut Counters,
    bitmap: u64,
    values: &[Half],
    base: usize,
    values_smem_base: u64,
) -> [u32; 32] {
    decode_bitmap_tile_f(counters, bitmap, values, base, values_smem_base, None, 0).expect(
        "SMBD decode overran the GroupTile value buffer — bitmap population \
         exceeds the encoded value span (corrupted bitmap?)",
    )
}

/// Fault-aware, non-panicking [`decode_bitmap_tile`]: the single decode
/// implementation. With `fault = None` the counter stream and registers
/// are exactly the golden path's; a bitmap whose population overruns
/// `values` returns [`DecodeFault::Overrun`] instead of panicking. When
/// an injector is supplied, each value gather may have one lane's
/// loaded FP16 poisoned (keyed by `site_key`, which the caller derives
/// from the GroupTile/TCTile coordinates — shared-memory addresses
/// repeat across tiles and cannot serve as keys).
#[allow(clippy::too_many_arguments)]
pub fn decode_bitmap_tile_f(
    counters: &mut Counters,
    bitmap: u64,
    values: &[Half],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<[u32; 32], DecodeFault> {
    let (a0, a1) = decode_bitmap_tile_halves_f(
        counters,
        bitmap,
        values,
        base,
        values_smem_base,
        fault,
        site_key,
    )?;
    let mut regs = [0u32; 32];
    for lane in 0..32 {
        regs[lane] = pack_f16x2(a0[lane], a1[lane]);
    }
    Ok(regs)
}

/// The single decode implementation, returning the per-lane `(a0, a1)`
/// halves before any register packing — so callers that want `f32` rows
/// skip the pack/unpack round-trip entirely. Generic over the value
/// payload: the bitmap walk, rank arithmetic, lane lists, and counter
/// writes never depend on the element type — only the gather word spans
/// (scaled by [`Payload::BYTES`]), the zero fill, and the poison
/// projection do. For `P = Half` every expression reduces to the
/// pre-generic FP16 implementation (`lo * 2` / `hi * 2 + 1` spans), so
/// the FP16 counter stream and registers are bit-unchanged.
///
/// The inner loop is a *set-bit sweep*: iterate the bitmap's set bits in
/// ascending position with a running rank instead of testing all 64 bit
/// positions per tile. The rank of bit `2l` equals
/// `masked_popc64(bitmap, 2l)` and the rank of bit `2l + 1` equals the
/// Phase I count plus the `a0` advance, so every value index, gather
/// address, and active-lane list is identical to the branchy per-lane
/// formulation ([`decode_bitmap_tile_scalar`] retains it; the proptest
/// suite pins them equal). Counter writes — broadcast, per-phase integer
/// instructions, gated gathers — are byte-for-byte the original
/// sequence; the broadcast and gathers go through the span-based
/// shared-memory entry points, which are themselves pinned equal to the
/// address-array forms, so no per-lane address arrays are built on this
/// path. Each phase's gather addresses ascend with the sweep, so its
/// word span is fully determined by the first and last active value
/// index.
#[allow(clippy::too_many_arguments)]
fn decode_bitmap_tile_halves_f<P: Payload>(
    counters: &mut Counters,
    bitmap: u64,
    values: &[P],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<([P; 32], [P; 32]), DecodeFault> {
    let need = base + popc64(bitmap) as usize;
    if need > values.len() {
        return Err(DecodeFault::Overrun {
            needed: need,
            available: values.len(),
        });
    }

    // Bitmap broadcast load: every lane reads the same 8-byte word.
    warp_smem_broadcast_load(counters, 8);

    // One sweep over the set bits resolves both phases: even bits are
    // Phase I (`a0`, lane = pos/2), odd bits Phase II (`a1`). Bits come
    // out in ascending position, so each phase's active-lane list is
    // built in the same ascending-lane order the per-lane loops produce
    // and its first/last value index bound the gather's word span.
    let mut a0 = [P::ZERO; 32];
    let mut a1 = [P::ZERO; 32];
    let mut phase1_lanes = [0usize; 32];
    let mut phase1_active = 0usize;
    let (mut p1_lo, mut p1_hi) = (0usize, 0usize);
    let mut phase2_lanes = [0usize; 32];
    let mut phase2_active = 0usize;
    let (mut p2_lo, mut p2_hi) = (0usize, 0usize);
    let mut bm = bitmap;
    let mut rank = 0usize;
    while bm != 0 {
        let pos = bm.trailing_zeros() as usize;
        let lane = pos >> 1;
        let idx = base + rank;
        if pos & 1 == 0 {
            a0[lane] = values[idx];
            if phase1_active == 0 {
                p1_lo = idx;
            }
            p1_hi = idx;
            phase1_lanes[phase1_active] = lane;
            phase1_active += 1;
        } else {
            a1[lane] = values[idx];
            if phase2_active == 0 {
                p2_lo = idx;
            }
            p2_hi = idx;
            phase2_lanes[phase2_active] = lane;
            phase2_active += 1;
        }
        rank += 1;
        bm &= bm - 1;
    }

    // Word span of a phase's `P::BYTES`-wide gather: first word of the
    // lowest address to last word of the highest — the same bounds
    // `analyze_warp_access` derives from the full address array.
    let elem = P::BYTES as u64;
    let word_span = |lo: usize, hi: usize| {
        let first = (values_smem_base + lo as u64 * elem) / BANK_WORD;
        let last = (values_smem_base + hi as u64 * elem + (elem - 1)) / BANK_WORD;
        last - first
    };

    counters.cuda_int_insts += INT_INSTS_PHASE1 + INT_INSTS_BASE;
    counters.insts_issued += INT_INSTS_PHASE1 + INT_INSTS_BASE;
    if phase1_active > 0 {
        if let Some((sel, poison)) = warp_smem_gather_load_f(
            counters,
            word_span(p1_lo, p1_hi),
            phase1_active as u32,
            fault,
            site_key ^ 0x5048_3141,
        ) {
            a0[phase1_lanes[sel]] = P::from_poison(poison);
        }
    }

    counters.cuda_int_insts += INT_INSTS_PHASE2;
    counters.insts_issued += INT_INSTS_PHASE2;
    if phase2_active > 0 {
        if let Some((sel, poison)) = warp_smem_gather_load_f(
            counters,
            word_span(p2_lo, p2_hi),
            phase2_active as u32,
            fault,
            site_key ^ 0x5048_3242,
        ) {
            a1[phase2_lanes[sel]] = P::from_poison(poison);
        }
    }

    Ok((a0, a1))
}

/// Retained scalar oracle of [`decode_bitmap_tile_f`]: the
/// pre-vectorization per-lane formulation — a `MaskedPopCount` and bit
/// test for all 32 lanes per phase, exactly Algorithm 2 as written —
/// kept as the independent definition the set-bit sweep is
/// proptest-pinned against (`tests/simd_equiv.rs`). Identical counter
/// writes, registers, and fault sites.
#[allow(clippy::too_many_arguments)]
pub fn decode_bitmap_tile_scalar(
    counters: &mut Counters,
    bitmap: u64,
    values: &[Half],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<[u32; 32], DecodeFault> {
    let mut regs = [0u32; 32];
    let need = base + popc64(bitmap) as usize;
    if need > values.len() {
        return Err(DecodeFault::Overrun {
            needed: need,
            available: values.len(),
        });
    }

    // Bitmap broadcast load: every lane reads the same 8-byte word.
    warp_smem_load(counters, &[Some(values_smem_base); 32], 8);

    // Phase I: decode a0 (bit 2*lane) — one MaskedPopCount per lane.
    let mut a0 = [Half::ZERO; 32];
    let mut phase1_count = [0u32; 32];
    let mut phase1_addrs = [None; 32];
    let mut phase1_lanes = [0usize; 32];
    let mut phase1_active = 0usize;
    for lane in 0..32 {
        let off = 2 * lane as u32;
        let count = masked_popc64(bitmap, off);
        phase1_count[lane] = count;
        if test_bit(bitmap, off) {
            let idx = base + count as usize;
            a0[lane] = values[idx];
            phase1_addrs[lane] = Some(values_smem_base + idx as u64 * 2);
            phase1_lanes[phase1_active] = lane;
            phase1_active += 1;
        }
    }
    counters.cuda_int_insts += INT_INSTS_PHASE1 + INT_INSTS_BASE;
    counters.insts_issued += INT_INSTS_PHASE1 + INT_INSTS_BASE;
    if phase1_active > 0 {
        if let Some((sel, poison)) =
            warp_smem_load_f(counters, &phase1_addrs, 2, fault, site_key ^ 0x5048_3141)
        {
            a0[phase1_lanes[sel]] = poison;
        }
    }

    // Phase II: decode a1 (bit 2*lane + 1), reusing the Phase I count.
    let mut a1 = [Half::ZERO; 32];
    let mut phase2_addrs = [None; 32];
    let mut phase2_lanes = [0usize; 32];
    let mut phase2_active = 0usize;
    for lane in 0..32 {
        let off = 2 * lane as u32 + 1;
        if test_bit(bitmap, off) {
            let advance = u32::from(test_bit(bitmap, 2 * lane as u32));
            let idx = base + (phase1_count[lane] + advance) as usize;
            a1[lane] = values[idx];
            phase2_addrs[lane] = Some(values_smem_base + idx as u64 * 2);
            phase2_lanes[phase2_active] = lane;
            phase2_active += 1;
        }
    }
    counters.cuda_int_insts += INT_INSTS_PHASE2;
    counters.insts_issued += INT_INSTS_PHASE2;
    if phase2_active > 0 {
        if let Some((sel, poison)) =
            warp_smem_load_f(counters, &phase2_addrs, 2, fault, site_key ^ 0x5048_3242)
        {
            a1[phase2_lanes[sel]] = poison;
        }
    }

    for lane in 0..32 {
        regs[lane] = pack_f16x2(a0[lane], a1[lane]);
    }
    Ok(regs)
}

/// Decodes a full 16×16 TCTile (four BitmapTiles in TL, BL, TR, BR order)
/// into an `mma` A fragment. `base` is the TCTile's starting offset in the
/// GroupTile's value buffer; returns the fragment and the total non-zeros
/// consumed, so the caller can advance to the next TCTile.
pub fn decode_tctile(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    values: &[Half],
    base: usize,
    values_smem_base: u64,
) -> (FragA, usize) {
    decode_tctile_f(counters, bitmaps, values, base, values_smem_base, None, 0).expect(
        "SMBD TCTile decode overran the GroupTile value buffer — bitmap \
         population exceeds the encoded value span (corrupted bitmap?)",
    )
}

/// Fault-aware, non-panicking [`decode_tctile`]; see
/// [`decode_bitmap_tile_f`] for the `fault`/`site_key` contract.
pub fn decode_tctile_f(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    values: &[Half],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<(FragA, usize), DecodeFault> {
    let mut frag = FragA::zero();
    let mut offset = base;
    for (reg, &bm) in bitmaps.iter().enumerate() {
        let regs = decode_bitmap_tile_f(
            counters,
            bm,
            values,
            offset,
            values_smem_base,
            fault,
            site_key.wrapping_add((reg as u64 + 1) << 48),
        )?;
        for lane in 0..32 {
            frag.regs[lane][reg] = regs[lane];
        }
        offset += popc64(bm) as usize;
    }
    Ok((frag, offset - base))
}

/// Decodes a full 16×16 TCTile straight to the decode-once `f32` row
/// view the flat-array mma entry points
/// ([`gpu_sim::tensor_core::mma_m16n8k16_f32`] /
/// [`mma_m16n8k16_bslice`](gpu_sim::tensor_core::mma_m16n8k16_bslice))
/// consume. One decode serves every N-block the tile multiplies, so the
/// per-MAC bit-decode of the fragment path disappears from the SpMM hot
/// loop. Counter writes are exactly those of [`decode_tctile`] — it *is*
/// the same decode, followed by one unpack of the 64 registers.
pub fn decode_tctile_f32(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    values: &[Half],
    base: usize,
    values_smem_base: u64,
) -> ([[f32; 16]; 16], usize) {
    decode_tctile_rows_f(counters, bitmaps, values, base, values_smem_base, None, 0).expect(
        "SMBD TCTile decode overran the GroupTile value buffer — bitmap \
         population exceeds the encoded value span (corrupted bitmap?)",
    )
}

/// Decodes a TCTile's four quadrants straight into `f32` rows, skipping
/// the `.f16x2` pack/unpack round-trip of the fragment path: each
/// quadrant's `(a0, a1)` halves are batch-converted through the FP16
/// LUT ([`gpu_sim::fp16::f16_to_f32_slice`]) and scattered to their row
/// coordinates. Packing to a register and unpacking via the same LUT is
/// lossless, and absent lanes hold `Half::ZERO` (→ `+0.0`), so the rows
/// are bit-identical to `decode_tctile_f(..).to_f32_rows()` — with the
/// exact same counter and fault-site stream.
#[allow(clippy::too_many_arguments)]
fn decode_tctile_rows_f(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    values: &[Half],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<([[f32; 16]; 16], usize), DecodeFault> {
    let mut rows = [[0.0f32; 16]; 16];
    let mut offset = base;
    for (reg, &bm) in bitmaps.iter().enumerate() {
        let (a0, a1) = decode_bitmap_tile_halves_f(
            counters,
            bm,
            values,
            offset,
            values_smem_base,
            fault,
            site_key.wrapping_add((reg as u64 + 1) << 48),
        )?;
        let mut f0 = [0.0f32; 32];
        let mut f1 = [0.0f32; 32];
        f16_to_f32_slice(&a0, &mut f0);
        f16_to_f32_slice(&a1, &mut f1);
        let (dr, dc) = QUAD_ORIGINS[reg];
        for lane in 0..32 {
            let (qr, qc) = lane_quadrant_coords(lane);
            rows[qr + dr][qc + dc] = f0[lane];
            rows[qr + dr][qc + dc + 1] = f1[lane];
        }
        offset += popc64(bm) as usize;
    }
    Ok((rows, offset - base))
}

/// Checked [`decode_tctile_f32`]: non-panicking on overruns, optional
/// fault injection on the value gathers, and a finiteness scan over the
/// decoded rows — a poisoned FP16 surfaces as [`DecodeFault::NonFinite`]
/// here instead of escaping into the accumulators.
pub fn decode_tctile_f32_checked(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    values: &[Half],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<([[f32; 16]; 16], usize), DecodeFault> {
    let (rows, consumed) = decode_tctile_rows_f(
        counters,
        bitmaps,
        values,
        base,
        values_smem_base,
        fault,
        site_key,
    )?;
    if rows.iter().flatten().any(|v| !v.is_finite()) {
        return Err(DecodeFault::NonFinite);
    }
    Ok((rows, consumed))
}

/// Decodes a full 16×16 TCTile of INT8 codes straight to the `i32` row
/// view the integer mma entry point
/// ([`gpu_sim::tensor_core::mma_m16n8k16_s8_ntiles`]) consumes — the
/// INT8 datapath's analogue of [`decode_tctile_f32`]. Same bitmap walk,
/// rank arithmetic, and quadrant scatter through the one shared
/// `decode_bitmap_tile_halves_f` implementation; only the gather word
/// spans shrink to the 1-byte element width. Returns the rows and the
/// non-zeros consumed.
pub fn decode_tctile_codes_i8(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    codes: &[i8],
    base: usize,
    values_smem_base: u64,
) -> ([[i32; 16]; 16], usize) {
    decode_tctile_codes_i8_f(counters, bitmaps, codes, base, values_smem_base, None, 0).expect(
        "SMBD TCTile decode overran the GroupTile code buffer — bitmap \
         population exceeds the encoded value span (corrupted bitmap?)",
    )
}

/// Fault-aware, non-panicking [`decode_tctile_codes_i8`]; see
/// [`decode_bitmap_tile_f`] for the `fault`/`site_key` contract. Note
/// that an injected poison projects to a (nonzero) `i8` code rather
/// than a NaN — integer lanes have no non-finite encoding, so poison
/// here is detectable by the D1 checksum but not by a finiteness scan
/// (the detector-coverage gap documented in DESIGN.md §14).
pub fn decode_tctile_codes_i8_f(
    counters: &mut Counters,
    bitmaps: &[u64; 4],
    codes: &[i8],
    base: usize,
    values_smem_base: u64,
    fault: Option<&FaultInjector>,
    site_key: u64,
) -> Result<([[i32; 16]; 16], usize), DecodeFault> {
    let mut rows = [[0i32; 16]; 16];
    let mut offset = base;
    for (reg, &bm) in bitmaps.iter().enumerate() {
        let (a0, a1) = decode_bitmap_tile_halves_f::<i8>(
            counters,
            bm,
            codes,
            offset,
            values_smem_base,
            fault,
            site_key.wrapping_add((reg as u64 + 1) << 48),
        )?;
        let (dr, dc) = QUAD_ORIGINS[reg];
        for lane in 0..32 {
            let (qr, qc) = lane_quadrant_coords(lane);
            rows[qr + dr][qc + dc] = i32::from(a0[lane]);
            rows[qr + dr][qc + dc + 1] = i32::from(a1[lane]);
        }
        offset += popc64(bm) as usize;
    }
    Ok((rows, offset - base))
}

/// Analytic cost of decoding one BitmapTile, mirroring the counter writes
/// of [`decode_bitmap_tile`] without executing it. Used by the estimator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtDecodeCost {
    /// Warp-level integer instructions.
    pub int_insts: u64,
    /// Shared-memory load instructions.
    pub smem_loads: u64,
    /// Shared-memory transactions (bitmap 8B broadcast = 1; each value
    /// gather of 2B within 64 consecutive values = 1 wavefront).
    pub smem_transactions: u64,
}

/// Per-BitmapTile analytic decode cost. `has_values` is false for an
/// all-zero bitmap (the gathers are predicated off entirely).
pub fn bt_decode_cost(has_values: bool) -> BtDecodeCost {
    BtDecodeCost {
        int_insts: INT_INSTS_PHASE1 + INT_INSTS_BASE + INT_INSTS_PHASE2,
        smem_loads: if has_values { SMEM_LOADS_PER_BT } else { 1 },
        // Bitmap broadcast: an 8-byte access runs as two half-warp phases,
        // one wavefront each. Value gathers: 64 consecutive 2-byte values
        // span 128 B = one conflict-free wavefront per phase.
        smem_transactions: if has_values { 4 } else { 2 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, DenseMatrix, ValueDist};
    use gpu_sim::tensor_core::lane_quadrant_coords;

    /// Encodes an 8×8 tile the way TCA-BME does: bitmap + packed values.
    fn encode_bt(tile: &DenseMatrix) -> (u64, Vec<Half>) {
        assert_eq!((tile.rows(), tile.cols()), (8, 8));
        let mut bm = 0u64;
        let mut vals = Vec::new();
        for bit in 0..64 {
            let v = tile.get(bit / 8, bit % 8);
            if !v.is_zero() {
                bm |= 1u64 << bit;
                vals.push(v);
            }
        }
        (bm, vals)
    }

    #[test]
    fn decode_reconstructs_quadrant() {
        for &s in &[0.0, 0.4, 0.6, 0.9] {
            let tile = random_sparse(8, 8, s, ValueDist::Uniform, 77);
            let (bm, vals) = encode_bt(&tile);
            let mut c = Counters::new();
            let regs = decode_bitmap_tile(&mut c, bm, &vals, 0, 0);
            for lane in 0..32 {
                let (r, col) = lane_quadrant_coords(lane);
                let (lo, hi) = gpu_sim::fp16::unpack_f16x2(regs[lane]);
                assert_eq!(lo, tile.get(r, col), "lane {lane} a0 sparsity {s}");
                assert_eq!(hi, tile.get(r, col + 1), "lane {lane} a1 sparsity {s}");
            }
        }
    }

    #[test]
    fn decode_with_base_offset() {
        let tile = random_sparse(8, 8, 0.5, ValueDist::Uniform, 78);
        let (bm, vals) = encode_bt(&tile);
        // Prepend 5 unrelated values; decode with base = 5.
        let mut buf = vec![Half::from_f32(9.0); 5];
        buf.extend_from_slice(&vals);
        let mut c = Counters::new();
        let regs = decode_bitmap_tile(&mut c, bm, &buf, 5, 0);
        let direct = decode_bitmap_tile(&mut Counters::new(), bm, &vals, 0, 0);
        assert_eq!(regs, direct);
    }

    #[test]
    fn decode_tctile_matches_frag_a_layout() {
        // Build a 16×16 tile, encode its four quadrants in TL,BL,TR,BR
        // order, decode, and compare against FragA::from_tile.
        let tile = random_sparse(16, 16, 0.5, ValueDist::Uniform, 79);
        let mut bitmaps = [0u64; 4];
        let mut values = Vec::new();
        for (q, (dr, dc)) in [(0, 0), (8, 0), (0, 8), (8, 8)].iter().enumerate() {
            let mut sub = DenseMatrix::zeros(8, 8);
            for r in 0..8 {
                for c in 0..8 {
                    sub.set(r, c, tile.get(r + dr, c + dc));
                }
            }
            let (bm, vals) = encode_bt(&sub);
            bitmaps[q] = bm;
            values.extend(vals);
        }
        let mut c = Counters::new();
        let (frag, consumed) = decode_tctile(&mut c, &bitmaps, &values, 0, 0);
        assert_eq!(consumed, values.len());
        let expected = FragA::from_tile(|r, col| tile.get(r, col));
        assert_eq!(frag, expected);
    }

    #[test]
    fn dense_tile_consumes_64_values() {
        let tile = random_sparse(8, 8, 0.0, ValueDist::Uniform, 80);
        let (bm, vals) = encode_bt(&tile);
        assert_eq!(vals.len(), 64);
        assert_eq!(popc64(bm), 64);
    }

    #[test]
    fn empty_tile_decodes_to_zero_with_minimal_cost() {
        let mut c = Counters::new();
        let regs = decode_bitmap_tile(&mut c, 0, &[], 0, 0);
        assert!(regs.iter().all(|&r| r == 0));
        // Only the bitmap broadcast (two half-warp phases) touches shared
        // memory.
        assert_eq!(c.smem_load_transactions, 2);
        assert_eq!(c.smem_bank_conflicts, 0);
    }

    #[test]
    fn functional_costs_match_analytic_model() {
        let tile = random_sparse(8, 8, 0.5, ValueDist::Uniform, 81);
        let (bm, vals) = encode_bt(&tile);
        let mut c = Counters::new();
        decode_bitmap_tile(&mut c, bm, &vals, 0, 0);
        let model = bt_decode_cost(true);
        assert_eq!(c.cuda_int_insts, model.int_insts);
        assert_eq!(
            c.smem_load_transactions, model.smem_transactions,
            "value gathers must be conflict-free wavefronts"
        );
        let empty_model = bt_decode_cost(false);
        let mut c2 = Counters::new();
        decode_bitmap_tile(&mut c2, 0, &[], 0, 0);
        assert_eq!(c2.smem_load_transactions, empty_model.smem_transactions);
    }

    #[test]
    fn checked_decode_matches_golden_with_no_injector() {
        let tile = random_sparse(8, 8, 0.5, ValueDist::Uniform, 83);
        let (bm, vals) = encode_bt(&tile);
        let mut cg = Counters::new();
        let golden = decode_bitmap_tile(&mut cg, bm, &vals, 0, 128);
        let mut cc = Counters::new();
        let checked = decode_bitmap_tile_f(&mut cc, bm, &vals, 0, 128, None, 9).expect("in bounds");
        assert_eq!(golden, checked);
        assert_eq!(cg, cc, "checked path must not perturb the counter stream");
    }

    #[test]
    fn checked_decode_reports_overrun_instead_of_panicking() {
        let tile = random_sparse(8, 8, 0.3, ValueDist::Uniform, 84);
        let (bm, vals) = encode_bt(&tile);
        assert!(!vals.is_empty());
        // Inflate the bitmap population past the value buffer — the
        // flipped-bit failure mode the unchecked path dies on.
        let corrupt = bm | (1u64 << 63) | (1u64 << 62) | 1;
        let pop = popc64(corrupt) as usize;
        if pop > vals.len() {
            let err = decode_bitmap_tile_f(&mut Counters::new(), corrupt, &vals, 0, 0, None, 0)
                .unwrap_err();
            assert_eq!(
                err,
                DecodeFault::Overrun {
                    needed: pop,
                    available: vals.len()
                }
            );
        }
        // Same corruption through the TCTile wrapper.
        let bitmaps = [corrupt, 0, 0, 0];
        assert!(matches!(
            decode_tctile_f32_checked(&mut Counters::new(), &bitmaps, &vals, 0, 0, None, 0),
            Err(DecodeFault::Overrun { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "corrupted bitmap")]
    fn unchecked_decode_panics_on_overrun_with_named_invariant() {
        decode_bitmap_tile(&mut Counters::new(), u64::MAX, &[Half::ONE; 3], 0, 0);
    }

    #[test]
    fn poison_injection_is_caught_by_finiteness_scan() {
        use gpu_sim::fault::{FaultInjector, FaultPlan};
        let tile = random_sparse(16, 16, 0.4, ValueDist::Uniform, 85);
        let mut bitmaps = [0u64; 4];
        let mut values = Vec::new();
        for (q, (dr, dc)) in [(0, 0), (8, 0), (0, 8), (8, 8)].iter().enumerate() {
            let mut sub = DenseMatrix::zeros(8, 8);
            for r in 0..8 {
                for c in 0..8 {
                    sub.set(r, c, tile.get(r + dr, c + dc));
                }
            }
            let (bm, vals) = encode_bt(&sub);
            bitmaps[q] = bm;
            values.extend(vals);
        }
        let plan = FaultPlan {
            fp16_poison_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let res =
            decode_tctile_f32_checked(&mut Counters::new(), &bitmaps, &values, 0, 0, Some(&inj), 7);
        assert_eq!(res.unwrap_err(), DecodeFault::NonFinite);
        // And with rates at zero the same call returns the golden rows.
        let clean = FaultInjector::new(FaultPlan::default());
        let (rows, consumed) = decode_tctile_f32_checked(
            &mut Counters::new(),
            &bitmaps,
            &values,
            0,
            0,
            Some(&clean),
            7,
        )
        .expect("zero rates never poison");
        let (golden_rows, golden_consumed) =
            decode_tctile_f32(&mut Counters::new(), &bitmaps, &values, 0, 0);
        assert_eq!(rows, golden_rows);
        assert_eq!(consumed, golden_consumed);
    }

    #[test]
    fn set_bit_sweep_matches_scalar_oracle() {
        // The sweep decode must reproduce the retained per-lane oracle
        // bitwise — registers and counters — across sparsity levels
        // including empty and dense tiles (proptest widens this in
        // tests/simd_equiv.rs).
        for (i, &s) in [1.0, 0.9, 0.6, 0.3, 0.0].iter().enumerate() {
            let tile = random_sparse(8, 8, s, ValueDist::Uniform, 86 + i as u64);
            let (bm, vals) = encode_bt(&tile);
            let mut c_sweep = Counters::new();
            let sweep =
                decode_bitmap_tile_f(&mut c_sweep, bm, &vals, 0, 64, None, 5).expect("in bounds");
            let mut c_oracle = Counters::new();
            let oracle = decode_bitmap_tile_scalar(&mut c_oracle, bm, &vals, 0, 64, None, 5)
                .expect("in bounds");
            assert_eq!(sweep, oracle, "sparsity {s}");
            assert_eq!(c_sweep, c_oracle, "sparsity {s}: counter stream drifted");
        }
    }

    #[test]
    fn value_gathers_are_conflict_free() {
        // 64 consecutive 2-byte values span 128 B: one wavefront per
        // phase, zero replays — the property Figure 12 credits SpInfer
        // with versus Flash-LLM's scatter.
        let tile = random_sparse(8, 8, 0.0, ValueDist::Uniform, 82);
        let (bm, vals) = encode_bt(&tile);
        let mut c = Counters::new();
        decode_bitmap_tile(&mut c, bm, &vals, 0, 256);
        assert_eq!(c.smem_bank_conflicts, 0);
    }

    /// Encodes a 16×16 tile's quadrants in TL,BL,TR,BR order with a
    /// caller-supplied per-element encoder.
    fn encode_tctile_with<T>(
        tile: &DenseMatrix,
        mut enc: impl FnMut(Half) -> T,
    ) -> ([u64; 4], Vec<T>) {
        let mut bitmaps = [0u64; 4];
        let mut values = Vec::new();
        for (q, (dr, dc)) in [(0, 0), (8, 0), (0, 8), (8, 8)].iter().enumerate() {
            let mut bm = 0u64;
            for bit in 0..64 {
                let v = tile.get(bit / 8 + dr, bit % 8 + dc);
                if !v.is_zero() {
                    bm |= 1u64 << bit;
                    values.push(enc(v));
                }
            }
            bitmaps[q] = bm;
        }
        (bitmaps, values)
    }

    #[test]
    fn i8_decode_reconstructs_tile_codes() {
        // Quantize a tile to codes, decode through the shared sweep, and
        // check every cell lands at its coordinate as a widened i32.
        let tile = random_sparse(16, 16, 0.5, ValueDist::Uniform, 90);
        let (bitmaps, codes) = encode_tctile_with(&tile, |v| (v.to_f32() * 100.0).round() as i8);
        let mut c = Counters::new();
        let (rows, consumed) = decode_tctile_codes_i8(&mut c, &bitmaps, &codes, 0, 0);
        assert_eq!(consumed, codes.len());
        for r in 0..16 {
            for col in 0..16 {
                let v = tile.get(r, col);
                let expect = if v.is_zero() {
                    0
                } else {
                    i32::from((v.to_f32() * 100.0).round() as i8)
                };
                assert_eq!(rows[r][col], expect, "({r},{col})");
            }
        }
    }

    #[test]
    fn i8_decode_shares_counter_structure_with_fp16() {
        // Same bitmaps, same rank walk: the i8 decode issues exactly the
        // FP16 decode's instruction counts; only gather *addresses*
        // shrink (1-byte elements), which here still yields identical
        // conflict-free transaction counts.
        let tile = random_sparse(16, 16, 0.4, ValueDist::Uniform, 91);
        let (bitmaps, vals) = encode_tctile_with(&tile, |v| v);
        let (_, codes) = encode_tctile_with(&tile, |_| 1i8);
        let mut cf = Counters::new();
        decode_tctile_f32(&mut cf, &bitmaps, &vals, 0, 0);
        let mut ci = Counters::new();
        decode_tctile_codes_i8(&mut ci, &bitmaps, &codes, 0, 0);
        assert_eq!(cf.cuda_int_insts, ci.cuda_int_insts);
        assert_eq!(cf.insts_issued, ci.insts_issued);
        assert_eq!(cf.smem_load_transactions, ci.smem_load_transactions);
        assert_eq!(ci.smem_bank_conflicts, 0);
    }

    #[test]
    fn i8_decode_reports_overrun() {
        let bitmaps = [u64::MAX, 0, 0, 0];
        let codes = vec![1i8; 3];
        assert!(matches!(
            decode_tctile_codes_i8_f(&mut Counters::new(), &bitmaps, &codes, 0, 0, None, 0),
            Err(DecodeFault::Overrun { .. })
        ));
    }

    #[test]
    fn i8_poison_lands_in_decoded_rows() {
        use gpu_sim::fault::{FaultInjector, FaultPlan};
        let tile = random_sparse(16, 16, 0.3, ValueDist::Uniform, 92);
        let (bitmaps, codes) = encode_tctile_with(&tile, |_| 7i8);
        let plan = FaultPlan {
            fp16_poison_rate: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let (rows, _) =
            decode_tctile_codes_i8_f(&mut Counters::new(), &bitmaps, &codes, 0, 0, Some(&inj), 3)
                .expect("poison is not an overrun");
        let (clean, _) = decode_tctile_codes_i8(&mut Counters::new(), &bitmaps, &codes, 0, 0);
        assert_ne!(rows, clean, "an always-on injector must perturb codes");
    }
}
