//! Typed errors for the public API.
//!
//! The ergonomic entry points (`SpMMHandle::matmul`, `TcaBme::encode`)
//! panic on contract violations, matching CUDA's launch-failure
//! semantics; the `try_*` variants here return typed errors for callers
//! that handle invalid inputs at runtime (e.g. the CLI).

use crate::tca_bme::{TcaBmeConfig, TT_DIM};

/// Errors from the SpInfer public API.
#[derive(Clone, Debug, PartialEq)]
pub enum SpinferError {
    /// GroupTile dimensions must be positive multiples of the TCTile edge.
    InvalidTiling {
        /// The offending GroupTile rows.
        gt_rows: usize,
        /// The offending GroupTile columns.
        gt_cols: usize,
    },
    /// `X` must be `K×N` for a `M×K` weight matrix.
    DimensionMismatch {
        /// The weight matrix's K.
        expected_k: usize,
        /// The supplied activation row count.
        got: usize,
    },
    /// The sparsity argument must lie in `[0, 1]`.
    InvalidSparsity(f64),
}

impl std::fmt::Display for SpinferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpinferError::InvalidTiling { gt_rows, gt_cols } => write!(
                f,
                "GroupTile {gt_rows}x{gt_cols} is not a positive multiple of {TT_DIM}"
            ),
            SpinferError::DimensionMismatch { expected_k, got } => {
                write!(f, "X has {got} rows but the weights need K = {expected_k}")
            }
            SpinferError::InvalidSparsity(s) => write!(f, "sparsity {s} outside [0, 1]"),
        }
    }
}

impl std::error::Error for SpinferError {}

/// Validates a tiling configuration.
pub fn validate_config(config: &TcaBmeConfig) -> Result<(), SpinferError> {
    let ok = |d: usize| d > 0 && d.is_multiple_of(TT_DIM);
    if ok(config.gt_rows) && ok(config.gt_cols) {
        Ok(())
    } else {
        Err(SpinferError::InvalidTiling {
            gt_rows: config.gt_rows,
            gt_cols: config.gt_cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_config_accepts_and_rejects() {
        assert!(validate_config(&TcaBmeConfig::default()).is_ok());
        let bad = TcaBmeConfig {
            gt_rows: 24,
            gt_cols: 64,
        };
        assert_eq!(
            validate_config(&bad).unwrap_err(),
            SpinferError::InvalidTiling {
                gt_rows: 24,
                gt_cols: 64
            }
        );
        assert!(validate_config(&TcaBmeConfig {
            gt_rows: 0,
            gt_cols: 64
        })
        .is_err());
    }

    #[test]
    fn errors_display_usefully() {
        let e = SpinferError::DimensionMismatch {
            expected_k: 128,
            got: 64,
        };
        assert!(e.to_string().contains("128"));
        assert!(SpinferError::InvalidSparsity(1.5)
            .to_string()
            .contains("1.5"));
    }
}
