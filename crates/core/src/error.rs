//! Typed errors for the public API.
//!
//! The ergonomic entry points (`SpMMHandle::matmul`, `TcaBme::encode`)
//! panic on contract violations, matching CUDA's launch-failure
//! semantics; the `try_*` variants here return typed errors for callers
//! that handle invalid inputs at runtime (e.g. the CLI).

use crate::tca_bme::{TcaBmeConfig, TT_DIM};

/// Errors from the SpInfer public API.
#[derive(Clone, Debug, PartialEq)]
pub enum SpinferError {
    /// GroupTile dimensions must be positive multiples of the TCTile edge.
    InvalidTiling {
        /// The offending GroupTile rows.
        gt_rows: usize,
        /// The offending GroupTile columns.
        gt_cols: usize,
    },
    /// `X` must be `K×N` for a `M×K` weight matrix.
    DimensionMismatch {
        /// The weight matrix's K.
        expected_k: usize,
        /// The supplied activation row count.
        got: usize,
    },
    /// The sparsity argument must lie in `[0, 1]`.
    InvalidSparsity(f64),
    /// A TCA-BME container failed structural validation.
    Integrity(IntegrityError),
    /// A kernel detected corruption at runtime and could not recover.
    Kernel(KernelError),
    /// A kernel name not present in the registry
    /// (`spinfer_baselines::kernel_by_name`).
    UnknownKernel {
        /// The name that failed to resolve.
        name: String,
    },
    /// An encoding's padded value array exceeds the `u32` `GTileOffset`
    /// space, so offsets cannot address it (the serial encoder used to
    /// truncate silently).
    OffsetOverflow {
        /// Padded value elements required (saturating at `usize::MAX`).
        total: usize,
    },
    /// A `LengthMix::RoundRobin` workload with no profiles — request
    /// lengths would be undefined (the serving loop used to panic with a
    /// divide-by-zero on the profile index).
    EmptyLengthMix,
    /// A disaggregated deployment plan with an empty pool: both the
    /// prefill and decode stages need at least one GPU, or the stage
    /// rates are meaningless.
    DegenerateDisagg {
        /// GPUs assigned to the prefill pool.
        prefill_gpus: usize,
        /// GPUs assigned to the decode pool.
        decode_gpus: usize,
    },
    /// A fleet cluster configuration that cannot be simulated (zero
    /// replicas, non-positive horizon, a retry policy with no attempts,
    /// ...). The reason names the offending field.
    InvalidCluster {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A speculative-decoding configuration that cannot be simulated
    /// (an out-of-range acceptance rate or speculative share, an
    /// oversized tree budget, ...). The reason names the offending
    /// field.
    InvalidSpec {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
}

/// Structural defects in an encoded container. The variants name the
/// invariants of the TCA-BME three-array format (paper Eq. 9) checked by
/// [`crate::TcaBme::validate`]; the offset variants double as the
/// validation vocabulary for the offset-indexed baseline formats (CSR
/// row pointers, Tiled-CSL tile offsets, BCSR block rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntegrityError {
    /// `gtile_offsets` must hold `NGT + 1` entries.
    OffsetCount {
        /// Required entry count (`NGT + 1`).
        expected: usize,
        /// Entries actually present.
        got: usize,
    },
    /// GroupTile offsets must be monotonically non-decreasing.
    OffsetOrder {
        /// GroupTile whose span is inverted.
        gt: usize,
        /// The tile's start offset.
        start: u32,
        /// The tile's (smaller) end offset.
        end: u32,
    },
    /// Every offset must be [`crate::tca_bme::VALUE_PAD`]-aligned for
    /// `LDGSTS.128`.
    OffsetAlignment {
        /// Index into `gtile_offsets` of the misaligned entry.
        index: usize,
        /// The misaligned offset.
        offset: u32,
    },
    /// The final offset must equal the value-array length.
    OffsetEnd {
        /// Value-array length.
        expected: usize,
        /// Final offset actually stored.
        got: usize,
    },
    /// The bitmap array must hold `bts_per_gt` entries per GroupTile.
    BitmapCount {
        /// Required bitmap count.
        expected: usize,
        /// Bitmaps actually present.
        got: usize,
    },
    /// A GroupTile's bitmap population must match its value span
    /// (up to `VALUE_PAD - 1` padding elements).
    PopulationMismatch {
        /// GroupTile with the inconsistency.
        gt: usize,
        /// Total `popc64` over the tile's bitmaps.
        population: usize,
        /// Value span implied by the tile's offsets.
        span: usize,
    },
    /// The stored `nnz` must equal the total bitmap population.
    NnzMismatch {
        /// Population summed over all bitmaps.
        expected: usize,
        /// Stored `nnz`.
        got: usize,
    },
    /// An INT8 container must carry exactly one scale per GroupTile.
    ScaleCount {
        /// Required scale count (`NGT`).
        expected: usize,
        /// Scales actually present.
        got: usize,
    },
    /// An INT8 GroupTile scale must be finite and positive, or
    /// dequantization is meaningless.
    BadScale {
        /// GroupTile with the defective scale.
        gt: usize,
        /// IEEE-754 bits of the stored scale (bits, not the value —
        /// NaN payloads survive the round trip).
        bits: u32,
    },
}

/// Corruption detected *during* an SpMM launch by the checked kernel
/// path (`SpinferSpmm::run_checked`). These carry the GroupTile where
/// detection fired so operators can correlate with injected fault sites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A GroupTile's shared-memory image no longer matches its encoded
    /// checksum.
    ChecksumMismatch {
        /// GroupTile whose image failed verification.
        gt: usize,
        /// Checksum of the pristine encoding.
        expected: u32,
        /// Checksum of the loaded image.
        got: u32,
    },
    /// SMBD decode asked for more values than the GroupTile holds —
    /// a flipped bitmap bit inflated the `popc64` offsets.
    DecodeOverrun {
        /// GroupTile whose decode overran.
        gt: usize,
        /// Values the bitmaps demanded.
        needed: usize,
        /// Values actually present.
        available: usize,
    },
    /// A decoded fragment contained NaN/Inf not present in the encoding.
    NonFiniteDecode {
        /// GroupTile whose fragment went non-finite.
        gt: usize,
    },
    /// The recovery retry budget ran out before a clean load.
    RetryBudgetExhausted {
        /// GroupTile that kept failing.
        gt: usize,
        /// Attempts consumed (initial load + retries).
        attempts: u32,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::OffsetCount { expected, got } => {
                write!(f, "gtile_offsets has {got} entries, need {expected}")
            }
            IntegrityError::OffsetOrder { gt, start, end } => {
                write!(f, "GroupTile {gt} offsets decrease: {start} -> {end}")
            }
            IntegrityError::OffsetAlignment { index, offset } => {
                write!(f, "offset[{index}] = {offset} is not 4-element aligned")
            }
            IntegrityError::OffsetEnd { expected, got } => {
                write!(f, "final offset {got} != value count {expected}")
            }
            IntegrityError::BitmapCount { expected, got } => {
                write!(f, "bitmap array has {got} entries, need {expected}")
            }
            IntegrityError::PopulationMismatch {
                gt,
                population,
                span,
            } => write!(
                f,
                "GroupTile {gt}: bitmap population {population} inconsistent with value span {span}"
            ),
            IntegrityError::NnzMismatch { expected, got } => {
                write!(f, "stored nnz {got} != bitmap population {expected}")
            }
            IntegrityError::ScaleCount { expected, got } => {
                write!(
                    f,
                    "INT8 container has {got} scales, need one per GroupTile ({expected})"
                )
            }
            IntegrityError::BadScale { gt, bits } => {
                write!(
                    f,
                    "GroupTile {gt}: scale {:e} (bits {bits:#010x}) is not finite and positive",
                    f32::from_bits(*bits)
                )
            }
        }
    }
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::ChecksumMismatch { gt, expected, got } => write!(
                f,
                "GroupTile {gt}: checksum {got:#010x} != expected {expected:#010x}"
            ),
            KernelError::DecodeOverrun {
                gt,
                needed,
                available,
            } => write!(
                f,
                "GroupTile {gt}: SMBD decode needs {needed} values but only {available} present"
            ),
            KernelError::NonFiniteDecode { gt } => {
                write!(f, "GroupTile {gt}: decoded fragment contains NaN/Inf")
            }
            KernelError::RetryBudgetExhausted { gt, attempts } => {
                write!(f, "GroupTile {gt}: still corrupt after {attempts} attempts")
            }
        }
    }
}

impl std::fmt::Display for SpinferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpinferError::InvalidTiling { gt_rows, gt_cols } => write!(
                f,
                "GroupTile {gt_rows}x{gt_cols} is not a positive multiple of {TT_DIM}"
            ),
            SpinferError::DimensionMismatch { expected_k, got } => {
                write!(f, "X has {got} rows but the weights need K = {expected_k}")
            }
            SpinferError::InvalidSparsity(s) => write!(f, "sparsity {s} outside [0, 1]"),
            SpinferError::Integrity(e) => write!(f, "encoding integrity violation: {e}"),
            SpinferError::Kernel(e) => write!(f, "kernel fault: {e}"),
            SpinferError::UnknownKernel { name } => {
                write!(f, "unknown kernel '{name}': not in the kernel registry")
            }
            SpinferError::OffsetOverflow { total } => write!(
                f,
                "encoded values need {total} padded elements, beyond the u32 GTileOffset space"
            ),
            SpinferError::EmptyLengthMix => write!(
                f,
                "LengthMix::RoundRobin needs at least one (input, output) profile"
            ),
            SpinferError::DegenerateDisagg {
                prefill_gpus,
                decode_gpus,
            } => write!(
                f,
                "disaggregated plan needs GPUs in both pools: prefill {prefill_gpus}, decode {decode_gpus}"
            ),
            SpinferError::InvalidCluster { reason } => {
                write!(f, "invalid cluster config: {reason}")
            }
            SpinferError::InvalidSpec { reason } => {
                write!(f, "invalid speculative-decoding config: {reason}")
            }
        }
    }
}

impl From<IntegrityError> for SpinferError {
    fn from(e: IntegrityError) -> Self {
        SpinferError::Integrity(e)
    }
}

impl From<KernelError> for SpinferError {
    fn from(e: KernelError) -> Self {
        SpinferError::Kernel(e)
    }
}

impl std::error::Error for SpinferError {}
impl std::error::Error for IntegrityError {}
impl std::error::Error for KernelError {}

/// Validates a tiling configuration.
pub fn validate_config(config: &TcaBmeConfig) -> Result<(), SpinferError> {
    let ok = |d: usize| d > 0 && d.is_multiple_of(TT_DIM);
    if ok(config.gt_rows) && ok(config.gt_cols) {
        Ok(())
    } else {
        Err(SpinferError::InvalidTiling {
            gt_rows: config.gt_rows,
            gt_cols: config.gt_cols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_config_accepts_and_rejects() {
        assert!(validate_config(&TcaBmeConfig::default()).is_ok());
        let bad = TcaBmeConfig {
            gt_rows: 24,
            gt_cols: 64,
        };
        assert_eq!(
            validate_config(&bad).unwrap_err(),
            SpinferError::InvalidTiling {
                gt_rows: 24,
                gt_cols: 64
            }
        );
        assert!(validate_config(&TcaBmeConfig {
            gt_rows: 0,
            gt_cols: 64
        })
        .is_err());
    }

    #[test]
    fn errors_display_usefully() {
        let e = SpinferError::DimensionMismatch {
            expected_k: 128,
            got: 64,
        };
        assert!(e.to_string().contains("128"));
        assert!(SpinferError::InvalidSparsity(1.5)
            .to_string()
            .contains("1.5"));
    }

    /// One instance of every `SpinferError` variant (and every nested
    /// `IntegrityError`/`KernelError` variant). The match arms below use
    /// no wildcard, so adding a variant without extending this list is a
    /// compile error — the Display test stays exhaustive by force.
    fn every_error() -> Vec<SpinferError> {
        let integrity = [
            IntegrityError::OffsetCount {
                expected: 5,
                got: 4,
            },
            IntegrityError::OffsetOrder {
                gt: 2,
                start: 96,
                end: 64,
            },
            IntegrityError::OffsetAlignment {
                index: 3,
                offset: 97,
            },
            IntegrityError::OffsetEnd {
                expected: 128,
                got: 120,
            },
            IntegrityError::BitmapCount {
                expected: 64,
                got: 63,
            },
            IntegrityError::PopulationMismatch {
                gt: 1,
                population: 40,
                span: 32,
            },
            IntegrityError::NnzMismatch {
                expected: 100,
                got: 99,
            },
            IntegrityError::ScaleCount {
                expected: 16,
                got: 15,
            },
            IntegrityError::BadScale {
                gt: 4,
                bits: f32::NEG_INFINITY.to_bits(),
            },
        ];
        let kernel = [
            KernelError::ChecksumMismatch {
                gt: 7,
                expected: 0xdead_beef,
                got: 0x1234_5678,
            },
            KernelError::DecodeOverrun {
                gt: 7,
                needed: 70,
                available: 64,
            },
            KernelError::NonFiniteDecode { gt: 7 },
            KernelError::RetryBudgetExhausted { gt: 7, attempts: 3 },
        ];
        let mut all = vec![
            SpinferError::InvalidTiling {
                gt_rows: 24,
                gt_cols: 64,
            },
            SpinferError::DimensionMismatch {
                expected_k: 128,
                got: 64,
            },
            SpinferError::InvalidSparsity(1.5),
            SpinferError::UnknownKernel {
                name: "FlashAttention".to_string(),
            },
            SpinferError::OffsetOverflow {
                total: 4_294_967_296,
            },
            SpinferError::EmptyLengthMix,
            SpinferError::DegenerateDisagg {
                prefill_gpus: 0,
                decode_gpus: 8,
            },
            SpinferError::InvalidCluster {
                reason: "replicas must be >= 1".to_string(),
            },
            SpinferError::InvalidSpec {
                reason: "acceptance_rate must be in [0, 1]".to_string(),
            },
        ];
        all.extend(integrity.into_iter().map(SpinferError::Integrity));
        all.extend(kernel.into_iter().map(SpinferError::Kernel));
        all
    }

    #[test]
    fn every_display_arm_is_covered_and_distinct() {
        let all = every_error();
        let mut seen = std::collections::HashSet::new();
        for e in &all {
            let text = e.to_string();
            assert!(!text.is_empty(), "{e:?} renders empty");
            assert!(seen.insert(text.clone()), "duplicate Display: {text}");
            // Each arm must surface its distinguishing payload.
            let token: &str = match e {
                SpinferError::InvalidTiling { .. } => "24x64",
                SpinferError::DimensionMismatch { .. } => "K = 128",
                SpinferError::InvalidSparsity(_) => "1.5",
                SpinferError::UnknownKernel { .. } => "'FlashAttention'",
                SpinferError::OffsetOverflow { .. } => "4294967296 padded elements",
                SpinferError::EmptyLengthMix => "at least one (input, output) profile",
                SpinferError::DegenerateDisagg { .. } => "prefill 0, decode 8",
                SpinferError::InvalidCluster { .. } => "replicas must be >= 1",
                SpinferError::InvalidSpec { .. } => "acceptance_rate must be in [0, 1]",
                SpinferError::Integrity(i) => match i {
                    IntegrityError::OffsetCount { .. } => "4 entries",
                    IntegrityError::OffsetOrder { .. } => "96 -> 64",
                    IntegrityError::OffsetAlignment { .. } => "offset[3] = 97",
                    IntegrityError::OffsetEnd { .. } => "final offset 120",
                    IntegrityError::BitmapCount { .. } => "63 entries",
                    IntegrityError::PopulationMismatch { .. } => "population 40",
                    IntegrityError::NnzMismatch { .. } => "nnz 99",
                    IntegrityError::ScaleCount { .. } => "15 scales",
                    IntegrityError::BadScale { .. } => "GroupTile 4: scale",
                },
                SpinferError::Kernel(k) => match k {
                    KernelError::ChecksumMismatch { .. } => "0x12345678",
                    KernelError::DecodeOverrun { .. } => "needs 70 values",
                    KernelError::NonFiniteDecode { .. } => "NaN/Inf",
                    KernelError::RetryBudgetExhausted { .. } => "after 3 attempts",
                },
            };
            assert!(text.contains(token), "{text:?} missing {token:?}");
        }
    }

    #[test]
    fn nested_errors_convert_into_spinfer_error() {
        let i = IntegrityError::NnzMismatch {
            expected: 10,
            got: 9,
        };
        assert_eq!(SpinferError::from(i), SpinferError::Integrity(i));
        let k = KernelError::NonFiniteDecode { gt: 0 };
        assert_eq!(SpinferError::from(k), SpinferError::Kernel(k));
        // The wrappers prefix the nested message.
        assert!(SpinferError::from(k)
            .to_string()
            .starts_with("kernel fault"));
        assert!(SpinferError::from(i)
            .to_string()
            .starts_with("encoding integrity violation"));
    }
}
