//! The INT8 SpInfer-SpMM kernel: the quantized-precision sibling of the
//! FP16 kernel, running on the same TCA-BME structure.
//!
//! The datapath mirrors the FP16 kernel stage for stage — GTile
//! streaming, SMBD decode, `ldmatrix` X fragments, Tensor Core mma,
//! split-K reduction — with three precision-specific differences:
//!
//! 1. **Stored values are `i8` codes** (half the value traffic), decoded
//!    by the *same* SMBD implementation instantiated at the 1-byte
//!    element width ([`decode_tctile_codes_i8`]).
//! 2. **The mma work runs on the integer pipe**
//!    ([`mma_m16n8k16_s8_ntiles`], `mma.m16n8k16.s8.s8.s32`): exact
//!    `i32` accumulation, priced at twice the FP16 Tensor Core
//!    throughput by the timing model.
//! 3. **A scale epilogue** folds each GroupTile column's `i32`
//!    accumulators into the `f32` output with `scale_w[gt] × scale_x`
//!    — per-GroupTile symmetric weight scales from the container, one
//!    global activation scale per launch (`max|x| / 127`,
//!    order-independent and therefore job-count invariant).
//!
//! Capabilities come from the shared [`LaunchCtx`] seams: checked
//! launches validate the container (including scales) and run the D1
//! checksum retry loop over the landed `i8` image; decode overruns
//! (D2) retry and fall back exactly like FP16. The D3 finiteness scan
//! has no integer analogue — injected poison lands as a plausible code,
//! detectable by D1 but not by any per-value scan (the detector-
//! coverage gap documented in DESIGN.md §14).

use crate::error::{KernelError, SpinferError};
use crate::smbd::{decode_tctile_codes_i8, decode_tctile_codes_i8_f, DecodeFault};
use crate::tca_bme::{checksum_gtile, TcaBme, TcaBmeConfig, TcaBmeInt8, TT_DIM};
use gpu_sim::bitops::popc64;
use gpu_sim::counters::Counters;
use gpu_sim::exec::CounterShard;
use gpu_sim::fault::{flip_bit_u64, CommitFault, FaultInjector};
use gpu_sim::global::{warp_global_store, GlobalMemory, VAddr};
use gpu_sim::kernel::{LaunchChain, LaunchResult};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::shared_memory::warp_ldsm_x4;
use gpu_sim::spec::GpuSpec;
use gpu_sim::tensor_core::{mma_m16n8k16_s8_ntiles, AccS8, MAX_NTILES, MMA_K, MMA_M, MMA_N};
use gpu_sim::timing::L2Reuse;

use super::block::{
    record_ldgsts_stream, record_ldgsts_stream_f, stream_x_tile, BlockBases, BlockGrid,
    CheckedState,
};
use super::launch::fan_out_block_rows;
use super::traced::emit_chain_trace;
use super::{
    FormatStats, Geometry, LaunchCtx, Precision, SpinferSpmm, SpmmConfig, SpmmKernel, SpmmRun,
};

/// Launch-chain display name of the INT8 kernel.
const KERNEL_NAME_INT8: &str = "spinfer_spmm_int8";

/// The INT8 SpInfer-SpMM kernel (registry name `"SpInfer-INT8"`).
#[derive(Clone, Copy, Debug, Default)]
pub struct SpinferSpmmInt8 {
    /// Kernel configuration (shared shape with the FP16 kernel; the
    /// ablation switches only affect the FP16 datapath and are ignored
    /// here — the INT8 kernel always runs SMBD + async pipe).
    pub config: SpmmConfig,
}

impl SpinferSpmmInt8 {
    /// Creates a kernel with the default configuration.
    pub fn new() -> Self {
        SpinferSpmmInt8::default()
    }

    /// The FP16 kernel carrying the same configuration — the owner of
    /// the shared geometry, launch-shape, and estimator bodies.
    fn fp16(&self) -> SpinferSpmm {
        SpinferSpmm {
            config: self.config,
        }
    }

    /// Analytic timing estimate from format statistics — the shared
    /// estimator body at the INT8 precision: half the stored value
    /// traffic, `mma.s8` work, plus the scale-fold FP instructions.
    pub fn estimate(&self, spec: &GpuSpec, stats: &FormatStats, n: usize) -> SpmmRun {
        self.fp16()
            .estimate_impl(spec, stats, n, Precision::Int8, KERNEL_NAME_INT8)
    }

    /// Functional execution against a pre-quantized container.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.tiles.k`.
    pub fn run(&self, spec: &GpuSpec, w: &TcaBmeInt8, x: &DenseMatrix) -> SpmmRun {
        assert_eq!(x.rows(), w.tiles.k, "X must be K×N");
        self.launch_with(&LaunchCtx::new(spec), w, x)
            .expect("golden-path launch is infallible once dimensions are checked")
    }

    /// The one launch body behind every `SpinferSpmmInt8` entry point —
    /// the INT8 instantiation of the FP16 kernel's launch structure,
    /// running on the shared block-row fan-out.
    pub(crate) fn launch_with(
        &self,
        ctx: &LaunchCtx<'_>,
        w: &TcaBmeInt8,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        let spec = ctx.spec;
        let t = &w.tiles;
        if x.rows() != t.k {
            return Err(SpinferError::DimensionMismatch {
                expected_k: t.k,
                got: x.rows(),
            });
        }
        // Integrity preflight (checked launches only): structural +
        // scale validation, plus pristine per-GroupTile checksums for D1
        // — the generic checksum over the `i8` code bytes.
        let checksums = if ctx.checked() {
            w.validate()?;
            t.gtile_checksums()
        } else {
            Vec::new()
        };
        let checked = ctx.checked().then(|| CheckedState {
            checksums: &checksums,
            policy: ctx.effective_policy(),
        });
        let fault = ctx.fault;

        let n = x.cols();
        let stats = FormatStats::from_encoded(t);
        let geo = self.fp16().geometry_impl(spec, &stats, n, Precision::Int8);

        // Global activation scale: a commutative max reduction, so the
        // same at any job count or visit order.
        let xh = x.as_slice();
        let x_max = xh.iter().map(|h| h.to_f32().abs()).fold(0.0f32, f32::max);
        let scale_x = if x_max > 0.0 { x_max / 127.0 } else { 1.0 };

        // Virtual address space for coalescing analysis (1 B per code).
        let mut gm = GlobalMemory::new();
        let _offsets_base = gm.alloc(4 * t.gtile_offsets.len());
        let values_base = gm.alloc(t.values.len());
        let bitmaps_base = gm.alloc(8 * t.bitmaps.len());
        let x_base = gm.alloc(2 * t.k * geo.n_pad);
        let ws_base = gm.alloc(4 * t.m_pad * geo.n_pad * geo.split_k);
        let bases = BlockBases {
            values: values_base,
            bitmaps: bitmaps_base,
            x: x_base,
            ws: ws_base,
            smem_values: (t.config.bts_per_gt() * 8) as u64,
        };

        let gtiles_y = t.gtiles_y();
        let gtiles_x = t.gtiles_x();
        let slice_len = t.m_pad * geo.n_pad;
        let band_len = t.config.gt_rows * geo.n_pad;

        let (workspace, mut counters, x_counters, _spans) = fan_out_block_rows(
            gtiles_y,
            geo.split_k,
            slice_len,
            band_len,
            Int8Scratch::default,
            |scratch, ws_img, gty| {
                let mut shard = CounterShard::new();
                let mut x_shard = CounterShard::new();
                for nt in 0..geo.grid_x {
                    let n0 = nt * geo.tile_n;
                    for split in 0..geo.split_k {
                        let gx0 = split * geo.gtx_per_split;
                        let gx1 = (gx0 + geo.gtx_per_split).min(gtiles_x);
                        self.run_block_int8(
                            w,
                            x,
                            scale_x,
                            shard.counters(),
                            x_shard.counters(),
                            &mut ws_img[split * slice_len..][..slice_len],
                            scratch,
                            &geo,
                            &BlockGrid { gty, n0, gx0, gx1 },
                            &bases,
                            checked.as_ref(),
                            fault,
                        )?;
                    }
                }
                Ok((shard, x_shard, None))
            },
        )?;

        let x_requested = x_counters.dram_read_bytes;
        counters.merge(&x_counters);
        let l2 = [L2Reuse {
            buffer_bytes: (2 * t.k * geo.n_pad) as u64,
            requested_bytes: x_requested,
        }];

        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            KERNEL_NAME_INT8,
            spec,
            self.fp16().launch_shape(&geo),
            counters,
            &l2,
        ));

        let mut out_pad = vec![0.0f32; t.m_pad * geo.n_pad];
        if geo.split_k > 1 {
            let out_base = gm.alloc(4 * t.m_pad * geo.n_pad);
            chain.push(crate::reduction::run_reduction(
                spec,
                &workspace,
                &mut out_pad,
                t.m_pad * geo.n_pad,
                geo.split_k,
                ws_base,
                out_base,
            ));
        } else {
            out_pad.copy_from_slice(&workspace);
        }

        let mut output = vec![0.0f32; t.m * n];
        for r in 0..t.m {
            output[r * n..(r + 1) * n].copy_from_slice(&out_pad[r * geo.n_pad..r * geo.n_pad + n]);
        }
        if let Some(sink) = ctx.sink {
            emit_chain_trace(sink, KERNEL_NAME_INT8, &chain);
        }
        Ok(SpmmRun {
            output: Some(output),
            chain,
        })
    }

    /// One thread block's work at INT8 precision — the integer analogue
    /// of the FP16 `run_block`: same GTile/XTile streaming and cp.async
    /// discipline (via the shared helpers), SMBD decode to `i32` code
    /// rows, integer mma into per-warp `i32` accumulators, and the
    /// per-GroupTile scale fold into the `f32` accumulators at each
    /// GroupTile-column boundary.
    #[allow(clippy::too_many_arguments)]
    fn run_block_int8(
        &self,
        w: &TcaBmeInt8,
        x: &DenseMatrix,
        scale_x: f32,
        counters: &mut Counters,
        x_counters: &mut Counters,
        workspace: &mut [f32],
        scratch: &mut Int8Scratch,
        geo: &Geometry,
        at: &BlockGrid,
        bases: &BlockBases,
        checked: Option<&CheckedState<'_>>,
        fault: Option<&FaultInjector>,
    ) -> Result<(), KernelError> {
        let BlockGrid { gty, n0, gx0, gx1 } = *at;
        let t = &w.tiles;
        let cfg = t.config;
        let tt_rows = cfg.tt_rows();
        let tt_cols = cfg.tt_cols();
        let n8 = geo.tile_n / 8;
        let n = x.cols();
        debug_assert!(
            fault.is_none() || checked.is_some(),
            "an injector is only ever threaded through a checked launch"
        );

        let Int8Scratch {
            acc_i,
            acc_f,
            xq,
            bms_img,
            codes_img,
            tc_base,
        } = scratch;
        acc_i.clear();
        acc_i.resize(geo.warps * n8, [[0i32; MMA_N]; MMA_M]);
        acc_f.clear();
        acc_f.resize(geo.warps * n8, [[0.0f32; MMA_N]; MMA_M]);
        xq.clear();
        xq.resize(cfg.gt_cols * geo.tile_n, 0);

        let mut cp_async = gpu_sim::async_copy::AsyncCopyState::new();
        let xh = x.as_slice();
        for gtx in gx0..gx1 {
            let gt = t.gt_index(gty, gtx);
            let pristine_codes = t.gtile_values(gt);
            let pristine_bms = t.gtile_bitmaps(gt);
            let bm_addr = bases.bitmaps + (gt * cfg.bts_per_gt() * 8) as u64;
            let val_addr = bases.values + u64::from(t.gtile_offsets[gt]);
            let inject = fault.filter(|i| i.plan().armed() && i.gtile_enabled(gt));
            let fold_factor = w.scales[gt] * scale_x;

            // --- 1. GTile loading (bitmaps + codes), fault-aware ---
            load_gtile_codes_image(
                counters,
                inject,
                pristine_bms,
                pristine_codes,
                bm_addr,
                val_addr,
                bms_img,
                codes_img,
            );
            cp_async.issue();
            apply_commit_fault_i8(
                cp_async.commit_group_f(counters, inject, bm_addr),
                bms_img,
                codes_img,
                inject.is_some(),
            );

            // --- 3. XTile loading (FP16 rows; shared with FP16 path) ---
            stream_x_tile(counters, x_counters, bases.x, gtx, cfg.gt_cols, geo, n0);
            cp_async.issue();
            cp_async.commit_group();
            let retired = cp_async.wait_group(1);
            debug_assert_eq!(retired, 1, "sparse group retires first");

            // Quantize-once X tile for this GroupTile column: each code
            // depends only on its own element and the global scale.
            for kk in 0..cfg.gt_cols {
                let kr = gtx * cfg.gt_cols + kk;
                let row = &mut xq[kk * geo.tile_n..(kk + 1) * geo.tile_n];
                let take = geo.tile_n.min(n.saturating_sub(n0));
                if kr < x.rows() && take > 0 {
                    for (dst, h) in row[..take].iter_mut().zip(&xh[kr * n + n0..]) {
                        *dst = quantize_code(h.to_f32(), scale_x);
                    }
                    row[take..].fill(0);
                } else {
                    row.fill(0);
                }
            }

            // --- D1: checksum the landed image; retry from DRAM ---
            let mut verified = true;
            if let (Some(chk), Some(inj0)) = (checked, inject) {
                let expected = chk.checksums[gt];
                let mut attempt: u32 = 0;
                verified = loop {
                    attempt += 1;
                    if checksum_gtile(bms_img, codes_img) == expected {
                        if attempt > 1 {
                            counters.faults_recovered += 1;
                        }
                        break true;
                    }
                    counters.faults_detected += 1;
                    if attempt >= chk.policy.max_attempts {
                        break false;
                    }
                    let inj_r = inj0.reseeded(u64::from(attempt));
                    load_gtile_codes_image(
                        counters,
                        Some(&inj_r),
                        pristine_bms,
                        pristine_codes,
                        bm_addr,
                        val_addr,
                        bms_img,
                        codes_img,
                    );
                    cp_async.issue();
                    apply_commit_fault_i8(
                        cp_async.commit_group_f(counters, Some(&inj_r), bm_addr),
                        bms_img,
                        codes_img,
                        true,
                    );
                    cp_async.wait_group(0);
                };
            }
            if !verified {
                let chk = checked.expect("D1 only fails inside a checked launch");
                if !chk.policy.fallback {
                    return Err(KernelError::RetryBudgetExhausted {
                        gt,
                        attempts: chk.policy.max_attempts,
                    });
                }
                // Reference integer product from the pristine encoding —
                // exact, and folded with the same scales below.
                counters.fault_fallbacks += 1;
                fallback_gtile_codes(cfg, pristine_bms, pristine_codes, xq, geo, acc_i, n8);
                cp_async.wait_group(0);
                counters.barriers += 1;
                fold_scales(counters, fold_factor, acc_i, acc_f);
                continue;
            }
            let (bms, codes): (&[u64], &[i8]) = if inject.is_some() {
                (bms_img, codes_img)
            } else {
                (pristine_bms, pristine_codes)
            };

            // Per-TCTile base offsets: one prefix scan per GroupTile.
            tc_base.clear();
            let mut running = 0usize;
            for tc_bms in bms.chunks_exact(4) {
                tc_base.push(running);
                running += tc_bms.iter().map(|&b| popc64(b) as usize).sum::<usize>();
            }

            // --- 2. SMBD decode + 4./5. fragment loads + integer mma ---
            for warp in 0..geo.warps {
                let tty = warp % tt_rows;
                for ttx in 0..tt_cols {
                    let tc_idx = ttx * tt_rows + tty;
                    let base = tc_base[tc_idx];
                    let tc_bms: [u64; 4] = bms[tc_idx * 4..tc_idx * 4 + 4].try_into().expect(
                        "TCTile bitmap slice must hold exactly 4 BitmapTiles: gtile_bitmaps \
                         returns bts_per_gt() words, a multiple of BTS_PER_TT = 4",
                    );
                    let a_rows = match checked {
                        None => {
                            decode_tctile_codes_i8(
                                counters,
                                &tc_bms,
                                codes,
                                base,
                                bases.smem_values,
                            )
                            .0
                        }
                        Some(chk) => self.decode_codes_checked(
                            counters,
                            gt,
                            tc_idx,
                            bm_addr,
                            &tc_bms,
                            codes,
                            base,
                            pristine_bms,
                            pristine_codes,
                            bases.smem_values,
                            inject,
                            chk,
                        )?,
                    };
                    mma_row_int8(
                        counters,
                        xq,
                        geo,
                        ttx,
                        &a_rows,
                        &mut acc_i[warp * n8..(warp + 1) * n8],
                    );
                }
            }
            cp_async.wait_group(0);
            counters.barriers += 1;
            // --- Scale epilogue: fold this GroupTile's exact i32 sums
            //     into the f32 accumulators and reset the integer bank.
            fold_scales(counters, fold_factor, acc_i, acc_f);
        }
        cp_async.assert_drained();

        // --- Epilogue: store f32 accumulators to the workspace, same
        //     store pattern (two 8 B warp stores per fragment) as FP16.
        for (warp, acc_row) in acc_f.chunks(n8).enumerate() {
            let tty = warp % tt_rows;
            for (j, tile) in acc_row.iter().enumerate() {
                for (r, row) in tile.iter().enumerate() {
                    let gr = gty * cfg.gt_rows + tty * TT_DIM + r;
                    for (c, &v) in row.iter().enumerate() {
                        let gc = n0 + j * 8 + c;
                        if gc < geo.n_pad {
                            workspace[gr * geo.n_pad + gc] += v;
                        }
                    }
                }
                for half in 0..2 {
                    let mut addrs = [None; 32];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        let group = lane / 4;
                        let tid = lane % 4;
                        let gr = gty * cfg.gt_rows + tty * TT_DIM + group + 8 * half;
                        let gc = n0 + j * 8 + 2 * tid;
                        *slot = Some(bases.ws + (gr * geo.n_pad + gc) as u64 * 4);
                    }
                    warp_global_store(counters, &addrs, 8);
                }
            }
        }
        Ok(())
    }

    /// Checked SMBD code decode with bounded re-decodes (D2) and the
    /// pristine re-decode fallback — the integer twin of the FP16
    /// `decode_tctile_checked`. There is no D3 arm: integer lanes have
    /// no non-finite encoding (see the module docs).
    #[allow(clippy::too_many_arguments)]
    fn decode_codes_checked(
        &self,
        counters: &mut Counters,
        gt: usize,
        tc_idx: usize,
        bm_addr: VAddr,
        tc_bms: &[u64; 4],
        codes: &[i8],
        base: usize,
        pristine_bms: &[u64],
        pristine_codes: &[i8],
        smem_values: u64,
        inject: Option<&FaultInjector>,
        chk: &CheckedState<'_>,
    ) -> Result<[[i32; MMA_K]; MMA_K], KernelError> {
        let site_key = bm_addr + (tc_idx * 32) as u64;
        let mut decoded = None;
        let mut last_fault: Option<DecodeFault> = None;
        let mut att: u32 = 0;
        while decoded.is_none() && att < chk.policy.max_attempts {
            let inj_a = inject.map(|i| {
                if att == 0 {
                    *i
                } else {
                    i.reseeded(0x0de0_0000 | u64::from(att))
                }
            });
            match decode_tctile_codes_i8_f(
                counters,
                tc_bms,
                codes,
                base,
                smem_values,
                inj_a.as_ref(),
                site_key,
            ) {
                Ok((rows, _)) => {
                    if att > 0 {
                        counters.faults_recovered += 1;
                    }
                    decoded = Some(rows);
                }
                Err(f) => {
                    counters.faults_detected += 1;
                    last_fault = Some(f);
                }
            }
            att += 1;
        }
        match decoded {
            Some(rows) => Ok(rows),
            None => {
                if !chk.policy.fallback {
                    return Err(match last_fault {
                        Some(DecodeFault::Overrun { needed, available }) => {
                            KernelError::DecodeOverrun {
                                gt,
                                needed,
                                available,
                            }
                        }
                        Some(DecodeFault::NonFinite) => KernelError::NonFiniteDecode { gt },
                        None => KernelError::RetryBudgetExhausted {
                            gt,
                            attempts: chk.policy.max_attempts,
                        },
                    });
                }
                counters.fault_fallbacks += 1;
                let pbase: usize = pristine_bms[..tc_idx * 4]
                    .iter()
                    .map(|&b| popc64(b) as usize)
                    .sum();
                let pbms: [u64; 4] = pristine_bms[tc_idx * 4..tc_idx * 4 + 4]
                    .try_into()
                    .expect("pristine bitmaps carry 4 BitmapTiles per TCTile");
                let (rows, _) =
                    decode_tctile_codes_i8(counters, &pbms, pristine_codes, pbase, smem_values);
                Ok(rows)
            }
        }
    }
}

impl SpmmKernel for SpinferSpmmInt8 {
    type Encoded = TcaBmeInt8;

    fn name(&self) -> &'static str {
        "SpInfer-INT8"
    }

    fn format_key(&self) -> &'static str {
        "tca-bme-int8"
    }

    fn encode(&self, w: &DenseMatrix) -> TcaBmeInt8 {
        TcaBme::encode(w).quantize_int8()
    }

    fn validate(&self, enc: &TcaBmeInt8) -> Result<(), SpinferError> {
        enc.validate().map_err(SpinferError::from)
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &TcaBmeInt8,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        self.launch_with(ctx, enc, x)
    }
}

/// Reusable per-worker buffers for the INT8 block routine: the integer
/// and float accumulator banks, the quantize-once X code tile, the
/// GroupTile shared-memory image under injection, and the per-TCTile
/// value-offset prefix.
#[derive(Default)]
struct Int8Scratch {
    acc_i: Vec<AccS8>,
    acc_f: Vec<[[f32; MMA_N]; MMA_M]>,
    xq: Vec<i32>,
    bms_img: Vec<u64>,
    codes_img: Vec<i8>,
    tc_base: Vec<usize>,
}

/// Quantizes one activation value against the launch's global scale
/// (symmetric, clamped to ±127). Pure per-element, so visit order and
/// job count cannot change the result.
fn quantize_code(v: f32, scale: f32) -> i32 {
    (v / scale).round().clamp(-127.0, 127.0) as i32
}

/// Integer-pipe fragment loads + batched `mma.s8` for one decoded
/// TCTile against every n8 column of the X code tile — the integer twin
/// of the FP16 `mma_row` (same `ldmatrix` accounting; the B operand is
/// the block's quantize-once code tile with leading dimension `tile_n`).
fn mma_row_int8(
    counters: &mut Counters,
    xq: &[i32],
    geo: &Geometry,
    ttx: usize,
    a_rows: &[[i32; MMA_K]; MMA_M],
    accs: &mut [AccS8],
) {
    let n8 = geo.tile_n / 8;
    let ldsm_count = n8.div_ceil(2);
    for _ in 0..ldsm_count {
        let rows = gpu_sim::shared_memory::strided_addrs(0, 16);
        warp_ldsm_x4(counters, &rows);
    }
    let k_off = ttx * TT_DIM * geo.tile_n;
    for (jc, chunk) in accs.chunks_mut(MAX_NTILES).enumerate() {
        let b = &xq[k_off + jc * MAX_NTILES * 8..];
        mma_m16n8k16_s8_ntiles(counters, a_rows, b, geo.tile_n, chunk);
    }
}

/// Folds one GroupTile column's exact `i32` accumulators into the `f32`
/// accumulators with the combined `scale_w × scale_x` factor, resetting
/// the integer bank for the next GroupTile. Four warp-wide FP
/// instructions per 16×8 tile (128 lanes / 32).
fn fold_scales(
    counters: &mut Counters,
    factor: f32,
    acc_i: &mut [AccS8],
    acc_f: &mut [[[f32; MMA_N]; MMA_M]],
) {
    for (ai, af) in acc_i.iter_mut().zip(acc_f.iter_mut()) {
        for (ri, rf) in ai.iter_mut().zip(af.iter_mut()) {
            for (vi, vf) in ri.iter_mut().zip(rf.iter_mut()) {
                *vf += *vi as f32 * factor;
                *vi = 0;
            }
        }
    }
    let insts = (acc_i.len() * 4) as u64;
    counters.cuda_fp_insts += insts;
    counters.insts_issued += insts;
}

/// Loads one GroupTile's bitmaps and `i8` codes as LDGSTS streams into
/// the caller's shared-memory image, applying injected load bit flips —
/// the 1-byte-element twin of the FP16 `load_gtile_image`. With
/// `inject` absent no image is materialised and only the golden counter
/// stream is recorded.
#[allow(clippy::too_many_arguments)]
fn load_gtile_codes_image(
    counters: &mut Counters,
    inject: Option<&FaultInjector>,
    pristine_bms: &[u64],
    pristine_codes: &[i8],
    bm_addr: VAddr,
    val_addr: VAddr,
    bms_img: &mut Vec<u64>,
    codes_img: &mut Vec<i8>,
) {
    let bm_bytes = (pristine_bms.len() * 8) as u64;
    let val_bytes = pristine_codes.len() as u64;
    bms_img.clear();
    codes_img.clear();
    if inject.is_none() {
        record_ldgsts_stream(counters, bm_addr, bm_bytes);
        record_ldgsts_stream(counters, val_addr, val_bytes);
        return;
    }
    bms_img.extend_from_slice(pristine_bms);
    codes_img.extend_from_slice(pristine_codes);
    record_ldgsts_stream_f(counters, bm_addr, bm_bytes, inject, &mut |byte, bit| {
        let b = byte as usize;
        if b < bms_img.len() * 8 {
            let word = b / 8;
            bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
        }
    });
    record_ldgsts_stream_f(counters, val_addr, val_bytes, inject, &mut |byte, bit| {
        let b = byte as usize;
        if b < codes_img.len() {
            codes_img[b] = (codes_img[b] as u8 ^ (1u8 << (bit % 8))) as i8;
        }
    });
}

/// Applies a `cp.async` commit outcome to the INT8 GroupTile image —
/// byte flips land in a single code, a dropped commit leaves zeros.
fn apply_commit_fault_i8(
    outcome: CommitFault,
    bms_img: &mut [u64],
    codes_img: &mut [i8],
    armed: bool,
) {
    if !armed {
        return;
    }
    let bm_bytes = bms_img.len() * 8;
    let total = bm_bytes + codes_img.len();
    match outcome {
        CommitFault::None => {}
        CommitFault::Corrupt { byte_sel, bit } => {
            if total > 0 {
                let b = (byte_sel % total as u64) as usize;
                if b < bm_bytes {
                    let word = b / 8;
                    bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
                } else {
                    let i = b - bm_bytes;
                    codes_img[i] = (codes_img[i] as u8 ^ (1u8 << (bit % 8))) as i8;
                }
            }
        }
        CommitFault::Dropped => {
            bms_img.iter_mut().for_each(|w| *w = 0);
            codes_img.iter_mut().for_each(|v| *v = 0);
        }
    }
}

/// Reference integer product of one GroupTile from its pristine codes,
/// accumulated into the block's `i32` accumulators — the
/// guaranteed-correct slow path when the D1 retry budget is exhausted.
/// The caller folds the result with the same scales as the fast path,
/// so the fallback is exact.
fn fallback_gtile_codes(
    cfg: TcaBmeConfig,
    bms: &[u64],
    codes: &[i8],
    xq: &[i32],
    geo: &Geometry,
    accs: &mut [AccS8],
    n8: usize,
) {
    let tile_n = geo.tile_n;
    let mut contrib = vec![0i32; cfg.gt_rows * tile_n];
    let mut vi = 0usize;
    for (bi, &bm) in bms.iter().enumerate() {
        let tc_idx = bi / 4;
        // Quadrant order within a TCTile: TL, BL, TR, BR.
        let (qr, qc) = [(0, 0), (8, 0), (0, 8), (8, 8)][bi % 4];
        let ttx = tc_idx / cfg.tt_rows();
        let tty = tc_idx % cfg.tt_rows();
        for bit in 0..64 {
            if (bm >> bit) & 1 == 1 {
                let v = i32::from(codes[vi]);
                vi += 1;
                let lr = tty * TT_DIM + qr + bit / 8;
                let lc = ttx * TT_DIM + qc + bit % 8;
                let xrow = &xq[lc * tile_n..(lc + 1) * tile_n];
                let dst = &mut contrib[lr * tile_n..(lr + 1) * tile_n];
                for (d, xv) in dst.iter_mut().zip(xrow) {
                    *d += v * xv;
                }
            }
        }
    }
    for (warp, acc_row) in accs.chunks_mut(n8).enumerate() {
        let tty = warp % cfg.tt_rows();
        for (j, tile) in acc_row.iter_mut().enumerate() {
            for (r, row) in tile.iter_mut().enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot += contrib[(tty * TT_DIM + r) * tile_n + j * 8 + c];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spmm::FaultPolicy;
    use gpu_sim::fault::{FaultInjector, FaultPlan};
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};
    use gpu_sim::trace::TraceSink;

    fn quantized(m: usize, k: usize, s: f64, seed: u64) -> (DenseMatrix, TcaBmeInt8) {
        let w = random_sparse(m, k, s, ValueDist::Uniform, seed);
        let enc = TcaBme::encode(&w).quantize_int8();
        (w, enc)
    }

    #[test]
    fn int8_product_tracks_fp32_reference_within_quantization_error() {
        let spec = GpuSpec::rtx4090();
        for &s in &[0.3, 0.5, 0.7] {
            let (w, enc) = quantized(128, 128, s, 200);
            let x = random_dense(128, 16, ValueDist::Uniform, 201);
            let run = SpinferSpmmInt8::new().run(&spec, &enc, &x);
            let out = run.output.as_ref().expect("functional output");
            let err = max_abs_diff(out, &w.matmul_ref(&x));
            // K=128 uniform[-1,1] terms, each within half a step on both
            // operands: ≈ K·(s_w + s_x)/2 ≈ 1.0 worst case.
            assert!(err < 1.5, "max err {err} at sparsity {s}");
            assert!(run.time_us() > 0.0);
        }
    }

    #[test]
    fn int8_unaligned_dims_and_split_k_are_correct() {
        let spec = GpuSpec::rtx4090();
        let (w, enc) = quantized(100, 200, 0.5, 202);
        let x = random_dense(200, 12, ValueDist::Uniform, 203);
        let kernel = SpinferSpmmInt8 {
            config: SpmmConfig {
                split_k: 2,
                ..SpmmConfig::default()
            },
        };
        let run = kernel.run(&spec, &enc, &x);
        let err = max_abs_diff(run.output.as_ref().unwrap(), &w.matmul_ref(&x));
        assert!(err < 2.0, "max err {err}");
        assert_eq!(run.chain.launches.len(), 2, "split-K appends a reduction");
    }

    #[test]
    fn zero_activations_produce_zero_output() {
        // The degenerate global scale (max|x| = 0 → scale 1.0) must not
        // poison anything.
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(64, 64, 0.5, 204);
        let x = DenseMatrix::zeros(64, 8);
        let run = SpinferSpmmInt8::new().run(&spec, &enc, &x);
        assert!(run.output.unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn estimate_matches_functional_counters() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(512, 512, 0.5, 205);
        let x = random_dense(512, 16, ValueDist::Uniform, 206);
        let kernel = SpinferSpmmInt8::new();
        let run = kernel.run(&spec, &enc, &x);
        let est = kernel.estimate(&spec, &FormatStats::from_encoded(&enc.tiles), 16);
        let cf = run.chain.launches[0].counters.clone();
        let ce = est.chain.launches[0].counters.clone();
        let close = |a: u64, b: u64, tol: f64, what: &str| {
            let rel = (a as f64 - b as f64).abs() / (b as f64).max(1.0);
            assert!(rel < tol, "{what}: functional {a} vs estimate {b}");
        };
        close(
            run.chain.launches[0].timing.dram_bytes,
            est.chain.launches[0].timing.dram_bytes,
            0.05,
            "dram_bytes",
        );
        close(cf.mma_s8_insts, ce.mma_s8_insts, 0.01, "mma_s8");
        close(cf.cuda_fp_insts, ce.cuda_fp_insts, 0.01, "scale folds");
        close(cf.cuda_int_insts, ce.cuda_int_insts, 0.05, "int");
        let tf = run.time_us();
        let te = est.time_us();
        assert!((tf - te).abs() / tf < 0.10, "time {tf} vs {te}");
    }

    #[test]
    fn int8_beats_fp16_spinfer_in_the_memory_bound_regime() {
        // Half the value bytes and double-rate tensor cores: the decode
        // phase must get faster, tracking the paper's §3.2.2 argument
        // that compression converts to speedup when memory bound.
        let spec = GpuSpec::rtx4090();
        let stats = FormatStats::synthetic(8192, 8192, 0.5);
        let t_fp16 = SpinferSpmm::new().estimate(&spec, &stats, 16).time_us();
        let t_int8 = SpinferSpmmInt8::new().estimate(&spec, &stats, 16).time_us();
        assert!(
            t_int8 < t_fp16,
            "INT8 {t_int8} us must beat FP16 {t_fp16} us"
        );
    }

    #[test]
    fn checked_run_with_no_faults_is_bit_identical_to_golden() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(128, 128, 0.6, 210);
        let x = random_dense(128, 16, ValueDist::Uniform, 211);
        let kernel = SpinferSpmmInt8::new();
        let golden = kernel.run(&spec, &enc, &x);
        let policy = FaultPolicy::default();
        let checked = kernel
            .launch_with(&LaunchCtx::new(&spec).with_policy(&policy), &enc, &x)
            .expect("clean container, clean run");
        assert_eq!(checked.output, golden.output, "bit-identical output");
        assert_eq!(
            checked.chain.launches[0].counters, golden.chain.launches[0].counters,
            "bit-identical counters"
        );
    }

    #[test]
    fn checked_run_detects_recovers_and_stays_correct_under_injection() {
        let spec = GpuSpec::rtx4090();
        let (w, enc) = quantized(128, 128, 0.5, 212);
        let x = random_dense(128, 16, ValueDist::Uniform, 213);
        let kernel = SpinferSpmmInt8::new();
        let inj = FaultInjector::new(FaultPlan::uniform(77, 0.02));
        let run = kernel
            .launch_with(&LaunchCtx::new(&spec).with_fault(&inj), &enc, &x)
            .expect("default policy always recovers or falls back");
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_injected > 0, "2% over many sites must fire");
        assert!(c.faults_detected > 0, "injected faults must be detected");
        assert!(c.faults_recovered + c.fault_fallbacks > 0);
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
        let err = max_abs_diff(out, &w.matmul_ref(&x));
        assert!(err < 1.5, "recovered product must stay correct, err {err}");
    }

    #[test]
    fn checked_run_seeded_injection_is_deterministic() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(128, 128, 0.5, 214);
        let x = random_dense(128, 16, ValueDist::Uniform, 215);
        let kernel = SpinferSpmmInt8::new();
        let inj = FaultInjector::new(FaultPlan::uniform(31, 0.03));
        let ctx = LaunchCtx::new(&spec).with_fault(&inj);
        let a = kernel.launch_with(&ctx, &enc, &x).unwrap();
        let b = kernel.launch_with(&ctx, &enc, &x).unwrap();
        assert_eq!(a.output, b.output, "same seed, same output");
        assert_eq!(
            a.chain.launches[0].counters, b.chain.launches[0].counters,
            "same seed, same fault sites and counters"
        );
        assert!(a.chain.launches[0].counters.faults_injected > 0);
    }

    #[test]
    fn retry_exhaustion_without_fallback_is_a_typed_error() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(128, 128, 0.5, 216);
        let x = random_dense(128, 16, ValueDist::Uniform, 217);
        let kernel = SpinferSpmmInt8::new();
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: false,
        };
        let err = kernel
            .launch_with(
                &LaunchCtx::new(&spec).with_fault(&inj).with_policy(&policy),
                &enc,
                &x,
            )
            .expect_err("unrecoverable corruption must surface");
        assert!(matches!(err, SpinferError::Kernel(_)), "got {err:?}");
    }

    #[test]
    fn retry_exhaustion_with_fallback_completes_correctly() {
        let spec = GpuSpec::rtx4090();
        let (w, enc) = quantized(128, 128, 0.5, 218);
        let x = random_dense(128, 16, ValueDist::Uniform, 219);
        let kernel = SpinferSpmmInt8::new();
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: true,
        };
        let run = kernel
            .launch_with(
                &LaunchCtx::new(&spec).with_fault(&inj).with_policy(&policy),
                &enc,
                &x,
            )
            .expect("fallback path completes the run");
        assert!(run.chain.launches[0].counters.fault_fallbacks > 0);
        let err = max_abs_diff(run.output.as_ref().unwrap(), &w.matmul_ref(&x));
        assert!(err < 1.5, "fallback product must be correct, err {err}");
    }

    #[test]
    fn integer_poison_is_the_documented_d3_gap() {
        // FP16 poison surfaces as NaN and is caught by the finiteness
        // scan; an i8 poison is just another plausible code. The checked
        // run must complete with finite output — the corruption is
        // bounded by |code| ≤ 127 × scale, not caught per-value.
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(128, 128, 0.5, 220);
        let x = random_dense(128, 16, ValueDist::Uniform, 221);
        let kernel = SpinferSpmmInt8::new();
        let plan = FaultPlan {
            fp16_poison_rate: 0.10,
            seed: 21,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let run = kernel
            .launch_with(&LaunchCtx::new(&spec).with_fault(&inj), &enc, &x)
            .unwrap();
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()), "no NaN can exist in i8");
    }

    #[test]
    fn trace_sink_is_output_neutral_and_records_events() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(64, 64, 0.5, 222);
        let x = random_dense(64, 8, ValueDist::Uniform, 223);
        let kernel = SpinferSpmmInt8::new();
        let plain = kernel.run(&spec, &enc, &x);
        let sink = TraceSink::new();
        let traced = kernel
            .launch_with(&LaunchCtx::new(&spec).with_sink(&sink), &enc, &x)
            .unwrap();
        assert_eq!(plain.output, traced.output);
        assert_eq!(
            plain.chain.merged_counters(),
            traced.chain.merged_counters()
        );
        assert!(!sink.finish().events.is_empty());
    }

    #[test]
    fn dimension_mismatch_and_corrupt_container_are_typed_errors() {
        let spec = GpuSpec::rtx4090();
        let (_, enc) = quantized(64, 64, 0.5, 224);
        let kernel = SpinferSpmmInt8::new();
        let bad_x = random_dense(32, 8, ValueDist::Uniform, 225);
        assert!(matches!(
            kernel.launch_with(&LaunchCtx::new(&spec), &enc, &bad_x),
            Err(SpinferError::DimensionMismatch { .. })
        ));
        let policy = FaultPolicy::default();
        let mut corrupt = enc.clone();
        corrupt.scales[0] = f32::NAN;
        let x = random_dense(64, 8, ValueDist::Uniform, 226);
        assert!(matches!(
            kernel.launch_with(&LaunchCtx::new(&spec).with_policy(&policy), &corrupt, &x),
            Err(SpinferError::Integrity(_))
        ));
    }
}
