//! The SpInfer-SpMM kernel (paper §4.3, Algorithm 1).
//!
//! Computes `O[M×N] = W[M×K] × X[K×N]` with `W` in TCA-BME format. The
//! simulated kernel mirrors the paper's structure:
//!
//! 1. **GTile loading** — the block streams one GroupTile's bitmaps and
//!    packed values into shared memory with `LDGSTS.128` (values are
//!    8-byte aligned by the encoder's padding).
//! 2. **WTile decoding (SMBD)** — each warp decodes its TCTiles straight
//!    from shared memory into `mma` A fragments.
//! 3. **XTile loading** — the dense tile streams into shared memory.
//! 4. **XTile register transfer** — `ldmatrix.x4` distributes B fragments.
//! 5. **Tensor Core computation** — `mma.m16n8k16` accumulates in FP32.
//!
//! Split-K parallelism distributes the K dimension over independent
//! blocks writing a reduction workspace, followed by a small reduction
//! kernel — the CUTLASS-style scheme the paper adopts.
//!
//! Both a *functional* path ([`SpinferSpmm::run`], bit-exact output +
//! counters from real addresses) and an *analytic* path
//! ([`SpinferSpmm::estimate`], same counters derived from format
//! statistics) are provided; tests pin them against each other so
//! paper-scale benchmarks can use the cheap path.
//!
//! # Module layout
//!
//! Every entry point funnels into **one** launch body parameterised by a
//! [`LaunchCtx`] (capability bundle: device spec, optional fault
//! injector + recovery policy, optional trace sink):
//!
//! * [`launch`](self) — [`LaunchCtx`], the [`SpmmKernel`] trait shared
//!   with every baseline, the object-safe [`DynSpmmKernel`] wrapper, and
//!   the unified `SpinferSpmm` launch body.
//! * `block` — the single per-thread-block routine (golden, traced, and
//!   checked arms in one function; the checked arms are no-cost when the
//!   context carries no injector).
//! * `checked` — [`FaultPolicy`] and the `run_checked`/`run_checked_with`
//!   wrappers.
//! * `traced` — phase attribution and Chrome-trace emission.

mod block;
mod checked;
mod int8;
mod launch;
mod traced;

pub use checked::FaultPolicy;
pub use int8::SpinferSpmmInt8;
pub use launch::{DynEncoded, DynSpmmKernel, LaunchCtx, SpmmKernel};
pub use traced::emit_chain_trace;

use crate::payload::Payload;
use crate::smbd::bt_decode_cost;
use crate::tca_bme::{TcaBme, TcaBmeOf, TT_DIM};
use gpu_sim::bitops::popc64;
use gpu_sim::counters::Counters;
use gpu_sim::fp16::Half;
use gpu_sim::kernel::{LaunchChain, LaunchResult};
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, LaunchShape, PipelineMode};

/// Ablation switches (paper Table 1). Both `true` is the full kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Shared Memory Bitmap Decoding. When disabled, the kernel decodes
    /// in the *register file*: each thread fetches value words and
    /// redistributes them to fragment owners with warp shuffles — several
    /// times the instruction count, more registers (lower occupancy), and
    /// a serial chain the pipeline cannot fully hide.
    pub smbd: bool,
    /// Asynchronous pipeline (double buffering + two cp.async groups).
    /// When disabled, only warp interleaving hides load latency: the
    /// overlap leak grows and less data stays in flight.
    pub async_pipe: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            smbd: true,
            async_pipe: true,
        }
    }
}

/// Extra integer instructions per BitmapTile for the -SMBD register
/// decode (address math and predication SMBD's masked popcount avoids).
pub(crate) const REG_DECODE_EXTRA_INT: u64 = 20;
/// Warp shuffles per BitmapTile for the -SMBD register decode.
pub(crate) const REG_DECODE_SHFL: u64 = 10;

/// Kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmmConfig {
    /// Split-K factor; `0` selects automatically from the launch shape.
    pub split_k: usize,
    /// Maximum N tile per block (multiple of 8).
    pub max_tile_n: usize,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for SpmmConfig {
    fn default() -> Self {
        SpmmConfig {
            split_k: 0,
            max_tile_n: 32,
            ablation: Ablation::default(),
        }
    }
}

/// Result of a simulated SpMM: output (functional path only) plus the
/// launch chain (main kernel, and reduction when split-K > 1).
#[derive(Clone, Debug)]
pub struct SpmmRun {
    /// Row-major `M×N` FP32 output; `None` for the analytic path.
    pub output: Option<Vec<f32>>,
    /// Kernel launches with counters and timing.
    pub chain: LaunchChain,
}

impl SpmmRun {
    /// Total simulated time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.chain.time_us()
    }
}

/// Format statistics needed by the analytic estimator.
#[derive(Clone, Debug)]
pub struct FormatStats {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Padded rows.
    pub m_pad: usize,
    /// Padded columns.
    pub k_pad: usize,
    /// GroupTile config.
    pub config: crate::tca_bme::TcaBmeConfig,
    /// Non-zero count.
    pub nnz: usize,
    /// Length of the values array including padding.
    pub values_len: usize,
    /// Fraction of BitmapTiles containing at least one non-zero.
    pub nonempty_bt_fraction: f64,
    /// Largest per-GroupTile value count (shared-memory sizing).
    pub max_values_per_gtile: usize,
}

impl FormatStats {
    /// Extracts statistics from an encoded matrix of any payload
    /// precision — the statistics are all structural (geometry, bitmaps,
    /// value counts), so FP16 and INT8 containers share one extractor.
    pub fn from_encoded<P: Payload>(w: &TcaBmeOf<P>) -> Self {
        let nonempty = w.bitmaps.iter().filter(|&&b| b != 0).count();
        FormatStats {
            m: w.m,
            k: w.k,
            m_pad: w.m_pad,
            k_pad: w.k_pad,
            config: w.config,
            nnz: w.nnz,
            values_len: w.values.len(),
            nonempty_bt_fraction: nonempty as f64 / w.bitmaps.len().max(1) as f64,
            max_values_per_gtile: w.max_values_per_gtile(),
        }
    }

    /// Expected statistics for an `m×k` matrix with i.i.d. element
    /// sparsity `s` — lets paper-scale sweeps skip materialising weights.
    pub fn synthetic(m: usize, k: usize, sparsity: f64) -> Self {
        let config = crate::tca_bme::TcaBmeConfig::default();
        let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
        let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
        let nnz = ((m * k) as f64 * (1.0 - sparsity)).round() as usize;
        let ngt = (m_pad / config.gt_rows) * (k_pad / config.gt_cols);
        let vals_per_gt = nnz as f64 / ngt as f64;
        // Per-GroupTile padding to 4 elements: 1.5 expected extra.
        let values_len = nnz + ngt * 2;
        // Binomial tail: P(BT non-empty) = 1 - s^64.
        let nonempty = 1.0 - sparsity.powi(64);
        // Expected max over GroupTiles ~ mean + 3 std of Binomial(4096, 1-s).
        let gt_elems = (config.gt_rows * config.gt_cols) as f64;
        let std = (gt_elems * sparsity * (1.0 - sparsity)).sqrt();
        let max_vals = (vals_per_gt + 3.0 * std + 4.0).min(gt_elems) as usize;
        FormatStats {
            m,
            k,
            m_pad,
            k_pad,
            config,
            nnz,
            values_len,
            nonempty_bt_fraction: nonempty,
            max_values_per_gtile: max_vals,
        }
    }

    /// Dense bytes of the logical matrix.
    pub fn dense_bytes(&self) -> usize {
        2 * self.m * self.k
    }

    /// TCA-BME storage bytes (with expected padding).
    pub fn storage_bytes(&self) -> usize {
        let ngt = (self.m_pad / self.config.gt_rows) * (self.k_pad / self.config.gt_cols);
        let nbt = (self.m_pad / 8) * (self.k_pad / 8);
        4 * (ngt + 1) + 8 * nbt + 2 * self.values_len
    }

    /// Storage footprint of the INT8 container with the same geometry:
    /// 1-byte codes instead of FP16 values, plus one `f32`
    /// dequantisation scale per GroupTile (matches
    /// [`crate::tca_bme::TcaBmeInt8::storage_bytes`]).
    pub fn storage_bytes_int8(&self) -> usize {
        let ngt = (self.m_pad / self.config.gt_rows) * (self.k_pad / self.config.gt_cols);
        let nbt = (self.m_pad / 8) * (self.k_pad / 8);
        4 * (ngt + 1) + 8 * nbt + self.values_len + 4 * ngt
    }
}

/// The SpInfer-SpMM kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpinferSpmm {
    /// Kernel configuration.
    pub config: SpmmConfig,
}

/// Value-payload precision a SpInfer-SpMM variant runs at. The FP16 and
/// INT8 kernels share the geometry and estimator bodies; this selects
/// the three places they diverge — stored value width, which Tensor
/// Core pipe the mma work lands on, and the INT8 scale-fold epilogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Precision {
    /// `Half` payloads, FP32-accumulating `mma.f16`.
    Fp16,
    /// `i8` codes, i32-accumulating `mma.s8` plus a per-GroupTile scale
    /// fold into the `f32` accumulators.
    Int8,
}

impl Precision {
    /// Stored bytes per value payload.
    pub(crate) fn value_bytes(self) -> usize {
        match self {
            Precision::Fp16 => 2,
            Precision::Int8 => 1,
        }
    }
}

/// Geometry shared by the functional and analytic paths.
pub(crate) struct Geometry {
    pub(crate) tile_n: usize,
    pub(crate) n_pad: usize,
    pub(crate) grid_x: usize,
    pub(crate) split_k: usize,
    pub(crate) gtx_per_split: usize,
    pub(crate) grid_blocks: u64,
    pub(crate) warps: usize,
    pub(crate) block: BlockResources,
    pub(crate) iters_per_block: f64,
}

impl SpinferSpmm {
    /// Creates a kernel with the default configuration.
    pub fn new() -> Self {
        SpinferSpmm::default()
    }

    /// Creates a kernel with explicit ablation switches.
    pub fn with_ablation(ablation: Ablation) -> Self {
        SpinferSpmm {
            config: SpmmConfig {
                ablation,
                ..SpmmConfig::default()
            },
        }
    }

    pub(crate) fn geometry(&self, spec: &GpuSpec, stats: &FormatStats, n: usize) -> Geometry {
        self.geometry_impl(spec, stats, n, Precision::Fp16)
    }

    pub(crate) fn geometry_impl(
        &self,
        spec: &GpuSpec,
        stats: &FormatStats,
        n: usize,
        prec: Precision,
    ) -> Geometry {
        let n_pad = n.max(8).div_ceil(8) * 8;
        // Decode-phase batches use up to `max_tile_n`; prefill-scale N
        // widens the block tile to 128 so each decoded WTile amortises
        // over more output columns (otherwise SMBD work scales with
        // N/tile_n and the decode chain dominates the Tensor Cores).
        let tile_n = if n_pad <= self.config.max_tile_n {
            n_pad
        } else {
            n_pad.min(self.config.max_tile_n.max(128))
        };
        let grid_x = n_pad.div_ceil(tile_n);
        let gtiles_y = stats.m_pad / stats.config.gt_rows;
        let gtiles_x = stats.k_pad / stats.config.gt_cols;
        let split_k = if self.config.split_k == 0 {
            auto_split_k(spec, gtiles_y * grid_x, gtiles_x)
        } else {
            self.config.split_k.clamp(1, gtiles_x)
        };
        let gtx_per_split = gtiles_x.div_ceil(split_k);
        let warps = stats.config.gt_rows / TT_DIM;

        // Shared memory: double-buffered bitmaps + values + X tile.
        let bufs = 2usize;
        let bitmap_bytes = stats.config.bts_per_gt() * 8;
        let value_bytes = stats.max_values_per_gtile * prec.value_bytes();
        let x_bytes = stats.config.gt_cols * tile_n * 2;
        let smem = bufs * (bitmap_bytes + value_bytes + x_bytes);

        // Register estimate per thread: accumulators (4 FP32 per FragC per
        // n8), live A fragment + prefetched next (4 + 4), B fragments
        // (2 per n8 pair), addresses and loop state. The register-decode
        // fallback (-SMBD) stages value words and shuffle temporaries in
        // the register file, costing substantially more.
        let n8 = tile_n / 8;
        let regs =
            28 + 4 * n8 as u32 + 8 + 2 * n8 as u32 + if self.config.ablation.smbd { 0 } else { 40 };

        Geometry {
            tile_n,
            n_pad,
            grid_x,
            split_k,
            gtx_per_split,
            grid_blocks: (gtiles_y * grid_x * split_k) as u64,
            warps,
            block: BlockResources {
                threads: (warps * 32) as u32,
                regs_per_thread: regs,
                smem_bytes: smem as u32,
            },
            iters_per_block: gtx_per_split as f64,
        }
    }

    fn launch_shape(&self, geo: &Geometry) -> LaunchShape {
        let (per_iter_fixed, inflight, leak) = if self.config.ablation.async_pipe {
            (24.0, None, None)
        } else {
            // Single-buffered: warp interleaving still overlaps most of
            // the load latency, but the decode/compute chain leaks more
            // and fewer bytes stay in flight.
            (48.0, Some(1024.0), Some(0.18))
        };
        LaunchShape {
            grid_blocks: geo.grid_blocks,
            block: geo.block,
            iters_per_block: geo.iters_per_block,
            mode: PipelineMode::AsyncDoubleBuffered,
            per_iter_fixed_cycles: per_iter_fixed,
            ramp_cycles: 600.0,
            inflight_bytes_per_warp: inflight,
            overlap_leak: leak,
        }
    }

    /// Analytic estimation from format statistics — identical counter
    /// structure to [`Self::run`] without touching data. Validated against
    /// the functional path in tests.
    pub fn estimate(&self, spec: &GpuSpec, stats: &FormatStats, n: usize) -> SpmmRun {
        self.estimate_impl(
            spec,
            stats,
            n,
            Precision::Fp16,
            kernel_name(self.config.ablation),
        )
    }

    /// The one estimator body behind both precision variants. For FP16
    /// this is counter-for-counter the historical estimator; INT8 halves
    /// the stored value traffic, moves the mma work to the `mma.s8`
    /// pipe, and adds the per-GroupTile scale-fold FP work.
    pub(crate) fn estimate_impl(
        &self,
        spec: &GpuSpec,
        stats: &FormatStats,
        n: usize,
        prec: Precision,
        name: &'static str,
    ) -> SpmmRun {
        let geo = self.geometry_impl(spec, stats, n, prec);
        let cfg = stats.config;
        let ngt = (stats.m_pad / cfg.gt_rows) * (stats.k_pad / cfg.gt_cols);
        let gtiles_y = stats.m_pad / cfg.gt_rows;
        let n8 = geo.tile_n / 8;
        let mut c = Counters::new();

        // --- GTile loads (per GroupTile, over all N tiles and splits) ---
        let bm_bytes_gt = (cfg.bts_per_gt() * 8) as u64;
        let val_bytes_gt = (stats.values_len * prec.value_bytes()) as u64 / ngt as u64;
        let gt_visits = (ngt * geo.grid_x) as u64;
        // DRAM traffic is capped by wave-level L2 reuse over output tiles;
        // the decode work below still runs once per visit.
        let w_reread =
            gpu_sim::timing::panel_reread_factor(spec, stats.k_pad, geo.n_pad, geo.tile_n);
        let w_bytes = ngt as u64 * w_reread * (bm_bytes_gt + val_bytes_gt);
        c.dram_read_bytes += w_bytes;
        c.useful_read_bytes += w_bytes;
        c.ldgsts_insts +=
            gt_visits * (bm_bytes_gt.div_ceil(512) + val_bytes_gt.div_ceil(512).max(1));

        // --- X loads (panel re-read capped by wave-level L2 reuse) ---
        let m_reread =
            gpu_sim::timing::panel_reread_factor(spec, stats.k_pad, stats.m_pad, cfg.gt_rows);
        let row_sectors = sector_span(geo.tile_n * 2);
        // DRAM traffic is L2-capped; per-block load *work* is not.
        let x_rows_dram = (stats.k_pad * geo.grid_x) as u64 * m_reread;
        let x_rows_visits = (stats.k_pad * gtiles_y * geo.grid_x) as u64;
        let x_bytes = x_rows_dram * row_sectors * 32;
        c.dram_read_bytes += x_bytes;
        c.useful_read_bytes += x_rows_dram * (geo.tile_n as u64) * 2;
        c.ldgsts_insts += x_rows_visits.div_ceil(4);
        c.smem_store_transactions += x_rows_visits * (geo.tile_n as u64 * 2).div_ceil(128).max(1);

        // --- Decode ---
        let nbt_visits = (ngt * cfg.bts_per_gt() * geo.grid_x) as u64;
        let full = bt_decode_cost(true);
        let empty = bt_decode_cost(false);
        let p = stats.nonempty_bt_fraction;
        c.cuda_int_insts += (nbt_visits as f64
            * (p * full.int_insts as f64 + (1.0 - p) * empty.int_insts as f64))
            as u64;
        c.smem_load_transactions += (nbt_visits as f64
            * (p * full.smem_transactions as f64 + (1.0 - p) * empty.smem_transactions as f64))
            as u64;
        c.insts_issued += c.cuda_int_insts + c.smem_load_transactions;
        if !self.config.ablation.smbd {
            // Register decode (see the block routine): extra arithmetic
            // and shuffles per BitmapTile.
            c.cuda_int_insts += nbt_visits * REG_DECODE_EXTRA_INT;
            c.shfl_insts += nbt_visits * REG_DECODE_SHFL;
            c.insts_issued += nbt_visits * (REG_DECODE_EXTRA_INT + REG_DECODE_SHFL);
        }

        // --- X fragment loads + mma ---
        let tctile_visits = nbt_visits / 4;
        let ldsm_b = tctile_visits * (n8.div_ceil(2) as u64);
        c.ldsm_insts += ldsm_b;
        c.smem_load_transactions += ldsm_b * 4;
        match prec {
            Precision::Fp16 => c.mma_insts += tctile_visits * n8 as u64,
            Precision::Int8 => c.mma_s8_insts += tctile_visits * n8 as u64,
        }
        c.insts_issued += ldsm_b + tctile_visits * n8 as u64;
        if prec == Precision::Int8 {
            // Per-GroupTile scale fold: each i32 accumulator tile (16×8)
            // converts and FMAs into the f32 accumulators once per
            // GroupTile column — 4 warp-wide FP instructions per tile.
            let fold = gt_visits * (geo.warps * n8 * 4) as u64;
            c.cuda_fp_insts += fold;
            c.insts_issued += fold;
        }

        // --- Epilogue stores ---
        let frag_stores = (gtiles_y * cfg.tt_rows() * geo.grid_x * geo.split_k * n8) as u64 * 2;
        c.dram_write_bytes += frag_stores * 8 * 32; // 8 sectors × 32 B each.
        c.useful_write_bytes += frag_stores * 256;
        c.insts_issued += frag_stores;
        c.barriers += gt_visits;

        let l2 = [L2Reuse {
            buffer_bytes: (2 * stats.k_pad * geo.n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            name,
            spec,
            self.launch_shape(&geo),
            c,
            &l2,
        ));
        if geo.split_k > 1 {
            chain.push(crate::reduction::estimate_reduction(
                spec,
                stats.m_pad * geo.n_pad,
                geo.split_k,
            ));
        }
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl TcaBme {
    /// Random access to a single logical cell (slow; used by the -SMBD
    /// functional fallback only).
    pub fn decode_cell(&self, r: usize, c: usize) -> Half {
        let cfg = self.config;
        let gty = r / cfg.gt_rows;
        let gtx = c / cfg.gt_cols;
        let gt = self.gt_index(gty, gtx);
        let lr = r % cfg.gt_rows;
        let lc = c % cfg.gt_cols;
        let tty = lr / TT_DIM;
        let ttx = lc / TT_DIM;
        let tc_idx = ttx * cfg.tt_rows() + tty;
        let qr = lr % TT_DIM;
        let qc = lc % TT_DIM;
        let quad = match (qr >= 8, qc >= 8) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        };
        let bit = (qr % 8) * 8 + (qc % 8);
        let bms = self.gtile_bitmaps(gt);
        let bi = tc_idx * 4 + quad;
        if (bms[bi] >> bit) & 1 == 0 {
            return Half::ZERO;
        }
        let base: usize = bms[..bi].iter().map(|&b| popc64(b) as usize).sum();
        let within = popc64(bms[bi] & ((1u64 << bit) - 1)) as usize;
        self.gtile_values(gt)[base + within]
    }
}

/// Split-K selection: split until the grid comfortably fills the device
/// (two blocks per SM), bounded by the number of K-dimension GroupTiles.
fn auto_split_k(spec: &GpuSpec, base_blocks: usize, gtiles_x: usize) -> usize {
    let target = 2 * spec.sm_count as usize;
    if base_blocks == 0 {
        return 1;
    }
    let want = target.div_ceil(base_blocks);
    want.clamp(1, gtiles_x.max(1))
}

/// Sectors per contiguous row segment of `bytes` (32 B granularity,
/// assuming aligned starts).
fn sector_span(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(32).max(1)
}

/// Kernel display name for a configuration.
pub(crate) fn kernel_name(ablation: Ablation) -> &'static str {
    match (ablation.smbd, ablation.async_pipe) {
        (true, true) => "spinfer_spmm",
        (false, true) => "spinfer_spmm_no_smbd",
        (true, false) => "spinfer_spmm_no_asyncpipe",
        (false, false) => "spinfer_spmm_no_smbd_no_asyncpipe",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::{FaultInjector, FaultPlan};
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, DenseMatrix, ValueDist};
    use gpu_sim::trace::TraceSink;

    fn check_correct(m: usize, k: usize, n: usize, sparsity: f64, config: SpmmConfig) {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(m, k, sparsity, ValueDist::Uniform, 100);
        let x = random_dense(k, n, ValueDist::Uniform, 101);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm { config };
        let run = kernel.run(&spec, &enc, &x);
        let out = run.output.as_ref().expect("functional path returns output");
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "max err {err} for {m}x{k}x{n} s={sparsity}");
        assert!(run.time_us() > 0.0);
    }

    #[test]
    fn correct_at_various_sparsities() {
        for &s in &[0.0, 0.3, 0.5, 0.7, 0.9] {
            check_correct(128, 128, 16, s, SpmmConfig::default());
        }
    }

    #[test]
    fn correct_small_n() {
        check_correct(64, 128, 8, 0.5, SpmmConfig::default());
    }

    #[test]
    fn correct_wide_n_multiple_tiles() {
        check_correct(64, 64, 64, 0.5, SpmmConfig::default());
    }

    #[test]
    fn correct_unaligned_dims() {
        check_correct(100, 72, 12, 0.5, SpmmConfig::default());
    }

    #[test]
    fn traced_run_is_bit_identical_and_phases_sum_to_launch_time() {
        use gpu_sim::trace::EventKind;
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 256, 0.6, ValueDist::Uniform, 42);
        let x = random_dense(256, 16, ValueDist::Uniform, 43);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm {
            config: SpmmConfig {
                split_k: 2, // exercise the reduction span
                ..SpmmConfig::default()
            },
        };
        let plain = kernel.run(&spec, &enc, &x);
        let sink = TraceSink::new();
        let traced = kernel.run_traced(&spec, &enc, &x, &sink);

        // Attaching a sink must not perturb output, counters, or time.
        assert_eq!(plain.output, traced.output);
        assert_eq!(
            plain.chain.merged_counters(),
            traced.chain.merged_counters()
        );
        assert_eq!(plain.time_us().to_bits(), traced.time_us().to_bits());

        let t = sink.finish();
        assert!(!t.events.is_empty());
        // All spans have non-negative durations; cat:"phase" spans sum to
        // the chain's simulated time (main launch + reduction).
        let phase_sum: f64 = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.cat == "phase")
            .map(|e| {
                assert!(e.dur_us >= 0.0);
                e.dur_us
            })
            .sum();
        let total = traced.time_us();
        assert!(
            (phase_sum - total).abs() <= 0.01 * total,
            "phase sum {phase_sum} vs simulated {total}"
        );
        // Every kernel phase shows up, plus the reduction span.
        for name in [
            "stream_w",
            "stream_x",
            "smbd_decode",
            "mma",
            "epilogue",
            "reduction",
        ] {
            assert!(t.phase_total_us(name) > 0.0, "missing phase {name}");
        }
        // Flow events pair up (one start, one end per id).
        let mut starts = std::collections::BTreeMap::new();
        let mut ends = std::collections::BTreeMap::new();
        for e in &t.events {
            match e.kind {
                EventKind::FlowStart => *starts.entry(e.flow_id).or_insert(0u32) += 1,
                EventKind::FlowEnd => *ends.entry(e.flow_id).or_insert(0u32) += 1,
                _ => {}
            }
        }
        assert!(!starts.is_empty());
        assert_eq!(starts, ends);
        assert!(starts.values().all(|&n| n == 1));
    }

    #[test]
    fn correct_with_explicit_split_k() {
        let cfg = SpmmConfig {
            split_k: 2,
            ..SpmmConfig::default()
        };
        check_correct(64, 256, 16, 0.5, cfg);
    }

    #[test]
    fn correct_without_smbd() {
        let cfg = SpmmConfig {
            ablation: Ablation {
                smbd: false,
                async_pipe: true,
            },
            ..SpmmConfig::default()
        };
        check_correct(128, 128, 16, 0.5, cfg);
    }

    #[test]
    fn correct_without_async_pipe() {
        let cfg = SpmmConfig {
            ablation: Ablation {
                smbd: true,
                async_pipe: false,
            },
            ..SpmmConfig::default()
        };
        check_correct(128, 128, 16, 0.5, cfg);
    }

    #[test]
    fn checked_run_with_no_faults_is_bit_identical_to_golden() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 110);
        let x = random_dense(128, 16, ValueDist::Uniform, 111);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let golden = kernel.run(&spec, &enc, &x);
        let unarmed = FaultInjector::new(FaultPlan::default());
        for fault in [None, Some(&unarmed)] {
            let checked = kernel
                .run_checked(&spec, &enc, &x, fault)
                .expect("clean container, clean run");
            assert_eq!(checked.output, golden.output, "bit-identical output");
            assert_eq!(
                checked.chain.launches[0].counters, golden.chain.launches[0].counters,
                "bit-identical counters"
            );
        }
    }

    #[test]
    fn checked_run_detects_recovers_and_stays_correct_under_injection() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 112);
        let x = random_dense(128, 16, ValueDist::Uniform, 113);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let inj = FaultInjector::new(FaultPlan::uniform(77, 0.02));
        let run = kernel
            .run_checked(&spec, &enc, &x, Some(&inj))
            .expect("default policy always recovers or falls back");
        let out = run.output.as_ref().expect("functional output");
        assert!(
            out.iter().all(|v| v.is_finite()),
            "detected corruption must never escape as NaN/Inf"
        );
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_injected > 0, "2% over many sites must fire");
        assert!(c.faults_detected > 0, "injected faults must be detected");
        assert!(
            c.faults_recovered + c.fault_fallbacks > 0,
            "every detection resolves by retry or fallback"
        );
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "recovered product must be correct, err {err}");
    }

    #[test]
    fn checked_run_seeded_injection_is_deterministic() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 114);
        let x = random_dense(128, 16, ValueDist::Uniform, 115);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let inj = FaultInjector::new(FaultPlan::uniform(31, 0.03));
        let a = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        let b = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        assert_eq!(a.output, b.output, "same seed, same output");
        assert_eq!(
            a.chain.launches[0].counters, b.chain.launches[0].counters,
            "same seed, same fault sites and counters"
        );
        assert!(a.chain.launches[0].counters.faults_injected > 0);
    }

    #[test]
    fn checked_run_exhausted_budget_without_fallback_is_a_typed_error() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 116);
        let x = random_dense(128, 16, ValueDist::Uniform, 117);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        // Rate 1.0 on one GroupTile: every reload re-corrupts.
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: false,
        };
        let err = kernel
            .run_checked_with(&spec, &enc, &x, Some(&inj), policy)
            .expect_err("unrecoverable corruption must surface");
        assert!(
            matches!(err, crate::error::SpinferError::Kernel(_)),
            "typed kernel error, got {err:?}"
        );
    }

    #[test]
    fn checked_run_falls_back_to_reference_product_when_retries_exhaust() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 118);
        let x = random_dense(128, 16, ValueDist::Uniform, 119);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: true,
        };
        let run = kernel
            .run_checked_with(&spec, &enc, &x, Some(&inj), policy)
            .expect("fallback path completes the run");
        let c = &run.chain.launches[0].counters;
        assert!(c.fault_fallbacks > 0, "budget exhaustion must fall back");
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "fallback product must be correct, err {err}");
    }

    #[test]
    fn checked_run_poison_only_recovers_through_decode_retry() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 120);
        let x = random_dense(128, 16, ValueDist::Uniform, 121);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let plan = FaultPlan {
            fp16_poison_rate: 0.10,
            seed: 21,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let run = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_detected > 0, "poison must be caught by D3");
        assert!(c.faults_recovered + c.fault_fallbacks > 0);
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()), "no poison escapes");
        let reference = w.matmul_ref(&x);
        assert!(max_abs_diff(out, &reference) < 0.5);
    }

    #[test]
    fn checked_run_rejects_dimension_mismatch_and_corrupt_container() {
        use crate::error::SpinferError;
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 64, 0.5, ValueDist::Uniform, 122);
        let x = random_dense(64, 8, ValueDist::Uniform, 123);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let bad_x = random_dense(32, 8, ValueDist::Uniform, 124);
        assert!(matches!(
            kernel.run_checked(&spec, &enc, &bad_x, None),
            Err(SpinferError::DimensionMismatch { .. })
        ));
        let mut corrupt = enc.clone();
        corrupt.nnz += 1;
        assert!(matches!(
            kernel.run_checked(&spec, &corrupt, &x, None),
            Err(SpinferError::Integrity(_))
        ));
    }

    #[test]
    fn launch_ctx_composes_tracing_with_the_checked_path() {
        use gpu_sim::trace::EventKind;
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 130);
        let x = random_dense(128, 16, ValueDist::Uniform, 131);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let policy = FaultPolicy::default();
        let inj = FaultInjector::new(FaultPlan::uniform(77, 0.02));
        let sink = TraceSink::new();
        let ctx = LaunchCtx::new(&spec)
            .with_fault(&inj)
            .with_policy(&policy)
            .with_sink(&sink);
        let run = kernel
            .launch(&ctx, &enc, &x)
            .expect("default policy recovers or falls back");
        // The checked machinery fired AND the trace captured phases —
        // a composition no pre-LaunchCtx entry point offered.
        assert!(run.chain.launches[0].counters.faults_detected > 0);
        let t = sink.finish();
        assert!(t
            .events
            .iter()
            .any(|e| e.kind == EventKind::Span && e.cat == "phase"));
        let reference = w.matmul_ref(&x);
        assert!(max_abs_diff(run.output.as_ref().unwrap(), &reference) < 0.5);
    }

    #[test]
    fn trait_run_matches_inherent_run_bit_identically() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 140);
        let x = random_dense(128, 16, ValueDist::Uniform, 141);
        let kernel = SpinferSpmm::new();
        let enc = TcaBme::encode(&w);
        let inherent = kernel.run(&spec, &enc, &x);
        // Fully-qualified call: the trait's default `run` encodes then
        // launches through a bare LaunchCtx.
        let via_trait = SpmmKernel::run(&kernel, &spec, &w, &x);
        assert_eq!(inherent.output, via_trait.output);
        assert_eq!(
            inherent.chain.merged_counters(),
            via_trait.chain.merged_counters()
        );
        assert_eq!(inherent.time_us().to_bits(), via_trait.time_us().to_bits());
    }

    #[test]
    fn dyn_kernel_erases_and_launches_the_same_product() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 64, 0.5, ValueDist::Uniform, 150);
        let x = random_dense(64, 8, ValueDist::Uniform, 151);
        let kernel = SpinferSpmm::new();
        let direct = kernel.run(&spec, &TcaBme::encode(&w), &x);
        let dynk = DynSpmmKernel::new(kernel);
        assert_eq!(dynk.name(), "SpInfer");
        assert_eq!(dynk.format_key(), "tca-bme");
        let enc = dynk.encode(&w);
        assert_eq!(enc.format_key(), "tca-bme");
        let run = dynk
            .launch(&LaunchCtx::new(&spec), &enc, &x)
            .expect("golden path");
        assert_eq!(run.output, direct.output);
        assert_eq!(run.chain.merged_counters(), direct.chain.merged_counters());
    }

    #[test]
    #[should_panic(expected = "expects format")]
    fn dyn_kernel_rejects_foreign_encodings() {
        let x = random_dense(64, 8, ValueDist::Uniform, 153);
        let spec = GpuSpec::rtx4090();
        let dynk = DynSpmmKernel::new(SpinferSpmm::new());
        // A DynEncoded carrying the wrong payload type must be refused
        // loudly, not silently mis-decoded.
        let foreign = DynEncoded::new("dense", DenseMatrix::zeros(64, 64));
        let _ = dynk.launch(&LaunchCtx::new(&spec), &foreign, &x);
    }

    #[test]
    fn decode_cell_matches_decode() {
        let w = random_sparse(128, 192, 0.6, ValueDist::Uniform, 102);
        let enc = TcaBme::encode(&w);
        for r in (0..128).step_by(7) {
            for c in (0..192).step_by(11) {
                assert_eq!(enc.decode_cell(r, c), w.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn estimate_matches_functional_counters() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(512, 512, 0.5, ValueDist::Uniform, 103);
        let x = random_dense(512, 16, ValueDist::Uniform, 104);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let run = kernel.run(&spec, &enc, &x);
        let est = kernel.estimate(&spec, &FormatStats::from_encoded(&enc), 16);
        let cf = run.chain.launches[0].counters.clone();
        let ce = est.chain.launches[0].counters.clone();
        let close = |a: u64, b: u64, tol: f64, what: &str| {
            let rel = (a as f64 - b as f64).abs() / (b as f64).max(1.0);
            assert!(rel < tol, "{what}: functional {a} vs estimate {b}");
        };
        // Compare post-L2 DRAM bytes: the functional path records raw X
        // traffic and discounts at timing; the estimate caps it up front.
        close(
            run.chain.launches[0].timing.dram_bytes,
            est.chain.launches[0].timing.dram_bytes,
            0.05,
            "dram_bytes",
        );
        close(cf.mma_insts, ce.mma_insts, 0.01, "mma");
        close(cf.cuda_int_insts, ce.cuda_int_insts, 0.05, "int");
        close(
            cf.smem_load_transactions,
            ce.smem_load_transactions,
            0.15,
            "smem_loads",
        );
        // Times within 10%.
        let tf = run.time_us();
        let te = est.time_us();
        assert!((tf - te).abs() / tf < 0.10, "time {tf} vs {te}");
    }

    #[test]
    fn synthetic_stats_match_encoded() {
        let w = random_sparse(1024, 1024, 0.6, ValueDist::Uniform, 105);
        let enc = TcaBme::encode(&w);
        let real = FormatStats::from_encoded(&enc);
        let synth = FormatStats::synthetic(1024, 1024, 0.6);
        let rel = |a: usize, b: usize| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(synth.nnz, real.nnz) < 0.02);
        assert!(rel(synth.values_len, real.values_len) < 0.02);
        assert!((synth.nonempty_bt_fraction - real.nonempty_bt_fraction).abs() < 0.01);
    }

    #[test]
    fn ablation_slows_the_kernel() {
        let spec = GpuSpec::rtx4090();
        let stats = FormatStats::synthetic(4096, 4096, 0.5);
        let full = SpinferSpmm::new().estimate(&spec, &stats, 16);
        let no_smbd = SpinferSpmm::with_ablation(Ablation {
            smbd: false,
            async_pipe: true,
        })
        .estimate(&spec, &stats, 16);
        let no_async = SpinferSpmm::with_ablation(Ablation {
            smbd: true,
            async_pipe: false,
        })
        .estimate(&spec, &stats, 16);
        assert!(
            no_smbd.time_us() > full.time_us(),
            "-SMBD {} vs full {}",
            no_smbd.time_us(),
            full.time_us()
        );
        assert!(
            no_async.time_us() > full.time_us(),
            "-AsyncPipe {} vs full {}",
            no_async.time_us(),
            full.time_us()
        );
        // SMBD matters more than the pipeline (Table 1's ordering).
        assert!(no_smbd.time_us() > no_async.time_us());
    }

    #[test]
    fn split_k_auto_fills_device() {
        let spec = GpuSpec::rtx4090();
        // M=1024 -> 16 block rows only; split-K must kick in.
        let stats = FormatStats::synthetic(1024, 8192, 0.5);
        let kernel = SpinferSpmm::new();
        let geo = kernel.geometry(&spec, &stats, 16);
        assert!(geo.split_k > 1, "split_k {}", geo.split_k);
        assert!(geo.grid_blocks >= u64::from(spec.sm_count));
    }

    #[test]
    fn memory_bound_speedup_tracks_compression_ratio() {
        // In the decode regime, time should scale ~ with stored bytes.
        let spec = GpuSpec::rtx4090();
        let t50 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.5), 16)
            .time_us();
        let t70 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.7), 16)
            .time_us();
        assert!(t70 < t50);
        let ratio = t50 / t70;
        assert!(ratio > 1.2 && ratio < 1.8, "ratio {ratio}");
    }
}
