//! Trace emission for kernel launches: per-phase attribution for the
//! SpInfer kernel and a generic per-launch chain exporter any
//! [`SpmmKernel`](super::SpmmKernel) can use.

use gpu_sim::counters::Counters;
use gpu_sim::kernel::LaunchChain;
use gpu_sim::trace::{attribution_weight, pids, TraceEvent, TraceSink};

use super::{kernel_name, Ablation};

/// Kernel phase labels for the trace seam (see [`gpu_sim::trace`]). One
/// record per GroupTile iteration and phase, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TracePhase {
    /// Bitmap + sparse-value LDGSTS stream and its cp.async commit.
    StreamW,
    /// Dense X-tile LDGSTS stream, its commit, and the sparse-group wait.
    StreamX,
    /// Per-TCTile SMBD decode (accumulated over the block's warps).
    Decode,
    /// Tensor-core mma waves (plus iteration-end barrier bookkeeping).
    Mma,
    /// Accumulator store to the reduction workspace.
    Epilogue,
}

impl TracePhase {
    fn name(self) -> &'static str {
        match self {
            TracePhase::StreamW => "stream_w",
            TracePhase::StreamX => "stream_x",
            TracePhase::Decode => "smbd_decode",
            TracePhase::Mma => "mma",
            TracePhase::Epilogue => "epilogue",
        }
    }
}

/// Per-task phase recorder for the traced kernel run. `run_block` pushes
/// `(phase, attribution weight)` pairs in execution order; weights are
/// counter deltas through [`attribution_weight`], so they are pure
/// functions of simulated events — deterministic at any host job count.
/// The launch body converts weights into sim-time spans once the
/// launch's estimated time is known (weights scale so all phase spans
/// of a launch sum exactly to its simulated time).
#[derive(Default)]
pub(crate) struct BlockTracer {
    pub(crate) spans: Vec<(TracePhase, u64)>,
    pub(crate) mark: u64,
}

impl BlockTracer {
    /// Re-baselines the weight cursor at a phase boundary.
    pub(crate) fn sync(&mut self, counters: &Counters, x_counters: &Counters) {
        self.mark = attribution_weight(counters) + attribution_weight(x_counters);
    }

    /// Closes a phase: records the weight accumulated since the last
    /// boundary and re-baselines.
    pub(crate) fn phase(&mut self, phase: TracePhase, counters: &Counters, x_counters: &Counters) {
        let now = attribution_weight(counters) + attribution_weight(x_counters);
        self.spans.push((phase, now - self.mark));
        self.mark = now;
    }
}

/// Converts per-task phase weights into sim-time trace events.
///
/// Weights scale uniformly by `launch time / total weight`, so the
/// `cat:"phase"` spans of the main launch sum *exactly* to its estimated
/// time; each block row gets a compute track (phases laid end to end)
/// and a cp.async track whose in-flight windows span commit→wait, with
/// flow arrows into the consuming phase. Everything here is a pure
/// function of the deterministic weight records, so the emitted trace is
/// byte-identical at any host job count.
pub(crate) fn emit_kernel_trace(
    sink: &TraceSink,
    ablation: Ablation,
    chain: &LaunchChain,
    task_spans: &[Vec<(TracePhase, u64)>],
) {
    let kname = kernel_name(ablation);
    let t_main_us = chain.launches[0].time_us();
    let total_w: u64 = task_spans
        .iter()
        .flat_map(|s| s.iter().map(|&(_, wgt)| wgt))
        .sum();
    let scale = if total_w == 0 {
        0.0
    } else {
        t_main_us / total_w as f64
    };
    let mut evs = Vec::new();
    for (gty, spans) in task_spans.iter().enumerate() {
        let compute = (pids::KERNEL, (gty as u32) * 2);
        let copy = (pids::KERNEL, (gty as u32) * 2 + 1);
        sink.name_track(compute, kname, &format!("block-row {gty} compute"));
        sink.name_track(copy, kname, &format!("block-row {gty} cp.async"));
        let mut cursor = 0u64;
        let mut iter_idx = 0u64;
        // Boundaries of the current GroupTile iteration (sim-time µs).
        let mut w_end = 0.0f64;
        let mut x_end = 0.0f64;
        let mut decode_ts = 0.0f64;
        for &(phase, wgt) in spans {
            let ts = cursor as f64 * scale;
            cursor += wgt;
            let end = cursor as f64 * scale;
            let mut ev = TraceEvent::span(compute, phase.name(), "phase", ts, end - ts);
            ev.arg = Some(("weight", wgt as f64));
            evs.push(ev);
            match phase {
                TracePhase::StreamW => w_end = end,
                TracePhase::StreamX => x_end = end,
                TracePhase::Decode => decode_ts = ts,
                TracePhase::Mma => {
                    // cp.async windows: the sparse group commits at the
                    // end of stream_w and retires at the wait before
                    // decode; the dense group commits at the end of
                    // stream_x and retires at the iteration-end
                    // wait_group(0). Flow arrows land on the phase that
                    // consumed the copied bytes.
                    let id = ((gty as u64) << 32) | (iter_idx << 1);
                    evs.push(TraceEvent::span(
                        copy,
                        "cp.async sparse",
                        "cp.async",
                        w_end,
                        decode_ts - w_end,
                    ));
                    evs.push(TraceEvent::flow(
                        copy,
                        "cp.async sparse",
                        "cp.async",
                        w_end,
                        true,
                        id,
                    ));
                    evs.push(TraceEvent::flow(
                        compute,
                        "cp.async sparse",
                        "cp.async",
                        decode_ts,
                        false,
                        id,
                    ));
                    evs.push(TraceEvent::span(
                        copy,
                        "cp.async dense",
                        "cp.async",
                        x_end,
                        end - x_end,
                    ));
                    evs.push(TraceEvent::flow(
                        copy,
                        "cp.async dense",
                        "cp.async",
                        x_end,
                        true,
                        id | 1,
                    ));
                    evs.push(TraceEvent::flow(
                        compute,
                        "cp.async dense",
                        "cp.async",
                        ts,
                        false,
                        id | 1,
                    ));
                    iter_idx += 1;
                }
                TracePhase::Epilogue => {}
            }
        }
    }
    if let Some(reduction) = chain.launches.get(1) {
        let track = (pids::KERNEL, u32::MAX);
        sink.name_track(track, kname, "split-K reduction");
        evs.push(TraceEvent::span(
            track,
            "reduction",
            "phase",
            t_main_us,
            reduction.time_us(),
        ));
    }
    sink.extend(evs);
}

/// Generic launch-chain trace for kernels without per-phase attribution:
/// one track per launch (named after the launch), with a single
/// `cat:"phase"` span per launch laid end to end on the sim-time clock.
/// The spans sum exactly to [`LaunchChain::time_us`], so chain traces
/// pass the same phase-sum gate as the attributed SpInfer trace. Pure
/// function of the chain — byte-identical at any host job count.
pub fn emit_chain_trace(sink: &TraceSink, kernel: &str, chain: &LaunchChain) {
    let mut evs = Vec::new();
    let mut ts = 0.0f64;
    for (i, launch) in chain.launches.iter().enumerate() {
        let track = (pids::KERNEL, i as u32);
        sink.name_track(track, kernel, &launch.name);
        let dur = launch.time_us();
        evs.push(TraceEvent::span(track, "launch", "phase", ts, dur));
        ts += dur;
    }
    sink.extend(evs);
}
