//! Fault-aware entry points: `run_checked`/`run_checked_with` and the
//! recovery policy.
//!
//! Both are thin wrappers that pack their arguments into a
//! [`LaunchCtx`](super::LaunchCtx) and delegate to the one unified
//! launch body — the checked semantics live entirely in the context:
//! a ctx carrying a fault injector or an explicit policy validates the
//! container, checksums every GroupTile, and arms the D1/D2/D3 retry
//! machinery inside the block routine.

use crate::error::SpinferError;
use crate::tca_bme::TcaBme;
use gpu_sim::fault::FaultInjector;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;

use super::launch::LaunchCtx;
use super::{SpinferSpmm, SpmmRun};

/// Recovery policy for checked runs: how hard to try before giving up
/// on a GroupTile, and what giving up means.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Maximum load/decode attempts per site (first try + retries).
    pub max_attempts: u32,
    /// After exhausting retries: `true` falls back to a reference
    /// product of the pristine GroupTile (slow but exact), `false`
    /// surfaces a typed [`KernelError`](crate::error::KernelError).
    pub fallback: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            fallback: true,
        }
    }
}

impl SpinferSpmm {
    /// [`run`](Self::run) with integrity checking and fault recovery,
    /// under the default [`FaultPolicy`].
    ///
    /// With `fault: None` the result is bit-identical to [`run`](Self::run)
    /// in both output and counter digest — the checked arms cost nothing
    /// when nothing is injected (fault tallies are excluded from
    /// [`Counters::digest`](gpu_sim::counters::Counters::digest)). The
    /// container is still validated (D4), so a corrupt or truncated
    /// `TcaBme` is rejected up front with a typed error instead of a
    /// panic.
    ///
    /// Defence layers:
    /// * **D1** — per-GroupTile FNV-1a checksums verify the landed
    ///   shared-memory image; mismatches re-stream from DRAM with a
    ///   reseeded draw stream.
    /// * **D2** — checked SMBD decode surfaces packed-value offset
    ///   overruns from corrupted bitmaps.
    /// * **D3** — checked decode rejects non-finite FP16 weights
    ///   (NaN/Inf poison).
    /// * **D4** — container validation before launch.
    pub fn run_checked(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        fault: Option<&FaultInjector>,
    ) -> Result<SpmmRun, SpinferError> {
        self.run_checked_with(spec, w, x, fault, FaultPolicy::default())
    }

    /// [`run_checked`](Self::run_checked) with an explicit policy.
    pub fn run_checked_with(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        fault: Option<&FaultInjector>,
        policy: FaultPolicy,
    ) -> Result<SpmmRun, SpinferError> {
        let mut ctx = LaunchCtx::new(spec).with_policy(&policy);
        if let Some(f) = fault {
            ctx = ctx.with_fault(f);
        }
        self.launch_with(&ctx, w, x)
    }
}
