//! The kernel launch abstraction: [`LaunchCtx`], the [`SpmmKernel`]
//! trait every SpMM backend implements, the object-safe
//! [`DynSpmmKernel`] wrapper, and `SpinferSpmm`'s unified launch body.
//!
//! Historically each capability grew its own method variant (`run`,
//! `run_traced`, `run_checked`, `run_checked_with`, …) and only the
//! SpInfer kernel got the fault/trace seams. All entry points now funnel
//! into one body parameterised by a [`LaunchCtx`], so capabilities
//! compose (traced **and** checked in one launch) and apply uniformly to
//! every registered kernel.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use crate::error::SpinferError;
use crate::tca_bme::TcaBme;
use gpu_sim::counters::Counters;
use gpu_sim::exec::{self, CounterShard};
use gpu_sim::fault::FaultInjector;
use gpu_sim::global::GlobalMemory;
use gpu_sim::kernel::{LaunchChain, LaunchResult};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::L2Reuse;
use gpu_sim::trace::TraceSink;

use super::block::{BlockBases, BlockGrid, BlockScratch, CheckedState};
use super::traced::{emit_kernel_trace, BlockTracer, TracePhase};
use super::{kernel_name, FaultPolicy, FormatStats, SpinferSpmm, SpmmRun};

/// Capability bundle for one kernel launch: the device plus every
/// optional seam.
///
/// | field    | absent (`None`)            | present                       |
/// |----------|----------------------------|-------------------------------|
/// | `fault`  | golden counter stream      | injection + D1–D3 detection   |
/// | `policy` | panic-on-contract semantics| validated inputs, typed errors|
/// | `sink`   | no trace events            | per-phase Chrome-trace spans  |
///
/// A context carrying neither `fault` nor `policy` runs the *golden*
/// path: bit-identical counters and output to the historical `run`
/// entry points, with no integrity work. Attaching a `sink` never
/// perturbs output, counters, or simulated time — tracing only reads
/// the counter stream.
#[derive(Clone, Copy)]
pub struct LaunchCtx<'a> {
    /// Simulated device executing the launch.
    pub spec: &'a GpuSpec,
    /// Fault injector driving bit flips, commit faults, and FP16 poison.
    pub fault: Option<&'a FaultInjector>,
    /// Recovery policy; its presence alone enables input validation and
    /// typed-error semantics even with no injector attached.
    pub policy: Option<&'a FaultPolicy>,
    /// Trace sink receiving phase spans and cp.async flow arrows.
    pub sink: Option<&'a TraceSink>,
}

impl<'a> LaunchCtx<'a> {
    /// A bare golden-path context: no faults, no checking, no tracing.
    pub fn new(spec: &'a GpuSpec) -> Self {
        LaunchCtx {
            spec,
            fault: None,
            policy: None,
            sink: None,
        }
    }

    /// Attaches a fault injector (enables the checked arms).
    pub fn with_fault(mut self, fault: &'a FaultInjector) -> Self {
        self.fault = Some(fault);
        self
    }

    /// Attaches a recovery policy (enables the checked arms).
    pub fn with_policy(mut self, policy: &'a FaultPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Attaches a trace sink.
    pub fn with_sink(mut self, sink: &'a TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Whether this launch runs with integrity checking: any fault or
    /// policy attachment opts in. `run_checked(.., None)` still
    /// validates the container, so a policy alone is sufficient.
    pub fn checked(&self) -> bool {
        self.fault.is_some() || self.policy.is_some()
    }

    /// The recovery policy in effect (default when only an injector was
    /// attached).
    pub fn effective_policy(&self) -> FaultPolicy {
        self.policy.copied().unwrap_or_default()
    }
}

impl fmt::Debug for LaunchCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LaunchCtx")
            .field("fault", &self.fault.is_some())
            .field("policy", &self.policy)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

/// One SpMM backend: a weight format plus a launch routine.
///
/// Every kernel in the workspace — SpInfer itself and the six baselines
/// — implements this trait, so sweeps, caches, serving, and the CLI
/// dispatch generically instead of through per-kernel match arms. The
/// `run`/`run_encoded` provided methods replace the hand-written shims
/// each baseline used to carry.
///
/// # Contract
///
/// Pinned by `tests/kernel_contract.rs` for every registered kernel:
///
/// * `run(spec, w, x)` ≡ `launch(LaunchCtx::new(spec), encode(w), x)`
///   bit-identically (output, counters, and simulated-time bits).
/// * Results are bit-identical at any host job count.
/// * Attaching a trace sink is output-neutral.
pub trait SpmmKernel {
    /// The kernel's encoded weight format.
    type Encoded: Send + Sync + 'static;

    /// Display name, matching the figure labels (e.g. `"SpInfer"`,
    /// `"Flash-LLM"`). Registry lookups key on this.
    fn name(&self) -> &'static str;

    /// Identifier of the *encoding* this kernel consumes. Kernels
    /// sharing a format (Sputnik and cuSPARSE both read CSR) return the
    /// same key so caches encode once per format, not once per kernel.
    fn format_key(&self) -> &'static str {
        self.name()
    }

    /// Encodes a dense weight matrix into this kernel's format.
    fn encode(&self, w: &DenseMatrix) -> Self::Encoded;

    /// Structural validation of an encoded container. Called by checked
    /// launches before any decode consumes the data; formats without
    /// integrity metadata accept unconditionally.
    fn validate(&self, _enc: &Self::Encoded) -> Result<(), SpinferError> {
        Ok(())
    }

    /// Executes `W × X` under the capabilities in `ctx`.
    ///
    /// With a bare [`LaunchCtx::new`] this is infallible for
    /// well-dimensioned inputs; dimension mismatches and fault-path
    /// hazards surface as typed [`SpinferError`]s.
    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &Self::Encoded,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError>;

    /// Encode-then-launch convenience: `run(w, x) = launch(encode(w), x)`
    /// on a bare context.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `K×N` for the `M×K` weights (CUDA
    /// launch-failure semantics; use [`Self::launch`] for typed errors).
    fn run(&self, spec: &GpuSpec, w: &DenseMatrix, x: &DenseMatrix) -> SpmmRun {
        let enc = self.encode(w);
        self.run_encoded(spec, &enc, x)
    }

    /// [`Self::run`] against pre-encoded weights.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `K×N` for the `M×K` weights.
    fn run_encoded(&self, spec: &GpuSpec, enc: &Self::Encoded, x: &DenseMatrix) -> SpmmRun {
        match self.launch(&LaunchCtx::new(spec), enc, x) {
            Ok(run) => run,
            Err(e) => panic!("{} launch failed outside a fault context: {e}", self.name()),
        }
    }
}

/// Type-erased encoded weights produced by [`DynSpmmKernel::encode`].
///
/// Carries the originating [`format key`](SpmmKernel::format_key) so
/// caches can share one encoding across kernels that read the same
/// format. Cloning is cheap (the payload is reference-counted).
#[derive(Clone)]
pub struct DynEncoded {
    format_key: &'static str,
    payload: Arc<dyn Any + Send + Sync>,
}

impl DynEncoded {
    /// Wraps an already-encoded container under a format key. Prefer
    /// [`DynSpmmKernel::encode`], which keys the payload automatically.
    pub fn new<E: Send + Sync + 'static>(format_key: &'static str, enc: E) -> Self {
        DynEncoded {
            format_key,
            payload: Arc::new(enc),
        }
    }

    /// The format identifier this encoding was produced under.
    pub fn format_key(&self) -> &'static str {
        self.format_key
    }

    /// Borrows the typed container, if `E` matches the payload.
    pub fn downcast<E: 'static>(&self) -> Option<&E> {
        self.payload.downcast_ref::<E>()
    }

    /// Whether two handles share one underlying encoding (pointer
    /// identity — used to assert encode-once cache behaviour).
    pub fn shares_encoding(&self, other: &DynEncoded) -> bool {
        Arc::ptr_eq(&self.payload, &other.payload)
    }
}

impl fmt::Debug for DynEncoded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynEncoded")
            .field("format_key", &self.format_key)
            .finish()
    }
}

/// Object-safe view of an [`SpmmKernel`] (the associated `Encoded` type
/// is erased behind [`DynEncoded`]).
trait ErasedSpmm: Send + Sync {
    fn name(&self) -> &'static str;
    fn format_key(&self) -> &'static str;
    fn encode_dyn(&self, w: &DenseMatrix) -> DynEncoded;
    fn validate_dyn(&self, enc: &DynEncoded) -> Result<(), SpinferError>;
    fn launch_dyn(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &DynEncoded,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError>;
}

impl<K: SpmmKernel + Send + Sync + 'static> ErasedSpmm for K {
    fn name(&self) -> &'static str {
        SpmmKernel::name(self)
    }

    fn format_key(&self) -> &'static str {
        SpmmKernel::format_key(self)
    }

    fn encode_dyn(&self, w: &DenseMatrix) -> DynEncoded {
        DynEncoded::new(SpmmKernel::format_key(self), self.encode(w))
    }

    fn validate_dyn(&self, enc: &DynEncoded) -> Result<(), SpinferError> {
        self.validate(self.expect_typed(enc))
    }

    fn launch_dyn(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &DynEncoded,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        self.launch(ctx, self.expect_typed(enc), x)
    }
}

/// Downcast helper shared by the erased entry points.
trait ExpectTyped: SpmmKernel {
    fn expect_typed<'e>(&self, enc: &'e DynEncoded) -> &'e Self::Encoded {
        enc.downcast::<Self::Encoded>().unwrap_or_else(|| {
            panic!(
                "encoded weights carry format '{}' but kernel '{}' expects format '{}'",
                enc.format_key(),
                self.name(),
                self.format_key()
            )
        })
    }
}

impl<K: SpmmKernel + ?Sized> ExpectTyped for K {}

/// A clonable, type-erased handle to any [`SpmmKernel`] — the currency
/// of the kernel registry, the benchmark sweeps, and the CLI.
#[derive(Clone)]
pub struct DynSpmmKernel {
    inner: Arc<dyn ErasedSpmm>,
}

impl DynSpmmKernel {
    /// Erases a concrete kernel.
    pub fn new<K: SpmmKernel + Send + Sync + 'static>(kernel: K) -> Self {
        DynSpmmKernel {
            inner: Arc::new(kernel),
        }
    }

    /// Display name (see [`SpmmKernel::name`]).
    pub fn name(&self) -> &'static str {
        self.inner.name()
    }

    /// Encoding identifier (see [`SpmmKernel::format_key`]).
    pub fn format_key(&self) -> &'static str {
        self.inner.format_key()
    }

    /// Encodes dense weights into this kernel's format, type-erased.
    pub fn encode(&self, w: &DenseMatrix) -> DynEncoded {
        self.inner.encode_dyn(w)
    }

    /// Structural validation of an erased container.
    ///
    /// # Panics
    ///
    /// Panics if `enc` was produced by a kernel with a different format.
    pub fn validate(&self, enc: &DynEncoded) -> Result<(), SpinferError> {
        self.inner.validate_dyn(enc)
    }

    /// Executes `W × X` under the capabilities in `ctx`.
    ///
    /// # Panics
    ///
    /// Panics if `enc` was produced by a kernel with a different format.
    pub fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &DynEncoded,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        self.inner.launch_dyn(ctx, enc, x)
    }

    /// Encode-then-launch on a bare context.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `K×N` for the `M×K` weights.
    pub fn run(&self, spec: &GpuSpec, w: &DenseMatrix, x: &DenseMatrix) -> SpmmRun {
        let enc = self.encode(w);
        match self.launch(&LaunchCtx::new(spec), &enc, x) {
            Ok(run) => run,
            Err(e) => panic!("{} launch failed outside a fault context: {e}", self.name()),
        }
    }
}

impl fmt::Debug for DynSpmmKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DynSpmmKernel")
            .field("name", &self.name())
            .field("format_key", &self.format_key())
            .finish()
    }
}

impl SpmmKernel for SpinferSpmm {
    type Encoded = TcaBme;

    fn name(&self) -> &'static str {
        "SpInfer"
    }

    fn format_key(&self) -> &'static str {
        "tca-bme"
    }

    fn encode(&self, w: &DenseMatrix) -> TcaBme {
        TcaBme::encode(w)
    }

    fn validate(&self, enc: &TcaBme) -> Result<(), SpinferError> {
        enc.validate().map_err(SpinferError::from)
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &TcaBme,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        self.launch_with(ctx, enc, x)
    }
}

impl SpinferSpmm {
    /// Functional execution: computes the product and records counters
    /// from real addresses and bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.k`.
    pub fn run(&self, spec: &GpuSpec, w: &TcaBme, x: &DenseMatrix) -> SpmmRun {
        assert_eq!(x.rows(), w.k, "X must be K×N");
        self.launch_with(&LaunchCtx::new(spec), w, x)
            .expect("golden-path launch is infallible once dimensions are checked")
    }

    /// [`Self::run`] with span recording into `sink` (see
    /// [`gpu_sim::trace`]): per GroupTile iteration, `stream_w` /
    /// `stream_x` / `smbd_decode` / `mma` phase spans on one compute
    /// track per block row, cp.async in-flight windows with
    /// issue→commit→wait flow arrows on a sibling track, one `epilogue`
    /// span per block, and a `reduction` span when split-K > 1.
    ///
    /// Output, counters, and simulated time are bit-identical to
    /// [`Self::run`]: tracing only *reads* the counter stream. Spans are
    /// timestamped in simulated µs — phase attribution weights scaled so
    /// the main launch's phase spans sum exactly to its estimated time —
    /// so traces are byte-identical at any host job count.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.k`.
    pub fn run_traced(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        sink: &TraceSink,
    ) -> SpmmRun {
        assert_eq!(x.rows(), w.k, "X must be K×N");
        self.launch_with(&LaunchCtx::new(spec).with_sink(sink), w, x)
            .expect("golden-path launch is infallible once dimensions are checked")
    }

    /// The one launch body behind every `SpinferSpmm` entry point.
    ///
    /// The context decides which arms are live: a checked launch
    /// ([`LaunchCtx::checked`]) validates the container and threads
    /// per-GroupTile checksums into the block routine; a sink threads a
    /// phase tracer. Neither arm costs anything when absent, so the
    /// golden path is bit-identical to the historical `run`.
    pub(crate) fn launch_with(
        &self,
        ctx: &LaunchCtx<'_>,
        w: &TcaBme,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        let spec = ctx.spec;
        if x.rows() != w.k {
            return Err(SpinferError::DimensionMismatch {
                expected_k: w.k,
                got: x.rows(),
            });
        }
        // Integrity preflight (checked launches only): structural
        // validation plus pristine per-GroupTile checksums for D1.
        let checksums = if ctx.checked() {
            w.validate()?;
            w.gtile_checksums()
        } else {
            Vec::new()
        };
        let checked = ctx.checked().then(|| CheckedState {
            checksums: &checksums,
            policy: ctx.effective_policy(),
        });
        let fault = ctx.fault;
        let sink = ctx.sink;

        let n = x.cols();
        let stats = FormatStats::from_encoded(w);
        let geo = self.geometry(spec, &stats, n);

        // Virtual address space for coalescing analysis.
        let mut gm = GlobalMemory::new();
        let _offsets_base = gm.alloc(4 * w.gtile_offsets.len());
        let values_base = gm.alloc(2 * w.values.len());
        let bitmaps_base = gm.alloc(8 * w.bitmaps.len());
        let x_base = gm.alloc(2 * w.k * geo.n_pad);
        let ws_base = gm.alloc(4 * w.m_pad * geo.n_pad * geo.split_k);

        // Shared-memory virtual layout within a block (one buffer; the
        // second buffer has identical bank behaviour).
        let bases = BlockBases {
            values: values_base,
            bitmaps: bitmaps_base,
            x: x_base,
            ws: ws_base,
            smem_values: (w.config.bts_per_gt() * 8) as u64,
        };

        let gtiles_y = w.gtiles_y();
        let gtiles_x = w.gtiles_x();
        let slice_len = w.m_pad * geo.n_pad;
        let band_len = w.config.gt_rows * geo.n_pad;

        let (workspace, mut counters, x_counters, task_spans) = fan_out_block_rows(
            gtiles_y,
            geo.split_k,
            slice_len,
            band_len,
            BlockScratch::new,
            |block_scratch, scratch, gty| {
                let mut shard = CounterShard::new();
                let mut x_shard = CounterShard::new();
                let mut tracer = sink.map(|_| BlockTracer::default());
                for nt in 0..geo.grid_x {
                    let n0 = nt * geo.tile_n;
                    for split in 0..geo.split_k {
                        let gx0 = split * geo.gtx_per_split;
                        let gx1 = (gx0 + geo.gtx_per_split).min(gtiles_x);
                        self.run_block(
                            w,
                            x,
                            shard.counters(),
                            x_shard.counters(),
                            &mut scratch[split * slice_len..][..slice_len],
                            block_scratch,
                            &geo,
                            &BlockGrid { gty, n0, gx0, gx1 },
                            &bases,
                            checked.as_ref(),
                            fault,
                            tracer.as_mut(),
                        )?;
                    }
                }
                Ok((shard, x_shard, tracer.map(|t| t.spans)))
            },
        )?;

        let x_requested = x_counters.dram_read_bytes;
        counters.merge(&x_counters);
        let l2 = [L2Reuse {
            buffer_bytes: (2 * w.k * geo.n_pad) as u64,
            requested_bytes: x_requested,
        }];

        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            kernel_name(self.config.ablation),
            spec,
            self.launch_shape(&geo),
            counters,
            &l2,
        ));

        // Reduce the split-K workspace through the functional reduction
        // kernel (its counters come from real addresses too).
        let mut out_pad = vec![0.0f32; w.m_pad * geo.n_pad];
        if geo.split_k > 1 {
            let out_base = gm.alloc(4 * w.m_pad * geo.n_pad);
            chain.push(crate::reduction::run_reduction(
                spec,
                &workspace,
                &mut out_pad,
                w.m_pad * geo.n_pad,
                geo.split_k,
                ws_base,
                out_base,
            ));
        } else {
            out_pad.copy_from_slice(&workspace);
        }

        // Slice to logical M×N.
        let mut output = vec![0.0f32; w.m * n];
        for r in 0..w.m {
            output[r * n..(r + 1) * n].copy_from_slice(&out_pad[r * geo.n_pad..r * geo.n_pad + n]);
        }
        if let Some(sink) = sink {
            emit_kernel_trace(sink, self.config.ablation, &chain, &task_spans);
        }
        Ok(SpmmRun {
            output: Some(output),
            chain,
        })
    }
}

/// Per-block-row outcome from a [`fan_out_block_rows`] body: the W-side
/// and X-side counter shards plus optional per-phase trace spans.
pub(crate) type RowOutcome = (CounterShard, CounterShard, Option<Vec<(TracePhase, u64)>>);

/// Aggregated [`fan_out_block_rows`] result: the filled split-K
/// workspace, merged W-side and X-side counters, and per-block-row
/// trace spans in block-row order.
pub(crate) type FanOutResult = (Vec<f32>, Counters, Counters, Vec<Vec<(TracePhase, u64)>>);

/// Block-level fan-out shared by the FP16 and INT8 launch bodies (see
/// `gpu_sim::exec`): block rows `gty` write disjoint workspace row
/// bands, so they distribute across host cores. The split-K workspace
/// (`split_k × slice_len` FP32) is pre-cut into per-(split, gty) bands
/// and each task gets the bands it owns — safe disjoint `&mut` access
/// with no runtime aliasing checks.
///
/// Block routines address the workspace by *global* row, so each worker
/// runs its block rows against a reusable full-size scratch image
/// (`body`'s second argument), then the finished bands are copied out
/// and re-zeroed. Event counts shard per task and merge field-wise
/// (`u64` addition commutes), so both the numerics (disjoint copies)
/// and the counters are bit-identical to the serial loop at any job
/// count. A block row that aborts on an unrecoverable fault has its
/// reusable scratch zeroed (the next task on that worker expects it
/// clean) and carries the typed error out through the shard results.
/// Per-task span records come back in task (block-row) order, so traces
/// built from them are independent of scheduling.
pub(crate) fn fan_out_block_rows<S: Send>(
    gtiles_y: usize,
    split_k: usize,
    slice_len: usize,
    band_len: usize,
    init: impl Fn() -> S + Send + Sync,
    body: impl Fn(&mut S, &mut [f32], usize) -> Result<RowOutcome, crate::error::KernelError>
        + Send
        + Sync,
) -> Result<FanOutResult, SpinferError> {
    let mut workspace = vec![0.0f32; split_k * slice_len];
    let mut split_bands: Vec<_> = workspace
        .chunks_mut(slice_len)
        .map(|s| s.chunks_mut(band_len))
        .collect();
    let tasks: Vec<(usize, Vec<&mut [f32]>)> = (0..gtiles_y)
        .map(|gty| {
            let bands = split_bands
                .iter_mut()
                .map(|it| {
                    it.next().expect(
                        "workspace band iterator exhausted: every split slice must hold \
                         one band per block row (workspace sized split_k * m_pad * n_pad \
                         with m_pad = gtiles_y * gt_rows)",
                    )
                })
                .collect();
            (gty, bands)
        })
        .collect();

    let shards = exec::par_map_with(
        tasks,
        // Worker-scoped state: the full-size workspace image plus the
        // block-level scratch (accumulators, X tile, decode buffers),
        // allocated once per worker and reused across every block
        // invocation instead of per launch-grid cell.
        || (vec![0.0f32; split_k * slice_len], init()),
        |(scratch, state), (gty, bands)| match body(state, scratch, gty) {
            Ok(out) => {
                for (split, band) in bands.into_iter().enumerate() {
                    let src = &mut scratch[split * slice_len + gty * band_len..][..band_len];
                    band.copy_from_slice(src);
                    src.fill(0.0);
                }
                Ok(out)
            }
            Err(e) => {
                scratch.fill(0.0);
                Err(e)
            }
        },
    );
    let mut counters = Counters::new();
    let mut x_counters = Counters::new();
    let mut task_spans: Vec<Vec<(TracePhase, u64)>> = Vec::new();
    for res in shards {
        let (shard, x_shard, spans) = res.map_err(SpinferError::Kernel)?;
        counters.merge(&shard.into_counters());
        x_counters.merge(&x_shard.into_counters());
        if let Some(spans) = spans {
            task_spans.push(spans);
        }
    }
    Ok((workspace, counters, x_counters, task_spans))
}
