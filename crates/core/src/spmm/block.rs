//! The per-thread-block routine and its fault-aware load helpers.
//!
//! One function — `run_block` — serves the golden, traced, and checked
//! paths. The merge is free on the golden path by construction:
//!
//! * the fault-aware `_f` hooks (`record_ldgsts_stream_f`,
//!   `commit_group_f`, `decode_tctile_f32_checked`) collapse to their
//!   golden counterparts when no injector is attached, recording the
//!   identical counter stream;
//! * the tracer only *reads* counters at phase boundaries;
//! * the D1 checksum loop is gated on an armed injector, and the D2/D3
//!   retry machinery on the checked state — neither executes otherwise.

use crate::error::KernelError;
use crate::smbd::{decode_tctile_f32, decode_tctile_f32_checked, DecodeFault};
use crate::tca_bme::{checksum_gtile, TcaBme, TT_DIM};
use gpu_sim::bitops::popc64;
use gpu_sim::counters::Counters;
use gpu_sim::fault::{flip_bit_u16, flip_bit_u64, CommitFault, FaultInjector};
use gpu_sim::fp16::{f16_to_f32_slice, Half};
use gpu_sim::global::{warp_global_store, warp_ldgsts, warp_ldgsts_f, VAddr};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::shared_memory::warp_ldsm_x4;
use gpu_sim::tensor_core::{mma_m16n8k16_bslice_ntiles, FragC, MAX_NTILES, MMA_K};
use gpu_sim::trace::attribution_weight;

use super::traced::{BlockTracer, TracePhase};
use super::{FaultPolicy, Geometry, SpinferSpmm, REG_DECODE_EXTRA_INT, REG_DECODE_SHFL};

/// Grid coordinates of one block invocation: block row `gty`, N tile
/// starting at `n0`, GroupTile columns `gx0..gx1`.
pub(crate) struct BlockGrid {
    pub(crate) gty: usize,
    pub(crate) n0: usize,
    pub(crate) gx0: usize,
    pub(crate) gx1: usize,
}

/// Virtual-address bases and shared-memory layout shared by every block
/// of a launch.
pub(crate) struct BlockBases {
    pub(crate) values: VAddr,
    pub(crate) bitmaps: VAddr,
    pub(crate) x: VAddr,
    pub(crate) ws: VAddr,
    pub(crate) smem_values: u64,
}

/// Integrity state threaded into checked launches: pristine
/// per-GroupTile checksums plus the recovery policy.
pub(crate) struct CheckedState<'a> {
    pub(crate) checksums: &'a [u32],
    pub(crate) policy: FaultPolicy,
}

/// Reusable per-worker buffers for [`SpinferSpmm::run_block`], hoisted
/// out of the launch's N/split loops so a worker allocates once and
/// every block invocation runs allocation-free: the per-warp
/// accumulators (flat, `warps × n8`), the decode-once `f32` X tile, the
/// GroupTile shared-memory image under injection, and the per-TCTile
/// value-offset prefix (`tc_base[tc] = Σ popc64` of preceding bitmaps,
/// computed once per GroupTile instead of once per warp × TCTile).
#[derive(Default)]
pub(crate) struct BlockScratch {
    accs: Vec<FragC>,
    xf: Vec<f32>,
    bms_img: Vec<u64>,
    vals_img: Vec<Half>,
    tc_base: Vec<usize>,
}

impl BlockScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }
}

impl SpinferSpmm {
    /// One thread block's work: all GroupTiles in `at.gx0..at.gx1` for
    /// block row `at.gty` and N tile starting at `at.n0`.
    ///
    /// With `checked` absent this is the golden kernel (panic-on-contract
    /// semantics, no integrity work); with it, every hazard becomes a
    /// typed outcome — D1 checksum verification of the landed image with
    /// bounded re-streams, and checked SMBD decode surfacing offset
    /// overruns (D2) and FP16 poison (D3) with bounded re-decodes. With
    /// `fault` absent (or unarmed) the counter stream and numerics are
    /// bit-identical to the golden path: the `_f` hooks collapse to the
    /// golden functions and no shared-memory image is materialised.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_block(
        &self,
        w: &TcaBme,
        x: &DenseMatrix,
        counters: &mut Counters,
        x_counters: &mut Counters,
        workspace: &mut [f32],
        scratch: &mut BlockScratch,
        geo: &Geometry,
        at: &BlockGrid,
        bases: &BlockBases,
        checked: Option<&CheckedState<'_>>,
        fault: Option<&FaultInjector>,
        mut tracer: Option<&mut BlockTracer>,
    ) -> Result<(), KernelError> {
        let BlockGrid { gty, n0, gx0, gx1 } = *at;
        let cfg = w.config;
        let tt_rows = cfg.tt_rows();
        let tt_cols = cfg.tt_cols();
        let n8 = geo.tile_n / 8;
        let n = x.cols();
        debug_assert!(
            fault.is_none() || checked.is_some(),
            "an injector is only ever threaded through a checked launch"
        );
        // Tracing only *reads* the counter stream (attribution-weight
        // checkpoints at phase boundaries); with `tracer` absent, no
        // extra work runs and the code path is the pre-existing one.
        let trace_on = tracer.is_some();
        if let Some(t) = tracer.as_deref_mut() {
            t.sync(counters, x_counters);
        }

        // Per-warp accumulators (warp = TCTile row strip), flat
        // `warps × n8` in the worker-scoped scratch — reset here, but
        // only (re)allocated on the first block a worker runs.
        let BlockScratch {
            accs,
            xf,
            bms_img,
            vals_img,
            tc_base,
        } = scratch;
        accs.clear();
        accs.resize(geo.warps * n8, FragC::zero());

        // Decode-once X tile: the `gt_cols × tile_n` activation window
        // every warp of this block multiplies, converted to `f32` once
        // per GroupTile column. All warps and all N-blocks stride into
        // this buffer directly (`mma_m16n8k16_bslice_ntiles`), replacing
        // the per-mma `FragB` build that re-decoded each X element
        // `warps × 2` times. Out-of-range rows/columns are zero,
        // exactly as the fragment path's predicated accessor produced.
        xf.clear();
        xf.resize(cfg.gt_cols * geo.tile_n, 0.0);

        // Algorithm 1's cp.async discipline: two independent commit groups
        // per iteration (bitmap+sparse, then dense), retired in order with
        // wait_group(1) before SMBD and wait_group(0) before the Tensor
        // Core consumes the X fragments. Data moves eagerly in the
        // functional simulator; the tracker verifies the ordering.
        let mut cp_async = gpu_sim::async_copy::AsyncCopyState::new();
        let xh = x.as_slice();
        for gtx in gx0..gx1 {
            let gt = w.gt_index(gty, gtx);
            let pristine_vals = w.gtile_values(gt);
            let pristine_bms = w.gtile_bitmaps(gt);
            let bm_addr = bases.bitmaps + (gt * cfg.bts_per_gt() * 8) as u64;
            let val_addr = bases.values + (w.gtile_offsets[gt] as u64) * 2;
            // Injection only matters for this tile when the plan is
            // armed and the tile filter admits it; otherwise the golden
            // path runs against the pristine slices directly.
            let inject = fault.filter(|i| i.plan().armed() && i.gtile_enabled(gt));

            // --- 1. GTile loading (bitmaps + values) via LDGSTS.128,
            //        fault-aware ---
            load_gtile_image(
                counters,
                inject,
                pristine_bms,
                pristine_vals,
                bm_addr,
                val_addr,
                bms_img,
                vals_img,
            );
            cp_async.issue();
            // Bitmap + sparse values group.
            apply_commit_fault(
                cp_async.commit_group_f(counters, inject, bm_addr),
                bms_img,
                vals_img,
                inject.is_some(),
            );
            if let Some(t) = tracer.as_deref_mut() {
                t.phase(TracePhase::StreamW, counters, x_counters);
            }

            // --- 3. XTile loading (no integrity metadata; golden path) ---
            stream_x_tile(counters, x_counters, bases.x, gtx, cfg.gt_cols, geo, n0);
            cp_async.issue();
            cp_async.commit_group(); // Dense XTile group.
                                     // SMBD may start once the sparse group lands (dense still in
                                     // flight) — Algorithm 1 line 24.
            let retired = cp_async.wait_group(1);
            debug_assert_eq!(retired, 1, "sparse group retires first");
            if let Some(t) = tracer.as_deref_mut() {
                t.phase(TracePhase::StreamX, counters, x_counters);
            }

            // Fill the decode-once X tile for this GroupTile column:
            // one batch LUT sweep per in-range row, zero-filled tails
            // for padding rows/columns.
            for kk in 0..cfg.gt_cols {
                let kr = gtx * cfg.gt_cols + kk;
                let row = &mut xf[kk * geo.tile_n..(kk + 1) * geo.tile_n];
                let take = geo.tile_n.min(n.saturating_sub(n0));
                if kr < x.rows() && take > 0 {
                    f16_to_f32_slice(&xh[kr * n + n0..kr * n + n0 + take], &mut row[..take]);
                    row[take..].fill(0.0);
                } else {
                    row.fill(0.0);
                }
            }

            // --- D1: checksum the landed image; retry from DRAM ---
            let mut verified = true;
            if let (Some(chk), Some(inj0)) = (checked, inject) {
                let expected = chk.checksums[gt];
                let mut attempt: u32 = 0;
                verified = loop {
                    attempt += 1;
                    if checksum_gtile(bms_img, vals_img) == expected {
                        if attempt > 1 {
                            counters.faults_recovered += 1;
                        }
                        break true;
                    }
                    counters.faults_detected += 1;
                    if attempt >= chk.policy.max_attempts {
                        break false;
                    }
                    // Synchronous re-stream of the GroupTile with a
                    // reseeded draw stream (a fresh DRAM transfer hits
                    // fresh fault sites, not the same ones again).
                    let inj_r = inj0.reseeded(u64::from(attempt));
                    load_gtile_image(
                        counters,
                        Some(&inj_r),
                        pristine_bms,
                        pristine_vals,
                        bm_addr,
                        val_addr,
                        bms_img,
                        vals_img,
                    );
                    cp_async.issue();
                    apply_commit_fault(
                        cp_async.commit_group_f(counters, Some(&inj_r), bm_addr),
                        bms_img,
                        vals_img,
                        true,
                    );
                    cp_async.wait_group(0);
                };
            }
            if !verified {
                let chk = checked.expect("D1 only fails inside a checked launch");
                if !chk.policy.fallback {
                    return Err(KernelError::RetryBudgetExhausted {
                        gt,
                        attempts: chk.policy.max_attempts,
                    });
                }
                // Reference product from the pristine encoding: slower,
                // but guaranteed correct — nothing from the corrupted
                // image reaches the accumulators.
                counters.fault_fallbacks += 1;
                fallback_gtile_product(cfg, pristine_bms, pristine_vals, xf, geo, accs, n8);
                cp_async.wait_group(0);
                counters.barriers += 1;
                if let Some(t) = tracer.as_deref_mut() {
                    // Keep the per-iteration span shape intact: the
                    // host-side fallback has no decode/mma events, so the
                    // residual (retry streams, barrier) folds into mma.
                    let now = attribution_weight(counters) + attribution_weight(x_counters);
                    let residual = now - t.mark;
                    t.spans.push((TracePhase::Decode, 0));
                    t.spans.push((TracePhase::Mma, residual));
                    t.mark = now;
                }
                continue;
            }
            let (bms, vals): (&[u64], &[Half]) = if inject.is_some() {
                (bms_img, vals_img)
            } else {
                (pristine_bms, pristine_vals)
            };

            // Per-TCTile base offsets into the value buffer: one prefix
            // scan per GroupTile, replacing the popcount sum every
            // warp × TCTile iteration used to recompute.
            tc_base.clear();
            let mut running = 0usize;
            for tc_bms in bms.chunks_exact(4) {
                tc_base.push(running);
                running += tc_bms.iter().map(|&b| popc64(b) as usize).sum::<usize>();
            }

            // --- 2. WTile decoding, 4./5. fragment loads + Tensor Cores
            //        (checked arms: D2, D3) ---
            // Decode and mma interleave per TCTile; with tracing on,
            // their weights accumulate separately so each gets one span
            // per GroupTile iteration.
            let mut dec_w = 0u64;
            let mut mma_w = 0u64;
            let mut wmark = 0u64;
            for warp in 0..geo.warps {
                let tty = warp % tt_rows;
                for ttx in 0..tt_cols {
                    let tc_idx = ttx * tt_rows + tty;
                    // Base offset: popcounts of preceding TCTiles,
                    // prefix-scanned once per GroupTile above.
                    let base = tc_base[tc_idx];
                    let tc_bms: [u64; 4] = bms[tc_idx * 4..tc_idx * 4 + 4].try_into().expect(
                        "TCTile bitmap slice must hold exactly 4 BitmapTiles: gtile_bitmaps \
                         returns bts_per_gt() words, a multiple of BTS_PER_TT = 4",
                    );
                    if trace_on {
                        wmark = attribution_weight(counters);
                    }
                    let a_rows = match checked {
                        None => {
                            decode_tctile_f32(counters, &tc_bms, vals, base, bases.smem_values).0
                        }
                        Some(chk) => self.decode_tctile_checked(
                            counters,
                            DecodeSite {
                                gt,
                                tc_idx,
                                bm_addr,
                            },
                            &tc_bms,
                            vals,
                            base,
                            pristine_bms,
                            pristine_vals,
                            bases.smem_values,
                            inject,
                            chk,
                        )?,
                    };
                    if !self.config.ablation.smbd {
                        // Register decode: the same values reach the same
                        // fragments, but through per-thread fetches and
                        // warp shuffles — extra arithmetic and shuffle
                        // traffic per BitmapTile that SMBD avoids.
                        counters.cuda_int_insts += REG_DECODE_EXTRA_INT * 4;
                        counters.shfl_insts += REG_DECODE_SHFL * 4;
                        counters.insts_issued += (REG_DECODE_EXTRA_INT + REG_DECODE_SHFL) * 4;
                    }
                    if trace_on {
                        let now = attribution_weight(counters);
                        dec_w += now - wmark;
                        wmark = now;
                    }
                    self.mma_row(
                        counters,
                        xf,
                        geo,
                        ttx,
                        &a_rows,
                        &mut accs[warp * n8..(warp + 1) * n8],
                    );
                    if trace_on {
                        mma_w += attribution_weight(counters) - wmark;
                    }
                }
            }
            // The dense group must land before its fragments feed the
            // Tensor Cores of the *next* mma wave — Algorithm 1 line 26.
            cp_async.wait_group(0);
            // Pipeline bookkeeping (barrier between iterations).
            counters.barriers += 1;
            if let Some(t) = tracer.as_deref_mut() {
                // The iteration-end barrier weight folds into the mma
                // span (it is the pipeline bookkeeping that gates the
                // next wave).
                let now = attribution_weight(counters) + attribution_weight(x_counters);
                let residual = now - t.mark - dec_w - mma_w;
                t.spans.push((TracePhase::Decode, dec_w));
                t.spans.push((TracePhase::Mma, mma_w + residual));
                t.mark = now;
            }
        }
        cp_async.assert_drained();

        // --- Epilogue: store accumulators to the reduction workspace ---
        for (warp, acc_row) in accs.chunks(n8).enumerate() {
            let tty = warp % tt_rows;
            for (j, frag) in acc_row.iter().enumerate() {
                let tile = frag.to_tile();
                for r in 0..TT_DIM {
                    let gr = gty * cfg.gt_rows + tty * TT_DIM + r;
                    for c in 0..8 {
                        let gc = n0 + j * 8 + c;
                        if gc < geo.n_pad {
                            workspace[gr * geo.n_pad + gc] += tile[r][c];
                        }
                    }
                }
                // Two warp stores of 8 B (c0,c1 then c2,c3 pairs).
                for half in 0..2 {
                    let mut addrs = [None; 32];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        let group = lane / 4;
                        let tid = lane % 4;
                        let gr = gty * cfg.gt_rows + tty * TT_DIM + group + 8 * half;
                        let gc = n0 + j * 8 + 2 * tid;
                        *slot = Some(bases.ws + (gr * geo.n_pad + gc) as u64 * 4);
                    }
                    warp_global_store(counters, &addrs, 8);
                }
            }
        }
        if let Some(t) = tracer {
            t.phase(TracePhase::Epilogue, counters, x_counters);
        }
        Ok(())
    }

    /// Checked SMBD decode of one TCTile with bounded re-decodes (D2,
    /// D3) and the pristine re-decode fallback. With `inject` absent the
    /// checked decode collapses to the golden counter stream and
    /// succeeds on the first attempt.
    #[allow(clippy::too_many_arguments)]
    fn decode_tctile_checked(
        &self,
        counters: &mut Counters,
        site: DecodeSite,
        tc_bms: &[u64; 4],
        vals: &[Half],
        base: usize,
        pristine_bms: &[u64],
        pristine_vals: &[Half],
        smem_values: u64,
        inject: Option<&FaultInjector>,
        chk: &CheckedState<'_>,
    ) -> Result<[[f32; MMA_K]; MMA_K], KernelError> {
        // Distinct per TCTile: BitmapTiles are 8 B apart and a TCTile
        // owns four of them.
        let site_key = site.bm_addr + (site.tc_idx * 32) as u64;
        let mut decoded = None;
        let mut last_fault: Option<DecodeFault> = None;
        let mut att: u32 = 0;
        while decoded.is_none() && att < chk.policy.max_attempts {
            let inj_a = inject.map(|i| {
                if att == 0 {
                    *i
                } else {
                    i.reseeded(0x0de0_0000 | u64::from(att))
                }
            });
            match decode_tctile_f32_checked(
                counters,
                tc_bms,
                vals,
                base,
                smem_values,
                inj_a.as_ref(),
                site_key,
            ) {
                Ok((rows, _)) => {
                    if att > 0 {
                        counters.faults_recovered += 1;
                    }
                    decoded = Some(rows);
                }
                Err(f) => {
                    counters.faults_detected += 1;
                    last_fault = Some(f);
                }
            }
            att += 1;
        }
        match decoded {
            Some(rows) => Ok(rows),
            None => {
                if !chk.policy.fallback {
                    return Err(match last_fault {
                        Some(DecodeFault::Overrun { needed, available }) => {
                            KernelError::DecodeOverrun {
                                gt: site.gt,
                                needed,
                                available,
                            }
                        }
                        Some(DecodeFault::NonFinite) => {
                            KernelError::NonFiniteDecode { gt: site.gt }
                        }
                        None => KernelError::RetryBudgetExhausted {
                            gt: site.gt,
                            attempts: chk.policy.max_attempts,
                        },
                    });
                }
                // Pristine re-decode: the validated encoding cannot
                // overrun and weights are finite by contract.
                counters.fault_fallbacks += 1;
                let pbase: usize = pristine_bms[..site.tc_idx * 4]
                    .iter()
                    .map(|&b| popc64(b) as usize)
                    .sum();
                let pbms: [u64; 4] = pristine_bms[site.tc_idx * 4..site.tc_idx * 4 + 4]
                    .try_into()
                    .expect("pristine bitmaps carry 4 BitmapTiles per TCTile");
                let (rows, _) =
                    decode_tctile_f32(counters, &pbms, pristine_vals, pbase, smem_values);
                Ok(rows)
            }
        }
    }

    /// Tensor Core computation for one decoded TCTile against every n8
    /// column of the X tile. `xf` is the block's decode-once `f32` X
    /// tile (leading dimension `tile_n`); `a_rows` the TCTile's
    /// decode-once A view. The N loop is amortized: one batched sweep
    /// ([`mma_m16n8k16_bslice_ntiles`]) carries each A row across all
    /// adjacent accumulator tiles at once — bit-identical to the
    /// per-tile `mma_m16n8k16_bslice` loop, same counter totals.
    fn mma_row(
        &self,
        counters: &mut Counters,
        xf: &[f32],
        geo: &Geometry,
        ttx: usize,
        a_rows: &[[f32; MMA_K]; MMA_K],
        accs: &mut [FragC],
    ) {
        let n8 = geo.tile_n / 8;
        // One ldmatrix.x4 covers two B fragments (16×16 of X).
        let ldsm_count = n8.div_ceil(2);
        for _ in 0..ldsm_count {
            // Conflict-free row-major X tile rows (16 B rows).
            let rows = gpu_sim::shared_memory::strided_addrs(0, 16);
            warp_ldsm_x4(counters, &rows);
        }
        let k_off = ttx * TT_DIM * geo.tile_n;
        for (jc, chunk) in accs.chunks_mut(MAX_NTILES).enumerate() {
            let b = &xf[k_off + jc * MAX_NTILES * 8..];
            mma_m16n8k16_bslice_ntiles(counters, a_rows, b, geo.tile_n, chunk);
        }
    }
}

/// Identifies one TCTile decode site for fault keying and error reports.
struct DecodeSite {
    gt: usize,
    tc_idx: usize,
    bm_addr: VAddr,
}

/// Streams `bytes` from `base` as LDGSTS.128 warp instructions, recording
/// coalesced traffic.
pub(crate) fn record_ldgsts_stream(counters: &mut Counters, base: VAddr, bytes: u64) {
    record_ldgsts_stream_f(counters, base, bytes, None, &mut |_, _| {});
}

/// [`record_ldgsts_stream`] with a fault hook: when the injector strikes
/// a warp access, `on_flip(stream_byte, bit_in_byte)` reports which byte
/// of the streamed payload took the hit. With `fault` absent the counter
/// stream is bit-identical to the golden recorder.
pub(crate) fn record_ldgsts_stream_f(
    counters: &mut Counters,
    base: VAddr,
    bytes: u64,
    fault: Option<&FaultInjector>,
    on_flip: &mut dyn FnMut(u64, u32),
) {
    let mut off = 0u64;
    while off < bytes {
        let mut addrs = [None; 32];
        for (i, slot) in addrs.iter_mut().enumerate() {
            let a = off + i as u64 * 16;
            if a < bytes {
                *slot = Some(base + a);
            }
        }
        if let Some(hit) = warp_ldgsts_f(counters, &addrs, 16, fault) {
            // Active lanes are contiguous from lane 0, 16 B apart.
            on_flip(
                off + hit.lane_sel as u64 * 16 + u64::from(hit.bit / 8),
                hit.bit % 8,
            );
        }
        // LDGSTS writes shared memory directly (conflict-free stream).
        counters.smem_store_transactions += (bytes - off).min(512).div_ceil(128);
        off += 512;
    }
}

/// Streams one GroupTile column's X tile (FP16 rows of `tile_n`
/// elements) into shared memory — shared verbatim by the FP16 and INT8
/// block routines, which both read FP16 activations from global memory
/// (the INT8 path quantizes after the load).
pub(crate) fn stream_x_tile(
    counters: &mut Counters,
    x_counters: &mut Counters,
    x_base: VAddr,
    gtx: usize,
    gt_cols: usize,
    geo: &Geometry,
    n0: usize,
) {
    let row_bytes = (geo.tile_n * 2) as u64;
    for kr in (0..gt_cols).step_by(4) {
        // Four X rows per warp instruction (8 lanes × 16 B when
        // tile_n = 32; proportionally predicated otherwise).
        let mut addrs = [None; 32];
        let mut li = 0usize;
        for dr in 0..4 {
            let krow = gtx * gt_cols + kr + dr;
            let base = x_base + (krow * geo.n_pad + n0) as u64 * 2;
            let lanes = (row_bytes as usize).div_ceil(16);
            for l in 0..lanes {
                if li < 32 {
                    addrs[li] = Some(base + (l * 16) as u64);
                    li += 1;
                }
            }
        }
        warp_ldgsts(x_counters, &addrs, 16);
        // LDGSTS writes shared memory directly; conflict-free rows.
        counters.smem_store_transactions += (4 * row_bytes).div_ceil(128);
    }
}

/// Loads one GroupTile's bitmaps and values as LDGSTS streams into the
/// caller's shared-memory image, applying any injected load bit flips.
/// With `inject` absent no image is materialised (the buffers are
/// cleared) and only the golden counter stream is recorded.
#[allow(clippy::too_many_arguments)]
fn load_gtile_image(
    counters: &mut Counters,
    inject: Option<&FaultInjector>,
    pristine_bms: &[u64],
    pristine_vals: &[Half],
    bm_addr: VAddr,
    val_addr: VAddr,
    bms_img: &mut Vec<u64>,
    vals_img: &mut Vec<Half>,
) {
    let bm_bytes = (pristine_bms.len() * 8) as u64;
    let val_bytes = (pristine_vals.len() * 2) as u64;
    bms_img.clear();
    vals_img.clear();
    if inject.is_none() {
        record_ldgsts_stream(counters, bm_addr, bm_bytes);
        record_ldgsts_stream(counters, val_addr, val_bytes);
        return;
    }
    bms_img.extend_from_slice(pristine_bms);
    vals_img.extend_from_slice(pristine_vals);
    record_ldgsts_stream_f(counters, bm_addr, bm_bytes, inject, &mut |byte, bit| {
        // A flip can land in the tail padding of the last 16 B lane;
        // only bytes inside the payload reach the image.
        let b = byte as usize;
        if b < bms_img.len() * 8 {
            let word = b / 8;
            bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
        }
    });
    record_ldgsts_stream_f(counters, val_addr, val_bytes, inject, &mut |byte, bit| {
        let b = byte as usize;
        if b < vals_img.len() * 2 {
            let i = b / 2;
            let flipped = flip_bit_u16(vals_img[i].to_bits(), ((b % 2) as u32) * 8 + bit);
            vals_img[i] = Half::from_bits(flipped);
        }
    });
}

/// Applies a `cp.async` commit outcome to the GroupTile image. A
/// corrupt commit flips one byte of the landed payload; a dropped
/// commit leaves the (zero-initialised) destination stale.
fn apply_commit_fault(
    outcome: CommitFault,
    bms_img: &mut [u64],
    vals_img: &mut [Half],
    armed: bool,
) {
    if !armed {
        return;
    }
    let bm_bytes = bms_img.len() * 8;
    let total = bm_bytes + vals_img.len() * 2;
    match outcome {
        CommitFault::None => {}
        CommitFault::Corrupt { byte_sel, bit } => {
            if total > 0 {
                let b = (byte_sel % total as u64) as usize;
                if b < bm_bytes {
                    let word = b / 8;
                    bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
                } else {
                    let i = (b - bm_bytes) / 2;
                    let within = (((b - bm_bytes) % 2) as u32) * 8 + bit;
                    vals_img[i] = Half::from_bits(flip_bit_u16(vals_img[i].to_bits(), within));
                }
            }
        }
        CommitFault::Dropped => {
            bms_img.iter_mut().for_each(|w| *w = 0);
            vals_img.iter_mut().for_each(|v| *v = Half::ZERO);
        }
    }
}

/// Reference scalar product of one GroupTile from its pristine
/// encoding, accumulated into the block's `FragC` accumulators — the
/// guaranteed-correct slow path taken when the retry budget is
/// exhausted. Walks the bitmaps in packed-value order, so it touches
/// exactly the encoded non-zeros.
fn fallback_gtile_product(
    cfg: crate::tca_bme::TcaBmeConfig,
    bms: &[u64],
    vals: &[Half],
    xf: &[f32],
    geo: &Geometry,
    accs: &mut [FragC],
    n8: usize,
) {
    let tile_n = geo.tile_n;
    let mut contrib = vec![0.0f32; cfg.gt_rows * tile_n];
    let mut vi = 0usize;
    for (bi, &bm) in bms.iter().enumerate() {
        let tc_idx = bi / 4;
        // Quadrant order within a TCTile: TL, BL, TR, BR (column-major
        // 8×8 blocks), matching `TcaBme::decode_cell`.
        let (qr, qc) = [(0, 0), (8, 0), (0, 8), (8, 8)][bi % 4];
        let ttx = tc_idx / cfg.tt_rows();
        let tty = tc_idx % cfg.tt_rows();
        for bit in 0..64 {
            if (bm >> bit) & 1 == 1 {
                let v = vals[vi].to_f32();
                vi += 1;
                let lr = tty * TT_DIM + qr + bit / 8;
                let lc = ttx * TT_DIM + qc + bit % 8;
                let xrow = &xf[lc * tile_n..(lc + 1) * tile_n];
                let dst = &mut contrib[lr * tile_n..(lr + 1) * tile_n];
                for (d, xv) in dst.iter_mut().zip(xrow) {
                    *d += v * xv;
                }
            }
        }
    }
    for (warp, acc_row) in accs.chunks_mut(n8).enumerate() {
        let tty = warp % cfg.tt_rows();
        for (j, frag) in acc_row.iter_mut().enumerate() {
            let mut tile = frag.to_tile();
            for (r, row) in tile.iter_mut().enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot += contrib[(tty * TT_DIM + r) * tile_n + j * 8 + c];
                }
            }
            *frag = FragC::from_tile(|r, c| tile[r][c]);
        }
    }
}
