//! Binary serialisation of TCA-BME weights.
//!
//! A serving deployment converts checkpoints once and loads the encoded
//! weights at startup (the artifact's "Downloading & Converting OPT
//! models" step). The layout is a little-endian, versioned container:
//!
//! ```text
//! magic   [8]  b"TCABME\0\2"  (FP16)  /  b"TCABME\0\3"  (INT8)
//! m, k, m_pad, k_pad, gt_rows, gt_cols, nnz        u64 × 7
//! len(checksums)     u64, then u32 entries          (v2/v3; = NGT)
//! len(gtile_offsets) u64, then u32 entries
//! len(values)        u64, then payload entries      (v1/v2: u16 FP16
//!                                                    bits; v3: i8)
//! len(bitmaps)       u64, then u64 entries
//! len(scales)        u64, then f32-bit u32 entries  (v3 only; = NGT)
//! ```
//!
//! Version 2 adds one FNV-1a checksum per GroupTile (over that tile's
//! bitmaps + values, see [`crate::tca_bme::checksum_gtile`]) directly
//! after the header; version-1 containers are still readable, just
//! without checksum verification. Version 3 carries the quantized
//! payload — 1-byte `i8` codes, checksums computed over those code
//! bytes, and a trailing per-GroupTile `f32` scale section — and is
//! decoded by [`from_bytes_int8`] into a [`TcaBmeInt8`]. The two
//! readers share one generic section parser; handing a container to
//! the reader of the other payload fails with the typed
//! [`DecodeError::PayloadMismatch`] rather than a magic error, since
//! the bytes *are* a valid TCA-BME container — just not of the
//! expected precision.
//!
//! Deserialisation validates the header, cross-checks array lengths
//! against the geometry, verifies the per-tile checksums, and runs full
//! structural validation ([`TcaBme::validate`] /
//! [`TcaBmeInt8::validate`]), so corrupted or truncated inputs fail
//! with a typed error rather than producing a malformed matrix — and
//! *never* panic or over-allocate, however adversarial the bytes (all
//! declared lengths are bounded against the remaining input before
//! allocation).

use crate::error::IntegrityError;
use crate::payload::Payload;
use crate::tca_bme::{checksum_gtile, TcaBme, TcaBmeConfig, TcaBmeInt8, TcaBmeOf};
use gpu_sim::fp16::Half;

/// Container magic: format name + version 2 (per-GroupTile checksums).
const MAGIC_V2: &[u8; 8] = b"TCABME\x00\x02";
/// Version-1 magic (no checksum section), still accepted on read.
const MAGIC_V1: &[u8; 8] = b"TCABME\x00\x01";
/// Version-3 magic: INT8 codes + per-GroupTile scales.
const MAGIC_V3: &[u8; 8] = b"TCABME\x00\x03";

/// Deserialisation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic/version.
    BadMagic,
    /// Input ended before the declared payload.
    Truncated,
    /// Header fields are mutually inconsistent.
    Inconsistent(&'static str),
    /// A GroupTile's payload doesn't match its stored checksum.
    Checksum {
        /// First GroupTile that failed verification.
        gt: usize,
    },
    /// A well-formed TCA-BME container of the *other* value precision
    /// was handed to this reader — e.g. a v3 INT8 container to
    /// [`from_bytes`], or a v1/v2 FP16 container to
    /// [`from_bytes_int8`]. The payload widths differ, so reading on
    /// regardless would misparse every section after the header.
    PayloadMismatch {
        /// Payload precision this reader decodes.
        expected: &'static str,
        /// Payload precision the container actually carries.
        got: &'static str,
    },
    /// The container parsed but failed structural validation.
    Integrity(IntegrityError),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a TCA-BME container (bad magic/version)"),
            DecodeError::Truncated => write!(f, "truncated TCA-BME container"),
            DecodeError::Inconsistent(what) => write!(f, "inconsistent container: {what}"),
            DecodeError::Checksum { gt } => {
                write!(f, "GroupTile {gt} failed checksum verification")
            }
            DecodeError::PayloadMismatch { expected, got } => write!(
                f,
                "container carries {got} values but this reader expects {expected}"
            ),
            DecodeError::Integrity(e) => write!(f, "invalid container structure: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Writes the shared post-magic sections: header, optional checksums,
/// offsets, payload values (via `write_value`), bitmaps.
fn write_container<P: Payload>(
    out: &mut Vec<u8>,
    w: &TcaBmeOf<P>,
    checksums: Option<&[u32]>,
    write_value: impl Fn(&mut Vec<u8>, &P),
) {
    for v in [
        w.m as u64,
        w.k as u64,
        w.m_pad as u64,
        w.k_pad as u64,
        w.config.gt_rows as u64,
        w.config.gt_cols as u64,
        w.nnz as u64,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    if let Some(sums) = checksums {
        out.extend_from_slice(&(sums.len() as u64).to_le_bytes());
        for s in sums {
            out.extend_from_slice(&s.to_le_bytes());
        }
    }
    out.extend_from_slice(&(w.gtile_offsets.len() as u64).to_le_bytes());
    for o in &w.gtile_offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&(w.values.len() as u64).to_le_bytes());
    for v in &w.values {
        write_value(out, v);
    }
    out.extend_from_slice(&(w.bitmaps.len() as u64).to_le_bytes());
    for b in &w.bitmaps {
        out.extend_from_slice(&b.to_le_bytes());
    }
}

/// Serialises an encoded matrix to bytes (version 2, checksummed).
pub fn to_bytes(w: &TcaBme) -> Vec<u8> {
    let sums = w.gtile_checksums();
    let mut out = Vec::with_capacity(
        8 + 7 * 8
            + 8
            + 4 * sums.len()
            + 8
            + 4 * w.gtile_offsets.len()
            + 8
            + 2 * w.values.len()
            + 8
            + 8 * w.bitmaps.len(),
    );
    out.extend_from_slice(MAGIC_V2);
    write_container(&mut out, w, Some(&sums), |out, v| {
        out.extend_from_slice(&v.to_bits().to_le_bytes())
    });
    out
}

/// Serialises a quantized container to bytes (version 3: `i8` codes,
/// checksums over the code bytes, trailing per-GroupTile scales).
pub fn to_bytes_int8(w: &TcaBmeInt8) -> Vec<u8> {
    let sums = w.tiles.gtile_checksums();
    let mut out = Vec::with_capacity(
        8 + 7 * 8
            + 8
            + 4 * sums.len()
            + 8
            + 4 * w.tiles.gtile_offsets.len()
            + 8
            + w.tiles.values.len()
            + 8
            + 8 * w.tiles.bitmaps.len()
            + 8
            + 4 * w.scales.len(),
    );
    out.extend_from_slice(MAGIC_V3);
    write_container(&mut out, &w.tiles, Some(&sums), |out, v| out.push(*v as u8));
    out.extend_from_slice(&(w.scales.len() as u64).to_le_bytes());
    for s in &w.scales {
        out.extend_from_slice(&s.to_bits().to_le_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.buf.len() - self.pos {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Bytes left in the input — the bound every declared array length
    /// is checked against *before* allocation, so a mutated length field
    /// can neither overflow arithmetic nor trigger a huge allocation.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn i8(&mut self) -> Result<i8, DecodeError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Reads a declared element count and bounds it: `count * elem_size`
    /// must fit in the remaining input.
    fn bounded_len(&mut self, elem_size: usize) -> Result<usize, DecodeError> {
        let n = usize::try_from(self.u64()?).map_err(|_| DecodeError::Truncated)?;
        match n.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(DecodeError::Truncated),
        }
    }
}

/// Container versions distinguished by the magic.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Version {
    V1,
    V2,
    V3,
}

fn read_magic(r: &mut Reader) -> Result<Version, DecodeError> {
    let magic = r.take(8)?;
    if magic == MAGIC_V1 {
        Ok(Version::V1)
    } else if magic == MAGIC_V2 {
        Ok(Version::V2)
    } else if magic == MAGIC_V3 {
        Ok(Version::V3)
    } else {
        Err(DecodeError::BadMagic)
    }
}

/// `pad` is the smallest multiple of `tile` that is ≥ `dim` — checked
/// without the `div_ceil * tile` product, which overflows on
/// adversarial 64-bit header fields.
fn valid_padding(dim: usize, pad: usize, tile: usize) -> bool {
    pad >= dim && pad.is_multiple_of(tile) && pad - dim < tile
}

/// Reads the shared post-magic sections — header, optional checksum
/// section, offsets, payload values, bitmaps — verifies per-tile
/// checksums when present, and runs structural validation. One parser
/// serves every version/payload pair: the payload only determines the
/// element width for the length bound and the `read_value` decoder.
fn read_container<P: Payload>(
    r: &mut Reader,
    with_checksums: bool,
    read_value: impl Fn(&mut Reader) -> Result<P, DecodeError>,
) -> Result<TcaBmeOf<P>, DecodeError> {
    let m = r.u64()? as usize;
    let k = r.u64()? as usize;
    let m_pad = r.u64()? as usize;
    let k_pad = r.u64()? as usize;
    let gt_rows = r.u64()? as usize;
    let gt_cols = r.u64()? as usize;
    let nnz = r.u64()? as usize;

    if gt_rows == 0 || gt_cols == 0 || !gt_rows.is_multiple_of(16) || !gt_cols.is_multiple_of(16) {
        return Err(DecodeError::Inconsistent("GroupTile geometry"));
    }
    if !valid_padding(m, m_pad, gt_rows) || !valid_padding(k, k_pad, gt_cols) {
        return Err(DecodeError::Inconsistent("padded dimensions"));
    }
    let ngt = (m_pad / gt_rows)
        .checked_mul(k_pad / gt_cols)
        .ok_or(DecodeError::Inconsistent("GroupTile count overflow"))?;
    let nbt = (m_pad / 8)
        .checked_mul(k_pad / 8)
        .ok_or(DecodeError::Inconsistent("BitmapTile count overflow"))?;

    let checksums = if with_checksums {
        let n_sums = r.bounded_len(4)?;
        if n_sums != ngt {
            return Err(DecodeError::Inconsistent("checksum count"));
        }
        let mut sums = Vec::with_capacity(n_sums);
        for _ in 0..n_sums {
            sums.push(r.u32()?);
        }
        Some(sums)
    } else {
        None
    };

    let n_off = r.bounded_len(4)?;
    if n_off != ngt.checked_add(1).ok_or(DecodeError::Truncated)? {
        return Err(DecodeError::Inconsistent("GTileOffset length"));
    }
    let mut gtile_offsets = Vec::with_capacity(n_off);
    for _ in 0..n_off {
        gtile_offsets.push(r.u32()?);
    }

    let n_vals = r.bounded_len(P::BYTES)?;
    if n_vals < nnz || *gtile_offsets.last().expect("n_off >= 1") as usize != n_vals {
        return Err(DecodeError::Inconsistent("Values length"));
    }
    let mut values = Vec::with_capacity(n_vals);
    for _ in 0..n_vals {
        values.push(read_value(r)?);
    }

    let n_bm = r.bounded_len(8)?;
    if n_bm != nbt {
        return Err(DecodeError::Inconsistent("Bitmap length"));
    }
    let mut bitmaps = Vec::with_capacity(n_bm);
    for _ in 0..n_bm {
        bitmaps.push(r.u64()?);
    }

    let out = TcaBmeOf {
        m,
        k,
        m_pad,
        k_pad,
        config: TcaBmeConfig { gt_rows, gt_cols },
        gtile_offsets,
        values,
        bitmaps,
        nnz,
    };

    // v2/v3: per-tile checksums localise the damage before the (coarser)
    // structural pass. The slice accessors need consistent offsets, so
    // guard them with a bounds pre-check rather than trusting the data.
    if let Some(sums) = checksums {
        for gt in 0..ngt {
            let (s, e) = (
                out.gtile_offsets[gt] as usize,
                out.gtile_offsets[gt + 1] as usize,
            );
            if s > e || e > out.values.len() {
                return Err(DecodeError::Inconsistent("GTileOffset bounds"));
            }
            let got = checksum_gtile(out.gtile_bitmaps(gt), &out.values[s..e]);
            if got != sums[gt] {
                return Err(DecodeError::Checksum { gt });
            }
        }
    }
    out.validate().map_err(DecodeError::Integrity)?;
    Ok(out)
}

/// Deserialises an FP16 encoded matrix, validating structure. Accepts
/// version 2 (verifying per-GroupTile checksums) and version 1 (no
/// checksums stored; structural validation only). A version-3 INT8
/// container fails with [`DecodeError::PayloadMismatch`].
pub fn from_bytes(buf: &[u8]) -> Result<TcaBme, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    let with_checksums = match read_magic(&mut r)? {
        Version::V1 => false,
        Version::V2 => true,
        Version::V3 => {
            return Err(DecodeError::PayloadMismatch {
                expected: Half::NAME,
                got: <i8 as Payload>::NAME,
            })
        }
    };
    read_container(&mut r, with_checksums, |r| Ok(Half::from_bits(r.u16()?)))
}

/// Deserialises a version-3 quantized container, verifying checksums
/// over the `i8` code bytes, pairing the trailing scale section with
/// the GroupTile count, and running full structural validation
/// (including scale finiteness). A v1/v2 FP16 container fails with
/// [`DecodeError::PayloadMismatch`].
pub fn from_bytes_int8(buf: &[u8]) -> Result<TcaBmeInt8, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    match read_magic(&mut r)? {
        Version::V3 => {}
        Version::V1 | Version::V2 => {
            return Err(DecodeError::PayloadMismatch {
                expected: <i8 as Payload>::NAME,
                got: Half::NAME,
            })
        }
    }
    let tiles = read_container(&mut r, true, |r| r.i8())?;
    let n_scales = r.bounded_len(4)?;
    if n_scales != tiles.num_gtiles() {
        return Err(DecodeError::Inconsistent("scale count"));
    }
    let mut scales = Vec::with_capacity(n_scales);
    for _ in 0..n_scales {
        scales.push(f32::from_bits(r.u32()?));
    }
    let out = TcaBmeInt8 { tiles, scales };
    out.validate().map_err(DecodeError::Integrity)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        let m = random_sparse(192, 128, 0.55, ValueDist::Uniform, 61);
        let enc = TcaBme::encode(&m);
        let bytes = to_bytes(&enc);
        let back = from_bytes(&bytes).expect("valid container");
        assert_eq!(back.decode(), m);
        assert_eq!(back.nnz, enc.nnz);
        assert_eq!(back.bitmaps, enc.bitmaps);
        assert_eq!(back.gtile_offsets, enc.gtile_offsets);
    }

    #[test]
    fn bad_magic_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 62);
        let mut bytes = to_bytes(&TcaBme::encode(&m));
        bytes[0] ^= 0xFF;
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
        assert_eq!(from_bytes_int8(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 63);
        let bytes = to_bytes(&TcaBme::encode(&m));
        for cut in [10usize, 60, bytes.len() - 1] {
            assert_eq!(
                from_bytes(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupted_bitmap_population_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 64);
        let enc = TcaBme::encode(&m);
        let mut bytes = to_bytes(&enc);
        // Flip a bit inside the last 8 bytes (a bitmap word). v2 catches
        // this at the checksum layer, pinpointing the damaged tile.
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            DecodeError::Checksum { gt: 0 }
        );
    }

    /// Writes the version-1 layout (no checksum section) so read-compat
    /// stays covered now that `to_bytes` emits v2.
    fn to_bytes_v1(w: &TcaBme) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_V1);
        for v in [
            w.m as u64,
            w.k as u64,
            w.m_pad as u64,
            w.k_pad as u64,
            w.config.gt_rows as u64,
            w.config.gt_cols as u64,
            w.nnz as u64,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(w.gtile_offsets.len() as u64).to_le_bytes());
        for o in &w.gtile_offsets {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&(w.values.len() as u64).to_le_bytes());
        for v in &w.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        out.extend_from_slice(&(w.bitmaps.len() as u64).to_le_bytes());
        for b in &w.bitmaps {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    #[test]
    fn v1_containers_still_load() {
        let m = random_sparse(192, 128, 0.55, ValueDist::Uniform, 65);
        let enc = TcaBme::encode(&m);
        let back = from_bytes(&to_bytes_v1(&enc)).expect("v1 read-compat");
        assert_eq!(back.decode(), m);
        // v1 has no checksums, but a bitmap flip (changing population)
        // still dies in structural validation.
        let mut bytes = to_bytes_v1(&enc);
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes),
            Err(DecodeError::Integrity(_)) | Err(DecodeError::Inconsistent(_))
        ));
    }

    #[test]
    fn value_corruption_detected_by_checksum_only() {
        // A flipped FP16 payload bit changes no length or population —
        // only the v2 checksum can see it. Locate the first value byte:
        // header + checksums + offsets sections precede it.
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 66);
        let enc = TcaBme::encode(&m);
        assert!(enc.nnz > 0);
        let mut bytes = to_bytes(&enc);
        let value_pos = 8 + 7 * 8 + 8 + 4 * enc.num_gtiles() + 8 + 4 * enc.gtile_offsets.len() + 8;
        bytes[value_pos] ^= 0x10;
        assert_eq!(
            from_bytes(&bytes).unwrap_err(),
            DecodeError::Checksum { gt: 0 }
        );
        // The same corruption in a v1 stream loads silently — the gap
        // the version bump exists to close.
        let mut v1 = to_bytes_v1(&enc);
        let v1_value_pos = 8 + 7 * 8 + 8 + 4 * enc.gtile_offsets.len() + 8;
        v1[v1_value_pos] ^= 0x10;
        assert!(from_bytes(&v1).is_ok());
    }

    #[test]
    fn mutated_length_fields_fail_without_allocating() {
        // Set every plausible length-field position to u64::MAX: decode
        // must fail with a typed error, not a capacity panic or OOM.
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 67);
        let bytes = to_bytes(&TcaBme::encode(&m));
        for pos in (8..bytes.len().min(256)).step_by(8) {
            let mut bad = bytes.clone();
            bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(from_bytes(&bad).is_err(), "length bomb at {pos} accepted");
        }
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let enc = TcaBme::encode(&gpu_sim::DenseMatrix::zeros(64, 64));
        let back = from_bytes(&to_bytes(&enc)).unwrap();
        assert_eq!(back.nnz, 0);
    }

    #[test]
    fn int8_roundtrip_is_exact() {
        let m = random_sparse(192, 128, 0.55, ValueDist::Uniform, 71);
        let q = TcaBme::encode(&m).quantize_int8();
        let bytes = to_bytes_int8(&q);
        let back = from_bytes_int8(&bytes).expect("valid v3 container");
        // Codes, scales (bit-exact), and all shared structure round-trip.
        assert_eq!(back, q);
        assert_eq!(
            back.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            q.scales.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_payload_reads_fail_typed() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 72);
        let enc = TcaBme::encode(&m);
        let v2 = to_bytes(&enc);
        let v3 = to_bytes_int8(&enc.quantize_int8());
        assert_eq!(
            from_bytes(&v3).unwrap_err(),
            DecodeError::PayloadMismatch {
                expected: "fp16",
                got: "int8"
            }
        );
        assert_eq!(
            from_bytes_int8(&v2).unwrap_err(),
            DecodeError::PayloadMismatch {
                expected: "int8",
                got: "fp16"
            }
        );
        // v1 is FP16 too.
        assert!(matches!(
            from_bytes_int8(&to_bytes_v1(&enc)).unwrap_err(),
            DecodeError::PayloadMismatch { .. }
        ));
    }

    #[test]
    fn int8_truncation_and_damage_detected() {
        let m = random_sparse(128, 64, 0.5, ValueDist::Uniform, 73);
        let q = TcaBme::encode(&m).quantize_int8();
        assert!(q.tiles.nnz > 0);
        let bytes = to_bytes_int8(&q);
        for cut in [10usize, 60, bytes.len() - 3, bytes.len() - 1] {
            assert_eq!(
                from_bytes_int8(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut {cut}"
            );
        }
        // A flipped code byte is caught by the per-tile checksum.
        let code_pos =
            8 + 7 * 8 + 8 + 4 * q.tiles.num_gtiles() + 8 + 4 * q.tiles.gtile_offsets.len() + 8;
        let mut bad = bytes.clone();
        bad[code_pos] ^= 0x01;
        assert_eq!(
            from_bytes_int8(&bad).unwrap_err(),
            DecodeError::Checksum { gt: 0 }
        );
    }

    #[test]
    fn int8_scale_corruption_detected() {
        let m = random_sparse(128, 64, 0.5, ValueDist::Uniform, 74);
        let q = TcaBme::encode(&m).quantize_int8();
        let bytes = to_bytes_int8(&q);
        // The scale section is the trailing 8 + 4*NGT bytes; NaN-bomb the
        // first scale.
        let scale_pos = bytes.len() - 4 * q.scales.len();
        let mut bad = bytes.clone();
        bad[scale_pos..scale_pos + 4].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            from_bytes_int8(&bad).unwrap_err(),
            DecodeError::Integrity(IntegrityError::BadScale { gt: 0, .. })
        ));
    }

    #[test]
    fn int8_length_bombs_fail_without_allocating() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 75);
        let bytes = to_bytes_int8(&TcaBme::encode(&m).quantize_int8());
        for pos in (8..bytes.len().min(256)).step_by(8) {
            let mut bad = bytes.clone();
            bad[pos..pos + 8].copy_from_slice(&u64::MAX.to_le_bytes());
            assert!(
                from_bytes_int8(&bad).is_err(),
                "length bomb at {pos} accepted"
            );
        }
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Inconsistent("x").to_string().contains('x'));
        assert!(DecodeError::Checksum { gt: 3 }
            .to_string()
            .contains("GroupTile 3"));
        let pm = DecodeError::PayloadMismatch {
            expected: "fp16",
            got: "int8",
        };
        assert!(pm.to_string().contains("carries int8"));
        assert!(pm.to_string().contains("expects fp16"));
        assert!(DecodeError::Integrity(IntegrityError::NnzMismatch {
            expected: 2,
            got: 1
        })
        .to_string()
        .contains("nnz 1"));
    }
}
