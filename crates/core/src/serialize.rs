//! Binary serialisation of TCA-BME weights.
//!
//! A serving deployment converts checkpoints once and loads the encoded
//! weights at startup (the artifact's "Downloading & Converting OPT
//! models" step). The layout is a little-endian, versioned container:
//!
//! ```text
//! magic   [8]  b"TCABME\0\1"
//! m, k, m_pad, k_pad, gt_rows, gt_cols, nnz        u64 × 7
//! len(gtile_offsets) u64, then u32 entries
//! len(values)        u64, then u16 (FP16 bits) entries
//! len(bitmaps)       u64, then u64 entries
//! ```
//!
//! Deserialisation validates the header and cross-checks array lengths
//! against the geometry, so corrupted or truncated inputs fail with a
//! typed error rather than producing a malformed matrix.

use crate::tca_bme::{TcaBme, TcaBmeConfig};
use gpu_sim::fp16::Half;

/// Container magic: format name + version 1.
const MAGIC: &[u8; 8] = b"TCABME\x00\x01";

/// Deserialisation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Missing or wrong magic/version.
    BadMagic,
    /// Input ended before the declared payload.
    Truncated,
    /// Header fields are mutually inconsistent.
    Inconsistent(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a TCA-BME container (bad magic/version)"),
            DecodeError::Truncated => write!(f, "truncated TCA-BME container"),
            DecodeError::Inconsistent(what) => write!(f, "inconsistent container: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serialises an encoded matrix to bytes.
pub fn to_bytes(w: &TcaBme) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 + 7 * 8
            + 8
            + 4 * w.gtile_offsets.len()
            + 8
            + 2 * w.values.len()
            + 8
            + 8 * w.bitmaps.len(),
    );
    out.extend_from_slice(MAGIC);
    for v in [
        w.m as u64,
        w.k as u64,
        w.m_pad as u64,
        w.k_pad as u64,
        w.config.gt_rows as u64,
        w.config.gt_cols as u64,
        w.nnz as u64,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(w.gtile_offsets.len() as u64).to_le_bytes());
    for o in &w.gtile_offsets {
        out.extend_from_slice(&o.to_le_bytes());
    }
    out.extend_from_slice(&(w.values.len() as u64).to_le_bytes());
    for v in &w.values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(w.bitmaps.len() as u64).to_le_bytes());
    for b in &w.bitmaps {
        out.extend_from_slice(&b.to_le_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }
}

/// Deserialises an encoded matrix, validating structure.
pub fn from_bytes(buf: &[u8]) -> Result<TcaBme, DecodeError> {
    let mut r = Reader { buf, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let m = r.u64()? as usize;
    let k = r.u64()? as usize;
    let m_pad = r.u64()? as usize;
    let k_pad = r.u64()? as usize;
    let gt_rows = r.u64()? as usize;
    let gt_cols = r.u64()? as usize;
    let nnz = r.u64()? as usize;

    if gt_rows == 0 || gt_cols == 0 || !gt_rows.is_multiple_of(16) || !gt_cols.is_multiple_of(16) {
        return Err(DecodeError::Inconsistent("GroupTile geometry"));
    }
    if m_pad != m.div_ceil(gt_rows) * gt_rows || k_pad != k.div_ceil(gt_cols) * gt_cols {
        return Err(DecodeError::Inconsistent("padded dimensions"));
    }
    let ngt = (m_pad / gt_rows) * (k_pad / gt_cols);
    let nbt = (m_pad / 8) * (k_pad / 8);

    let n_off = r.u64()? as usize;
    if n_off != ngt + 1 {
        return Err(DecodeError::Inconsistent("GTileOffset length"));
    }
    let mut gtile_offsets = Vec::with_capacity(n_off);
    for _ in 0..n_off {
        gtile_offsets.push(r.u32()?);
    }

    let n_vals = r.u64()? as usize;
    if n_vals < nnz || *gtile_offsets.last().unwrap() as usize != n_vals {
        return Err(DecodeError::Inconsistent("Values length"));
    }
    let mut values = Vec::with_capacity(n_vals);
    for _ in 0..n_vals {
        values.push(Half::from_bits(r.u16()?));
    }

    let n_bm = r.u64()? as usize;
    if n_bm != nbt {
        return Err(DecodeError::Inconsistent("Bitmap length"));
    }
    let mut bitmaps = Vec::with_capacity(n_bm);
    for _ in 0..n_bm {
        bitmaps.push(r.u64()?);
    }

    // Population cross-check: the bitmaps must account for exactly nnz.
    let pop: u64 = bitmaps.iter().map(|b| u64::from(b.count_ones())).sum();
    if pop as usize != nnz {
        return Err(DecodeError::Inconsistent("bitmap population vs nnz"));
    }

    Ok(TcaBme {
        m,
        k,
        m_pad,
        k_pad,
        config: TcaBmeConfig { gt_rows, gt_cols },
        gtile_offsets,
        values,
        bitmaps,
        nnz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        let m = random_sparse(192, 128, 0.55, ValueDist::Uniform, 61);
        let enc = TcaBme::encode(&m);
        let bytes = to_bytes(&enc);
        let back = from_bytes(&bytes).expect("valid container");
        assert_eq!(back.decode(), m);
        assert_eq!(back.nnz, enc.nnz);
        assert_eq!(back.bitmaps, enc.bitmaps);
        assert_eq!(back.gtile_offsets, enc.gtile_offsets);
    }

    #[test]
    fn bad_magic_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 62);
        let mut bytes = to_bytes(&TcaBme::encode(&m));
        bytes[0] ^= 0xFF;
        assert_eq!(from_bytes(&bytes).unwrap_err(), DecodeError::BadMagic);
    }

    #[test]
    fn truncation_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 63);
        let bytes = to_bytes(&TcaBme::encode(&m));
        for cut in [10usize, 60, bytes.len() - 1] {
            assert_eq!(
                from_bytes(&bytes[..cut]).unwrap_err(),
                DecodeError::Truncated,
                "cut {cut}"
            );
        }
    }

    #[test]
    fn corrupted_bitmap_population_rejected() {
        let m = random_sparse(64, 64, 0.5, ValueDist::Uniform, 64);
        let enc = TcaBme::encode(&m);
        let mut bytes = to_bytes(&enc);
        // Flip a bit inside the last 8 bytes (a bitmap word).
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        assert!(matches!(
            from_bytes(&bytes),
            Err(DecodeError::Inconsistent(_))
        ));
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let enc = TcaBme::encode(&gpu_sim::DenseMatrix::zeros(64, 64));
        let back = from_bytes(&to_bytes(&enc)).unwrap();
        assert_eq!(back.nnz, 0);
    }

    #[test]
    fn error_display() {
        assert!(DecodeError::BadMagic.to_string().contains("magic"));
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::Inconsistent("x").to_string().contains('x'));
    }
}
