//! Kernel configuration autotuner.
//!
//! The artifact repository tunes split-K per shape; this module searches
//! the whole [`SpmmConfig`] space (split-K × GroupTile geometry × N tile)
//! against the analytic estimator, which makes exhaustive search cheap
//! (each candidate costs microseconds). Returns the fastest valid
//! configuration and the predicted time, with the full candidate table
//! available for inspection.

use crate::spmm::{Ablation, FormatStats, SpinferSpmm, SpmmConfig};
use crate::tca_bme::TcaBmeConfig;
use gpu_sim::spec::GpuSpec;

/// One evaluated candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Configuration evaluated.
    pub config: SpmmConfig,
    /// GroupTile geometry evaluated.
    pub gt: TcaBmeConfig,
    /// Predicted kernel time in microseconds.
    pub time_us: f64,
}

/// Autotuning outcome.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The fastest candidate.
    pub best: Candidate,
    /// Every candidate evaluated, sorted fastest-first.
    pub candidates: Vec<Candidate>,
}

/// Split-K factors explored (0 = the kernel's own auto heuristic).
const SPLIT_KS: [usize; 5] = [0, 1, 2, 4, 8];
/// GroupTile geometries explored (all TCTile-aligned).
const GT_SHAPES: [(usize, usize); 4] = [(64, 64), (64, 128), (128, 64), (32, 64)];

/// Searches kernel configurations for an `m×k` weight at `sparsity`
/// multiplied by batches of `n`, on `spec`.
/// # Examples
///
/// ```
/// use gpu_sim::GpuSpec;
/// let result = spinfer_core::tune(&GpuSpec::rtx4090(), 4096, 4096, 16, 0.6);
/// assert!(result.best.time_us > 0.0);
/// assert_eq!(result.candidates.len(), 20);
/// ```
pub fn tune(spec: &GpuSpec, m: usize, k: usize, n: usize, sparsity: f64) -> TuneResult {
    let mut candidates = Vec::new();
    for (gt_rows, gt_cols) in GT_SHAPES {
        let gt = TcaBmeConfig { gt_rows, gt_cols };
        let stats = synthetic_with_config(m, k, sparsity, gt);
        for split_k in SPLIT_KS {
            let config = SpmmConfig {
                split_k,
                max_tile_n: 32,
                ablation: Ablation::default(),
            };
            let kernel = SpinferSpmm { config };
            let time_us = kernel.estimate(spec, &stats, n).time_us();
            candidates.push(Candidate {
                config,
                gt,
                time_us,
            });
        }
    }
    candidates.sort_by(|a, b| a.time_us.total_cmp(&b.time_us));
    TuneResult {
        best: candidates[0].clone(),
        candidates,
    }
}

/// `FormatStats::synthetic` generalised to a non-default GroupTile.
pub fn synthetic_with_config(
    m: usize,
    k: usize,
    sparsity: f64,
    config: TcaBmeConfig,
) -> FormatStats {
    let mut s = FormatStats::synthetic(m, k, sparsity);
    let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
    let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
    let ngt = (m_pad / config.gt_rows) * (k_pad / config.gt_cols);
    s.m_pad = m_pad;
    s.k_pad = k_pad;
    s.config = config;
    s.values_len = s.nnz + ngt * 2;
    let gt_elems = (config.gt_rows * config.gt_cols) as f64;
    let per_gt = s.nnz as f64 / ngt.max(1) as f64;
    let std = (gt_elems * sparsity * (1.0 - sparsity)).sqrt();
    s.max_values_per_gtile = ((per_gt + 3.0 * std + 4.0).min(gt_elems)) as usize;
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_config_is_no_slower_than_default() {
        let spec = GpuSpec::rtx4090();
        for &(m, k) in &[(4096usize, 4096usize), (28672, 8192), (1024, 8192)] {
            let result = tune(&spec, m, k, 16, 0.6);
            let default_time = SpinferSpmm::new()
                .estimate(&spec, &FormatStats::synthetic(m, k, 0.6), 16)
                .time_us();
            assert!(
                result.best.time_us <= default_time * 1.001,
                "{m}x{k}: tuned {} vs default {default_time}",
                result.best.time_us
            );
        }
    }

    #[test]
    fn candidates_are_sorted_and_complete() {
        let spec = GpuSpec::rtx4090();
        let r = tune(&spec, 4096, 4096, 16, 0.5);
        assert_eq!(r.candidates.len(), SPLIT_KS.len() * GT_SHAPES.len());
        for w in r.candidates.windows(2) {
            assert!(w[0].time_us <= w[1].time_us);
        }
        assert_eq!(r.best.time_us, r.candidates[0].time_us);
    }

    #[test]
    fn short_wide_shapes_prefer_split_k() {
        // M = 1024 gives only 16 block rows: split-K (explicit or auto)
        // must be part of the winning configuration.
        let spec = GpuSpec::rtx4090();
        let r = tune(&spec, 1024, 16384, 16, 0.6);
        let auto = r.best.config.split_k == 0;
        assert!(
            auto || r.best.config.split_k > 1,
            "best {:?}",
            r.best.config
        );
    }

    #[test]
    fn synthetic_with_config_respects_geometry() {
        let gt = TcaBmeConfig {
            gt_rows: 128,
            gt_cols: 64,
        };
        let s = synthetic_with_config(1000, 1000, 0.5, gt);
        assert_eq!(s.m_pad, 1024);
        assert_eq!(s.k_pad, 1024);
        assert_eq!(s.config, gt);
    }

    #[test]
    fn tuning_responds_to_device() {
        let r1 = tune(&GpuSpec::rtx4090(), 8192, 8192, 16, 0.6);
        let r2 = tune(&GpuSpec::a6000(), 8192, 8192, 16, 0.6);
        // A6000 is slower in absolute terms.
        assert!(r2.best.time_us > r1.best.time_us);
    }
}
