//! The SpInfer-SpMM kernel (paper §4.3, Algorithm 1).
//!
//! Computes `O[M×N] = W[M×K] × X[K×N]` with `W` in TCA-BME format. The
//! simulated kernel mirrors the paper's structure:
//!
//! 1. **GTile loading** — the block streams one GroupTile's bitmaps and
//!    packed values into shared memory with `LDGSTS.128` (values are
//!    8-byte aligned by the encoder's padding).
//! 2. **WTile decoding (SMBD)** — each warp decodes its TCTiles straight
//!    from shared memory into `mma` A fragments.
//! 3. **XTile loading** — the dense tile streams into shared memory.
//! 4. **XTile register transfer** — `ldmatrix.x4` distributes B fragments.
//! 5. **Tensor Core computation** — `mma.m16n8k16` accumulates in FP32.
//!
//! Split-K parallelism distributes the K dimension over independent
//! blocks writing a reduction workspace, followed by a small reduction
//! kernel — the CUTLASS-style scheme the paper adopts.
//!
//! Both a *functional* path ([`SpinferSpmm::run`], bit-exact output +
//! counters from real addresses) and an *analytic* path
//! ([`SpinferSpmm::estimate`], same counters derived from format
//! statistics) are provided; tests pin them against each other so
//! paper-scale benchmarks can use the cheap path.

use crate::error::{KernelError, SpinferError};
use crate::smbd::{bt_decode_cost, decode_tctile_f32, decode_tctile_f32_checked, DecodeFault};
use crate::tca_bme::{checksum_gtile, TcaBme, TT_DIM};
use gpu_sim::bitops::popc64;
use gpu_sim::counters::Counters;
use gpu_sim::exec::{self, CounterShard};
use gpu_sim::fault::{flip_bit_u16, flip_bit_u64, CommitFault, FaultInjector};
use gpu_sim::fp16::Half;
use gpu_sim::global::{warp_global_store, warp_ldgsts, warp_ldgsts_f, GlobalMemory, VAddr};
use gpu_sim::kernel::{LaunchChain, LaunchResult};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::shared_memory::warp_ldsm_x4;
use gpu_sim::spec::GpuSpec;
use gpu_sim::tensor_core::{mma_m16n8k16_bslice, FragC, MMA_K};
use gpu_sim::timing::{L2Reuse, LaunchShape, PipelineMode};
use gpu_sim::trace::{attribution_weight, pids, TraceEvent, TraceSink};

/// Ablation switches (paper Table 1). Both `true` is the full kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ablation {
    /// Shared Memory Bitmap Decoding. When disabled, the kernel decodes
    /// in the *register file*: each thread fetches value words and
    /// redistributes them to fragment owners with warp shuffles — several
    /// times the instruction count, more registers (lower occupancy), and
    /// a serial chain the pipeline cannot fully hide.
    pub smbd: bool,
    /// Asynchronous pipeline (double buffering + two cp.async groups).
    /// When disabled, only warp interleaving hides load latency: the
    /// overlap leak grows and less data stays in flight.
    pub async_pipe: bool,
}

impl Default for Ablation {
    fn default() -> Self {
        Ablation {
            smbd: true,
            async_pipe: true,
        }
    }
}

/// Extra integer instructions per BitmapTile for the -SMBD register
/// decode (address math and predication SMBD's masked popcount avoids).
const REG_DECODE_EXTRA_INT: u64 = 20;
/// Warp shuffles per BitmapTile for the -SMBD register decode.
const REG_DECODE_SHFL: u64 = 10;

/// Kernel configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpmmConfig {
    /// Split-K factor; `0` selects automatically from the launch shape.
    pub split_k: usize,
    /// Maximum N tile per block (multiple of 8).
    pub max_tile_n: usize,
    /// Ablation switches.
    pub ablation: Ablation,
}

impl Default for SpmmConfig {
    fn default() -> Self {
        SpmmConfig {
            split_k: 0,
            max_tile_n: 32,
            ablation: Ablation::default(),
        }
    }
}

/// Recovery policy for the fault-detecting path
/// ([`SpinferSpmm::run_checked_with`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Total load/decode attempts per GroupTile (1 = no retries).
    pub max_attempts: u32,
    /// When the budget is exhausted: `true` recomputes the GroupTile
    /// from its pristine encoding with the reference scalar product;
    /// `false` aborts the run with
    /// [`KernelError::RetryBudgetExhausted`].
    pub fallback: bool,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            max_attempts: 3,
            fallback: true,
        }
    }
}

/// Kernel phase labels for the trace seam (see [`gpu_sim::trace`]). One
/// record per GroupTile iteration and phase, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TracePhase {
    /// Bitmap + sparse-value LDGSTS stream and its cp.async commit.
    StreamW,
    /// Dense X-tile LDGSTS stream, its commit, and the sparse-group wait.
    StreamX,
    /// Per-TCTile SMBD decode (accumulated over the block's warps).
    Decode,
    /// Tensor-core mma waves (plus iteration-end barrier bookkeeping).
    Mma,
    /// Accumulator store to the reduction workspace.
    Epilogue,
}

impl TracePhase {
    fn name(self) -> &'static str {
        match self {
            TracePhase::StreamW => "stream_w",
            TracePhase::StreamX => "stream_x",
            TracePhase::Decode => "smbd_decode",
            TracePhase::Mma => "mma",
            TracePhase::Epilogue => "epilogue",
        }
    }
}

/// Per-task phase recorder for the traced kernel run. `run_block` pushes
/// `(phase, attribution weight)` pairs in execution order; weights are
/// counter deltas through [`attribution_weight`], so they are pure
/// functions of simulated events — deterministic at any host job count.
/// [`SpinferSpmm::run_with`] converts weights into sim-time spans once
/// the launch's estimated time is known (weights scale so all phase
/// spans of a launch sum exactly to its simulated time).
#[derive(Default)]
struct BlockTracer {
    spans: Vec<(TracePhase, u64)>,
    mark: u64,
}

impl BlockTracer {
    /// Re-baselines the weight cursor at a phase boundary.
    fn sync(&mut self, counters: &Counters, x_counters: &Counters) {
        self.mark = attribution_weight(counters) + attribution_weight(x_counters);
    }

    /// Closes a phase: records the weight accumulated since the last
    /// boundary and re-baselines.
    fn phase(&mut self, phase: TracePhase, counters: &Counters, x_counters: &Counters) {
        let now = attribution_weight(counters) + attribution_weight(x_counters);
        self.spans.push((phase, now - self.mark));
        self.mark = now;
    }
}

/// Result of a simulated SpMM: output (functional path only) plus the
/// launch chain (main kernel, and reduction when split-K > 1).
#[derive(Clone, Debug)]
pub struct SpmmRun {
    /// Row-major `M×N` FP32 output; `None` for the analytic path.
    pub output: Option<Vec<f32>>,
    /// Kernel launches with counters and timing.
    pub chain: LaunchChain,
}

impl SpmmRun {
    /// Total simulated time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.chain.time_us()
    }
}

/// Format statistics needed by the analytic estimator.
#[derive(Clone, Debug)]
pub struct FormatStats {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Padded rows.
    pub m_pad: usize,
    /// Padded columns.
    pub k_pad: usize,
    /// GroupTile config.
    pub config: crate::tca_bme::TcaBmeConfig,
    /// Non-zero count.
    pub nnz: usize,
    /// Length of the values array including padding.
    pub values_len: usize,
    /// Fraction of BitmapTiles containing at least one non-zero.
    pub nonempty_bt_fraction: f64,
    /// Largest per-GroupTile value count (shared-memory sizing).
    pub max_values_per_gtile: usize,
}

impl FormatStats {
    /// Extracts statistics from an encoded matrix.
    pub fn from_encoded(w: &TcaBme) -> Self {
        let nonempty = w.bitmaps.iter().filter(|&&b| b != 0).count();
        FormatStats {
            m: w.m,
            k: w.k,
            m_pad: w.m_pad,
            k_pad: w.k_pad,
            config: w.config,
            nnz: w.nnz,
            values_len: w.values.len(),
            nonempty_bt_fraction: nonempty as f64 / w.bitmaps.len().max(1) as f64,
            max_values_per_gtile: w.max_values_per_gtile(),
        }
    }

    /// Expected statistics for an `m×k` matrix with i.i.d. element
    /// sparsity `s` — lets paper-scale sweeps skip materialising weights.
    pub fn synthetic(m: usize, k: usize, sparsity: f64) -> Self {
        let config = crate::tca_bme::TcaBmeConfig::default();
        let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
        let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
        let nnz = ((m * k) as f64 * (1.0 - sparsity)).round() as usize;
        let ngt = (m_pad / config.gt_rows) * (k_pad / config.gt_cols);
        let vals_per_gt = nnz as f64 / ngt as f64;
        // Per-GroupTile padding to 4 elements: 1.5 expected extra.
        let values_len = nnz + ngt * 2;
        // Binomial tail: P(BT non-empty) = 1 - s^64.
        let nonempty = 1.0 - sparsity.powi(64);
        // Expected max over GroupTiles ~ mean + 3 std of Binomial(4096, 1-s).
        let gt_elems = (config.gt_rows * config.gt_cols) as f64;
        let std = (gt_elems * sparsity * (1.0 - sparsity)).sqrt();
        let max_vals = (vals_per_gt + 3.0 * std + 4.0).min(gt_elems) as usize;
        FormatStats {
            m,
            k,
            m_pad,
            k_pad,
            config,
            nnz,
            values_len,
            nonempty_bt_fraction: nonempty,
            max_values_per_gtile: max_vals,
        }
    }

    /// Dense bytes of the logical matrix.
    pub fn dense_bytes(&self) -> usize {
        2 * self.m * self.k
    }

    /// TCA-BME storage bytes (with expected padding).
    pub fn storage_bytes(&self) -> usize {
        let ngt = (self.m_pad / self.config.gt_rows) * (self.k_pad / self.config.gt_cols);
        let nbt = (self.m_pad / 8) * (self.k_pad / 8);
        4 * (ngt + 1) + 8 * nbt + 2 * self.values_len
    }
}

/// The SpInfer-SpMM kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpinferSpmm {
    /// Kernel configuration.
    pub config: SpmmConfig,
}

/// Geometry shared by the functional and analytic paths.
struct Geometry {
    tile_n: usize,
    n_pad: usize,
    grid_x: usize,
    split_k: usize,
    gtx_per_split: usize,
    grid_blocks: u64,
    warps: usize,
    block: BlockResources,
    iters_per_block: f64,
}

impl SpinferSpmm {
    /// Creates a kernel with the default configuration.
    pub fn new() -> Self {
        SpinferSpmm::default()
    }

    /// Creates a kernel with explicit ablation switches.
    pub fn with_ablation(ablation: Ablation) -> Self {
        SpinferSpmm {
            config: SpmmConfig {
                ablation,
                ..SpmmConfig::default()
            },
        }
    }

    fn geometry(&self, spec: &GpuSpec, stats: &FormatStats, n: usize) -> Geometry {
        let n_pad = n.max(8).div_ceil(8) * 8;
        // Decode-phase batches use up to `max_tile_n`; prefill-scale N
        // widens the block tile to 128 so each decoded WTile amortises
        // over more output columns (otherwise SMBD work scales with
        // N/tile_n and the decode chain dominates the Tensor Cores).
        let tile_n = if n_pad <= self.config.max_tile_n {
            n_pad
        } else {
            n_pad.min(self.config.max_tile_n.max(128))
        };
        let grid_x = n_pad.div_ceil(tile_n);
        let gtiles_y = stats.m_pad / stats.config.gt_rows;
        let gtiles_x = stats.k_pad / stats.config.gt_cols;
        let split_k = if self.config.split_k == 0 {
            auto_split_k(spec, gtiles_y * grid_x, gtiles_x)
        } else {
            self.config.split_k.clamp(1, gtiles_x)
        };
        let gtx_per_split = gtiles_x.div_ceil(split_k);
        let warps = stats.config.gt_rows / TT_DIM;

        // Shared memory: double-buffered bitmaps + values + X tile.
        let bufs = 2usize;
        let bitmap_bytes = stats.config.bts_per_gt() * 8;
        let value_bytes = stats.max_values_per_gtile * 2;
        let x_bytes = stats.config.gt_cols * tile_n * 2;
        let smem = bufs * (bitmap_bytes + value_bytes + x_bytes);

        // Register estimate per thread: accumulators (4 FP32 per FragC per
        // n8), live A fragment + prefetched next (4 + 4), B fragments
        // (2 per n8 pair), addresses and loop state. The register-decode
        // fallback (-SMBD) stages value words and shuffle temporaries in
        // the register file, costing substantially more.
        let n8 = tile_n / 8;
        let regs =
            28 + 4 * n8 as u32 + 8 + 2 * n8 as u32 + if self.config.ablation.smbd { 0 } else { 40 };

        Geometry {
            tile_n,
            n_pad,
            grid_x,
            split_k,
            gtx_per_split,
            grid_blocks: (gtiles_y * grid_x * split_k) as u64,
            warps,
            block: BlockResources {
                threads: (warps * 32) as u32,
                regs_per_thread: regs,
                smem_bytes: smem as u32,
            },
            iters_per_block: gtx_per_split as f64,
        }
    }

    fn launch_shape(&self, geo: &Geometry) -> LaunchShape {
        let (per_iter_fixed, inflight, leak) = if self.config.ablation.async_pipe {
            (24.0, None, None)
        } else {
            // Single-buffered: warp interleaving still overlaps most of
            // the load latency, but the decode/compute chain leaks more
            // and fewer bytes stay in flight.
            (48.0, Some(1024.0), Some(0.18))
        };
        LaunchShape {
            grid_blocks: geo.grid_blocks,
            block: geo.block,
            iters_per_block: geo.iters_per_block,
            mode: PipelineMode::AsyncDoubleBuffered,
            per_iter_fixed_cycles: per_iter_fixed,
            ramp_cycles: 600.0,
            inflight_bytes_per_warp: inflight,
            overlap_leak: leak,
        }
    }

    /// Functional execution: computes the product and records counters
    /// from real addresses and bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.k`.
    pub fn run(&self, spec: &GpuSpec, w: &TcaBme, x: &DenseMatrix) -> SpmmRun {
        self.run_with(spec, w, x, None)
    }

    /// [`Self::run`] with span recording into `sink` (see
    /// [`gpu_sim::trace`]): per GroupTile iteration, `stream_w` /
    /// `stream_x` / `smbd_decode` / `mma` phase spans on one compute
    /// track per block row, cp.async in-flight windows with
    /// issue→commit→wait flow arrows on a sibling track, one `epilogue`
    /// span per block, and a `reduction` span when split-K > 1.
    ///
    /// Output, counters, and simulated time are bit-identical to
    /// [`Self::run`]: tracing only *reads* the counter stream. Spans are
    /// timestamped in simulated µs — phase attribution weights scaled so
    /// the main launch's phase spans sum exactly to its estimated time —
    /// so traces are byte-identical at any host job count.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != w.k`.
    pub fn run_traced(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        sink: &TraceSink,
    ) -> SpmmRun {
        self.run_with(spec, w, x, Some(sink))
    }

    fn run_with(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        sink: Option<&TraceSink>,
    ) -> SpmmRun {
        assert_eq!(x.rows(), w.k, "X must be K×N");
        let n = x.cols();
        let stats = FormatStats::from_encoded(w);
        let geo = self.geometry(spec, &stats, n);

        // Virtual address space for coalescing analysis.
        let mut gm = GlobalMemory::new();
        let _offsets_base = gm.alloc(4 * w.gtile_offsets.len());
        let values_base = gm.alloc(2 * w.values.len());
        let bitmaps_base = gm.alloc(8 * w.bitmaps.len());
        let x_base = gm.alloc(2 * w.k * geo.n_pad);
        let ws_base = gm.alloc(4 * w.m_pad * geo.n_pad * geo.split_k);

        // Shared-memory virtual layout within a block (one buffer; the
        // second buffer has identical bank behaviour).
        let smem_values: u64 = (w.config.bts_per_gt() * 8) as u64;

        let mut counters = Counters::new();
        let mut x_counters = Counters::new();
        // Split-K workspace: [split][m_pad × n_pad] FP32.
        let mut workspace = vec![0.0f32; geo.split_k * w.m_pad * geo.n_pad];

        let gtiles_y = w.gtiles_y();
        let gtiles_x = w.gtiles_x();
        let slice_len = w.m_pad * geo.n_pad;
        let band_len = w.config.gt_rows * geo.n_pad;

        // Block-level fan-out (see `gpu_sim::exec`): block rows `gty`
        // write disjoint workspace row bands, so they distribute across
        // host cores. Pre-cut the workspace into per-(split, gty) bands
        // and hand each task the bands it owns — safe disjoint `&mut`
        // access with no runtime aliasing checks.
        let mut split_bands: Vec<_> = workspace
            .chunks_mut(slice_len)
            .map(|s| s.chunks_mut(band_len))
            .collect();
        let tasks: Vec<(usize, Vec<&mut [f32]>)> = (0..gtiles_y)
            .map(|gty| {
                let bands = split_bands
                    .iter_mut()
                    .map(|it| {
                        it.next().expect(
                            "workspace band iterator exhausted: every split slice must hold \
                             one band per block row (workspace sized split_k * m_pad * n_pad \
                             with m_pad = gtiles_y * gt_rows)",
                        )
                    })
                    .collect();
                (gty, bands)
            })
            .collect();

        // `run_block` addresses the workspace by *global* row, so each
        // worker runs its block rows against a reusable full-size
        // scratch image, then copies the finished band out and
        // re-zeroes it. Event counts shard per task and merge
        // field-wise (`u64` addition commutes), so both the numerics
        // (disjoint copies) and the counters are bit-identical to the
        // serial gty → nt → split loop at any job count.
        let shards = exec::par_map_with(
            tasks,
            || vec![0.0f32; geo.split_k * slice_len],
            |scratch, (gty, bands)| {
                let mut shard = CounterShard::new();
                let mut x_shard = CounterShard::new();
                let mut tracer = sink.map(|_| BlockTracer::default());
                for nt in 0..geo.grid_x {
                    let n0 = nt * geo.tile_n;
                    for split in 0..geo.split_k {
                        let gx0 = split * geo.gtx_per_split;
                        let gx1 = (gx0 + geo.gtx_per_split).min(gtiles_x);
                        self.run_block(
                            spec,
                            w,
                            x,
                            shard.counters(),
                            x_shard.counters(),
                            &mut scratch[split * slice_len..][..slice_len],
                            &geo,
                            gty,
                            n0,
                            gx0,
                            gx1,
                            values_base,
                            bitmaps_base,
                            x_base,
                            ws_base,
                            smem_values,
                            tracer.as_mut(),
                        );
                    }
                }
                for (split, band) in bands.into_iter().enumerate() {
                    let src = &mut scratch[split * slice_len + gty * band_len..][..band_len];
                    band.copy_from_slice(src);
                    src.fill(0.0);
                }
                (shard, x_shard, tracer.map(|t| t.spans))
            },
        );
        // Per-task phase records come back in task (block-row) order from
        // `par_map_with`, so the trace below is independent of scheduling.
        let mut task_spans: Vec<Vec<(TracePhase, u64)>> = Vec::new();
        for (shard, x_shard, spans) in shards {
            counters.merge(&shard.into_counters());
            x_counters.merge(&x_shard.into_counters());
            if let Some(spans) = spans {
                task_spans.push(spans);
            }
        }

        let x_requested = x_counters.dram_read_bytes;
        counters.merge(&x_counters);
        let l2 = [L2Reuse {
            buffer_bytes: (2 * w.k * geo.n_pad) as u64,
            requested_bytes: x_requested,
        }];

        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            kernel_name(self.config.ablation),
            spec,
            self.launch_shape(&geo),
            counters,
            &l2,
        ));

        // Reduce the split-K workspace through the functional reduction
        // kernel (its counters come from real addresses too).
        let mut out_pad = vec![0.0f32; w.m_pad * geo.n_pad];
        if geo.split_k > 1 {
            let out_base = gm.alloc(4 * w.m_pad * geo.n_pad);
            chain.push(crate::reduction::run_reduction(
                spec,
                &workspace,
                &mut out_pad,
                w.m_pad * geo.n_pad,
                geo.split_k,
                ws_base,
                out_base,
            ));
        } else {
            out_pad.copy_from_slice(&workspace);
        }

        // Slice to logical M×N.
        let mut output = vec![0.0f32; w.m * n];
        for r in 0..w.m {
            output[r * n..(r + 1) * n].copy_from_slice(&out_pad[r * geo.n_pad..r * geo.n_pad + n]);
        }
        if let Some(sink) = sink {
            emit_kernel_trace(sink, self.config.ablation, &chain, &task_spans);
        }
        SpmmRun {
            output: Some(output),
            chain,
        }
    }

    /// Fault-detecting functional execution with the default
    /// [`FaultPolicy`] (three attempts per GroupTile, then the
    /// pristine-encoding reference fallback). See
    /// [`Self::run_checked_with`].
    pub fn run_checked(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        fault: Option<&FaultInjector>,
    ) -> Result<SpmmRun, SpinferError> {
        self.run_checked_with(spec, w, x, fault, FaultPolicy::default())
    }

    /// Fault-detecting functional execution.
    ///
    /// Same product and counters as [`Self::run`] — bit-identical when
    /// `fault` is `None` or an unarmed plan — but every hazard becomes a
    /// typed outcome instead of a panic or silent garbage:
    ///
    /// 1. The container is [`TcaBme::validate`]d up front
    ///    ([`SpinferError::Integrity`] on structural damage) and
    ///    per-GroupTile [FNV-1a checksums](crate::tca_bme::checksum_gtile)
    ///    are precomputed from the pristine encoding.
    /// 2. When an armed [`FaultInjector`] is supplied, the `LDGSTS`
    ///    streams and `cp.async` commits of each GroupTile run through
    ///    the fault hooks and land in a *local shared-memory image*;
    ///    the image's checksum is compared against the pristine one
    ///    before SMBD consumes it (detection **D1**).
    /// 3. SMBD runs through the checked decode: offset overruns from
    ///    flipped bitmap bits surface as [`DecodeFault::Overrun`]
    ///    (**D2**) and poisoned FP16 gathers as
    ///    [`DecodeFault::NonFinite`] (**D3**) instead of escaping into
    ///    the accumulators.
    /// 4. On detection the GroupTile is re-streamed from global memory
    ///    with a [reseeded](FaultInjector::reseeded) draw stream, up to
    ///    [`FaultPolicy::max_attempts`]; recoveries and exhausted
    ///    budgets are tallied in [`Counters::faults_recovered`] and
    ///    [`Counters::fault_fallbacks`]. An exhausted budget takes the
    ///    reference scalar product of the pristine GroupTile
    ///    (`fallback: true`) or aborts with
    ///    [`KernelError::RetryBudgetExhausted`] (`fallback: false`).
    ///
    /// Injection is restricted to checksum-protected structures (the
    /// sparse bitmap/value streams and their commit group, plus the
    /// decode gathers); the dense X path has no integrity metadata, so
    /// corrupting it could only produce the silent garbage this path
    /// exists to rule out. Integrity checks model zero-cost host-side
    /// verification: they record no counter events.
    pub fn run_checked_with(
        &self,
        spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        fault: Option<&FaultInjector>,
        policy: FaultPolicy,
    ) -> Result<SpmmRun, SpinferError> {
        if x.rows() != w.k {
            return Err(SpinferError::DimensionMismatch {
                expected_k: w.k,
                got: x.rows(),
            });
        }
        w.validate()?;
        let w_checksums = w.gtile_checksums();

        let n = x.cols();
        let stats = FormatStats::from_encoded(w);
        let geo = self.geometry(spec, &stats, n);

        let mut gm = GlobalMemory::new();
        let _offsets_base = gm.alloc(4 * w.gtile_offsets.len());
        let values_base = gm.alloc(2 * w.values.len());
        let bitmaps_base = gm.alloc(8 * w.bitmaps.len());
        let x_base = gm.alloc(2 * w.k * geo.n_pad);
        let ws_base = gm.alloc(4 * w.m_pad * geo.n_pad * geo.split_k);
        let smem_values: u64 = (w.config.bts_per_gt() * 8) as u64;

        let mut counters = Counters::new();
        let mut x_counters = Counters::new();
        let mut workspace = vec![0.0f32; geo.split_k * w.m_pad * geo.n_pad];

        let gtiles_y = w.gtiles_y();
        let gtiles_x = w.gtiles_x();
        let slice_len = w.m_pad * geo.n_pad;
        let band_len = w.config.gt_rows * geo.n_pad;

        let mut split_bands: Vec<_> = workspace
            .chunks_mut(slice_len)
            .map(|s| s.chunks_mut(band_len))
            .collect();
        let tasks: Vec<(usize, Vec<&mut [f32]>)> = (0..gtiles_y)
            .map(|gty| {
                let bands = split_bands
                    .iter_mut()
                    .map(|it| {
                        it.next().expect(
                            "workspace band iterator exhausted: every split slice must hold \
                             one band per block row (workspace sized split_k * m_pad * n_pad \
                             with m_pad = gtiles_y * gt_rows)",
                        )
                    })
                    .collect();
                (gty, bands)
            })
            .collect();

        // Same fan-out as `run`; a block row that aborts on an
        // unrecoverable fault zeroes its reusable scratch (the next task
        // on that worker expects it clean) and carries the typed error
        // out through the shard results.
        let shards = exec::par_map_with(
            tasks,
            || vec![0.0f32; geo.split_k * slice_len],
            |scratch, (gty, bands)| {
                let mut shard = CounterShard::new();
                let mut x_shard = CounterShard::new();
                for nt in 0..geo.grid_x {
                    let n0 = nt * geo.tile_n;
                    for split in 0..geo.split_k {
                        let gx0 = split * geo.gtx_per_split;
                        let gx1 = (gx0 + geo.gtx_per_split).min(gtiles_x);
                        if let Err(e) = self.run_block_checked(
                            spec,
                            w,
                            x,
                            shard.counters(),
                            x_shard.counters(),
                            &mut scratch[split * slice_len..][..slice_len],
                            &geo,
                            gty,
                            n0,
                            gx0,
                            gx1,
                            values_base,
                            bitmaps_base,
                            x_base,
                            ws_base,
                            smem_values,
                            &w_checksums,
                            fault,
                            policy,
                        ) {
                            scratch.fill(0.0);
                            return Err(e);
                        }
                    }
                }
                for (split, band) in bands.into_iter().enumerate() {
                    let src = &mut scratch[split * slice_len + gty * band_len..][..band_len];
                    band.copy_from_slice(src);
                    src.fill(0.0);
                }
                Ok((shard, x_shard))
            },
        );
        for res in shards {
            let (shard, x_shard) = res.map_err(SpinferError::Kernel)?;
            counters.merge(&shard.into_counters());
            x_counters.merge(&x_shard.into_counters());
        }

        let x_requested = x_counters.dram_read_bytes;
        counters.merge(&x_counters);
        let l2 = [L2Reuse {
            buffer_bytes: (2 * w.k * geo.n_pad) as u64,
            requested_bytes: x_requested,
        }];

        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            kernel_name(self.config.ablation),
            spec,
            self.launch_shape(&geo),
            counters,
            &l2,
        ));

        let mut out_pad = vec![0.0f32; w.m_pad * geo.n_pad];
        if geo.split_k > 1 {
            let out_base = gm.alloc(4 * w.m_pad * geo.n_pad);
            chain.push(crate::reduction::run_reduction(
                spec,
                &workspace,
                &mut out_pad,
                w.m_pad * geo.n_pad,
                geo.split_k,
                ws_base,
                out_base,
            ));
        } else {
            out_pad.copy_from_slice(&workspace);
        }

        let mut output = vec![0.0f32; w.m * n];
        for r in 0..w.m {
            output[r * n..(r + 1) * n].copy_from_slice(&out_pad[r * geo.n_pad..r * geo.n_pad + n]);
        }
        Ok(SpmmRun {
            output: Some(output),
            chain,
        })
    }

    /// One thread block's work: all GroupTiles in `gx0..gx1` for block row
    /// `gty` and N tile starting at `n0`.
    #[allow(clippy::too_many_arguments)]
    fn run_block(
        &self,
        _spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        counters: &mut Counters,
        x_counters: &mut Counters,
        workspace: &mut [f32],
        geo: &Geometry,
        gty: usize,
        n0: usize,
        gx0: usize,
        gx1: usize,
        values_base: VAddr,
        bitmaps_base: VAddr,
        x_base: VAddr,
        ws_base: VAddr,
        smem_values: u64,
        mut tracer: Option<&mut BlockTracer>,
    ) {
        let cfg = w.config;
        let tt_rows = cfg.tt_rows();
        let tt_cols = cfg.tt_cols();
        let n8 = geo.tile_n / 8;
        let n = x.cols();
        // Tracing only *reads* the counter stream (attribution-weight
        // checkpoints at phase boundaries); with `tracer` absent, no
        // extra work runs and the code path is the pre-existing one.
        let trace_on = tracer.is_some();
        if let Some(t) = tracer.as_deref_mut() {
            t.sync(counters, x_counters);
        }

        // Per-warp accumulators: warp = TCTile row strip.
        let mut accs: Vec<Vec<FragC>> = (0..geo.warps)
            .map(|_| (0..n8).map(|_| FragC::zero()).collect())
            .collect();

        // Decode-once X tile: the `gt_cols × tile_n` activation window
        // every warp of this block multiplies, converted to `f32` once
        // per GroupTile column. All warps and all N-blocks stride into
        // this buffer directly (`mma_m16n8k16_bslice`), replacing the
        // per-mma `FragB` build that re-decoded each X element
        // `warps × 2` times. Out-of-range rows/columns are zero,
        // exactly as the fragment path's predicated accessor produced.
        let mut xf = vec![0.0f32; cfg.gt_cols * geo.tile_n];

        // Algorithm 1's cp.async discipline: two independent commit groups
        // per iteration (bitmap+sparse, then dense), retired in order with
        // wait_group(1) before SMBD and wait_group(0) before the Tensor
        // Core consumes the X fragments. Data moves eagerly in the
        // functional simulator; the tracker verifies the ordering.
        let mut cp_async = gpu_sim::async_copy::AsyncCopyState::new();
        for gtx in gx0..gx1 {
            let gt = w.gt_index(gty, gtx);
            let vals = w.gtile_values(gt);
            let bms = w.gtile_bitmaps(gt);

            // --- 1. GTile loading (bitmaps + values) via LDGSTS.128 ---
            let bm_bytes = (cfg.bts_per_gt() * 8) as u64;
            record_ldgsts_stream(
                counters,
                bitmaps_base + (gt * cfg.bts_per_gt() * 8) as u64,
                bm_bytes,
            );
            let val_bytes = (vals.len() * 2) as u64;
            record_ldgsts_stream(
                counters,
                values_base + (w.gtile_offsets[gt] as u64) * 2,
                val_bytes,
            );
            cp_async.issue();
            cp_async.commit_group(); // Bitmap + sparse values group.
            if let Some(t) = tracer.as_deref_mut() {
                t.phase(TracePhase::StreamW, counters, x_counters);
            }
            // --- 3. XTile loading ---
            let row_bytes = (geo.tile_n * 2) as u64;
            for kr in (0..cfg.gt_cols).step_by(4) {
                // Four X rows per warp instruction (8 lanes × 16 B when
                // tile_n = 32; proportionally predicated otherwise).
                let mut addrs = [None; 32];
                let mut li = 0usize;
                for dr in 0..4 {
                    let krow = gtx * cfg.gt_cols + kr + dr;
                    let base = x_base + (krow * geo.n_pad + n0) as u64 * 2;
                    let lanes = (row_bytes as usize).div_ceil(16);
                    for l in 0..lanes {
                        if li < 32 {
                            addrs[li] = Some(base + (l * 16) as u64);
                            li += 1;
                        }
                    }
                }
                warp_ldgsts(x_counters, &addrs, 16);
                // LDGSTS writes shared memory directly; conflict-free rows.
                counters.smem_store_transactions += (4 * row_bytes).div_ceil(128);
            }
            cp_async.issue();
            cp_async.commit_group(); // Dense XTile group.
                                     // SMBD may start once the sparse group lands (dense still in
                                     // flight) — Algorithm 1 line 24.
            let retired = cp_async.wait_group(1);
            debug_assert_eq!(retired, 1, "sparse group retires first");
            if let Some(t) = tracer.as_deref_mut() {
                t.phase(TracePhase::StreamX, counters, x_counters);
            }

            // Fill the decode-once X tile for this GroupTile column.
            for kk in 0..cfg.gt_cols {
                let kr = gtx * cfg.gt_cols + kk;
                let row = &mut xf[kk * geo.tile_n..(kk + 1) * geo.tile_n];
                if kr < x.rows() {
                    for (nn, slot) in row.iter_mut().enumerate() {
                        let nc = n0 + nn;
                        *slot = if nc < n { x.get(kr, nc).to_f32() } else { 0.0 };
                    }
                } else {
                    row.fill(0.0);
                }
            }

            // --- 2. WTile decoding, 4./5. fragment loads + Tensor Cores ---
            // Decode and mma interleave per TCTile; with tracing on,
            // their weights accumulate separately so each gets one span
            // per GroupTile iteration.
            let mut dec_w = 0u64;
            let mut mma_w = 0u64;
            let mut wmark = 0u64;
            for warp in 0..geo.warps {
                let tty = warp % tt_rows;
                for ttx in 0..tt_cols {
                    let tc_idx = ttx * tt_rows + tty;
                    // Base offset: popcounts of preceding TCTiles.
                    let base: usize = bms[..tc_idx * 4].iter().map(|&b| popc64(b) as usize).sum();
                    let tc_bms: [u64; 4] = bms[tc_idx * 4..tc_idx * 4 + 4].try_into().expect(
                        "TCTile bitmap slice must hold exactly 4 BitmapTiles: gtile_bitmaps \
                         returns bts_per_gt() words, a multiple of BTS_PER_TT = 4",
                    );
                    if trace_on {
                        wmark = attribution_weight(counters);
                    }
                    let (a_rows, _) = decode_tctile_f32(counters, &tc_bms, vals, base, smem_values);
                    if !self.config.ablation.smbd {
                        // Register decode: the same values reach the same
                        // fragments, but through per-thread fetches and
                        // warp shuffles — extra arithmetic and shuffle
                        // traffic per BitmapTile that SMBD avoids.
                        counters.cuda_int_insts += REG_DECODE_EXTRA_INT * 4;
                        counters.shfl_insts += REG_DECODE_SHFL * 4;
                        counters.insts_issued += (REG_DECODE_EXTRA_INT + REG_DECODE_SHFL) * 4;
                    }
                    if trace_on {
                        let now = attribution_weight(counters);
                        dec_w += now - wmark;
                        wmark = now;
                    }
                    self.mma_row(counters, &xf, geo, ttx, &a_rows, &mut accs[warp]);
                    if trace_on {
                        mma_w += attribution_weight(counters) - wmark;
                    }
                }
            }
            // The dense group must land before its fragments feed the
            // Tensor Cores of the *next* mma wave — Algorithm 1 line 26.
            cp_async.wait_group(0);
            // Pipeline bookkeeping (barrier between iterations).
            counters.barriers += 1;
            if let Some(t) = tracer.as_deref_mut() {
                // The iteration-end barrier weight folds into the mma
                // span (it is the pipeline bookkeeping that gates the
                // next wave).
                let now = attribution_weight(counters) + attribution_weight(x_counters);
                let residual = now - t.mark - dec_w - mma_w;
                t.spans.push((TracePhase::Decode, dec_w));
                t.spans.push((TracePhase::Mma, mma_w + residual));
                t.mark = now;
            }
        }
        cp_async.assert_drained();

        // --- Epilogue: store accumulators to the reduction workspace ---
        for (warp, acc_row) in accs.iter().enumerate() {
            let tty = warp % tt_rows;
            for (j, frag) in acc_row.iter().enumerate() {
                let tile = frag.to_tile();
                for r in 0..TT_DIM {
                    let gr = gty * cfg.gt_rows + tty * TT_DIM + r;
                    for c in 0..8 {
                        let gc = n0 + j * 8 + c;
                        if gc < geo.n_pad {
                            workspace[gr * geo.n_pad + gc] += tile[r][c];
                        }
                    }
                }
                // Two warp stores of 8 B (c0,c1 then c2,c3 pairs).
                for half in 0..2 {
                    let mut addrs = [None; 32];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        let group = lane / 4;
                        let tid = lane % 4;
                        let gr = gty * cfg.gt_rows + tty * TT_DIM + group + 8 * half;
                        let gc = n0 + j * 8 + 2 * tid;
                        *slot = Some(ws_base + (gr * geo.n_pad + gc) as u64 * 4);
                    }
                    warp_global_store(counters, &addrs, 8);
                }
            }
        }
        if let Some(t) = tracer {
            t.phase(TracePhase::Epilogue, counters, x_counters);
        }
    }

    /// [`Self::run_block`] with integrity checking and bounded-retry
    /// recovery — the per-block half of [`Self::run_checked_with`].
    ///
    /// With `fault` absent (or unarmed) the counter stream and numerics
    /// are bit-identical to `run_block`: the `_f` hooks collapse to the
    /// golden functions and no shared-memory image is materialised.
    #[allow(clippy::too_many_arguments)]
    fn run_block_checked(
        &self,
        _spec: &GpuSpec,
        w: &TcaBme,
        x: &DenseMatrix,
        counters: &mut Counters,
        x_counters: &mut Counters,
        workspace: &mut [f32],
        geo: &Geometry,
        gty: usize,
        n0: usize,
        gx0: usize,
        gx1: usize,
        values_base: VAddr,
        bitmaps_base: VAddr,
        x_base: VAddr,
        ws_base: VAddr,
        smem_values: u64,
        w_checksums: &[u32],
        fault: Option<&FaultInjector>,
        policy: FaultPolicy,
    ) -> Result<(), KernelError> {
        let cfg = w.config;
        let tt_rows = cfg.tt_rows();
        let tt_cols = cfg.tt_cols();
        let n8 = geo.tile_n / 8;
        let n = x.cols();

        let mut accs: Vec<Vec<FragC>> = (0..geo.warps)
            .map(|_| (0..n8).map(|_| FragC::zero()).collect())
            .collect();
        let mut xf = vec![0.0f32; cfg.gt_cols * geo.tile_n];

        // Local shared-memory image of the GroupTile under injection;
        // reused across iterations to stay allocation-free per tile.
        let mut bms_img: Vec<u64> = Vec::new();
        let mut vals_img: Vec<Half> = Vec::new();

        let mut cp_async = gpu_sim::async_copy::AsyncCopyState::new();
        for gtx in gx0..gx1 {
            let gt = w.gt_index(gty, gtx);
            let pristine_vals = w.gtile_values(gt);
            let pristine_bms = w.gtile_bitmaps(gt);
            let bm_addr = bitmaps_base + (gt * cfg.bts_per_gt() * 8) as u64;
            let val_addr = values_base + (w.gtile_offsets[gt] as u64) * 2;
            // Injection only matters for this tile when the plan is
            // armed and the tile filter admits it; otherwise the golden
            // path runs against the pristine slices directly.
            let inject = fault.filter(|i| i.plan().armed() && i.gtile_enabled(gt));

            // --- 1. GTile loading, fault-aware ---
            load_gtile_image(
                counters,
                inject,
                pristine_bms,
                pristine_vals,
                bm_addr,
                val_addr,
                &mut bms_img,
                &mut vals_img,
            );
            cp_async.issue();
            apply_commit_fault(
                cp_async.commit_group_f(counters, inject, bm_addr),
                &mut bms_img,
                &mut vals_img,
                inject.is_some(),
            );

            // --- 3. XTile loading (no integrity metadata; golden path) ---
            let row_bytes = (geo.tile_n * 2) as u64;
            for kr in (0..cfg.gt_cols).step_by(4) {
                let mut addrs = [None; 32];
                let mut li = 0usize;
                for dr in 0..4 {
                    let krow = gtx * cfg.gt_cols + kr + dr;
                    let base = x_base + (krow * geo.n_pad + n0) as u64 * 2;
                    let lanes = (row_bytes as usize).div_ceil(16);
                    for l in 0..lanes {
                        if li < 32 {
                            addrs[li] = Some(base + (l * 16) as u64);
                            li += 1;
                        }
                    }
                }
                warp_ldgsts(x_counters, &addrs, 16);
                counters.smem_store_transactions += (4 * row_bytes).div_ceil(128);
            }
            cp_async.issue();
            cp_async.commit_group();
            let retired = cp_async.wait_group(1);
            debug_assert_eq!(retired, 1, "sparse group retires first");

            for kk in 0..cfg.gt_cols {
                let kr = gtx * cfg.gt_cols + kk;
                let row = &mut xf[kk * geo.tile_n..(kk + 1) * geo.tile_n];
                if kr < x.rows() {
                    for (nn, slot) in row.iter_mut().enumerate() {
                        let nc = n0 + nn;
                        *slot = if nc < n { x.get(kr, nc).to_f32() } else { 0.0 };
                    }
                } else {
                    row.fill(0.0);
                }
            }

            // --- D1: checksum the landed image; retry from DRAM ---
            let mut verified = true;
            if let Some(inj0) = inject {
                let expected = w_checksums[gt];
                let mut attempt: u32 = 0;
                verified = loop {
                    attempt += 1;
                    if checksum_gtile(&bms_img, &vals_img) == expected {
                        if attempt > 1 {
                            counters.faults_recovered += 1;
                        }
                        break true;
                    }
                    counters.faults_detected += 1;
                    if attempt >= policy.max_attempts {
                        break false;
                    }
                    // Synchronous re-stream of the GroupTile with a
                    // reseeded draw stream (a fresh DRAM transfer hits
                    // fresh fault sites, not the same ones again).
                    let inj_r = inj0.reseeded(u64::from(attempt));
                    load_gtile_image(
                        counters,
                        Some(&inj_r),
                        pristine_bms,
                        pristine_vals,
                        bm_addr,
                        val_addr,
                        &mut bms_img,
                        &mut vals_img,
                    );
                    cp_async.issue();
                    apply_commit_fault(
                        cp_async.commit_group_f(counters, Some(&inj_r), bm_addr),
                        &mut bms_img,
                        &mut vals_img,
                        true,
                    );
                    cp_async.wait_group(0);
                };
            }
            if !verified {
                if !policy.fallback {
                    return Err(KernelError::RetryBudgetExhausted {
                        gt,
                        attempts: policy.max_attempts,
                    });
                }
                // Reference product from the pristine encoding: slower,
                // but guaranteed correct — nothing from the corrupted
                // image reaches the accumulators.
                counters.fault_fallbacks += 1;
                fallback_gtile_product(cfg, pristine_bms, pristine_vals, &xf, geo, &mut accs);
                cp_async.wait_group(0);
                counters.barriers += 1;
                continue;
            }
            let (bms, vals): (&[u64], &[Half]) = if inject.is_some() {
                (&bms_img, &vals_img)
            } else {
                (pristine_bms, pristine_vals)
            };

            // --- 2./4./5. checked SMBD + Tensor Cores (D2, D3) ---
            for warp in 0..geo.warps {
                let tty = warp % tt_rows;
                for ttx in 0..tt_cols {
                    let tc_idx = ttx * tt_rows + tty;
                    let base: usize = bms[..tc_idx * 4].iter().map(|&b| popc64(b) as usize).sum();
                    let tc_bms: [u64; 4] = bms[tc_idx * 4..tc_idx * 4 + 4].try_into().expect(
                        "TCTile bitmap slice must hold exactly 4 BitmapTiles: gtile_bitmaps \
                         returns bts_per_gt() words, a multiple of BTS_PER_TT = 4",
                    );
                    // Distinct per TCTile: BitmapTiles are 8 B apart and
                    // a TCTile owns four of them.
                    let site_key = bm_addr + (tc_idx * 32) as u64;
                    let mut decoded = None;
                    let mut last_fault: Option<DecodeFault> = None;
                    let mut att: u32 = 0;
                    while decoded.is_none() && att < policy.max_attempts {
                        let inj_a = inject.map(|i| {
                            if att == 0 {
                                *i
                            } else {
                                i.reseeded(0x0de0_0000 | u64::from(att))
                            }
                        });
                        match decode_tctile_f32_checked(
                            counters,
                            &tc_bms,
                            vals,
                            base,
                            smem_values,
                            inj_a.as_ref(),
                            site_key,
                        ) {
                            Ok((rows, _)) => {
                                if att > 0 {
                                    counters.faults_recovered += 1;
                                }
                                decoded = Some(rows);
                            }
                            Err(f) => {
                                counters.faults_detected += 1;
                                last_fault = Some(f);
                            }
                        }
                        att += 1;
                    }
                    let a_rows = match decoded {
                        Some(rows) => rows,
                        None => {
                            if !policy.fallback {
                                return Err(match last_fault {
                                    Some(DecodeFault::Overrun { needed, available }) => {
                                        KernelError::DecodeOverrun {
                                            gt,
                                            needed,
                                            available,
                                        }
                                    }
                                    Some(DecodeFault::NonFinite) => {
                                        KernelError::NonFiniteDecode { gt }
                                    }
                                    None => KernelError::RetryBudgetExhausted {
                                        gt,
                                        attempts: policy.max_attempts,
                                    },
                                });
                            }
                            // Pristine re-decode: the validated encoding
                            // cannot overrun and weights are finite by
                            // contract.
                            counters.fault_fallbacks += 1;
                            let pbase: usize = pristine_bms[..tc_idx * 4]
                                .iter()
                                .map(|&b| popc64(b) as usize)
                                .sum();
                            let pbms: [u64; 4] = pristine_bms[tc_idx * 4..tc_idx * 4 + 4]
                                .try_into()
                                .expect("pristine bitmaps carry 4 BitmapTiles per TCTile");
                            let (rows, _) = decode_tctile_f32(
                                counters,
                                &pbms,
                                pristine_vals,
                                pbase,
                                smem_values,
                            );
                            rows
                        }
                    };
                    if !self.config.ablation.smbd {
                        counters.cuda_int_insts += REG_DECODE_EXTRA_INT * 4;
                        counters.shfl_insts += REG_DECODE_SHFL * 4;
                        counters.insts_issued += (REG_DECODE_EXTRA_INT + REG_DECODE_SHFL) * 4;
                    }
                    self.mma_row(counters, &xf, geo, ttx, &a_rows, &mut accs[warp]);
                }
            }
            cp_async.wait_group(0);
            counters.barriers += 1;
        }
        cp_async.assert_drained();

        for (warp, acc_row) in accs.iter().enumerate() {
            let tty = warp % tt_rows;
            for (j, frag) in acc_row.iter().enumerate() {
                let tile = frag.to_tile();
                for r in 0..TT_DIM {
                    let gr = gty * cfg.gt_rows + tty * TT_DIM + r;
                    for c in 0..8 {
                        let gc = n0 + j * 8 + c;
                        if gc < geo.n_pad {
                            workspace[gr * geo.n_pad + gc] += tile[r][c];
                        }
                    }
                }
                for half in 0..2 {
                    let mut addrs = [None; 32];
                    for (lane, slot) in addrs.iter_mut().enumerate() {
                        let group = lane / 4;
                        let tid = lane % 4;
                        let gr = gty * cfg.gt_rows + tty * TT_DIM + group + 8 * half;
                        let gc = n0 + j * 8 + 2 * tid;
                        *slot = Some(ws_base + (gr * geo.n_pad + gc) as u64 * 4);
                    }
                    warp_global_store(counters, &addrs, 8);
                }
            }
        }
        Ok(())
    }

    /// Tensor Core computation for one decoded TCTile against every n8
    /// column of the X tile. `xf` is the block's decode-once `f32` X
    /// tile (leading dimension `tile_n`); `a_rows` the TCTile's
    /// decode-once A view. Every mma strides straight into both flat
    /// arrays.
    fn mma_row(
        &self,
        counters: &mut Counters,
        xf: &[f32],
        geo: &Geometry,
        ttx: usize,
        a_rows: &[[f32; MMA_K]; MMA_K],
        accs: &mut [FragC],
    ) {
        let n8 = geo.tile_n / 8;
        // One ldmatrix.x4 covers two B fragments (16×16 of X).
        let ldsm_count = n8.div_ceil(2);
        for _ in 0..ldsm_count {
            // Conflict-free row-major X tile rows (16 B rows).
            let rows = gpu_sim::shared_memory::strided_addrs(0, 16);
            warp_ldsm_x4(counters, &rows);
        }
        let k_off = ttx * TT_DIM * geo.tile_n;
        for (j, acc) in accs.iter_mut().enumerate().take(n8) {
            let b = &xf[k_off + j * 8..];
            mma_m16n8k16_bslice(counters, a_rows, b, geo.tile_n, acc);
        }
    }

    /// Analytic estimation from format statistics — identical counter
    /// structure to [`Self::run`] without touching data. Validated against
    /// the functional path in tests.
    pub fn estimate(&self, spec: &GpuSpec, stats: &FormatStats, n: usize) -> SpmmRun {
        let geo = self.geometry(spec, stats, n);
        let cfg = stats.config;
        let ngt = (stats.m_pad / cfg.gt_rows) * (stats.k_pad / cfg.gt_cols);
        let gtiles_y = stats.m_pad / cfg.gt_rows;
        let n8 = geo.tile_n / 8;
        let mut c = Counters::new();

        // --- GTile loads (per GroupTile, over all N tiles and splits) ---
        let bm_bytes_gt = (cfg.bts_per_gt() * 8) as u64;
        let val_bytes_gt = (stats.values_len as u64 * 2) / ngt as u64;
        let gt_visits = (ngt * geo.grid_x) as u64;
        // DRAM traffic is capped by wave-level L2 reuse over output tiles;
        // the decode work below still runs once per visit.
        let w_reread =
            gpu_sim::timing::panel_reread_factor(spec, stats.k_pad, geo.n_pad, geo.tile_n);
        let w_bytes = ngt as u64 * w_reread * (bm_bytes_gt + val_bytes_gt);
        c.dram_read_bytes += w_bytes;
        c.useful_read_bytes += w_bytes;
        c.ldgsts_insts +=
            gt_visits * (bm_bytes_gt.div_ceil(512) + val_bytes_gt.div_ceil(512).max(1));

        // --- X loads (panel re-read capped by wave-level L2 reuse) ---
        let m_reread =
            gpu_sim::timing::panel_reread_factor(spec, stats.k_pad, stats.m_pad, cfg.gt_rows);
        let row_sectors = sector_span(geo.tile_n * 2);
        // DRAM traffic is L2-capped; per-block load *work* is not.
        let x_rows_dram = (stats.k_pad * geo.grid_x) as u64 * m_reread;
        let x_rows_visits = (stats.k_pad * gtiles_y * geo.grid_x) as u64;
        let x_bytes = x_rows_dram * row_sectors * 32;
        c.dram_read_bytes += x_bytes;
        c.useful_read_bytes += x_rows_dram * (geo.tile_n as u64) * 2;
        c.ldgsts_insts += x_rows_visits.div_ceil(4);
        c.smem_store_transactions += x_rows_visits * (geo.tile_n as u64 * 2).div_ceil(128).max(1);

        // --- Decode ---
        let nbt_visits = (ngt * cfg.bts_per_gt() * geo.grid_x) as u64;
        let full = bt_decode_cost(true);
        let empty = bt_decode_cost(false);
        let p = stats.nonempty_bt_fraction;
        c.cuda_int_insts += (nbt_visits as f64
            * (p * full.int_insts as f64 + (1.0 - p) * empty.int_insts as f64))
            as u64;
        c.smem_load_transactions += (nbt_visits as f64
            * (p * full.smem_transactions as f64 + (1.0 - p) * empty.smem_transactions as f64))
            as u64;
        c.insts_issued += c.cuda_int_insts + c.smem_load_transactions;
        if !self.config.ablation.smbd {
            // Register decode (see `run_block`): extra arithmetic and
            // shuffles per BitmapTile.
            c.cuda_int_insts += nbt_visits * REG_DECODE_EXTRA_INT;
            c.shfl_insts += nbt_visits * REG_DECODE_SHFL;
            c.insts_issued += nbt_visits * (REG_DECODE_EXTRA_INT + REG_DECODE_SHFL);
        }

        // --- X fragment loads + mma ---
        let tctile_visits = nbt_visits / 4;
        let ldsm_b = tctile_visits * (n8.div_ceil(2) as u64);
        c.ldsm_insts += ldsm_b;
        c.smem_load_transactions += ldsm_b * 4;
        c.mma_insts += tctile_visits * n8 as u64;
        c.insts_issued += ldsm_b + tctile_visits * n8 as u64;

        // --- Epilogue stores ---
        let frag_stores = (gtiles_y * cfg.tt_rows() * geo.grid_x * geo.split_k * n8) as u64 * 2;
        c.dram_write_bytes += frag_stores * 8 * 32; // 8 sectors × 32 B each.
        c.useful_write_bytes += frag_stores * 256;
        c.insts_issued += frag_stores;
        c.barriers += gt_visits;

        let l2 = [L2Reuse {
            buffer_bytes: (2 * stats.k_pad * geo.n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        let mut chain = LaunchChain::new();
        chain.push(LaunchResult::from_execution(
            kernel_name(self.config.ablation),
            spec,
            self.launch_shape(&geo),
            c,
            &l2,
        ));
        if geo.split_k > 1 {
            chain.push(crate::reduction::estimate_reduction(
                spec,
                stats.m_pad * geo.n_pad,
                geo.split_k,
            ));
        }
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl TcaBme {
    /// Random access to a single logical cell (slow; used by the -SMBD
    /// functional fallback only).
    pub fn decode_cell(&self, r: usize, c: usize) -> Half {
        let cfg = self.config;
        let gty = r / cfg.gt_rows;
        let gtx = c / cfg.gt_cols;
        let gt = self.gt_index(gty, gtx);
        let lr = r % cfg.gt_rows;
        let lc = c % cfg.gt_cols;
        let tty = lr / TT_DIM;
        let ttx = lc / TT_DIM;
        let tc_idx = ttx * cfg.tt_rows() + tty;
        let qr = lr % TT_DIM;
        let qc = lc % TT_DIM;
        let quad = match (qr >= 8, qc >= 8) {
            (false, false) => 0,
            (true, false) => 1,
            (false, true) => 2,
            (true, true) => 3,
        };
        let bit = (qr % 8) * 8 + (qc % 8);
        let bms = self.gtile_bitmaps(gt);
        let bi = tc_idx * 4 + quad;
        if (bms[bi] >> bit) & 1 == 0 {
            return Half::ZERO;
        }
        let base: usize = bms[..bi].iter().map(|&b| popc64(b) as usize).sum();
        let within = popc64(bms[bi] & ((1u64 << bit) - 1)) as usize;
        self.gtile_values(gt)[base + within]
    }
}

/// Split-K selection: split until the grid comfortably fills the device
/// (two blocks per SM), bounded by the number of K-dimension GroupTiles.
fn auto_split_k(spec: &GpuSpec, base_blocks: usize, gtiles_x: usize) -> usize {
    let target = 2 * spec.sm_count as usize;
    if base_blocks == 0 {
        return 1;
    }
    let want = target.div_ceil(base_blocks);
    want.clamp(1, gtiles_x.max(1))
}

/// Sectors per contiguous row segment of `bytes` (32 B granularity,
/// assuming aligned starts).
fn sector_span(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(32).max(1)
}

/// Streams `bytes` from `base` as LDGSTS.128 warp instructions, recording
/// coalesced traffic.
fn record_ldgsts_stream(counters: &mut Counters, base: VAddr, bytes: u64) {
    record_ldgsts_stream_f(counters, base, bytes, None, &mut |_, _| {});
}

/// [`record_ldgsts_stream`] with a fault hook: when the injector strikes
/// a warp access, `on_flip(stream_byte, bit_in_byte)` reports which byte
/// of the streamed payload took the hit. With `fault` absent the counter
/// stream is bit-identical to the golden recorder.
fn record_ldgsts_stream_f(
    counters: &mut Counters,
    base: VAddr,
    bytes: u64,
    fault: Option<&FaultInjector>,
    on_flip: &mut dyn FnMut(u64, u32),
) {
    let mut off = 0u64;
    while off < bytes {
        let mut addrs = [None; 32];
        for (i, slot) in addrs.iter_mut().enumerate() {
            let a = off + i as u64 * 16;
            if a < bytes {
                *slot = Some(base + a);
            }
        }
        if let Some(hit) = warp_ldgsts_f(counters, &addrs, 16, fault) {
            // Active lanes are contiguous from lane 0, 16 B apart.
            on_flip(
                off + hit.lane_sel as u64 * 16 + u64::from(hit.bit / 8),
                hit.bit % 8,
            );
        }
        // LDGSTS writes shared memory directly (conflict-free stream).
        counters.smem_store_transactions += (bytes - off).min(512).div_ceil(128);
        off += 512;
    }
}

/// Loads one GroupTile's bitmaps and values as LDGSTS streams into the
/// caller's shared-memory image, applying any injected load bit flips.
/// With `inject` absent no image is materialised (the buffers are
/// cleared) and only the golden counter stream is recorded.
#[allow(clippy::too_many_arguments)]
fn load_gtile_image(
    counters: &mut Counters,
    inject: Option<&FaultInjector>,
    pristine_bms: &[u64],
    pristine_vals: &[Half],
    bm_addr: VAddr,
    val_addr: VAddr,
    bms_img: &mut Vec<u64>,
    vals_img: &mut Vec<Half>,
) {
    let bm_bytes = (pristine_bms.len() * 8) as u64;
    let val_bytes = (pristine_vals.len() * 2) as u64;
    bms_img.clear();
    vals_img.clear();
    if inject.is_none() {
        record_ldgsts_stream(counters, bm_addr, bm_bytes);
        record_ldgsts_stream(counters, val_addr, val_bytes);
        return;
    }
    bms_img.extend_from_slice(pristine_bms);
    vals_img.extend_from_slice(pristine_vals);
    record_ldgsts_stream_f(counters, bm_addr, bm_bytes, inject, &mut |byte, bit| {
        // A flip can land in the tail padding of the last 16 B lane;
        // only bytes inside the payload reach the image.
        let b = byte as usize;
        if b < bms_img.len() * 8 {
            let word = b / 8;
            bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
        }
    });
    record_ldgsts_stream_f(counters, val_addr, val_bytes, inject, &mut |byte, bit| {
        let b = byte as usize;
        if b < vals_img.len() * 2 {
            let i = b / 2;
            let flipped = flip_bit_u16(vals_img[i].to_bits(), ((b % 2) as u32) * 8 + bit);
            vals_img[i] = Half::from_bits(flipped);
        }
    });
}

/// Applies a `cp.async` commit outcome to the GroupTile image. A
/// corrupt commit flips one byte of the landed payload; a dropped
/// commit leaves the (zero-initialised) destination stale.
fn apply_commit_fault(
    outcome: CommitFault,
    bms_img: &mut [u64],
    vals_img: &mut [Half],
    armed: bool,
) {
    if !armed {
        return;
    }
    let bm_bytes = bms_img.len() * 8;
    let total = bm_bytes + vals_img.len() * 2;
    match outcome {
        CommitFault::None => {}
        CommitFault::Corrupt { byte_sel, bit } => {
            if total > 0 {
                let b = (byte_sel % total as u64) as usize;
                if b < bm_bytes {
                    let word = b / 8;
                    bms_img[word] = flip_bit_u64(bms_img[word], ((b % 8) as u32) * 8 + bit);
                } else {
                    let i = (b - bm_bytes) / 2;
                    let within = (((b - bm_bytes) % 2) as u32) * 8 + bit;
                    vals_img[i] = Half::from_bits(flip_bit_u16(vals_img[i].to_bits(), within));
                }
            }
        }
        CommitFault::Dropped => {
            bms_img.iter_mut().for_each(|w| *w = 0);
            vals_img.iter_mut().for_each(|v| *v = Half::ZERO);
        }
    }
}

/// Reference scalar product of one GroupTile from its pristine
/// encoding, accumulated into the block's `FragC` accumulators — the
/// guaranteed-correct slow path taken when the retry budget is
/// exhausted. Walks the bitmaps in packed-value order, so it touches
/// exactly the encoded non-zeros.
fn fallback_gtile_product(
    cfg: crate::tca_bme::TcaBmeConfig,
    bms: &[u64],
    vals: &[Half],
    xf: &[f32],
    geo: &Geometry,
    accs: &mut [Vec<FragC>],
) {
    let tile_n = geo.tile_n;
    let mut contrib = vec![0.0f32; cfg.gt_rows * tile_n];
    let mut vi = 0usize;
    for (bi, &bm) in bms.iter().enumerate() {
        let tc_idx = bi / 4;
        // Quadrant order within a TCTile: TL, BL, TR, BR (column-major
        // 8×8 blocks), matching `TcaBme::decode_cell`.
        let (qr, qc) = [(0, 0), (8, 0), (0, 8), (8, 8)][bi % 4];
        let ttx = tc_idx / cfg.tt_rows();
        let tty = tc_idx % cfg.tt_rows();
        for bit in 0..64 {
            if (bm >> bit) & 1 == 1 {
                let v = vals[vi].to_f32();
                vi += 1;
                let lr = tty * TT_DIM + qr + bit / 8;
                let lc = ttx * TT_DIM + qc + bit % 8;
                let xrow = &xf[lc * tile_n..(lc + 1) * tile_n];
                let dst = &mut contrib[lr * tile_n..(lr + 1) * tile_n];
                for (d, xv) in dst.iter_mut().zip(xrow) {
                    *d += v * xv;
                }
            }
        }
    }
    for (warp, acc_row) in accs.iter_mut().enumerate() {
        let tty = warp % cfg.tt_rows();
        for (j, frag) in acc_row.iter_mut().enumerate() {
            let mut tile = frag.to_tile();
            for (r, row) in tile.iter_mut().enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot += contrib[(tty * TT_DIM + r) * tile_n + j * 8 + c];
                }
            }
            *frag = FragC::from_tile(|r, c| tile[r][c]);
        }
    }
}

/// Kernel display name for a configuration.
fn kernel_name(ablation: Ablation) -> &'static str {
    match (ablation.smbd, ablation.async_pipe) {
        (true, true) => "spinfer_spmm",
        (false, true) => "spinfer_spmm_no_smbd",
        (true, false) => "spinfer_spmm_no_asyncpipe",
        (false, false) => "spinfer_spmm_no_smbd_no_asyncpipe",
    }
}

/// Converts per-task phase weights into sim-time trace events.
///
/// Weights scale uniformly by `launch time / total weight`, so the
/// `cat:"phase"` spans of the main launch sum *exactly* to its estimated
/// time; each block row gets a compute track (phases laid end to end)
/// and a cp.async track whose in-flight windows span commit→wait, with
/// flow arrows into the consuming phase. Everything here is a pure
/// function of the deterministic weight records, so the emitted trace is
/// byte-identical at any host job count.
fn emit_kernel_trace(
    sink: &TraceSink,
    ablation: Ablation,
    chain: &LaunchChain,
    task_spans: &[Vec<(TracePhase, u64)>],
) {
    let kname = kernel_name(ablation);
    let t_main_us = chain.launches[0].time_us();
    let total_w: u64 = task_spans
        .iter()
        .flat_map(|s| s.iter().map(|&(_, wgt)| wgt))
        .sum();
    let scale = if total_w == 0 {
        0.0
    } else {
        t_main_us / total_w as f64
    };
    let mut evs = Vec::new();
    for (gty, spans) in task_spans.iter().enumerate() {
        let compute = (pids::KERNEL, (gty as u32) * 2);
        let copy = (pids::KERNEL, (gty as u32) * 2 + 1);
        sink.name_track(compute, kname, &format!("block-row {gty} compute"));
        sink.name_track(copy, kname, &format!("block-row {gty} cp.async"));
        let mut cursor = 0u64;
        let mut iter_idx = 0u64;
        // Boundaries of the current GroupTile iteration (sim-time µs).
        let mut w_end = 0.0f64;
        let mut x_end = 0.0f64;
        let mut decode_ts = 0.0f64;
        for &(phase, wgt) in spans {
            let ts = cursor as f64 * scale;
            cursor += wgt;
            let end = cursor as f64 * scale;
            let mut ev = TraceEvent::span(compute, phase.name(), "phase", ts, end - ts);
            ev.arg = Some(("weight", wgt as f64));
            evs.push(ev);
            match phase {
                TracePhase::StreamW => w_end = end,
                TracePhase::StreamX => x_end = end,
                TracePhase::Decode => decode_ts = ts,
                TracePhase::Mma => {
                    // cp.async windows: the sparse group commits at the
                    // end of stream_w and retires at the wait before
                    // decode; the dense group commits at the end of
                    // stream_x and retires at the iteration-end
                    // wait_group(0). Flow arrows land on the phase that
                    // consumed the copied bytes.
                    let id = ((gty as u64) << 32) | (iter_idx << 1);
                    evs.push(TraceEvent::span(
                        copy,
                        "cp.async sparse",
                        "cp.async",
                        w_end,
                        decode_ts - w_end,
                    ));
                    evs.push(TraceEvent::flow(
                        copy,
                        "cp.async sparse",
                        "cp.async",
                        w_end,
                        true,
                        id,
                    ));
                    evs.push(TraceEvent::flow(
                        compute,
                        "cp.async sparse",
                        "cp.async",
                        decode_ts,
                        false,
                        id,
                    ));
                    evs.push(TraceEvent::span(
                        copy,
                        "cp.async dense",
                        "cp.async",
                        x_end,
                        end - x_end,
                    ));
                    evs.push(TraceEvent::flow(
                        copy,
                        "cp.async dense",
                        "cp.async",
                        x_end,
                        true,
                        id | 1,
                    ));
                    evs.push(TraceEvent::flow(
                        compute,
                        "cp.async dense",
                        "cp.async",
                        ts,
                        false,
                        id | 1,
                    ));
                    iter_idx += 1;
                }
                TracePhase::Epilogue => {}
            }
        }
    }
    if let Some(reduction) = chain.launches.get(1) {
        let track = (pids::KERNEL, u32::MAX);
        sink.name_track(track, kname, "split-K reduction");
        evs.push(TraceEvent::span(
            track,
            "reduction",
            "phase",
            t_main_us,
            reduction.time_us(),
        ));
    }
    sink.extend(evs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::fault::FaultPlan;
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};

    fn check_correct(m: usize, k: usize, n: usize, sparsity: f64, config: SpmmConfig) {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(m, k, sparsity, ValueDist::Uniform, 100);
        let x = random_dense(k, n, ValueDist::Uniform, 101);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm { config };
        let run = kernel.run(&spec, &enc, &x);
        let out = run.output.as_ref().expect("functional path returns output");
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "max err {err} for {m}x{k}x{n} s={sparsity}");
        assert!(run.time_us() > 0.0);
    }

    #[test]
    fn correct_at_various_sparsities() {
        for &s in &[0.0, 0.3, 0.5, 0.7, 0.9] {
            check_correct(128, 128, 16, s, SpmmConfig::default());
        }
    }

    #[test]
    fn correct_small_n() {
        check_correct(64, 128, 8, 0.5, SpmmConfig::default());
    }

    #[test]
    fn correct_wide_n_multiple_tiles() {
        check_correct(64, 64, 64, 0.5, SpmmConfig::default());
    }

    #[test]
    fn correct_unaligned_dims() {
        check_correct(100, 72, 12, 0.5, SpmmConfig::default());
    }

    #[test]
    fn traced_run_is_bit_identical_and_phases_sum_to_launch_time() {
        use gpu_sim::trace::EventKind;
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 256, 0.6, ValueDist::Uniform, 42);
        let x = random_dense(256, 16, ValueDist::Uniform, 43);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm {
            config: SpmmConfig {
                split_k: 2, // exercise the reduction span
                ..SpmmConfig::default()
            },
        };
        let plain = kernel.run(&spec, &enc, &x);
        let sink = TraceSink::new();
        let traced = kernel.run_traced(&spec, &enc, &x, &sink);

        // Attaching a sink must not perturb output, counters, or time.
        assert_eq!(plain.output, traced.output);
        assert_eq!(
            plain.chain.merged_counters(),
            traced.chain.merged_counters()
        );
        assert_eq!(plain.time_us().to_bits(), traced.time_us().to_bits());

        let t = sink.finish();
        assert!(!t.events.is_empty());
        // All spans have non-negative durations; cat:"phase" spans sum to
        // the chain's simulated time (main launch + reduction).
        let phase_sum: f64 = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.cat == "phase")
            .map(|e| {
                assert!(e.dur_us >= 0.0);
                e.dur_us
            })
            .sum();
        let total = traced.time_us();
        assert!(
            (phase_sum - total).abs() <= 0.01 * total,
            "phase sum {phase_sum} vs simulated {total}"
        );
        // Every kernel phase shows up, plus the reduction span.
        for name in [
            "stream_w",
            "stream_x",
            "smbd_decode",
            "mma",
            "epilogue",
            "reduction",
        ] {
            assert!(t.phase_total_us(name) > 0.0, "missing phase {name}");
        }
        // Flow events pair up (one start, one end per id).
        let mut starts = std::collections::BTreeMap::new();
        let mut ends = std::collections::BTreeMap::new();
        for e in &t.events {
            match e.kind {
                EventKind::FlowStart => *starts.entry(e.flow_id).or_insert(0u32) += 1,
                EventKind::FlowEnd => *ends.entry(e.flow_id).or_insert(0u32) += 1,
                _ => {}
            }
        }
        assert!(!starts.is_empty());
        assert_eq!(starts, ends);
        assert!(starts.values().all(|&n| n == 1));
    }

    #[test]
    fn correct_with_explicit_split_k() {
        let cfg = SpmmConfig {
            split_k: 2,
            ..SpmmConfig::default()
        };
        check_correct(64, 256, 16, 0.5, cfg);
    }

    #[test]
    fn correct_without_smbd() {
        let cfg = SpmmConfig {
            ablation: Ablation {
                smbd: false,
                async_pipe: true,
            },
            ..SpmmConfig::default()
        };
        check_correct(128, 128, 16, 0.5, cfg);
    }

    #[test]
    fn correct_without_async_pipe() {
        let cfg = SpmmConfig {
            ablation: Ablation {
                smbd: true,
                async_pipe: false,
            },
            ..SpmmConfig::default()
        };
        check_correct(128, 128, 16, 0.5, cfg);
    }

    #[test]
    fn checked_run_with_no_faults_is_bit_identical_to_golden() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 110);
        let x = random_dense(128, 16, ValueDist::Uniform, 111);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let golden = kernel.run(&spec, &enc, &x);
        let unarmed = FaultInjector::new(FaultPlan::default());
        for fault in [None, Some(&unarmed)] {
            let checked = kernel
                .run_checked(&spec, &enc, &x, fault)
                .expect("clean container, clean run");
            assert_eq!(checked.output, golden.output, "bit-identical output");
            assert_eq!(
                checked.chain.launches[0].counters, golden.chain.launches[0].counters,
                "bit-identical counters"
            );
        }
    }

    #[test]
    fn checked_run_detects_recovers_and_stays_correct_under_injection() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 112);
        let x = random_dense(128, 16, ValueDist::Uniform, 113);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let inj = FaultInjector::new(FaultPlan::uniform(77, 0.02));
        let run = kernel
            .run_checked(&spec, &enc, &x, Some(&inj))
            .expect("default policy always recovers or falls back");
        let out = run.output.as_ref().expect("functional output");
        assert!(
            out.iter().all(|v| v.is_finite()),
            "detected corruption must never escape as NaN/Inf"
        );
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_injected > 0, "2% over many sites must fire");
        assert!(c.faults_detected > 0, "injected faults must be detected");
        assert!(
            c.faults_recovered + c.fault_fallbacks > 0,
            "every detection resolves by retry or fallback"
        );
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "recovered product must be correct, err {err}");
    }

    #[test]
    fn checked_run_seeded_injection_is_deterministic() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 114);
        let x = random_dense(128, 16, ValueDist::Uniform, 115);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let inj = FaultInjector::new(FaultPlan::uniform(31, 0.03));
        let a = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        let b = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        assert_eq!(a.output, b.output, "same seed, same output");
        assert_eq!(
            a.chain.launches[0].counters, b.chain.launches[0].counters,
            "same seed, same fault sites and counters"
        );
        assert!(a.chain.launches[0].counters.faults_injected > 0);
    }

    #[test]
    fn checked_run_exhausted_budget_without_fallback_is_a_typed_error() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 116);
        let x = random_dense(128, 16, ValueDist::Uniform, 117);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        // Rate 1.0 on one GroupTile: every reload re-corrupts.
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: false,
        };
        let err = kernel
            .run_checked_with(&spec, &enc, &x, Some(&inj), policy)
            .expect_err("unrecoverable corruption must surface");
        assert!(
            matches!(err, SpinferError::Kernel(_)),
            "typed kernel error, got {err:?}"
        );
    }

    #[test]
    fn checked_run_falls_back_to_reference_product_when_retries_exhaust() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 118);
        let x = random_dense(128, 16, ValueDist::Uniform, 119);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let plan = FaultPlan {
            only_gtile: Some(0),
            ..FaultPlan::uniform(5, 1.0)
        };
        let inj = FaultInjector::new(plan);
        let policy = FaultPolicy {
            max_attempts: 2,
            fallback: true,
        };
        let run = kernel
            .run_checked_with(&spec, &enc, &x, Some(&inj), policy)
            .expect("fallback path completes the run");
        let c = &run.chain.launches[0].counters;
        assert!(c.fault_fallbacks > 0, "budget exhaustion must fall back");
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
        let reference = w.matmul_ref(&x);
        let err = max_abs_diff(out, &reference);
        assert!(err < 0.5, "fallback product must be correct, err {err}");
    }

    #[test]
    fn checked_run_poison_only_recovers_through_decode_retry() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 120);
        let x = random_dense(128, 16, ValueDist::Uniform, 121);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let plan = FaultPlan {
            fp16_poison_rate: 0.10,
            seed: 21,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan);
        let run = kernel.run_checked(&spec, &enc, &x, Some(&inj)).unwrap();
        let c = &run.chain.launches[0].counters;
        assert!(c.faults_detected > 0, "poison must be caught by D3");
        assert!(c.faults_recovered + c.fault_fallbacks > 0);
        let out = run.output.as_ref().unwrap();
        assert!(out.iter().all(|v| v.is_finite()), "no poison escapes");
        let reference = w.matmul_ref(&x);
        assert!(max_abs_diff(out, &reference) < 0.5);
    }

    #[test]
    fn checked_run_rejects_dimension_mismatch_and_corrupt_container() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 64, 0.5, ValueDist::Uniform, 122);
        let x = random_dense(64, 8, ValueDist::Uniform, 123);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let bad_x = random_dense(32, 8, ValueDist::Uniform, 124);
        assert!(matches!(
            kernel.run_checked(&spec, &enc, &bad_x, None),
            Err(SpinferError::DimensionMismatch { .. })
        ));
        let mut corrupt = enc.clone();
        corrupt.nnz += 1;
        assert!(matches!(
            kernel.run_checked(&spec, &corrupt, &x, None),
            Err(SpinferError::Integrity(_))
        ));
    }

    #[test]
    fn decode_cell_matches_decode() {
        let w = random_sparse(128, 192, 0.6, ValueDist::Uniform, 102);
        let enc = TcaBme::encode(&w);
        for r in (0..128).step_by(7) {
            for c in (0..192).step_by(11) {
                assert_eq!(enc.decode_cell(r, c), w.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn estimate_matches_functional_counters() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(512, 512, 0.5, ValueDist::Uniform, 103);
        let x = random_dense(512, 16, ValueDist::Uniform, 104);
        let enc = TcaBme::encode(&w);
        let kernel = SpinferSpmm::new();
        let run = kernel.run(&spec, &enc, &x);
        let est = kernel.estimate(&spec, &FormatStats::from_encoded(&enc), 16);
        let cf = run.chain.launches[0].counters.clone();
        let ce = est.chain.launches[0].counters.clone();
        let close = |a: u64, b: u64, tol: f64, what: &str| {
            let rel = (a as f64 - b as f64).abs() / (b as f64).max(1.0);
            assert!(rel < tol, "{what}: functional {a} vs estimate {b}");
        };
        // Compare post-L2 DRAM bytes: the functional path records raw X
        // traffic and discounts at timing; the estimate caps it up front.
        close(
            run.chain.launches[0].timing.dram_bytes,
            est.chain.launches[0].timing.dram_bytes,
            0.05,
            "dram_bytes",
        );
        close(cf.mma_insts, ce.mma_insts, 0.01, "mma");
        close(cf.cuda_int_insts, ce.cuda_int_insts, 0.05, "int");
        close(
            cf.smem_load_transactions,
            ce.smem_load_transactions,
            0.15,
            "smem_loads",
        );
        // Times within 10%.
        let tf = run.time_us();
        let te = est.time_us();
        assert!((tf - te).abs() / tf < 0.10, "time {tf} vs {te}");
    }

    #[test]
    fn synthetic_stats_match_encoded() {
        let w = random_sparse(1024, 1024, 0.6, ValueDist::Uniform, 105);
        let enc = TcaBme::encode(&w);
        let real = FormatStats::from_encoded(&enc);
        let synth = FormatStats::synthetic(1024, 1024, 0.6);
        let rel = |a: usize, b: usize| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(synth.nnz, real.nnz) < 0.02);
        assert!(rel(synth.values_len, real.values_len) < 0.02);
        assert!((synth.nonempty_bt_fraction - real.nonempty_bt_fraction).abs() < 0.01);
    }

    #[test]
    fn ablation_slows_the_kernel() {
        let spec = GpuSpec::rtx4090();
        let stats = FormatStats::synthetic(4096, 4096, 0.5);
        let full = SpinferSpmm::new().estimate(&spec, &stats, 16);
        let no_smbd = SpinferSpmm::with_ablation(Ablation {
            smbd: false,
            async_pipe: true,
        })
        .estimate(&spec, &stats, 16);
        let no_async = SpinferSpmm::with_ablation(Ablation {
            smbd: true,
            async_pipe: false,
        })
        .estimate(&spec, &stats, 16);
        assert!(
            no_smbd.time_us() > full.time_us(),
            "-SMBD {} vs full {}",
            no_smbd.time_us(),
            full.time_us()
        );
        assert!(
            no_async.time_us() > full.time_us(),
            "-AsyncPipe {} vs full {}",
            no_async.time_us(),
            full.time_us()
        );
        // SMBD matters more than the pipeline (Table 1's ordering).
        assert!(no_smbd.time_us() > no_async.time_us());
    }

    #[test]
    fn split_k_auto_fills_device() {
        let spec = GpuSpec::rtx4090();
        // M=1024 -> 16 block rows only; split-K must kick in.
        let stats = FormatStats::synthetic(1024, 8192, 0.5);
        let kernel = SpinferSpmm::new();
        let geo = kernel.geometry(&spec, &stats, 16);
        assert!(geo.split_k > 1, "split_k {}", geo.split_k);
        assert!(geo.grid_blocks >= u64::from(spec.sm_count));
    }

    #[test]
    fn memory_bound_speedup_tracks_compression_ratio() {
        // In the decode regime, time should scale ~ with stored bytes.
        let spec = GpuSpec::rtx4090();
        let t50 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.5), 16)
            .time_us();
        let t70 = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.7), 16)
            .time_us();
        assert!(t70 < t50);
        let ratio = t50 / t70;
        assert!(ratio > 1.2 && ratio < 1.8, "ratio {ratio}");
    }
}
