//! Tensor-Core-Aware Bitmap Encoding (TCA-BME), paper §4.2.
//!
//! The format partitions the weight matrix into three tile levels aligned
//! with GPU hardware:
//!
//! * **BitmapTile (BT)** — 8×8, the Tensor Core's minimum matrix unit. A
//!   `u64` bitmap marks non-zero positions; bit `i` corresponds to the
//!   row-major element `i` of the tile, so lane `l` of a warp owns bits
//!   `2l` and `2l + 1` (matching the `mma` fragment layout).
//! * **TCTile (TT)** — 16×16 = 2×2 BitmapTiles stored *column-major*
//!   (top-left, bottom-left, top-right, bottom-right), matching the
//!   `Ra0..Ra3` registers of `mma.m16n8k16`.
//! * **GroupTile (GT)** — `GT_H × GT_W` elements, the thread-block work
//!   unit. TCTiles within a GroupTile are column-major; GroupTiles
//!   themselves are row-major over the matrix.
//!
//! Storage uses three arrays (paper Eq. 9):
//! `GTileOffset` (`u32`, `NGT + 1` entries), `Values` (non-zeros in
//! nested tile order, padded per GroupTile to an 8-byte boundary for
//! `LDGSTS.128`), and `Bitmap` (`u64` per BitmapTile).
//!
//! The container is generic over the value precision
//! ([`crate::payload::Payload`]): [`TcaBme`] is the FP16 instantiation
//! the paper describes, and [`TcaBmeInt8`] pairs an `i8` instantiation
//! with per-GroupTile `f32` scales for the quantized deployment path.
//! All offset/bitmap/geometry machinery — validation, checksums,
//! storage accounting, tile accessors — is shared, not cloned.

use crate::error::IntegrityError;
use crate::payload::Payload;
use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// FNV-1a (32-bit) over one GroupTile's image: bitmaps (LE bytes) then
/// values (LE payload bytes, *including* alignment padding — padding is
/// part of the bytes `LDGSTS.128` moves, so a flip there must still be
/// detected). Free function so the checked kernel can checksum its
/// shared-memory copy without owning a [`TcaBmeOf`]. For FP16 values
/// the byte stream — and therefore every stored v2 checksum — is
/// exactly the pre-generic implementation's.
pub fn checksum_gtile<P: Payload>(bitmaps: &[u64], values: &[P]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    let mut eat = |b: u8| h = (h ^ u32::from(b)).wrapping_mul(0x0100_0193);
    for bm in bitmaps {
        for b in bm.to_le_bytes() {
            eat(b);
        }
    }
    for v in values {
        v.feed_checksum(&mut eat);
    }
    h
}

/// Height and width of a BitmapTile in elements.
pub const BT_DIM: usize = 8;
/// Height and width of a TCTile in elements.
pub const TT_DIM: usize = 16;
/// BitmapTiles per TCTile.
pub const BTS_PER_TT: usize = 4;
/// Value-array padding granularity in elements, ensuring every
/// GroupTile's FP16 values start 8-byte aligned (8 bytes / 2 bytes
/// each). The INT8 container keeps the same 4-element granularity: its
/// GroupTile spans start 4-byte aligned, still a legal `LDGSTS` word,
/// and quantization preserves the FP16 span layout element-for-element.
pub const VALUE_PAD: usize = 4;

/// Tiling configuration for the GroupTile level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcaBmeConfig {
    /// GroupTile height in elements (multiple of 16).
    pub gt_rows: usize,
    /// GroupTile width in elements (multiple of 16).
    pub gt_cols: usize,
}

impl Default for TcaBmeConfig {
    fn default() -> Self {
        // 64×64 GroupTiles: 16 TCTiles, 4 KiB of values when dense —
        // a good fit for 4-warp thread blocks.
        TcaBmeConfig {
            gt_rows: 64,
            gt_cols: 64,
        }
    }
}

impl TcaBmeConfig {
    /// TCTile rows per GroupTile.
    pub fn tt_rows(&self) -> usize {
        self.gt_rows / TT_DIM
    }

    /// TCTile columns per GroupTile.
    pub fn tt_cols(&self) -> usize {
        self.gt_cols / TT_DIM
    }

    /// BitmapTiles per GroupTile.
    pub fn bts_per_gt(&self) -> usize {
        self.tt_rows() * self.tt_cols() * BTS_PER_TT
    }

    fn validate(&self) {
        assert!(
            self.gt_rows.is_multiple_of(TT_DIM) && self.gt_rows > 0,
            "gt_rows must be a positive multiple of {TT_DIM}"
        );
        assert!(
            self.gt_cols.is_multiple_of(TT_DIM) && self.gt_cols > 0,
            "gt_cols must be a positive multiple of {TT_DIM}"
        );
    }
}

/// A sparse matrix in TCA-BME format, generic over the value payload.
///
/// [`TcaBme`] (= `TcaBmeOf<Half>`) is the FP16 format the paper
/// describes; `TcaBmeOf<i8>` carries quantized codes and is always
/// wrapped in [`TcaBmeInt8`] alongside its per-GroupTile scales.
#[derive(Clone, Debug, PartialEq)]
pub struct TcaBmeOf<P: Payload> {
    /// Logical (unpadded) rows.
    pub m: usize,
    /// Logical (unpadded) columns.
    pub k: usize,
    /// Rows padded to a GroupTile multiple.
    pub m_pad: usize,
    /// Columns padded to a GroupTile multiple.
    pub k_pad: usize,
    /// Tiling configuration.
    pub config: TcaBmeConfig,
    /// Start offset of each GroupTile in `values` (element units),
    /// plus one trailing end offset. Every entry is 4-element aligned.
    pub gtile_offsets: Vec<u32>,
    /// Non-zero values in nested GT → TT → BT → bit order, padded per
    /// GroupTile to [`VALUE_PAD`].
    pub values: Vec<P>,
    /// One 64-bit bitmap per BitmapTile, same nesting order.
    pub bitmaps: Vec<u64>,
    /// True non-zero count (excludes padding).
    pub nnz: usize,
}

/// The FP16 instantiation of [`TcaBmeOf`] — the paper's format.
pub type TcaBme = TcaBmeOf<Half>;

impl<P: Payload> TcaBmeOf<P> {
    /// Number of GroupTiles.
    pub fn num_gtiles(&self) -> usize {
        self.gtile_offsets.len() - 1
    }

    /// GroupTile columns (along K).
    pub fn gtiles_x(&self) -> usize {
        self.k_pad / self.config.gt_cols
    }

    /// GroupTile rows (along M).
    pub fn gtiles_y(&self) -> usize {
        self.m_pad / self.config.gt_rows
    }

    /// Number of BitmapTiles.
    pub fn num_btiles(&self) -> usize {
        self.bitmaps.len()
    }

    /// GroupTile index for GroupTile coordinates (row-major).
    pub fn gt_index(&self, gty: usize, gtx: usize) -> usize {
        gty * self.gtiles_x() + gtx
    }

    /// Slice of `values` belonging to a GroupTile (including padding).
    pub fn gtile_values(&self, gt: usize) -> &[P] {
        let s = self.gtile_offsets[gt] as usize;
        let e = self.gtile_offsets[gt + 1] as usize;
        &self.values[s..e]
    }

    /// Slice of `bitmaps` belonging to a GroupTile, in TCTile-column-major
    /// then BT order.
    pub fn gtile_bitmaps(&self, gt: usize) -> &[u64] {
        let per = self.config.bts_per_gt();
        &self.bitmaps[gt * per..(gt + 1) * per]
    }

    /// Actual storage footprint in bytes, including value padding. The
    /// value term scales with the payload width ([`Payload::BYTES`]).
    pub fn storage_bytes(&self) -> usize {
        4 * self.gtile_offsets.len() + 8 * self.bitmaps.len() + P::BYTES * self.values.len()
    }

    /// Compression ratio (paper Eq. 1): dense *FP16* bytes over format
    /// bytes. The dense reference stays FP16 for every payload so
    /// precision×format ratios are comparable (an INT8 container's ratio
    /// folds the 2× payload shrink in).
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Largest per-GroupTile value count (with padding), for shared-memory
    /// buffer sizing in the kernel.
    pub fn max_values_per_gtile(&self) -> usize {
        (0..self.num_gtiles())
            .map(|g| self.gtile_values(g).len())
            .max()
            .unwrap_or(0)
    }

    /// Integrity checksum of one GroupTile (see [`checksum_gtile`]).
    pub fn gtile_checksum(&self, gt: usize) -> u32 {
        checksum_gtile(self.gtile_bitmaps(gt), self.gtile_values(gt))
    }

    /// Checksums for every GroupTile, in GroupTile order — the reference
    /// the checked kernel path and the v2/v3 wire formats verify against.
    /// Fanned over GroupTiles via [`gpu_sim::exec`] (untraced — setup
    /// work, not kernel work); per-GroupTile checksums are independent,
    /// so the vector is identical at every job count.
    pub fn gtile_checksums(&self) -> Vec<u32> {
        gpu_sim::exec::par_map_untraced((0..self.num_gtiles()).collect(), |g| {
            self.gtile_checksum(g)
        })
    }

    /// Structural validation of the three-array format: offset count,
    /// monotonicity, [`VALUE_PAD`] alignment, end-of-array agreement,
    /// bitmap count, per-GroupTile `popc64`-vs-value-span consistency,
    /// and the stored `nnz`. A container that passes cannot make SMBD
    /// decode index out of bounds. Payload-independent: the checks never
    /// look inside a value.
    pub fn validate(&self) -> Result<(), IntegrityError> {
        let ngt = self.gtiles_y() * self.gtiles_x();
        if self.gtile_offsets.len() != ngt + 1 {
            return Err(IntegrityError::OffsetCount {
                expected: ngt + 1,
                got: self.gtile_offsets.len(),
            });
        }
        for (i, &off) in self.gtile_offsets.iter().enumerate() {
            if !(off as usize).is_multiple_of(VALUE_PAD) {
                return Err(IntegrityError::OffsetAlignment {
                    index: i,
                    offset: off,
                });
            }
        }
        for gt in 0..ngt {
            let (start, end) = (self.gtile_offsets[gt], self.gtile_offsets[gt + 1]);
            if start > end {
                return Err(IntegrityError::OffsetOrder { gt, start, end });
            }
        }
        let last = self.gtile_offsets[ngt] as usize;
        if last != self.values.len() {
            return Err(IntegrityError::OffsetEnd {
                expected: self.values.len(),
                got: last,
            });
        }
        let expected_bts = ngt * self.config.bts_per_gt();
        if self.bitmaps.len() != expected_bts {
            return Err(IntegrityError::BitmapCount {
                expected: expected_bts,
                got: self.bitmaps.len(),
            });
        }
        let mut total_pop = 0usize;
        for gt in 0..ngt {
            let pop: usize = self
                .gtile_bitmaps(gt)
                .iter()
                .map(|bm| bm.count_ones() as usize)
                .sum();
            let span = self.gtile_offsets[gt + 1] as usize - self.gtile_offsets[gt] as usize;
            // Padding adds at most VALUE_PAD - 1 zero elements per tile.
            if pop > span || span - pop >= VALUE_PAD {
                return Err(IntegrityError::PopulationMismatch {
                    gt,
                    population: pop,
                    span,
                });
            }
            total_pop += pop;
        }
        if total_pop != self.nnz {
            return Err(IntegrityError::NnzMismatch {
                expected: total_pop,
                got: self.nnz,
            });
        }
        Ok(())
    }
}

impl TcaBmeOf<Half> {
    /// # Examples
    ///
    /// ```
    /// use gpu_sim::matrix::{random_sparse, ValueDist};
    /// use spinfer_core::TcaBme;
    ///
    /// let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 0);
    /// let enc = TcaBme::encode(&w);
    /// assert_eq!(enc.decode(), w);                  // Lossless.
    /// assert!(enc.compression_ratio() > 1.0);       // CR > 1 at 60%.
    /// ```
    /// Encodes a dense matrix with the default 64×64 GroupTile.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        Self::encode_with(matrix, TcaBmeConfig::default())
    }

    /// Fallible [`Self::encode_with`]: an invalid tiling configuration —
    /// or an encoding whose padded value array would overflow the `u32`
    /// `GTileOffset` space — becomes a typed error instead of a panic.
    pub fn try_encode_with(
        matrix: &DenseMatrix,
        config: TcaBmeConfig,
    ) -> Result<Self, crate::error::SpinferError> {
        crate::error::validate_config(&config)?;
        Self::encode_impl(matrix, config)
    }

    /// Encodes a dense matrix with an explicit configuration. Dimensions
    /// that are not GroupTile multiples are zero-padded.
    ///
    /// # Panics
    ///
    /// Panics on an invalid tiling configuration, or if the padded value
    /// array would overflow the `u32` `GTileOffset` space (beyond 2³²−1
    /// encoded elements — 8 GiB of values); use
    /// [`Self::try_encode_with`] for a fallible variant.
    pub fn encode_with(matrix: &DenseMatrix, config: TcaBmeConfig) -> Self {
        config.validate();
        let enc = Self::encode_impl(matrix, config)
            .unwrap_or_else(|e| panic!("TcaBme::encode_with: {e}"));
        debug_assert!(enc.values.len() <= u32::MAX as usize);
        enc
    }

    /// The two-pass parallel encode behind [`Self::encode_with`] /
    /// [`Self::try_encode_with`].
    ///
    /// Pass 1 builds every GroupTile's bitmaps into disjoint slices of
    /// the pre-allocated bitmap array (in parallel over GroupTiles) and
    /// returns per-GroupTile non-zero counts as popcounts; a serial
    /// prefix sum over the pad-rounded counts produces `gtile_offsets`
    /// (with an explicit `u32` overflow check — the serial encoder used
    /// to truncate silently). Pass 2 fills each GroupTile's disjoint
    /// pre-zeroed value span by sweeping the set bits of its bitmaps
    /// (ascending `trailing_zeros` order ≡ the serial per-bit loop), so
    /// the output — offsets, values incl. padding, bitmaps, `nnz` — is
    /// byte-identical to [`Self::encode_serial_oracle`] at every job
    /// count (pinned by `tests/encode_parity.rs`).
    fn encode_impl(
        matrix: &DenseMatrix,
        config: TcaBmeConfig,
    ) -> Result<Self, crate::error::SpinferError> {
        let m = matrix.rows();
        let k = matrix.cols();
        let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
        let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
        let gts_y = m_pad / config.gt_rows;
        let gts_x = k_pad / config.gt_cols;
        let ngt = gts_y * gts_x;
        let bts = config.bts_per_gt();
        let data = matrix.as_slice();

        // Pass 1: bitmaps + per-GroupTile counts.
        let mut bitmaps = vec![0u64; ngt * bts];
        let gt_slices: Vec<(usize, &mut [u64])> = bitmaps.chunks_mut(bts).enumerate().collect();
        let counts: Vec<usize> = gpu_sim::exec::par_map_untraced(gt_slices, |(gt, bms)| {
            build_gtile_bitmaps(data, m, k, config, gt / gts_x, gt % gts_x, bms)
        });

        let (gtile_offsets, total) = prefix_offsets(&counts)?;
        let nnz: usize = counts.iter().sum();

        // Pass 2: fill disjoint pre-zeroed value spans (zero-init makes
        // the per-GroupTile alignment padding free).
        let mut values = vec![Half::ZERO; total];
        let mut spans: Vec<(usize, &mut [Half])> = Vec::with_capacity(ngt);
        let mut rest: &mut [Half] = &mut values;
        for gt in 0..ngt {
            let span = (gtile_offsets[gt + 1] - gtile_offsets[gt]) as usize;
            let (head, tail) = rest.split_at_mut(span);
            spans.push((gt, head));
            rest = tail;
        }
        gpu_sim::exec::par_map_untraced(spans, |(gt, vals)| {
            fill_gtile_values(
                data,
                k,
                config,
                gt / gts_x,
                gt % gts_x,
                &bitmaps[gt * bts..(gt + 1) * bts],
                counts[gt],
                vals,
            )
        });

        Ok(TcaBme {
            m,
            k,
            m_pad,
            k_pad,
            config,
            gtile_offsets,
            values,
            bitmaps,
            nnz,
        })
    }

    /// The original element-at-a-time serial encoder, retained as the
    /// reference the two-pass parallel [`Self::encode_with`] is pinned
    /// against (like the `*_scalar` mma oracles). Assumes the encoding
    /// fits the `u32` offset space.
    pub fn encode_serial_oracle(matrix: &DenseMatrix, config: TcaBmeConfig) -> Self {
        config.validate();
        let m = matrix.rows();
        let k = matrix.cols();
        let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
        let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
        let gts_y = m_pad / config.gt_rows;
        let gts_x = k_pad / config.gt_cols;
        let ngt = gts_y * gts_x;

        let mut gtile_offsets = Vec::with_capacity(ngt + 1);
        let mut values: Vec<Half> = Vec::new();
        let mut bitmaps: Vec<u64> = Vec::with_capacity(ngt * config.bts_per_gt());
        let mut nnz = 0usize;

        let at = |r: usize, c: usize| -> Half {
            if r < m && c < k {
                matrix.get(r, c)
            } else {
                Half::ZERO
            }
        };

        for gty in 0..gts_y {
            for gtx in 0..gts_x {
                gtile_offsets.push(values.len() as u32);
                let base_r = gty * config.gt_rows;
                let base_c = gtx * config.gt_cols;
                // TCTiles column-major within the GroupTile.
                for ttx in 0..config.tt_cols() {
                    for tty in 0..config.tt_rows() {
                        let tt_r = base_r + tty * TT_DIM;
                        let tt_c = base_c + ttx * TT_DIM;
                        // BitmapTiles column-major within the TCTile:
                        // TL, BL, TR, BR — matching Ra0..Ra3.
                        for (dr, dc) in [(0, 0), (BT_DIM, 0), (0, BT_DIM), (BT_DIM, BT_DIM)] {
                            let bt_r = tt_r + dr;
                            let bt_c = tt_c + dc;
                            let mut bitmap = 0u64;
                            for bit in 0..64 {
                                let r = bt_r + bit / BT_DIM;
                                let c = bt_c + bit % BT_DIM;
                                let v = at(r, c);
                                if !v.is_zero() {
                                    bitmap |= 1u64 << bit;
                                    values.push(v);
                                    nnz += 1;
                                }
                            }
                            bitmaps.push(bitmap);
                        }
                    }
                }
                // Pad this GroupTile's values to an 8-byte boundary so the
                // next GroupTile starts aligned for LDGSTS.128.
                while !values.len().is_multiple_of(VALUE_PAD) {
                    values.push(Half::ZERO);
                }
            }
        }
        gtile_offsets.push(values.len() as u32);

        TcaBme {
            m,
            k,
            m_pad,
            k_pad,
            config,
            gtile_offsets,
            values,
            bitmaps,
            nnz,
        }
    }

    /// The paper's Eq. 9 (no padding): `4B×(NGT+1) + 8B×NBT + 2B×NNZ`.
    pub fn storage_bytes_formula(m: usize, k: usize, nnz: usize, config: TcaBmeConfig) -> usize {
        config.validate();
        let m_pad = m.div_ceil(config.gt_rows) * config.gt_rows;
        let k_pad = k.div_ceil(config.gt_cols) * config.gt_cols;
        let ngt = (m_pad / config.gt_rows) * (k_pad / config.gt_cols);
        let nbt = (m_pad / BT_DIM) * (k_pad / BT_DIM);
        4 * (ngt + 1) + 8 * nbt + 2 * nnz
    }

    /// Decodes back to a dense matrix (logical dimensions). Used as the
    /// format's correctness oracle.
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        self.for_each_nonzero(|r, c, v| out.set(r, c, v));
        out
    }

    /// Quantizes this FP16 encoding into an INT8 container — see
    /// [`TcaBmeInt8::quantize`].
    pub fn quantize_int8(&self) -> TcaBmeInt8 {
        TcaBmeInt8::quantize(self)
    }
}

impl<P: Payload> TcaBmeOf<P> {
    /// Walks every encoded non-zero in nested GT → TT → BT → bit order,
    /// invoking `visit(row, col, value)` for in-extent cells — the one
    /// shared traversal behind [`TcaBme::decode`] and
    /// [`TcaBmeInt8::dequantize_dense`].
    fn for_each_nonzero(&self, mut visit: impl FnMut(usize, usize, P)) {
        let cfg = self.config;
        for gty in 0..self.gtiles_y() {
            for gtx in 0..self.gtiles_x() {
                let gt = self.gt_index(gty, gtx);
                let vals = self.gtile_values(gt);
                let bms = self.gtile_bitmaps(gt);
                let mut vi = 0usize;
                let mut bi = 0usize;
                for ttx in 0..cfg.tt_cols() {
                    for tty in 0..cfg.tt_rows() {
                        for (dr, dc) in [(0, 0), (BT_DIM, 0), (0, BT_DIM), (BT_DIM, BT_DIM)] {
                            let bm = bms[bi];
                            bi += 1;
                            let bt_r = gty * cfg.gt_rows + tty * TT_DIM + dr;
                            let bt_c = gtx * cfg.gt_cols + ttx * TT_DIM + dc;
                            for bit in 0..64 {
                                if (bm >> bit) & 1 == 1 {
                                    let r = bt_r + bit / BT_DIM;
                                    let c = bt_c + bit % BT_DIM;
                                    let v = vals[vi];
                                    vi += 1;
                                    if r < self.m && c < self.k {
                                        visit(r, c, v);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The quantized TCA-BME container: an `i8` code instantiation of
/// [`TcaBmeOf`] plus one symmetric `f32` scale per GroupTile.
///
/// Quantization is per-GroupTile symmetric (`scale = max|v| / 127`,
/// codes clamped to ±127), matching how the kernel consumes it: each
/// GroupTile's `i32` Tensor Core accumulator is folded into the `f32`
/// output with `scale_w[gt] × scale_x` in the epilogue. Bitmaps,
/// offsets, geometry, padding layout, and `nnz` are *shared structure*
/// — `tiles` carries exactly the FP16 encoding's metadata with codes in
/// place of FP16 payloads, so every generic accessor, the validator,
/// and the SMBD decode work unchanged.
#[derive(Clone, Debug, PartialEq)]
pub struct TcaBmeInt8 {
    /// The `i8` container (geometry + bitmaps + offsets + codes).
    pub tiles: TcaBmeOf<i8>,
    /// One symmetric scale per GroupTile (`value ≈ code × scale`).
    /// Empty GroupTiles carry `1.0`.
    pub scales: Vec<f32>,
}

impl TcaBmeInt8 {
    /// Quantizes an FP16 encoding. The bitmap/offset/geometry arrays are
    /// copied verbatim; each GroupTile's value span (padding included —
    /// zeros map to code 0) is quantized against that tile's own
    /// symmetric scale. Deterministic: scale maxima reduce in encoded
    /// value order and every rounding is order-independent.
    pub fn quantize(w: &TcaBme) -> Self {
        let ngt = w.num_gtiles();
        let mut scales = Vec::with_capacity(ngt);
        let mut codes = vec![0i8; w.values.len()];
        for gt in 0..ngt {
            let s = w.gtile_offsets[gt] as usize;
            let e = w.gtile_offsets[gt + 1] as usize;
            let vals = &w.values[s..e];
            let max_abs = vals.iter().map(|v| v.to_f32().abs()).fold(0.0f32, f32::max);
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            for (dst, v) in codes[s..e].iter_mut().zip(vals) {
                let q = (v.to_f32() / scale).round().clamp(-127.0, 127.0);
                *dst = q as i8;
            }
            scales.push(scale);
        }
        TcaBmeInt8 {
            tiles: TcaBmeOf {
                m: w.m,
                k: w.k,
                m_pad: w.m_pad,
                k_pad: w.k_pad,
                config: w.config,
                gtile_offsets: w.gtile_offsets.clone(),
                values: codes,
                bitmaps: w.bitmaps.clone(),
                nnz: w.nnz,
            },
            scales,
        }
    }

    /// Per-GroupTile scale accessor.
    pub fn scale(&self, gt: usize) -> f32 {
        self.scales[gt]
    }

    /// Storage bytes: the `i8` container plus 4 bytes of scale per
    /// GroupTile.
    pub fn storage_bytes(&self) -> usize {
        self.tiles.storage_bytes() + 4 * self.scales.len()
    }

    /// Compression ratio against the dense *FP16* reference — the
    /// deployment-relevant ratio (sparsity and quantization compound).
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.tiles.m * self.tiles.k) as f64 / self.storage_bytes() as f64
    }

    /// Structural validation: the shared container checks plus the
    /// scale-per-GroupTile pairing and scale finiteness/positivity.
    pub fn validate(&self) -> Result<(), IntegrityError> {
        self.tiles.validate()?;
        if self.scales.len() != self.tiles.num_gtiles() {
            return Err(IntegrityError::ScaleCount {
                expected: self.tiles.num_gtiles(),
                got: self.scales.len(),
            });
        }
        if let Some(gt) = self
            .scales
            .iter()
            .position(|s| !(s.is_finite() && *s > 0.0))
        {
            return Err(IntegrityError::BadScale {
                gt,
                bits: self.scales[gt].to_bits(),
            });
        }
        Ok(())
    }

    /// Dequantizes to a dense row-major `f32` matrix (logical `m × k`)
    /// — the reconstruction the quantization-error metrics compare
    /// against the FP16 original.
    pub fn dequantize_dense(&self) -> Vec<f32> {
        let (m, k) = (self.tiles.m, self.tiles.k);
        let mut out = vec![0.0f32; m * k];
        let gtiles_x = self.tiles.gtiles_x();
        let cfg = self.tiles.config;
        self.tiles.for_each_nonzero(|r, c, code| {
            let gt = (r / cfg.gt_rows) * gtiles_x + c / cfg.gt_cols;
            out[r * k + c] = f32::from(code) * self.scales[gt];
        });
        out
    }

    /// Worst-case absolute reconstruction error bound for one GroupTile:
    /// half a quantization step.
    pub fn error_bound(&self, gt: usize) -> f32 {
        0.5 * self.scales[gt]
    }
}

/// Pass 1 worker: builds one GroupTile's bitmaps (nested TT-column-major
/// → BT-quadrant order) into `bms` and returns the tile's non-zero count
/// as the sum of popcounts. Interior GroupTiles (fully inside the
/// logical `m × k` extent) take a per-row-slice fast path with no
/// per-element bounds logic; edge tiles clamp row/column spans so
/// out-of-extent bits stay zero, exactly like the serial `at(r, c)`
/// closure's zero padding.
fn build_gtile_bitmaps(
    data: &[Half],
    m: usize,
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &mut [u64],
) -> usize {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement was just checked at runtime.
        return unsafe { build_gtile_bitmaps_avx2(data, m, k, config, gty, gtx, bms) };
    }
    build_gtile_bitmaps_generic(data, m, k, config, gty, gtx, bms)
}

/// [`build_gtile_bitmaps_generic`] compiled with AVX2/BMI enabled so the
/// row-slice `!is_zero` reduction vectorizes (the baseline SSE2 build
/// cannot encode the 16-lane compare + movemask pattern). Identical
/// integer arithmetic — invisible to the layout and serialization pins.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,bmi1,popcnt")]
unsafe fn build_gtile_bitmaps_avx2(
    data: &[Half],
    m: usize,
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &mut [u64],
) -> usize {
    build_gtile_bitmaps_generic(data, m, k, config, gty, gtx, bms)
}

#[inline]
fn build_gtile_bitmaps_generic(
    data: &[Half],
    m: usize,
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &mut [u64],
) -> usize {
    let base_r = gty * config.gt_rows;
    let base_c = gtx * config.gt_cols;
    let interior = base_r + config.gt_rows <= m && base_c + config.gt_cols <= k;
    let mut count = 0usize;
    let mut bi = 0usize;
    for ttx in 0..config.tt_cols() {
        for tty in 0..config.tt_rows() {
            let tt_r = base_r + tty * TT_DIM;
            let tt_c = base_c + ttx * TT_DIM;
            for (dr, dc) in [(0, 0), (BT_DIM, 0), (0, BT_DIM), (BT_DIM, BT_DIM)] {
                let bm = if interior {
                    bt_bitmap_interior(data, k, tt_r + dr, tt_c + dc)
                } else {
                    bt_bitmap_edge(data, m, k, tt_r + dr, tt_c + dc)
                };
                count += bm.count_ones() as usize;
                bms[bi] = bm;
                bi += 1;
            }
        }
    }
    count
}

/// Branchless bitmap of one fully-interior 8×8 BitmapTile: each row is
/// an 8-element slice of the row-major backing store, OR-ing
/// `!is_zero` straight into bit `row·8 + col`.
#[inline]
fn bt_bitmap_interior(data: &[Half], k: usize, bt_r: usize, bt_c: usize) -> u64 {
    let mut bm = 0u64;
    for rb in 0..BT_DIM {
        let row = &data[(bt_r + rb) * k + bt_c..][..BT_DIM];
        let mut rowbits = 0u64;
        for (i, v) in row.iter().enumerate() {
            rowbits |= u64::from(!v.is_zero()) << i;
        }
        bm |= rowbits << (rb * BT_DIM);
    }
    bm
}

/// Bitmap of a BitmapTile that may overhang the logical extent: only
/// in-extent row/column spans are scanned, so overhanging bits are zero
/// (the serial encoder's zero padding).
fn bt_bitmap_edge(data: &[Half], m: usize, k: usize, bt_r: usize, bt_c: usize) -> u64 {
    let cols = BT_DIM.min(k.saturating_sub(bt_c));
    let rows = BT_DIM.min(m.saturating_sub(bt_r));
    if cols == 0 {
        // Entirely right of the logical extent: all padding.
        return 0;
    }
    let mut bm = 0u64;
    for rb in 0..rows {
        let row = &data[(bt_r + rb) * k + bt_c..][..cols];
        let mut rowbits = 0u64;
        for (i, v) in row.iter().enumerate() {
            rowbits |= u64::from(!v.is_zero()) << i;
        }
        bm |= rowbits << (rb * BT_DIM);
    }
    bm
}

/// Pass 2 worker: fills one GroupTile's pre-zeroed value span by
/// sweeping the set bits of its pass-1 bitmaps in ascending order —
/// `trailing_zeros` yields bits in exactly the order the serial
/// per-bit loop pushes values, and set bits are in-extent by
/// construction, so each value is a direct row-major load. The span's
/// tail beyond `count` stays zero: that is the GroupTile's
/// [`VALUE_PAD`] alignment padding.
#[allow(clippy::too_many_arguments)]
fn fill_gtile_values(
    data: &[Half],
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &[u64],
    count: usize,
    vals: &mut [Half],
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("bmi1") {
        // SAFETY: the bmi1 requirement was just checked at runtime.
        return unsafe { fill_gtile_values_bmi(data, k, config, gty, gtx, bms, count, vals) };
    }
    fill_gtile_values_generic(data, k, config, gty, gtx, bms, count, vals)
}

/// [`fill_gtile_values_generic`] compiled with BMI1 enabled, turning the
/// per-bit `trailing_zeros` / clear-lowest-set-bit sweep into single
/// `tzcnt` / `blsr` instructions. Identical arithmetic.
///
/// # Safety
///
/// The caller must ensure the CPU supports BMI1.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi1,popcnt")]
#[allow(clippy::too_many_arguments)]
unsafe fn fill_gtile_values_bmi(
    data: &[Half],
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &[u64],
    count: usize,
    vals: &mut [Half],
) {
    fill_gtile_values_generic(data, k, config, gty, gtx, bms, count, vals)
}

#[inline]
#[allow(clippy::too_many_arguments)]
fn fill_gtile_values_generic(
    data: &[Half],
    k: usize,
    config: TcaBmeConfig,
    gty: usize,
    gtx: usize,
    bms: &[u64],
    count: usize,
    vals: &mut [Half],
) {
    let base_r = gty * config.gt_rows;
    let base_c = gtx * config.gt_cols;
    let mut cursor = 0usize;
    let mut bi = 0usize;
    for ttx in 0..config.tt_cols() {
        for tty in 0..config.tt_rows() {
            let tt_r = base_r + tty * TT_DIM;
            let tt_c = base_c + ttx * TT_DIM;
            for (dr, dc) in [(0, 0), (BT_DIM, 0), (0, BT_DIM), (BT_DIM, BT_DIM)] {
                let mut bm = bms[bi];
                bi += 1;
                let row0 = (tt_r + dr) * k + tt_c + dc;
                while bm != 0 {
                    let bit = bm.trailing_zeros() as usize;
                    bm &= bm - 1;
                    vals[cursor] = data[row0 + (bit / BT_DIM) * k + bit % BT_DIM];
                    cursor += 1;
                }
            }
        }
    }
    debug_assert_eq!(cursor, count, "pass-2 fill disagrees with pass-1 count");
}

/// Prefix-sums pad-rounded per-GroupTile counts into the `NGT + 1`
/// `gtile_offsets` array, rejecting totals beyond the `u32` offset
/// space (which the serial push-based encoder silently truncated).
/// Returns the offsets and the total padded value length.
fn prefix_offsets(counts: &[usize]) -> Result<(Vec<u32>, usize), crate::error::SpinferError> {
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    offsets.push(0u32);
    let mut total = 0usize;
    for &c in counts {
        let padded = c.div_ceil(VALUE_PAD) * VALUE_PAD;
        total = total.saturating_add(padded);
        if total > u32::MAX as usize {
            return Err(crate::error::SpinferError::OffsetOverflow { total });
        }
        offsets.push(total as u32);
    }
    Ok((offsets, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip_exact() {
        for &s in &[0.0, 0.3, 0.5, 0.7, 0.95] {
            let m = random_sparse(128, 192, s, ValueDist::Uniform, 5);
            let enc = TcaBme::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
            assert_eq!(enc.nnz, m.nnz());
        }
    }

    #[test]
    fn roundtrip_with_padding_dims() {
        // 100×70 is not a GroupTile multiple in either dimension.
        let m = random_sparse(100, 70, 0.5, ValueDist::Uniform, 6);
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.m_pad, 128);
        assert_eq!(enc.k_pad, 128);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn two_pass_encode_equals_serial_oracle() {
        // Interior fast path, edge clamping, and non-default tiling all
        // produce the serial encoder's exact arrays (full parity incl.
        // job counts lives in tests/encode_parity.rs).
        let configs = [
            TcaBmeConfig::default(),
            TcaBmeConfig {
                gt_rows: 32,
                gt_cols: 128,
            },
        ];
        for config in configs {
            for (r, c, s) in [
                (64, 64, 0.6),
                (100, 70, 0.5),
                (17, 200, 0.0),
                (130, 66, 1.0),
            ] {
                let m = random_sparse(r, c, s, ValueDist::Uniform, 11);
                let par = TcaBme::encode_with(&m, config);
                let ser = TcaBme::encode_serial_oracle(&m, config);
                assert_eq!(par, ser, "{r}x{c} s={s} config {config:?}");
            }
        }
    }

    #[test]
    fn prefix_offsets_rejects_u32_overflow() {
        // Synthetic counts — no giant allocation needed to hit the check.
        let too_big = vec![u32::MAX as usize / 2, u32::MAX as usize / 2, 42];
        match prefix_offsets(&too_big) {
            Err(crate::error::SpinferError::OffsetOverflow { total }) => {
                assert!(total > u32::MAX as usize)
            }
            other => panic!("expected OffsetOverflow, got {other:?}"),
        }
        // And the boundary itself is accepted: one tile of exactly
        // u32::MAX rounded down to the pad granularity.
        let max_ok = (u32::MAX as usize / VALUE_PAD) * VALUE_PAD;
        let (offs, total) = prefix_offsets(&[max_ok]).unwrap();
        assert_eq!(total, max_ok);
        assert_eq!(offs, vec![0, max_ok as u32]);
    }

    #[test]
    fn prefix_offsets_pads_each_tile() {
        let (offs, total) = prefix_offsets(&[3, 0, 5, 4]).unwrap();
        assert_eq!(offs, vec![0, 4, 4, 12, 16]);
        assert_eq!(total, 16);
    }

    #[test]
    fn empty_matrix_encodes() {
        let m = DenseMatrix::zeros(64, 64);
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.nnz, 0);
        assert!(enc.values.is_empty());
        assert_eq!(enc.bitmaps.len(), 64);
        assert!(enc.bitmaps.iter().all(|&b| b == 0));
    }

    #[test]
    fn gtile_offsets_are_aligned() {
        let m = random_sparse(256, 256, 0.47, ValueDist::Uniform, 7);
        let enc = TcaBme::encode(&m);
        for &off in &enc.gtile_offsets {
            assert_eq!(off as usize % VALUE_PAD, 0);
        }
    }

    #[test]
    fn storage_matches_formula_up_to_padding() {
        let m = random_sparse(512, 512, 0.5, ValueDist::Uniform, 8);
        let enc = TcaBme::encode(&m);
        let formula = TcaBme::storage_bytes_formula(512, 512, enc.nnz, enc.config);
        let actual = enc.storage_bytes();
        assert!(actual >= formula);
        // Padding adds at most VALUE_PAD-1 elements (2B each) per GroupTile.
        let max_pad = enc.num_gtiles() * (VALUE_PAD - 1) * 2;
        assert!(actual - formula <= max_pad);
    }

    #[test]
    fn compression_ratio_above_one_at_30_percent() {
        // The paper's headline format property: CR > 1 even at 30%.
        let m = random_sparse(1024, 1024, 0.3, ValueDist::Uniform, 9);
        let enc = TcaBme::encode(&m);
        assert!(
            enc.compression_ratio() > 1.0,
            "CR {}",
            enc.compression_ratio()
        );
    }

    #[test]
    fn compression_ratio_formula_at_50_percent() {
        // Analytical CR at 50%: 2 / (1 + 1/8 + eps) ≈ 1.78 for large M=K.
        let bytes =
            TcaBme::storage_bytes_formula(4096, 4096, 4096 * 4096 / 2, TcaBmeConfig::default());
        let cr = (2.0 * 4096.0 * 4096.0) / bytes as f64;
        assert!((cr - 1.78).abs() < 0.02, "CR {cr}");
    }

    #[test]
    fn bitmap_tile_order_is_column_major_quadrants() {
        // Single non-zero in each quadrant of the first TCTile; check the
        // bitmap array ordering TL, BL, TR, BR.
        let mut m = DenseMatrix::zeros(64, 64);
        m.set(0, 0, Half::ONE); // TL -> bitmap 0, bit 0.
        m.set(8, 0, Half::ONE); // BL -> bitmap 1, bit 0.
        m.set(0, 8, Half::ONE); // TR -> bitmap 2, bit 0.
        m.set(8, 8, Half::ONE); // BR -> bitmap 3, bit 0.
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.bitmaps[0], 1);
        assert_eq!(enc.bitmaps[1], 1);
        assert_eq!(enc.bitmaps[2], 1);
        assert_eq!(enc.bitmaps[3], 1);
        assert_eq!(&enc.bitmaps[4..16], &[0u64; 12]);
    }

    #[test]
    fn bit_positions_are_rowmajor_within_bt() {
        let mut m = DenseMatrix::zeros(64, 64);
        m.set(3, 5, Half::ONE); // Row-major index 3*8+5 = 29.
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.bitmaps[0], 1u64 << 29);
    }

    #[test]
    fn tctile_order_is_column_major_in_gtile() {
        // Non-zero at TCTile (row 1, col 0) of a 64×64 GroupTile: TCTiles
        // are column-major, so it lands in the second TCTile's bitmaps
        // (indices 4..8).
        let mut m = DenseMatrix::zeros(64, 64);
        m.set(16, 0, Half::ONE);
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.bitmaps[4], 1);
        // And one at TCTile (0, 1): with 4 TCTile rows, column 1 starts at
        // TCTile index 4 -> bitmaps 16..20.
        let mut m2 = DenseMatrix::zeros(64, 64);
        m2.set(0, 16, Half::ONE);
        let enc2 = TcaBme::encode(&m2);
        assert_eq!(enc2.bitmaps[16], 1);
    }

    #[test]
    fn values_follow_bitmap_order() {
        let mut m = DenseMatrix::zeros(64, 64);
        m.set(0, 0, Half::from_f32(1.0)); // TL BT, bit 0.
        m.set(0, 1, Half::from_f32(2.0)); // TL BT, bit 1.
        m.set(8, 0, Half::from_f32(3.0)); // BL BT, bit 0.
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.values[0].to_f32(), 1.0);
        assert_eq!(enc.values[1].to_f32(), 2.0);
        assert_eq!(enc.values[2].to_f32(), 3.0);
        assert_eq!(enc.nnz, 3);
    }

    #[test]
    fn custom_config_roundtrip() {
        let cfg = TcaBmeConfig {
            gt_rows: 32,
            gt_cols: 128,
        };
        let m = random_sparse(96, 256, 0.6, ValueDist::Uniform, 10);
        let enc = TcaBme::encode_with(&m, cfg);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.gtiles_y(), 3);
        assert_eq!(enc.gtiles_x(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn invalid_config_panics() {
        TcaBmeConfig {
            gt_rows: 24,
            gt_cols: 64,
        }
        .validate();
    }

    #[test]
    fn validate_accepts_every_encode() {
        for &s in &[0.0, 0.5, 0.95] {
            let m = random_sparse(100, 70, s, ValueDist::Uniform, 12);
            TcaBme::encode(&m)
                .validate()
                .expect("fresh encode is valid");
        }
    }

    #[test]
    fn validate_catches_each_corruption_class() {
        use crate::error::IntegrityError;
        let fresh = || TcaBme::encode(&random_sparse(128, 128, 0.5, ValueDist::Uniform, 13));

        let mut e = fresh();
        e.gtile_offsets.pop();
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::OffsetCount { .. })
        ));

        let mut e = fresh();
        e.gtile_offsets[1] = e.gtile_offsets[2] + 8;
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::OffsetOrder { gt: 1, .. })
        ));

        let mut e = fresh();
        e.gtile_offsets[1] += 1;
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::OffsetAlignment { index: 1, .. })
        ));

        let mut e = fresh();
        let n = e.gtile_offsets.len();
        e.gtile_offsets[n - 1] -= VALUE_PAD as u32;
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::OffsetEnd { .. })
        ));

        let mut e = fresh();
        e.bitmaps.pop();
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::BitmapCount { .. })
        ));

        // A flipped bitmap bit changes a tile's population but not its
        // span — exactly the silent-corruption case the paper's popc64
        // offsets are vulnerable to.
        let mut e = fresh();
        e.bitmaps[0] ^= 1u64 << 63;
        let v = e.validate();
        assert!(
            matches!(
                v,
                Err(IntegrityError::PopulationMismatch { gt: 0, .. })
                    | Err(IntegrityError::NnzMismatch { .. })
            ),
            "bitmap flip must be caught, got {v:?}"
        );

        let mut e = fresh();
        e.nnz += 1;
        assert!(matches!(
            e.validate(),
            Err(IntegrityError::NnzMismatch { .. })
        ));
    }

    #[test]
    fn gtile_checksums_detect_single_bit_damage() {
        let m = random_sparse(128, 128, 0.6, ValueDist::Uniform, 14);
        let enc = TcaBme::encode(&m);
        let sums = enc.gtile_checksums();
        assert_eq!(sums.len(), enc.num_gtiles());
        for gt in 0..enc.num_gtiles() {
            assert_eq!(enc.gtile_checksum(gt), sums[gt], "checksums are pure");
        }
        // Any single-bit flip in a tile's bitmaps or values moves its sum.
        let mut bad = enc.clone();
        bad.bitmaps[0] ^= 1;
        assert_ne!(bad.gtile_checksum(0), sums[0]);
        let mut bad = enc.clone();
        let s = bad.gtile_offsets[0] as usize;
        bad.values[s] = Half::from_bits(bad.values[s].to_bits() ^ 0x0400);
        assert_ne!(bad.gtile_checksum(0), sums[0]);
        // Checksums are per-tile: damage in tile 0 leaves tile 1 intact.
        assert_eq!(bad.gtile_checksum(1), sums[1]);
    }

    #[test]
    fn checksum_covers_padding_bytes() {
        // 3 non-zeros in one GroupTile -> one padding element. A flip in
        // the padding region must still change the checksum.
        let mut m = DenseMatrix::zeros(64, 64);
        m.set(0, 0, Half::ONE);
        m.set(1, 1, Half::ONE);
        m.set(2, 2, Half::ONE);
        let enc = TcaBme::encode(&m);
        assert_eq!(enc.values.len(), 4, "3 nnz + 1 pad");
        let clean = enc.gtile_checksum(0);
        let mut bad = enc.clone();
        bad.values[3] = Half::from_bits(0x0001);
        assert_ne!(bad.gtile_checksum(0), clean);
    }

    #[test]
    fn max_values_per_gtile_bounds_buffer() {
        let m = random_sparse(256, 256, 0.5, ValueDist::Uniform, 11);
        let enc = TcaBme::encode(&m);
        let max = enc.max_values_per_gtile();
        assert!(max <= 64 * 64);
        for g in 0..enc.num_gtiles() {
            assert!(enc.gtile_values(g).len() <= max);
        }
    }

    #[test]
    fn quantize_shares_structure_exactly() {
        let m = random_sparse(128, 192, 0.6, ValueDist::Uniform, 21);
        let enc = TcaBme::encode(&m);
        let q = TcaBmeInt8::quantize(&enc);
        assert_eq!(q.tiles.bitmaps, enc.bitmaps);
        assert_eq!(q.tiles.gtile_offsets, enc.gtile_offsets);
        assert_eq!(q.tiles.nnz, enc.nnz);
        assert_eq!(q.tiles.values.len(), enc.values.len());
        assert_eq!(q.scales.len(), enc.num_gtiles());
        q.validate().expect("fresh quantization is valid");
        // The shared validator accepts the i8 instantiation directly.
        q.tiles
            .validate()
            .expect("i8 container is structurally valid");
    }

    #[test]
    fn quantize_reconstruction_within_half_step() {
        let m = random_sparse(128, 128, 0.5, ValueDist::Uniform, 22);
        let enc = TcaBme::encode(&m);
        let q = enc.quantize_int8();
        let deq = q.dequantize_dense();
        for r in 0..128 {
            for c in 0..128 {
                let orig = m.get(r, c).to_f32();
                let got = deq[r * 128 + c];
                let gt = (r / 64) * enc.gtiles_x() + c / 64;
                let bound = q.error_bound(gt) * 1.0001;
                assert!(
                    (orig - got).abs() <= bound,
                    "({r},{c}): {orig} vs {got}, bound {bound}"
                );
                if orig == 0.0 {
                    assert_eq!(got, 0.0, "zeros stay exactly zero");
                }
            }
        }
    }

    #[test]
    fn quantize_halves_value_storage() {
        let m = random_sparse(256, 256, 0.6, ValueDist::Uniform, 23);
        let enc = TcaBme::encode(&m);
        let q = enc.quantize_int8();
        // i8 values + f32 scales must undercut FP16 values.
        assert!(q.storage_bytes() < enc.storage_bytes());
        assert!(q.compression_ratio() > enc.compression_ratio());
        // The value term specifically is exactly half.
        assert_eq!(
            q.tiles.storage_bytes() + enc.values.len(),
            enc.storage_bytes()
        );
    }

    #[test]
    fn quantize_empty_gtile_scale_is_one() {
        let m = DenseMatrix::zeros(128, 64); // Two GroupTiles, both empty.
        let q = TcaBme::encode(&m).quantize_int8();
        assert_eq!(q.scales, vec![1.0, 1.0]);
        q.validate().expect("empty quantization is valid");
    }

    #[test]
    fn int8_validate_catches_scale_corruption() {
        let m = random_sparse(128, 128, 0.5, ValueDist::Uniform, 24);
        let mut q = TcaBme::encode(&m).quantize_int8();
        q.scales.pop();
        assert!(matches!(
            q.validate(),
            Err(IntegrityError::ScaleCount { .. })
        ));
        let mut q = TcaBme::encode(&m).quantize_int8();
        q.scales[1] = f32::NAN;
        assert!(matches!(
            q.validate(),
            Err(IntegrityError::BadScale { gt: 1, .. })
        ));
        let mut q = TcaBme::encode(&m).quantize_int8();
        q.scales[0] = -1.0;
        assert!(matches!(
            q.validate(),
            Err(IntegrityError::BadScale { gt: 0, .. })
        ));
    }

    #[test]
    fn int8_checksums_use_one_byte_per_code() {
        // A code flip moves the tile checksum; the generic checksum over
        // the i8 container is well-defined and per-tile localised.
        let m = random_sparse(128, 128, 0.5, ValueDist::Uniform, 25);
        let q = TcaBme::encode(&m).quantize_int8();
        let sums = q.tiles.gtile_checksums();
        let mut bad = q.clone();
        let s = bad.tiles.gtile_offsets[0] as usize;
        bad.tiles.values[s] = bad.tiles.values[s].wrapping_add(1);
        assert_ne!(bad.tiles.gtile_checksum(0), sums[0]);
        assert_eq!(bad.tiles.gtile_checksum(1), sums[1]);
    }
}
