//! # spinfer-core — the SpInfer paper's primary contribution
//!
//! High-performance sparse matrix multiplication for low-sparsity LLM
//! weights, reproduced from *SpInfer: Leveraging Low-Level Sparsity for
//! Efficient Large Language Model Inference on GPUs* (EuroSys 2025) on the
//! [`gpu_sim`] substrate:
//!
//! * [`tca_bme`] — Tensor-Core-Aware Bitmap Encoding (paper §4.2).
//! * [`smbd`] — Shared Memory Bitmap Decoding (paper §4.3.3).
//! * [`spmm`] — the SpInfer-SpMM kernel with split-K and the asynchronous
//!   pipeline (paper §4.3), including Table 1's ablation switches.
//!
//! # Examples
//!
//! ```
//! use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};
//! use gpu_sim::GpuSpec;
//! use spinfer_core::SpMMHandle;
//!
//! // A 60%-sparse weight matrix and a decode-phase activation tile.
//! let w = random_sparse(256, 256, 0.6, ValueDist::Uniform, 1);
//! let x = random_dense(256, 16, ValueDist::Uniform, 2);
//!
//! let spec = GpuSpec::rtx4090();
//! let handle = SpMMHandle::encode(&w);
//! let run = handle.matmul(&spec, &x);
//! assert_eq!(run.output.as_ref().unwrap().len(), 256 * 16);
//! println!("simulated time: {:.1} us, CR {:.2}",
//!          run.time_us(), handle.compression_ratio());
//! ```

// Lane IDs and tile coordinates are semantic indices in GPU-style code;
// iterator rewrites of those loops obscure the hardware mapping.
#![allow(clippy::needless_range_loop)]

pub mod error;
pub mod payload;
pub mod reduction;
pub mod serialize;
pub mod smbd;
pub mod spmm;
pub mod tca_bme;
pub mod tune;

pub use error::SpinferError;
pub use payload::Payload;
pub use spmm::{
    Ablation, DynEncoded, DynSpmmKernel, FaultPolicy, FormatStats, LaunchCtx, SpinferSpmm,
    SpinferSpmmInt8, SpmmConfig, SpmmKernel, SpmmRun,
};
pub use tca_bme::{TcaBme, TcaBmeConfig, TcaBmeInt8, TcaBmeOf};
pub use tune::{tune, TuneResult};

use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;

/// High-level handle owning an encoded weight matrix, mirroring how the
/// artifact's framework integration holds per-layer sparse weights.
#[derive(Clone, Debug)]
pub struct SpMMHandle {
    /// The encoded weight matrix.
    pub weights: TcaBme,
    /// Kernel used for products.
    pub kernel: SpinferSpmm,
}

impl SpMMHandle {
    /// Encodes a dense weight matrix into TCA-BME with default tiling.
    pub fn encode(weights: &DenseMatrix) -> Self {
        SpMMHandle {
            weights: TcaBme::encode(weights),
            kernel: SpinferSpmm::new(),
        }
    }

    /// Encodes with an explicit kernel configuration.
    pub fn encode_with(weights: &DenseMatrix, config: SpmmConfig) -> Self {
        SpMMHandle {
            weights: TcaBme::encode(weights),
            kernel: SpinferSpmm { config },
        }
    }

    /// Computes `W × X` on the simulated device, returning output and
    /// launch telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `K×N`; use [`Self::try_matmul`] to handle
    /// that as an error.
    pub fn matmul(&self, spec: &GpuSpec, x: &DenseMatrix) -> SpmmRun {
        self.kernel.run(spec, &self.weights, x)
    }

    /// Fallible [`Self::matmul`]: dimension mismatches become typed
    /// errors instead of panics.
    pub fn try_matmul(&self, spec: &GpuSpec, x: &DenseMatrix) -> Result<SpmmRun, SpinferError> {
        if x.rows() != self.weights.k {
            return Err(SpinferError::DimensionMismatch {
                expected_k: self.weights.k,
                got: x.rows(),
            });
        }
        Ok(self.kernel.run(spec, &self.weights, x))
    }

    /// Analytic timing estimate for a batch size `n` without data.
    pub fn estimate(&self, spec: &GpuSpec, n: usize) -> SpmmRun {
        self.kernel
            .estimate(spec, &FormatStats::from_encoded(&self.weights), n)
    }

    /// Compression ratio of the encoded weights (paper Eq. 1).
    pub fn compression_ratio(&self) -> f64 {
        self.weights.compression_ratio()
    }

    /// Encoded storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.weights.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{max_abs_diff, random_dense, random_sparse, ValueDist};

    #[test]
    fn handle_end_to_end() {
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 3);
        let x = random_dense(128, 16, ValueDist::Uniform, 4);
        let spec = GpuSpec::rtx4090();
        let h = SpMMHandle::encode(&w);
        let run = h.matmul(&spec, &x);
        let err = max_abs_diff(run.output.as_ref().unwrap(), &w.matmul_ref(&x));
        assert!(err < 0.5);
        assert!(h.compression_ratio() > 1.0);
        assert!(h.storage_bytes() < w.dense_bytes());
    }

    #[test]
    fn estimate_runs_without_data() {
        let w = random_sparse(128, 128, 0.5, ValueDist::Uniform, 5);
        let spec = GpuSpec::a6000();
        let h = SpMMHandle::encode(&w);
        let est = h.estimate(&spec, 16);
        assert!(est.output.is_none());
        assert!(est.time_us() > 0.0);
    }
}
