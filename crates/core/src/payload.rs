//! The sealed value-payload abstraction behind [`TcaBmeOf`].
//!
//! TCA-BME's bitmap metadata is payload-agnostic: offsets, bitmaps, and
//! tile geometry never look inside a value. Only three things about the
//! element type matter to the shared machinery — its width (storage and
//! shared-memory word spans), its zero (decode scatter fill), and its
//! little-endian byte image (the per-GroupTile FNV-1a checksum). This
//! trait captures exactly those, so the container, serializer, SMBD
//! decode, and checked-kernel checksum loop are written once and shared
//! between the FP16 and INT8 datapaths instead of cloned.
//!
//! The trait is sealed: the wire format, the checksum byte stream, and
//! the kernel contract all depend on the closed set of payloads, so new
//! precisions must land here (with serialization + kernel support), not
//! in downstream crates.
//!
//! [`TcaBmeOf`]: crate::tca_bme::TcaBmeOf

use gpu_sim::fp16::Half;

mod sealed {
    /// Seals [`super::Payload`] to the precisions the stack supports.
    pub trait Sealed {}
    impl Sealed for gpu_sim::fp16::Half {}
    impl Sealed for i8 {}
}

/// A value precision the TCA-BME stack can carry.
///
/// Implemented for [`Half`] (FP16, the paper's format) and `i8` (the
/// quantized deployment payload; per-GroupTile `f32` scales live beside
/// the container, not inside it — see
/// [`TcaBmeInt8`](crate::tca_bme::TcaBmeInt8)).
pub trait Payload:
    sealed::Sealed + Copy + PartialEq + std::fmt::Debug + Send + Sync + 'static
{
    /// Storage bytes per element (2 for FP16, 1 for INT8).
    const BYTES: usize;
    /// The additive identity — what decode scatters into absent lanes
    /// and what value-array padding holds.
    const ZERO: Self;
    /// Short precision label used in format keys and reports.
    const NAME: &'static str;

    /// Feeds this element's little-endian storage bytes to a checksum.
    /// For [`Half`] this is the 2-byte `to_bits` image — byte-identical
    /// to the pre-refactor FP16 checksum stream.
    fn feed_checksum(self, eat: &mut dyn FnMut(u8));

    /// Widens to `f32` (the accumulator domain both datapaths share).
    fn to_f32(self) -> f32;

    /// Maps an injected FP16 poison pattern onto this payload — the
    /// shared-memory gather fault hook yields [`Half`] patterns; an
    /// INT8 gather takes the low byte of the same draw.
    fn from_poison(poison: Half) -> Self;
}

impl Payload for Half {
    const BYTES: usize = 2;
    const ZERO: Self = Half::ZERO;
    const NAME: &'static str = "fp16";

    fn feed_checksum(self, eat: &mut dyn FnMut(u8)) {
        for b in self.to_bits().to_le_bytes() {
            eat(b);
        }
    }

    fn to_f32(self) -> f32 {
        Half::to_f32(self)
    }

    fn from_poison(poison: Half) -> Self {
        poison
    }
}

impl Payload for i8 {
    const BYTES: usize = 1;
    const ZERO: Self = 0;
    const NAME: &'static str = "int8";

    fn feed_checksum(self, eat: &mut dyn FnMut(u8)) {
        eat(self as u8);
    }

    fn to_f32(self) -> f32 {
        f32::from(self)
    }

    fn from_poison(poison: Half) -> Self {
        (poison.to_bits() & 0xFF) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_checksum_bytes_match_to_bits_le() {
        let h = Half::from_f32(1.5);
        let mut got = Vec::new();
        h.feed_checksum(&mut |b| got.push(b));
        assert_eq!(got, h.to_bits().to_le_bytes().to_vec());
        assert_eq!(got.len(), Half::BYTES);
    }

    #[test]
    fn i8_checksum_is_one_twos_complement_byte() {
        let mut got = Vec::new();
        (-3i8).feed_checksum(&mut |b| got.push(b));
        assert_eq!(got, vec![0xFDu8]);
        assert_eq!(got.len(), <i8 as Payload>::BYTES);
    }

    #[test]
    fn poison_maps_preserve_nonzero_detectability() {
        // The injector's FP16 poison patterns are NaNs with a nonzero
        // low byte; the INT8 projection must keep a nonzero code so a
        // poisoned gather still perturbs the product.
        let p = Half::from_bits(0x7FFF);
        assert_eq!(<Half as Payload>::from_poison(p), p);
        assert_ne!(<i8 as Payload>::from_poison(p), 0);
    }

    #[test]
    fn zero_widens_to_positive_zero() {
        assert_eq!(<Half as Payload>::ZERO.to_f32().to_bits(), 0.0f32.to_bits());
        assert_eq!(<i8 as Payload>::ZERO.to_f32().to_bits(), 0.0f32.to_bits());
    }
}
