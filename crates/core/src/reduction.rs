//! Functional split-K reduction kernel.
//!
//! After the main SpMM, `split_k` partial-result slices live in the
//! reduction workspace; this grid-stride kernel sums them into the final
//! output. The functional path executes warp by warp over real
//! addresses (vectorised 16-byte accesses, perfectly coalesced), so its
//! counters come from execution like the main kernel's; the analytic
//! path generates identical counters from the geometry.

use gpu_sim::counters::Counters;
use gpu_sim::global::{coalesced_addrs, warp_global_load, warp_global_store, VAddr};
use gpu_sim::kernel::LaunchResult;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{LaunchShape, PipelineMode};

/// Threads per reduction block.
const THREADS: u32 = 256;
/// FP32 elements each thread accumulates per grid-stride step (float4).
const VEC: usize = 4;

/// Functionally reduces `split_k` slices of `elems` FP32 values laid out
/// back-to-back in `workspace`, writing the sum into `out` and recording
/// counters from the real access pattern.
///
/// # Panics
///
/// Panics if `workspace.len() != split_k * elems` or `out.len() != elems`.
pub fn run_reduction(
    spec: &GpuSpec,
    workspace: &[f32],
    out: &mut [f32],
    elems: usize,
    split_k: usize,
    ws_base: VAddr,
    out_base: VAddr,
) -> LaunchResult {
    assert_eq!(workspace.len(), split_k * elems, "workspace shape");
    assert_eq!(out.len(), elems, "output shape");
    let mut c = Counters::new();

    // Warp-granularity walk: each warp covers 32 lanes × VEC floats.
    let span = 32 * VEC;
    let mut idx = 0usize;
    while idx < elems {
        let n_here = span.min(elems - idx);
        // Loads: one vectorised warp load per slice.
        for s in 0..split_k {
            let base = ws_base + ((s * elems + idx) * 4) as u64;
            let mut addrs = coalesced_addrs(base, 16);
            // Predicate off lanes past the tail.
            for (lane, slot) in addrs.iter_mut().enumerate() {
                if lane * VEC >= n_here {
                    *slot = None;
                }
            }
            warp_global_load(&mut c, &addrs, 16);
        }
        // FMA chain: (split_k − 1) adds per element.
        let adds = (n_here * (split_k - 1)) as u64;
        c.cuda_fp_insts += adds.div_ceil(32);
        c.insts_issued += adds.div_ceil(32);
        // Functional sum.
        for e in idx..idx + n_here {
            let mut acc = 0.0f32;
            for s in 0..split_k {
                acc += workspace[s * elems + e];
            }
            out[e] = acc;
        }
        // Store.
        let mut addrs = coalesced_addrs(out_base + (idx * 4) as u64, 16);
        for (lane, slot) in addrs.iter_mut().enumerate() {
            if lane * VEC >= n_here {
                *slot = None;
            }
        }
        warp_global_store(&mut c, &addrs, 16);
        idx += n_here;
    }

    LaunchResult::from_execution("splitk_reduce", spec, reduction_shape(elems), c, &[])
}

/// Analytic counters for the same kernel (paper-scale sweeps).
pub fn estimate_reduction(spec: &GpuSpec, elems: usize, split_k: usize) -> LaunchResult {
    let read = (elems * split_k * 4) as u64;
    let write = (elems * 4) as u64;
    let mut c = Counters::new();
    c.dram_read_bytes = read;
    c.useful_read_bytes = read;
    c.dram_write_bytes = write;
    c.useful_write_bytes = write;
    c.global_load_insts = read.div_ceil(512);
    c.cuda_fp_insts = (elems * (split_k - 1)) as u64 / 32;
    c.insts_issued = c.cuda_fp_insts + c.global_load_insts + write.div_ceil(512);
    LaunchResult::from_execution("splitk_reduce", spec, reduction_shape(elems), c, &[])
}

fn reduction_shape(elems: usize) -> LaunchShape {
    LaunchShape {
        grid_blocks: (elems as u64)
            .div_ceil(u64::from(THREADS) * VEC as u64)
            .max(1),
        block: BlockResources {
            threads: THREADS,
            regs_per_thread: 32,
            smem_bytes: 0,
        },
        iters_per_block: 1.0,
        mode: PipelineMode::AsyncDoubleBuffered,
        per_iter_fixed_cycles: 0.0,
        ramp_cycles: 300.0,
        inflight_bytes_per_warp: Some(1024.0),
        overlap_leak: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_sum_is_correct() {
        let spec = GpuSpec::rtx4090();
        let elems = 1000;
        let split_k = 3;
        let workspace: Vec<f32> = (0..split_k * elems).map(|i| i as f32 * 0.25).collect();
        let mut out = vec![0.0f32; elems];
        run_reduction(
            &spec, &workspace, &mut out, elems, split_k, 0x1000, 0x100000,
        );
        for (e, &v) in out.iter().enumerate() {
            let want: f32 = (0..split_k).map(|s| (s * elems + e) as f32 * 0.25).sum();
            assert!((v - want).abs() < 1e-3, "elem {e}: {v} vs {want}");
        }
    }

    #[test]
    fn functional_counters_match_estimate() {
        let spec = GpuSpec::rtx4090();
        let elems = 4096;
        let split_k = 4;
        let workspace = vec![1.0f32; split_k * elems];
        let mut out = vec![0.0f32; elems];
        let f = run_reduction(&spec, &workspace, &mut out, elems, split_k, 0, 0x100000);
        let a = estimate_reduction(&spec, elems, split_k);
        assert_eq!(f.counters.dram_read_bytes, a.counters.dram_read_bytes);
        assert_eq!(f.counters.dram_write_bytes, a.counters.dram_write_bytes);
        let rel = (f.counters.insts_issued as f64 - a.counters.insts_issued as f64).abs()
            / a.counters.insts_issued as f64;
        assert!(
            rel < 0.05,
            "insts {} vs {}",
            f.counters.insts_issued,
            a.counters.insts_issued
        );
    }

    #[test]
    fn tail_elements_are_handled() {
        let spec = GpuSpec::rtx4090();
        let elems = 130; // Not a multiple of the warp span.
        let workspace = vec![2.0f32; 2 * elems];
        let mut out = vec![0.0f32; elems];
        run_reduction(&spec, &workspace, &mut out, elems, 2, 0, 0x100000);
        assert!(out.iter().all(|&v| v == 4.0));
    }
}
