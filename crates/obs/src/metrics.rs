//! Metrics registry: counters, gauges, and log-bucketed histograms with
//! JSON snapshot/diff.
//!
//! The registry is the aggregate side of the observability subsystem:
//! trace spans answer "when", the registry answers "how much". Snapshots
//! serialize to the same hand-rolled JSON style as `BENCH_kernels.json`
//! (flat, deterministic key order) so baselines can be committed and
//! diffed in CI.

use crate::json::Value;
use std::collections::BTreeMap;

/// Nearest-rank percentile index: the 0-based index into a sorted sample
/// of length `n` holding the `q`-quantile (`q` in `[0, 1]`). Uses the
/// standard nearest-rank definition `ceil(q·n) - 1`, clamped to the valid
/// range. This is THE percentile definition for the workspace — the
/// histogram below and `ServingReport::p95_latency_sec` both use it, so
/// a p95 from a trace breakdown and a p95 from a serving report agree.
pub fn percentile_index(n: usize, q: f64) -> usize {
    if n == 0 {
        return 0;
    }
    let rank = (q * n as f64).ceil() as usize;
    rank.clamp(1, n) - 1
}

/// Exact `q`-quantile of an ascending-sorted sample (nearest rank).
/// Returns 0.0 on an empty sample.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    sorted[percentile_index(sorted.len(), q)]
}

/// Number of log-spaced buckets per octave (factor of 2). Four per octave
/// bounds bucket relative error to 2^(1/4) ≈ 19%.
const BUCKETS_PER_OCTAVE: i32 = 4;

/// A log-bucketed histogram of non-negative `f64` samples. Buckets are
/// spaced `2^(1/4)` apart, so percentile estimates carry at most one
/// bucket (~19%) of relative error while storage stays O(log range).
/// Exact min/max/sum/count are tracked alongside.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    /// bucket index -> sample count. BTreeMap keeps snapshots ordered.
    buckets: BTreeMap<i32, u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: f64) -> i32 {
        if value <= 0.0 {
            return i32::MIN;
        }
        (value.log2() * f64::from(BUCKETS_PER_OCTAVE)).floor() as i32
    }

    /// Upper edge of a bucket (the value all samples in it are ≤).
    fn bucket_upper(bucket: i32) -> f64 {
        if bucket == i32::MIN {
            return 0.0;
        }
        2f64.powf(f64::from(bucket + 1) / f64::from(BUCKETS_PER_OCTAVE))
    }

    /// Records one sample. Negative samples clamp to 0 (they cannot occur
    /// from durations; clamping keeps the histogram total consistent).
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            0.0
        };
        *self.buckets.entry(Self::bucket_of(v)).or_insert(0) += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest recorded sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank `q`-quantile estimate: walks buckets in ascending
    /// order to the bucket holding the rank from [`percentile_index`] and
    /// returns its upper edge, clamped to the exact observed max (so p100
    /// is exact and estimates never exceed real data).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = percentile_index(self.count as usize, q) as u64;
        let mut seen = 0u64;
        for (&bucket, &n) in &self.buckets {
            seen += n;
            if seen > target {
                return Self::bucket_upper(bucket).min(self.max);
            }
        }
        self.max
    }

    /// Snapshot as a JSON object (count/sum/min/max/mean/p50/p95/p99).
    pub fn to_value(&self) -> Value {
        Value::obj()
            .set("count", Value::Num(self.count as f64))
            .set("sum", Value::Num(self.sum))
            .set("min", Value::Num(self.min()))
            .set("max", Value::Num(self.max()))
            .set("mean", Value::Num(self.mean()))
            .set("p50", Value::Num(self.percentile(0.50)))
            .set("p95", Value::Num(self.percentile(0.95)))
            .set("p99", Value::Num(self.percentile(0.99)))
    }
}

/// A named collection of counters, gauges, and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Reads a gauge (0.0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records a sample into a named histogram (created empty on first use).
    pub fn histogram_record(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Reads a histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Serializes the registry as a snapshot JSON object. Keys are sorted
    /// (BTreeMap iteration), so two snapshots of equal registries are
    /// byte-identical.
    pub fn snapshot(&self) -> Value {
        let mut counters = Value::obj();
        for (k, v) in &self.counters {
            counters = counters.set(k, Value::Num(*v as f64));
        }
        let mut gauges = Value::obj();
        for (k, v) in &self.gauges {
            gauges = gauges.set(k, Value::Num(*v));
        }
        let mut hists = Value::obj();
        for (k, h) in &self.histograms {
            hists = hists.set(k, h.to_value());
        }
        Value::obj()
            .set("schema", Value::Str("spinfer-obs-snapshot/v1".to_string()))
            .set("counters", counters)
            .set("gauges", gauges)
            .set("histograms", hists)
    }

    /// Serialized snapshot (see [`Registry::snapshot`]).
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Diffs this registry's snapshot against a baseline snapshot (as
    /// produced by [`Registry::snapshot`], possibly from an older run read
    /// back from disk). Returns one line per difference: added, removed,
    /// or changed scalar leaves (`counters.x`, `gauges.y`,
    /// `histograms.z.p95`, ...). Empty means identical.
    pub fn diff_against(&self, baseline: &Value) -> Vec<String> {
        let current = self.snapshot();
        let mut out = Vec::new();
        diff_value("", &current, baseline, &mut out);
        out
    }
}

fn diff_value(path: &str, current: &Value, baseline: &Value, out: &mut Vec<String>) {
    match (current, baseline) {
        (Value::Obj(cur), Value::Obj(base)) => {
            for (k, cv) in cur {
                let sub = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                match base.iter().find(|(bk, _)| bk == k) {
                    Some((_, bv)) => diff_value(&sub, cv, bv, out),
                    None => out.push(format!("+ {sub} = {}", cv.to_json())),
                }
            }
            for (k, bv) in base {
                if !cur.iter().any(|(ck, _)| ck == k) {
                    let sub = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    out.push(format!("- {sub} (was {})", bv.to_json()));
                }
            }
        }
        _ => {
            if current != baseline {
                out.push(format!(
                    "~ {path}: {} -> {}",
                    baseline.to_json(),
                    current.to_json()
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The satellite-pinned index semantics: nearest rank, `ceil(q·n)-1`.
    #[test]
    fn percentile_index_edge_cases() {
        // N=1: every quantile is the only sample.
        assert_eq!(percentile_index(1, 0.95), 0);
        // N=2: p95 rank = ceil(1.9) = 2 -> index 1.
        assert_eq!(percentile_index(2, 0.95), 1);
        // N=19: rank = ceil(18.05) = 19 -> index 18 (the max).
        assert_eq!(percentile_index(19, 0.95), 18);
        // N=20: rank = ceil(19.0) = 19 -> index 18 (NOT the max; the
        // textbook nearest-rank p95 of 20 samples is the 19th).
        assert_eq!(percentile_index(20, 0.95), 18);
        // Degenerate quantiles clamp into range.
        assert_eq!(percentile_index(10, 0.0), 0);
        assert_eq!(percentile_index(10, 1.0), 9);
        assert_eq!(percentile_index(0, 0.5), 0);
    }

    #[test]
    fn percentile_sorted_matches_index() {
        let v: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile_sorted(&v, 0.95), 19.0);
        assert_eq!(percentile_sorted(&v, 0.50), 10.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn histogram_percentile_within_one_bucket() {
        let mut h = Histogram::new();
        let samples: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 0.37).collect();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.5, 0.95, 0.99] {
            let exact = percentile_sorted(&sorted, q);
            let approx = h.percentile(q);
            // Bucket upper edge: overestimates by at most one bucket width.
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx <= exact * 2f64.powf(0.25) + 1e-9,
                "q={q}: {approx} too far above {exact}"
            );
        }
        assert_eq!(h.count(), 1000);
        assert!((h.max() - 370.0).abs() < 1e-9);
        // p100 clamps to the exact max.
        assert_eq!(h.percentile(1.0), h.max());
    }

    #[test]
    fn histogram_handles_zero_and_singleton() {
        let mut h = Histogram::new();
        h.record(0.0);
        assert_eq!(h.percentile(0.95), 0.0);
        let mut one = Histogram::new();
        one.record(7.25);
        assert_eq!(one.percentile(0.5), 7.25); // clamped to max
        assert_eq!(one.mean(), 7.25);
    }

    #[test]
    fn registry_snapshot_and_diff() {
        let mut r = Registry::new();
        r.counter_add("exec.tasks", 8);
        r.gauge_set("sweep.points", 3.0);
        r.histogram_record("phase.mma_us", 2.0);

        let baseline = crate::json::parse(&r.snapshot_json()).unwrap();
        assert!(r.diff_against(&baseline).is_empty());

        r.counter_add("exec.tasks", 1);
        r.counter_add("exec.pool_calls", 1);
        let diffs = r.diff_against(&baseline);
        assert!(
            diffs
                .iter()
                .any(|d| d.contains("~ counters.exec.tasks: 8 -> 9")),
            "{diffs:?}"
        );
        assert!(
            diffs
                .iter()
                .any(|d| d.starts_with("+ counters.exec.pool_calls")),
            "{diffs:?}"
        );
    }

    #[test]
    fn registry_snapshot_is_deterministic() {
        let mut a = Registry::new();
        a.counter_add("b", 1);
        a.counter_add("a", 2);
        let mut b = Registry::new();
        b.counter_add("a", 2);
        b.counter_add("b", 1);
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }
}
