//! # spinfer-obs — observability for the SpInfer reproduction
//!
//! The aggregation side of the tracing seam in [`gpu_sim::trace`]:
//! kernels, the pipeline model, the worker pool, sweeps, and the serving
//! loop record deterministic sim-time spans into a
//! [`gpu_sim::trace::TraceSink`]; this crate turns the resulting
//! [`gpu_sim::trace::Trace`] into things humans and CI consume:
//!
//! * [`chrome`] — Chrome-trace/Perfetto JSON export, structural
//!   validation (`ph:"X"` spans with `dur >= 0`, paired flow events),
//!   and per-phase breakdowns with p50/p95/p99.
//! * [`metrics`] — a metrics registry (counters, gauges, log-bucketed
//!   histograms) with deterministic JSON snapshot/diff, plus the
//!   workspace-wide nearest-rank percentile helpers.
//! * [`json`] — the minimal JSON value/parser both of the above build on
//!   (the workspace is offline: no serde).
//!
//! Everything here is off the golden path: attaching a sink never
//! changes simulated outputs, counters, or pinned digests, and all
//! timestamps derive from simulated time, so traces are byte-identical
//! at any host `--jobs` count.

pub mod chrome;
pub mod json;
pub mod metrics;

pub use chrome::{export, phase_breakdown, validate, PhaseRow, TraceStats};
pub use metrics::{percentile_index, percentile_sorted, Histogram, Registry};
