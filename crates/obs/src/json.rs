//! Minimal JSON value: builder, serializer, and recursive-descent parser.
//!
//! The workspace has no registry access, so there is no serde; every
//! producer so far hand-rolls its JSON (`spinfer-bench`'s snapshot and
//! sweep checkpoints). The observability layer also needs to *read* JSON
//! back (trace validation, snapshot diff), so this module provides the
//! round-trip: a small `Value` tree, `to_string`, and `parse`.
//!
//! Numbers are `f64` (like JavaScript); integers up to 2^53 round-trip
//! exactly, which covers every metric this workspace emits. Object key
//! order is preserved (insertion order), so serialized output is
//! deterministic.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Object as an insertion-ordered key/value list (no hashing, so
    /// serialization order is deterministic and matches construction).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builder: empty object.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Builder: appends `key: value` to an object (panics on non-objects —
    /// builder misuse is a programming error).
    pub fn set(mut self, key: &str, value: Value) -> Value {
        match &mut self {
            Value::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("Value::set on non-object"),
        }
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object accessor (ordered key/value pairs).
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes compactly (no insignificant whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; clamp to null like JSON.stringify.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Errors carry the byte offset of the first
/// malformed construct.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "non-utf8 number".to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| "non-utf8 escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        // Surrogate pairs are not emitted by this workspace;
                        // map lone surrogates to U+FFFD rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                // ASCII fast path: the overwhelmingly common case for this
                // workspace's documents (multi-MB traces parse linearly).
                out.push(b as char);
                *pos += 1;
            }
            Some(&b) => {
                // One multi-byte UTF-8 scalar: decode just its bytes, never
                // the whole remainder (that would make parsing quadratic).
                let len = match b {
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    0xF0..=0xF7 => 4,
                    _ => return Err(format!("invalid utf-8 at byte {}", *pos)),
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated utf-8 sequence".to_string())?;
                let s = std::str::from_utf8(chunk)
                    .map_err(|_| format!("invalid utf-8 at byte {}", *pos))?;
                out.push_str(s);
                *pos += len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::obj()
            .set("schema", Value::Str("spinfer-obs/v1".into()))
            .set("count", Value::Num(42.0))
            .set("ratio", Value::Num(0.5))
            .set("ok", Value::Bool(true))
            .set("items", Value::Arr(vec![Value::Num(1.0), Value::Null]));
        let text = v.to_json();
        assert_eq!(
            text,
            r#"{"schema":"spinfer-obs/v1","count":42,"ratio":0.5,"ok":true,"items":[1,null]}"#
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\\n\\\"b\" : [ 1 , -2.5e2 ] } ").unwrap();
        let fields = v.as_obj().unwrap();
        assert_eq!(fields[0].0, "a\n\"b");
        assert_eq!(fields[0].1.as_arr().unwrap()[1].as_f64(), Some(-250.0));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escapes_control_chars() {
        let text = Value::Str("a\u{1}b".into()).to_json();
        assert_eq!(text, "\"a\\u0001b\"");
        assert_eq!(parse(&text).unwrap().as_str(), Some("a\u{1}b"));
    }

    #[test]
    fn integers_serialize_without_exponent() {
        assert_eq!(Value::Num(2.0f64.powi(40)).to_json(), "1099511627776");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }
}
