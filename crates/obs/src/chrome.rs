//! Chrome-trace / Perfetto JSON export and validation.
//!
//! Exports a [`Trace`] in the Trace Event Format that `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev) load directly:
//! `{"traceEvents": [...]}` with `ph:"X"` complete events (timestamps in
//! microseconds), `ph:"M"` metadata events naming process/thread tracks,
//! `ph:"i"` instants, and `ph:"s"`/`ph:"f"` flow arrows (cp.async
//! issue→commit→wait linkage).
//!
//! The validator re-parses an exported document and checks the structural
//! invariants CI relies on: every `ph:"X"` event has `dur >= 0`, and every
//! flow start pairs with exactly one flow end of the same id.

use crate::json::{parse, Value};
use crate::metrics::percentile_sorted;
use gpu_sim::trace::{EventKind, Trace};

/// Serializes a trace as Chrome-trace JSON (one event per line, so the
/// output diffs cleanly and parses incrementally in external tools).
pub fn export(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for (track, process, thread) in &trace.tracks {
        push_event(
            &mut out,
            &mut first,
            &Value::obj()
                .set("ph", Value::Str("M".into()))
                .set("name", Value::Str("process_name".into()))
                .set("pid", Value::Num(f64::from(track.0)))
                .set("tid", Value::Num(f64::from(track.1)))
                .set(
                    "args",
                    Value::obj().set("name", Value::Str(process.clone())),
                ),
        );
        push_event(
            &mut out,
            &mut first,
            &Value::obj()
                .set("ph", Value::Str("M".into()))
                .set("name", Value::Str("thread_name".into()))
                .set("pid", Value::Num(f64::from(track.0)))
                .set("tid", Value::Num(f64::from(track.1)))
                .set("args", Value::obj().set("name", Value::Str(thread.clone()))),
        );
    }
    for ev in &trace.events {
        let ph = match ev.kind {
            EventKind::Span => "X",
            EventKind::Instant => "i",
            EventKind::FlowStart => "s",
            EventKind::FlowEnd => "f",
        };
        let mut v = Value::obj()
            .set("ph", Value::Str(ph.into()))
            .set("name", Value::Str(ev.name.into()))
            .set("cat", Value::Str(ev.cat.into()))
            .set("pid", Value::Num(f64::from(ev.track.0)))
            .set("tid", Value::Num(f64::from(ev.track.1)))
            .set("ts", Value::Num(ev.ts_us));
        match ev.kind {
            EventKind::Span => v = v.set("dur", Value::Num(ev.dur_us)),
            EventKind::Instant => v = v.set("s", Value::Str("t".into())),
            EventKind::FlowStart => v = v.set("id", Value::Num(ev.flow_id as f64)),
            // Flow ends bind to the slice they land *on top of*; `bp:"e"`
            // makes Perfetto attach to the enclosing slice.
            EventKind::FlowEnd => {
                v = v
                    .set("id", Value::Num(ev.flow_id as f64))
                    .set("bp", Value::Str("e".into()));
            }
        }
        if let Some((k, arg)) = ev.arg {
            v = v.set("args", Value::obj().set(k, Value::Num(arg)));
        }
        push_event(&mut out, &mut first, &v);
    }
    out.push_str("\n]}\n");
    out
}

fn push_event(out: &mut String, first: &mut bool, v: &Value) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(&v.to_json());
}

/// Structural statistics from a validated Chrome-trace document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Number of `ph:"X"` complete spans.
    pub spans: usize,
    /// Number of flow start/end pairs.
    pub flow_pairs: usize,
    /// Number of `ph:"i"` instants.
    pub instants: usize,
    /// Sum of `dur` over spans whose `cat` is `"phase"` (the per-phase
    /// attribution; excludes overlapping cp.async windows).
    pub phase_total_us: f64,
}

/// Parses and validates a Chrome-trace JSON document. Checks:
/// * the document parses and has a `traceEvents` array;
/// * every `ph:"X"` event has a finite `dur >= 0` and finite `ts`;
/// * flow events (`ph:"s"`/`ph:"f"`) pair up one-to-one by `id`.
pub fn validate(text: &str) -> Result<TraceStats, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut stats = TraceStats::default();
    let mut flow_starts = std::collections::BTreeMap::new();
    let mut flow_ends = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let ts = ev.get("ts").and_then(|v| v.as_f64());
        match ph {
            "X" => {
                let ts = ts.ok_or_else(|| format!("event {i}: X without ts"))?;
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: X without dur"))?;
                if !ts.is_finite() || !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i}: bad span ts={ts} dur={dur}"));
                }
                stats.spans += 1;
                if ev.get("cat").and_then(|v| v.as_str()) == Some("phase") {
                    stats.phase_total_us += dur;
                }
            }
            "s" | "f" => {
                let id = ev
                    .get("id")
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("event {i}: flow without id"))?
                    as u64;
                let map = if ph == "s" {
                    &mut flow_starts
                } else {
                    &mut flow_ends
                };
                *map.entry(id).or_insert(0u64) += 1;
            }
            "i" => stats.instants += 1,
            "M" => {}
            other => return Err(format!("event {i}: unsupported ph {other:?}")),
        }
    }
    for (&id, &n) in &flow_starts {
        if n != 1 {
            return Err(format!("flow id {id}: {n} starts"));
        }
        if flow_ends.get(&id) != Some(&1) {
            return Err(format!("flow id {id}: start without matching end"));
        }
    }
    for &id in flow_ends.keys() {
        if !flow_starts.contains_key(&id) {
            return Err(format!("flow id {id}: end without matching start"));
        }
    }
    stats.flow_pairs = flow_starts.len();
    Ok(stats)
}

/// One row of a per-phase breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseRow {
    /// Phase (span) name.
    pub name: &'static str,
    /// Number of spans.
    pub count: usize,
    /// Total duration in µs.
    pub total_us: f64,
    /// Exact nearest-rank percentiles of span durations, in µs.
    pub p50_us: f64,
    /// 95th percentile span duration.
    pub p95_us: f64,
    /// 99th percentile span duration.
    pub p99_us: f64,
}

/// Aggregates a trace's `cat:"phase"` spans into per-phase rows (sorted
/// by descending total time). Percentiles are exact nearest-rank over the
/// span-duration population, via the shared [`percentile_sorted`] helper.
pub fn phase_breakdown(trace: &Trace) -> Vec<PhaseRow> {
    let mut rows = Vec::new();
    for name in trace.phase_names("phase") {
        let mut durs: Vec<f64> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.cat == "phase" && e.name == name)
            .map(|e| e.dur_us)
            .collect();
        durs.sort_by(f64::total_cmp);
        rows.push(PhaseRow {
            name,
            count: durs.len(),
            total_us: durs.iter().sum(),
            p50_us: percentile_sorted(&durs, 0.50),
            p95_us: percentile_sorted(&durs, 0.95),
            p99_us: percentile_sorted(&durs, 0.99),
        });
    }
    rows.sort_by(|a, b| b.total_us.total_cmp(&a.total_us).then(a.name.cmp(b.name)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::trace::{TraceEvent, TraceSink};

    fn sample_trace() -> Trace {
        let sink = TraceSink::new();
        sink.name_track((1, 0), "kernel", "block-row 0");
        sink.record(TraceEvent::span((1, 0), "stream_w", "phase", 0.0, 2.0));
        sink.record(TraceEvent::span((1, 0), "mma", "phase", 2.0, 6.0));
        sink.record(TraceEvent::span(
            (1, 1),
            "cp.async sparse",
            "cp.async",
            0.0,
            1.0,
        ));
        sink.record(TraceEvent::flow((1, 1), "cp", "cp.async", 1.0, true, 42));
        sink.record(TraceEvent::flow((1, 0), "cp", "cp.async", 2.0, false, 42));
        sink.record(TraceEvent::instant((1, 0), "barrier", "phase", 8.0));
        sink.finish()
    }

    #[test]
    fn export_validates_roundtrip() {
        let text = export(&sample_trace());
        let stats = validate(&text).unwrap();
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.flow_pairs, 1);
        assert_eq!(stats.instants, 1);
        // cat:"phase" only — the cp.async window is excluded.
        assert!((stats.phase_total_us - 8.0).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_negative_dur() {
        let bad = r#"{"traceEvents":[{"ph":"X","ts":0,"dur":-1,"pid":1,"tid":0,"name":"x","cat":"phase"}]}"#;
        assert!(validate(bad).is_err());
    }

    #[test]
    fn validate_rejects_unpaired_flow() {
        let bad =
            r#"{"traceEvents":[{"ph":"s","ts":0,"pid":1,"tid":0,"name":"f","cat":"c","id":7}]}"#;
        let err = validate(bad).unwrap_err();
        assert!(err.contains("flow id 7"), "{err}");
        let bad_end =
            r#"{"traceEvents":[{"ph":"f","ts":0,"pid":1,"tid":0,"name":"f","cat":"c","id":9}]}"#;
        assert!(validate(bad_end).unwrap_err().contains("flow id 9"));
    }

    #[test]
    fn breakdown_sorts_by_total() {
        let rows = phase_breakdown(&sample_trace());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "mma");
        assert_eq!(rows[0].count, 1);
        assert_eq!(rows[0].p95_us, 6.0);
        assert_eq!(rows[1].name, "stream_w");
        let total: f64 = rows.iter().map(|r| r.total_us).sum();
        assert!((total - 8.0).abs() < 1e-12);
    }
}
