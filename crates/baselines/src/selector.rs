//! Adaptive format/kernel selection (paper §6, future work).
//!
//! The paper notes that above ~90% sparsity bitmap indexing wastes bits
//! on zeros and CSR-family formats regain the storage lead, while block
//! formats win on clustered matrices. This module implements the obvious
//! production policy: measure the candidate encodings' storage (and
//! pattern statistics) and route each matrix to the format + kernel that
//! minimises predicted kernel time, with storage as the tiebreak.

use crate::formats::bcsr::Bcsr;
use crate::formats::csr::Csr;
use crate::kernels::smat::{SmatSpmm, SmatStats};
use crate::kernels::sputnik::SputnikSpmm;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use spinfer_core::{FormatStats, SpinferSpmm, TcaBme};

/// The routing decision for one weight matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// TCA-BME + SpInfer-SpMM (the LLM-sparsity regime).
    TcaBmeSpInfer,
    /// CSR + Sputnik-style CUDA-core SpMM (extreme unstructured sparsity).
    CsrSputnik,
    /// BCSR + SMaT-style block-skipping Tensor-Core SpMM (clustered).
    BcsrSmat,
}

impl Route {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Route::TcaBmeSpInfer => "TCA-BME/SpInfer",
            Route::CsrSputnik => "CSR/Sputnik",
            Route::BcsrSmat => "BCSR/SMaT",
        }
    }
}

/// A routing decision with its predictions.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Chosen route.
    pub route: Route,
    /// Predicted kernel time for batch `n`, microseconds.
    pub predicted_us: f64,
    /// Stored bytes under the chosen format.
    pub storage_bytes: usize,
    /// Every candidate `(route, predicted_us, storage_bytes)`.
    pub candidates: Vec<(Route, f64, usize)>,
}

/// Routes a matrix by *measured* pattern statistics: encodes candidates,
/// predicts kernel time at batch `n`, picks the fastest (storage breaks
/// ties within 2%).
/// # Examples
///
/// ```
/// use gpu_sim::matrix::{random_sparse, ValueDist};
/// use gpu_sim::GpuSpec;
/// use spinfer_baselines::{select, Route};
///
/// let w = random_sparse(256, 256, 0.55, ValueDist::Uniform, 0);
/// let sel = select(&GpuSpec::rtx4090(), &w, 16);
/// assert_eq!(sel.route, Route::TcaBmeSpInfer); // LLM-band sparsity.
/// ```
pub fn select(spec: &GpuSpec, matrix: &DenseMatrix, n: usize) -> Selection {
    let m = matrix.rows();
    let k = matrix.cols();
    let nnz = matrix.nnz();

    // TCA-BME candidate.
    let bme = TcaBme::encode(matrix);
    let bme_time = SpinferSpmm::new()
        .estimate(spec, &FormatStats::from_encoded(&bme), n)
        .time_us();
    let bme_bytes = bme.storage_bytes();

    // CSR candidate.
    let csr_bytes = Csr::storage_bytes_formula(m, nnz);
    let csr_time = SputnikSpmm::new().estimate(spec, m, k, n, nnz).time_us();

    // BCSR candidate (block occupancy measured from the real pattern).
    let bcsr = Bcsr::encode(matrix);
    let smat_time = SmatSpmm::new()
        .estimate(spec, &SmatStats::from_encoded(&bcsr), n)
        .time_us();
    let bcsr_bytes = bcsr.storage_bytes();

    let candidates = vec![
        (Route::TcaBmeSpInfer, bme_time, bme_bytes),
        (Route::CsrSputnik, csr_time, csr_bytes),
        (Route::BcsrSmat, smat_time, bcsr_bytes),
    ];
    let mut best = candidates[0];
    for c in &candidates[1..] {
        let faster = c.1 < best.1 * 0.98;
        let tied_but_smaller = c.1 < best.1 * 1.02 && c.2 < best.2;
        if faster || tied_but_smaller {
            best = *c;
        }
    }
    Selection {
        route: best.0,
        predicted_us: best.1,
        storage_bytes: best.2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, random_sparse_clustered, ValueDist};

    #[test]
    fn llm_sparsity_routes_to_tca_bme() {
        let spec = GpuSpec::rtx4090();
        for &s in &[0.4, 0.5, 0.6, 0.7] {
            let m = random_sparse(1024, 1024, s, ValueDist::Uniform, 71);
            let sel = select(&spec, &m, 16);
            assert_eq!(sel.route, Route::TcaBmeSpInfer, "sparsity {s}");
        }
    }

    #[test]
    fn extreme_uniform_sparsity_leaves_tca_bme() {
        // At 99.8% uniform the bitmap floor dominates; CSR storage is an
        // order of magnitude smaller and a CUDA-core kernel wins.
        let spec = GpuSpec::rtx4090();
        let m = random_sparse(2048, 2048, 0.998, ValueDist::Uniform, 72);
        let sel = select(&spec, &m, 16);
        assert_ne!(sel.route, Route::TcaBmeSpInfer, "chose {:?}", sel.route);
    }

    #[test]
    fn clustered_extreme_sparsity_routes_to_block_format() {
        let spec = GpuSpec::rtx4090();
        let m = random_sparse_clustered(2048, 2048, 16, 0.01, 0.7, ValueDist::Uniform, 73);
        let sel = select(&spec, &m, 16);
        assert_eq!(sel.route, Route::BcsrSmat, "chose {:?}", sel.route);
    }

    #[test]
    fn selection_reports_all_candidates() {
        let spec = GpuSpec::rtx4090();
        let m = random_sparse(512, 512, 0.5, ValueDist::Uniform, 74);
        let sel = select(&spec, &m, 8);
        assert_eq!(sel.candidates.len(), 3);
        assert!(sel.predicted_us > 0.0);
        assert!(sel.storage_bytes > 0);
        // The winner's time must be the (near-)minimum.
        let min = sel
            .candidates
            .iter()
            .map(|c| c.1)
            .fold(f64::INFINITY, f64::min);
        assert!(sel.predicted_us <= min * 1.03);
    }
}
