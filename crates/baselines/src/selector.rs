//! Adaptive format/kernel selection (paper §6, future work).
//!
//! The paper notes that above ~90% sparsity bitmap indexing wastes bits
//! on zeros and CSR-family formats regain the storage lead, while block
//! formats win on clustered matrices. This module implements the obvious
//! production policy: measure the candidate encodings' storage (and
//! pattern statistics) and route each matrix to the format + kernel that
//! minimises predicted kernel time, with storage as the tiebreak.

use crate::formats::bcsr::Bcsr;
use crate::formats::csr::Csr;
use crate::kernels::smat::{SmatSpmm, SmatStats};
use crate::kernels::sputnik::SputnikSpmm;
use crate::registry::kernel_by_name;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::spec::GpuSpec;
use spinfer_core::spmm::DynSpmmKernel;
use spinfer_core::{FormatStats, SpinferError, SpinferSpmm, TcaBme};

/// The routing decision for one weight matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// TCA-BME + SpInfer-SpMM (the LLM-sparsity regime).
    TcaBmeSpInfer,
    /// CSR + Sputnik-style CUDA-core SpMM (extreme unstructured sparsity).
    CsrSputnik,
    /// BCSR + SMaT-style block-skipping Tensor-Core SpMM (clustered).
    BcsrSmat,
}

impl Route {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Route::TcaBmeSpInfer => "TCA-BME/SpInfer",
            Route::CsrSputnik => "CSR/Sputnik",
            Route::BcsrSmat => "BCSR/SMaT",
        }
    }

    /// The registered name of the kernel this route executes with
    /// (resolvable through [`crate::kernel_by_name`]).
    pub fn kernel_name(self) -> &'static str {
        match self {
            Route::TcaBmeSpInfer => "SpInfer",
            Route::CsrSputnik => "Sputnik",
            Route::BcsrSmat => "SMaT",
        }
    }
}

/// A routing decision with its predictions.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Chosen route.
    pub route: Route,
    /// Predicted kernel time for batch `n`, microseconds.
    pub predicted_us: f64,
    /// Stored bytes under the chosen format.
    pub storage_bytes: usize,
    /// Every candidate `(route, predicted_us, storage_bytes)`.
    pub candidates: Vec<(Route, f64, usize)>,
}

impl Selection {
    /// Resolves the chosen route to its registered kernel, ready to
    /// encode and launch through the [`SpmmKernel`] contract.
    ///
    /// [`SpmmKernel`]: spinfer_core::spmm::SpmmKernel
    pub fn kernel(&self) -> DynSpmmKernel {
        resolve(self.route.kernel_name()).expect("every route names a registered kernel")
    }
}

/// Resolves a kernel by registered name through the registry, returning
/// a typed [`SpinferError::UnknownKernel`] for unrecognized names
/// instead of panicking — CLI and sweep string plumbing funnels through
/// here.
pub fn resolve(name: &str) -> Result<DynSpmmKernel, SpinferError> {
    kernel_by_name(name)
}

/// Routes a matrix by *measured* pattern statistics: encodes candidates,
/// predicts kernel time at batch `n`, picks the fastest (storage breaks
/// ties within 2%).
/// # Examples
///
/// ```
/// use gpu_sim::matrix::{random_sparse, ValueDist};
/// use gpu_sim::GpuSpec;
/// use spinfer_baselines::{select, Route};
///
/// let w = random_sparse(256, 256, 0.55, ValueDist::Uniform, 0);
/// let sel = select(&GpuSpec::rtx4090(), &w, 16);
/// assert_eq!(sel.route, Route::TcaBmeSpInfer); // LLM-band sparsity.
/// ```
pub fn select(spec: &GpuSpec, matrix: &DenseMatrix, n: usize) -> Selection {
    let m = matrix.rows();
    let k = matrix.cols();
    let nnz = matrix.nnz();

    // TCA-BME candidate.
    let bme = TcaBme::encode(matrix);
    let bme_time = SpinferSpmm::new()
        .estimate(spec, &FormatStats::from_encoded(&bme), n)
        .time_us();
    let bme_bytes = bme.storage_bytes();

    // CSR candidate.
    let csr_bytes = Csr::storage_bytes_formula(m, nnz);
    let csr_time = SputnikSpmm::new().estimate(spec, m, k, n, nnz).time_us();

    // BCSR candidate (block occupancy measured from the real pattern).
    let bcsr = Bcsr::encode(matrix);
    let smat_time = SmatSpmm::new()
        .estimate(spec, &SmatStats::from_encoded(&bcsr), n)
        .time_us();
    let bcsr_bytes = bcsr.storage_bytes();

    let candidates = vec![
        (Route::TcaBmeSpInfer, bme_time, bme_bytes),
        (Route::CsrSputnik, csr_time, csr_bytes),
        (Route::BcsrSmat, smat_time, bcsr_bytes),
    ];
    let mut best = candidates[0];
    for c in &candidates[1..] {
        let faster = c.1 < best.1 * 0.98;
        let tied_but_smaller = c.1 < best.1 * 1.02 && c.2 < best.2;
        if faster || tied_but_smaller {
            best = *c;
        }
    }
    Selection {
        route: best.0,
        predicted_us: best.1,
        storage_bytes: best.2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{max_abs_diff, random_sparse, random_sparse_clustered, ValueDist};

    #[test]
    fn llm_sparsity_routes_to_tca_bme() {
        let spec = GpuSpec::rtx4090();
        for &s in &[0.4, 0.5, 0.6, 0.7] {
            let m = random_sparse(1024, 1024, s, ValueDist::Uniform, 71);
            let sel = select(&spec, &m, 16);
            assert_eq!(sel.route, Route::TcaBmeSpInfer, "sparsity {s}");
        }
    }

    #[test]
    fn extreme_uniform_sparsity_leaves_tca_bme() {
        // At 99.8% uniform the bitmap floor dominates; CSR storage is an
        // order of magnitude smaller and a CUDA-core kernel wins.
        let spec = GpuSpec::rtx4090();
        let m = random_sparse(2048, 2048, 0.998, ValueDist::Uniform, 72);
        let sel = select(&spec, &m, 16);
        assert_ne!(sel.route, Route::TcaBmeSpInfer, "chose {:?}", sel.route);
    }

    #[test]
    fn clustered_extreme_sparsity_routes_to_block_format() {
        let spec = GpuSpec::rtx4090();
        let m = random_sparse_clustered(2048, 2048, 16, 0.01, 0.7, ValueDist::Uniform, 73);
        let sel = select(&spec, &m, 16);
        assert_eq!(sel.route, Route::BcsrSmat, "chose {:?}", sel.route);
    }

    #[test]
    fn routes_resolve_through_the_registry() {
        let spec = GpuSpec::rtx4090();
        let m = random_sparse(512, 512, 0.5, ValueDist::Uniform, 75);
        let sel = select(&spec, &m, 16);
        let kernel = sel.kernel();
        assert_eq!(kernel.name(), sel.route.kernel_name());
        // The resolved kernel actually launches on the routed matrix.
        // SpInfer accumulates in tile order, so compare with tolerance.
        let x = gpu_sim::matrix::random_dense(512, 8, ValueDist::Uniform, 76);
        let run = kernel.run(&spec, &m, &x);
        let err = max_abs_diff(run.output.as_ref().unwrap(), &m.matmul_ref(&x));
        assert!(err < 0.5, "routed kernel output error {err}");
    }

    #[test]
    fn unrecognized_kernel_name_is_a_typed_error_not_a_panic() {
        match resolve("TurboSpmm") {
            Err(SpinferError::UnknownKernel { name }) => assert_eq!(name, "TurboSpmm"),
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
    }

    #[test]
    fn selection_reports_all_candidates() {
        let spec = GpuSpec::rtx4090();
        let m = random_sparse(512, 512, 0.5, ValueDist::Uniform, 74);
        let sel = select(&spec, &m, 8);
        assert_eq!(sel.candidates.len(), 3);
        assert!(sel.predicted_us > 0.0);
        assert!(sel.storage_bytes > 0);
        // The winner's time must be the (near-)minimum.
        let min = sel
            .candidates
            .iter()
            .map(|c| c.1)
            .fold(f64::INFINITY, f64::min);
        assert!(sel.predicted_us <= min * 1.03);
    }
}
