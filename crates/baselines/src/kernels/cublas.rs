//! Dense Tensor-Core GEMM — the cuBLAS_TC baseline every paper figure
//! normalises against.
//!
//! Models a CUTLASS-style kernel: `LDGSTS.128` streams both operands
//! straight to shared memory (the "ideal" data path of paper Fig. 7),
//! double-buffered with split-K for skinny N. The weight matrix is read
//! in full — dense GEMM pays `2B × M × K` of DRAM traffic regardless of
//! sparsity, which is exactly the cost SpMM formats compete against.

use crate::kernels::common::{
    auto_split_k, check_k, finish_launch, pad8, reduction_launch, single_launch, store_output,
    stream_ldgsts, tensor_core_work,
};
use gpu_sim::counters::Counters;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// M-dimension tile per thread block.
const TILE_M: usize = 128;
/// K-dimension tile per main-loop iteration.
const TILE_K: usize = 32;

/// The dense GEMM baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct CublasGemm;

impl CublasGemm {
    /// Creates the kernel.
    pub fn new() -> Self {
        CublasGemm
    }

    /// Analytic launch for an `M×K` dense weight against a `K×N` input.
    pub fn estimate(&self, spec: &GpuSpec, m: usize, k: usize, n: usize) -> SpmmRun {
        let n_pad = pad8(n);
        let tile_n = if n_pad <= 64 { n_pad } else { n_pad.min(128) };
        let grid_x = n_pad.div_ceil(tile_n);
        let m_tiles = m.div_ceil(TILE_M);
        let k_tiles = k.div_ceil(TILE_K);
        let split_k = auto_split_k(spec, m_tiles * grid_x, k_tiles);
        let grid = (m_tiles * grid_x * split_k) as u64;

        let mut c = Counters::new();
        // W streamed in full once per L2 reuse window of output columns
        // (wave-level reuse caps the per-tile re-read), and symmetrically
        // for X over output rows.
        let w_reread = gpu_sim::timing::panel_reread_factor(spec, k, n_pad, tile_n);
        let w_bytes = (2 * m.div_ceil(TILE_M) * TILE_M * k) as u64 * w_reread;
        stream_ldgsts(&mut c, w_bytes);
        let m_reread = gpu_sim::timing::panel_reread_factor(spec, k, m, TILE_M);
        let x_bytes = (2 * k * n_pad) as u64 * m_reread;
        stream_ldgsts(&mut c, x_bytes);
        // Tensor-core work: full dense mma count; one ldmatrix.x4 per
        // 16×16 of A and per 16×16 of B.
        let n8 = (tile_n / 8) as u64;
        let tctiles = (m_tiles * (TILE_M / 16) * k_tiles * (TILE_K / 16) * grid_x) as u64;
        let mma = tctiles * n8;
        let ldsm = tctiles + tctiles * n8.div_ceil(2);
        tensor_core_work(&mut c, mma, ldsm);
        // Epilogue.
        store_output(&mut c, (4 * m * n_pad * split_k) as u64);

        let l2 = [L2Reuse {
            buffer_bytes: (2 * k * n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        // Register budget: FP32 accumulators (TILE_M × tile_n over 256
        // threads) plus staging; skinny-N configurations are lighter.
        let regs = 48 + (TILE_M * tile_n / 256) as u32;
        let smem = (2 * (TILE_M * TILE_K + TILE_K * tile_n) * 2) as u32;
        let mut chain = single_launch(
            "cublas_tc_gemm",
            spec,
            c,
            grid,
            BlockResources {
                threads: 256,
                regs_per_thread: regs,
                smem_bytes: smem,
            },
            (k_tiles / split_k).max(1) as f64,
            PipelineMode::AsyncDoubleBuffered,
            16.0,
            None,
            &l2,
        );
        if split_k > 1 {
            chain.push(reduction_launch(spec, m * n_pad, split_k));
        }
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for CublasGemm {
    /// Dense GEMM "encodes" to the dense matrix itself.
    type Encoded = DenseMatrix;

    fn name(&self) -> &'static str {
        "cuBLAS_TC"
    }

    fn format_key(&self) -> &'static str {
        "dense"
    }

    fn encode(&self, w: &DenseMatrix) -> DenseMatrix {
        w.clone()
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &DenseMatrix,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.cols(), x)?;
        let r = self.estimate(ctx.spec, enc.rows(), enc.cols(), x.cols());
        // Fanned across host cores; bit-identical to the serial
        // reference (see `gpu_sim::exec`).
        Ok(finish_launch(ctx, self.name(), r, enc.par_matmul_ref(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, ValueDist};

    #[test]
    fn functional_output_is_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_dense(64, 64, ValueDist::Uniform, 41);
        let x = random_dense(64, 16, ValueDist::Uniform, 42);
        let r = CublasGemm::new().run(&spec, &w, &x);
        assert_eq!(r.output.unwrap(), w.matmul_ref(&x));
    }

    #[test]
    fn time_scales_with_weight_bytes_in_decode_regime() {
        let spec = GpuSpec::rtx4090();
        let t1 = CublasGemm::new().estimate(&spec, 4096, 4096, 16).time_us();
        let t2 = CublasGemm::new().estimate(&spec, 8192, 4096, 16).time_us();
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn achieves_high_bandwidth_at_llm_shapes() {
        let spec = GpuSpec::rtx4090();
        let r = CublasGemm::new().estimate(&spec, 28672, 8192, 16);
        let bw = r.chain.launches[0].timing.bw_util;
        assert!(bw > 0.75, "bw_util {bw}");
    }

    #[test]
    fn decode_shape_is_memory_bound_prefill_is_compute_bound() {
        use gpu_sim::timing::Bound;
        let spec = GpuSpec::rtx4090();
        let decode = CublasGemm::new().estimate(&spec, 28672, 8192, 16);
        assert_eq!(decode.chain.launches[0].timing.bound, Bound::Memory);
        let prefill = CublasGemm::new().estimate(&spec, 28672, 8192, 4096);
        assert_eq!(prefill.chain.launches[0].timing.bound, Bound::TensorCore);
    }

    #[test]
    fn dense_time_close_to_bandwidth_roofline() {
        // 28672×8192 FP16 = 470 MB; at ~92% of 1008 GB/s ≈ 480-560 us.
        let spec = GpuSpec::rtx4090();
        let t = CublasGemm::new().estimate(&spec, 28672, 8192, 16).time_us();
        assert!(t > 400.0 && t < 700.0, "t {t}");
    }
}
