//! cuSPARSE-style generic CSR SpMM (the vendor library baseline).
//!
//! cuSPARSE's CSR SpMM is tuned for high-sparsity scientific matrices and
//! wide dense operands. At LLM shapes it is the paper's weakest baseline
//! (SpInfer averages 18× over it) for two modelled reasons:
//!
//! * **No register blocking over N for skinny inputs**: the CSR structure
//!   (values + 4 B indices) is re-traversed once per 4-column slab of the
//!   output, multiplying W traffic by `⌈N/4⌉`.
//! * **Scalar dependent gathers**: every non-zero triggers an
//!   index-then-load chain with low memory-level parallelism, leaving
//!   bandwidth unsaturated (modelled by the dependent-gather latency term
//!   and a synchronous, shallow pipeline).

use crate::formats::csr::Csr;
use crate::kernels::common::{
    check_k, cuda_fma_work, finish_launch, gather, pad8, single_launch, store_output,
    stream_ldg_via_rf, validate_offsets,
};
use gpu_sim::counters::Counters;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::error::IntegrityError;
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// Output columns computed per CSR traversal.
const N_SLAB: usize = 4;

/// The cuSPARSE baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct CusparseSpmm;

impl CusparseSpmm {
    /// Creates the kernel.
    pub fn new() -> Self {
        CusparseSpmm
    }

    /// Analytic launch from matrix statistics.
    pub fn estimate(&self, spec: &GpuSpec, m: usize, k: usize, n: usize, nnz: usize) -> SpmmRun {
        let n_pad = pad8(n);
        let slabs = n_pad.div_ceil(N_SLAB) as u64;
        let mut c = Counters::new();
        // CSR re-read per output slab.
        let csr_bytes = (6 * nnz + 4 * (m + 1)) as u64 * slabs;
        stream_ldg_via_rf(&mut c, csr_bytes);
        // Scalar X gathers: one dependent gather per non-zero per slab,
        // touching an 8-byte slab row (one 32 B sector).
        let gathers = nnz as u64 * slabs / 32;
        let x_requested = gathers * 32;
        gather(&mut c, gathers, (N_SLAB * 2) as u64, 1);
        // The per-element chains issue far more scalar gathers than the
        // warp-level count above: charge per-lane dependency.
        c.dependent_gathers += gathers * 4;
        cuda_fma_work(&mut c, 2 * nnz as u64 * n_pad as u64);
        c.cuda_int_insts += nnz as u64 * slabs / 8;
        c.insts_issued += nnz as u64 * slabs / 8;
        store_output(&mut c, (4 * m * n_pad) as u64);

        let l2 = [L2Reuse {
            buffer_bytes: (2 * k * n_pad) as u64,
            requested_bytes: x_requested,
        }];
        let grid = (m as u64).div_ceil(128).max(1);
        let chain = single_launch(
            "cusparse_csr_spmm",
            spec,
            c,
            grid,
            BlockResources {
                threads: 128,
                regs_per_thread: 40,
                smem_bytes: 4 * 1024,
            },
            (nnz as f64 / m.max(1) as f64 / 32.0).max(1.0),
            PipelineMode::Synchronous,
            12.0,
            Some(256.0),
            &l2,
        );
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for CusparseSpmm {
    type Encoded = Csr;

    fn name(&self) -> &'static str {
        "cuSPARSE"
    }

    fn format_key(&self) -> &'static str {
        "csr"
    }

    fn encode(&self, w: &DenseMatrix) -> Csr {
        Csr::encode(w)
    }

    fn validate(&self, enc: &Csr) -> Result<(), SpinferError> {
        validate_offsets(&enc.row_ptr, enc.m + 1, enc.values.len())?;
        if enc.col_idx.len() != enc.values.len() {
            return Err(IntegrityError::NnzMismatch {
                expected: enc.values.len(),
                got: enc.col_idx.len(),
            }
            .into());
        }
        Ok(())
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &Csr,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.k, x)?;
        if ctx.checked() {
            self.validate(enc)?;
        }
        let r = self.estimate(ctx.spec, enc.m, enc.k, x.cols(), enc.nnz());
        // Fanned across host cores; bit-identical to the serial
        // reference (see `gpu_sim::exec`).
        Ok(finish_launch(ctx, self.name(), r, enc.par_spmm_ref(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn functional_output_matches_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 80, 0.6, ValueDist::Uniform, 71);
        let x = random_dense(80, 8, ValueDist::Uniform, 72);
        let r = CusparseSpmm::new().run(&spec, &w, &x);
        let got = r.output.unwrap();
        let want = w.matmul_ref(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn far_slower_than_cublas_at_llm_shapes() {
        // Paper Fig. 1/10: cuSPARSE is roughly an order of magnitude off.
        use crate::kernels::cublas::CublasGemm;
        let spec = GpuSpec::rtx4090();
        let nnz = 8192 * 8192 / 2;
        let cu = CusparseSpmm::new()
            .estimate(&spec, 8192, 8192, 16, nnz)
            .time_us();
        let cb = CublasGemm::new().estimate(&spec, 8192, 8192, 16).time_us();
        let speedup = cb / cu;
        assert!(speedup < 0.35, "cuSPARSE relative speed {speedup}");
    }

    #[test]
    fn traffic_grows_with_n_due_to_slab_rereads() {
        let spec = GpuSpec::rtx4090();
        let nnz = 4096 * 4096 / 2;
        let r8 = CusparseSpmm::new().estimate(&spec, 4096, 4096, 8, nnz);
        let r32 = CusparseSpmm::new().estimate(&spec, 4096, 4096, 32, nnz);
        assert!(
            r32.chain.launches[0].counters.dram_read_bytes
                > 3 * r8.chain.launches[0].counters.dram_read_bytes
        );
    }
}
