//! Flash-LLM's Load-as-Sparse-Compute-as-Dense SpMM (Xia et al., VLDB'23)
//! — the paper's strongest sparse baseline.
//!
//! Per 64×64 tile, the kernel loads the Tiled-CSL `NonZeros` array with
//! `LDG.128` *into registers*, unpacks each `(value, position)` pair, and
//! scatters values to a dense WTile in shared memory before `ldmatrix` +
//! dense `mma`. Compared with SpInfer this data path (paper Fig. 7, 12):
//!
//! * stages sparse data through the register file (extra registers →
//!   lower occupancy, extra issue slots),
//! * scatters to arbitrary shared-memory banks (conflict replays measured
//!   from the *real* non-zero positions in the functional path),
//! * carries a 16-bit index per value (4 B/non-zero traffic → CR ≈ 1 at
//!   50% sparsity).

use crate::formats::tiled_csl::{TiledCsl, TILE_COLS, TILE_ROWS};
use crate::kernels::common::{
    auto_split_k, check_k, finish_launch, pad8, reduction_launch, sector_span, single_launch,
    store_output, stream_ldg_via_rf, stream_ldgsts, tensor_core_work, validate_offsets,
};
use gpu_sim::counters::Counters;
use gpu_sim::exec::CounterShard;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::shared_memory::warp_smem_store;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::error::IntegrityError;
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// Expected shared-memory scatter conflict degree for row-major-ordered
/// sparse positions at LLM sparsities (calibrated against the functional
/// path, which measures conflicts from real non-zero positions).
const EXPECTED_SCATTER_DEGREE: f64 = 1.45;

/// The Flash-LLM SpMM baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlashLlmSpmm;

/// Data-dependent statistics the analytic path needs from an encoding.
#[derive(Clone, Copy, Debug)]
pub struct FlashLlmStats {
    /// Logical rows.
    pub m: usize,
    /// Logical cols.
    pub k: usize,
    /// Non-zero count.
    pub nnz: usize,
    /// Average shared-memory transactions per warp-wide scatter store
    /// (1.0 = conflict-free; includes replays).
    pub scatter_degree: f64,
}

impl FlashLlmStats {
    /// Measures statistics from a real encoding, computing scatter
    /// conflicts from actual non-zero positions.
    ///
    /// Tiles are independent, so ranges of them fan out across host
    /// cores (`gpu_sim::exec`), each worker tallying bank transactions
    /// into its own [`CounterShard`]; the `u64` tallies sum
    /// commutatively, so the result is bit-identical to a serial scan.
    pub fn from_encoded(w: &TiledCsl) -> Self {
        let partials = gpu_sim::exec::par_chunks(w.num_tiles(), |tiles| {
            let mut shard = CounterShard::new();
            let mut txns = 0u64;
            let mut stores = 0u64;
            for t in tiles {
                for chunk in w.tile_entries(t).chunks(32) {
                    let mut addrs = [None; 32];
                    for (i, e) in chunk.iter().enumerate() {
                        addrs[i] = Some(u64::from(e.pos()) * 2);
                    }
                    let before = shard.counters().smem_store_transactions;
                    warp_smem_store(shard.counters(), &addrs, 2);
                    txns += shard.counters().smem_store_transactions - before;
                    stores += 1;
                }
            }
            (txns, stores)
        });
        let (txns, stores) = partials
            .into_iter()
            .fold((0u64, 0u64), |(t, s), (pt, ps)| (t + pt, s + ps));
        FlashLlmStats {
            m: w.m,
            k: w.k,
            nnz: w.nnz,
            scatter_degree: if stores == 0 {
                1.0
            } else {
                txns as f64 / stores as f64
            },
        }
    }

    /// Expected statistics for uniform sparsity (no data needed).
    pub fn synthetic(m: usize, k: usize, sparsity: f64) -> Self {
        FlashLlmStats {
            m,
            k,
            nnz: ((m * k) as f64 * (1.0 - sparsity)).round() as usize,
            scatter_degree: EXPECTED_SCATTER_DEGREE,
        }
    }
}

impl FlashLlmSpmm {
    /// Creates the kernel.
    pub fn new() -> Self {
        FlashLlmSpmm
    }

    /// Analytic launch chain from statistics.
    pub fn estimate(&self, spec: &GpuSpec, stats: &FlashLlmStats, n: usize) -> SpmmRun {
        let n_pad = pad8(n);
        let tile_n = n_pad.min(32);
        let grid_x = n_pad.div_ceil(tile_n);
        let m_pad = stats.m.div_ceil(TILE_ROWS) * TILE_ROWS;
        let k_pad = stats.k.div_ceil(TILE_COLS) * TILE_COLS;
        let m_tiles = m_pad / TILE_ROWS;
        let k_tiles = k_pad / TILE_COLS;
        let split_k = auto_split_k(spec, m_tiles * grid_x, k_tiles);
        let grid = (m_tiles * grid_x * split_k) as u64;

        let mut c = Counters::new();
        // W: NonZeros (4 B each) + TileOffsets, through the register file.
        // DRAM traffic is capped by the L2 reuse window over output tiles;
        // the unpack/scatter work below still happens per visit.
        let w_reread = gpu_sim::timing::panel_reread_factor(spec, k_pad, n_pad, tile_n);
        let w_bytes = (4 * stats.nnz + 4 * m_tiles * k_tiles) as u64 * w_reread;
        stream_ldg_via_rf(&mut c, w_bytes);
        // Unpack + scatter: per value one extract/shift pair; warp-wide
        // stores with measured conflict degree.
        let value_visits = (stats.nnz * grid_x) as u64;
        let scatter_insts = value_visits.div_ceil(32);
        c.cuda_int_insts += scatter_insts * 3;
        c.insts_issued += scatter_insts * 4;
        let txns = (scatter_insts as f64 * stats.scatter_degree) as u64;
        c.smem_store_transactions += txns;
        c.smem_bank_conflicts += txns.saturating_sub(scatter_insts);
        // X: streamed to shared memory (Flash-LLM does use cp.async here).
        let m_reread = gpu_sim::timing::panel_reread_factor(spec, k_pad, m_pad, TILE_ROWS);
        let x_row_sectors = sector_span(tile_n * 2);
        let x_bytes = (k_pad * grid_x) as u64 * m_reread * x_row_sectors * 32;
        stream_ldgsts(&mut c, x_bytes);
        // Compute-as-dense: the full dense mma count.
        let n8 = (tile_n / 8) as u64;
        let tctiles = ((m_pad / 16) * (k_pad / 16) * grid_x) as u64;
        tensor_core_work(&mut c, tctiles * n8, tctiles + tctiles * n8.div_ceil(2));
        store_output(&mut c, (4 * m_pad * n_pad * split_k) as u64);

        let l2 = [L2Reuse {
            buffer_bytes: (2 * k_pad * n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        // Register file stages (value, position) pairs for the in-flight
        // tile: the top register consumer in the paper's Figure 12.
        let regs = 40 + 2 * tile_n as u32 + 56;
        let smem = (2 * (TILE_ROWS * TILE_COLS * 2 + TILE_COLS * tile_n * 2)) as u32;
        let mut chain = single_launch(
            "flash_llm_spmm",
            spec,
            c,
            grid,
            BlockResources {
                threads: 128,
                regs_per_thread: regs.min(spec.max_regs_per_thread),
                smem_bytes: smem,
            },
            (k_tiles / split_k).max(1) as f64,
            PipelineMode::AsyncDoubleBuffered,
            // The RF round-trip and scatter serialize part of each
            // iteration that SpInfer's direct path overlaps.
            40.0,
            // Flash-LLM's mixed LDG/cp.async pipeline keeps less in flight.
            Some(1024.0),
            &l2,
        );
        if split_k > 1 {
            chain.push(reduction_launch(spec, m_pad * n_pad, split_k));
        }
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for FlashLlmSpmm {
    type Encoded = TiledCsl;

    fn name(&self) -> &'static str {
        "Flash-LLM"
    }

    fn format_key(&self) -> &'static str {
        "tiled-csl"
    }

    fn encode(&self, w: &DenseMatrix) -> TiledCsl {
        TiledCsl::encode(w)
    }

    fn validate(&self, enc: &TiledCsl) -> Result<(), SpinferError> {
        validate_offsets(&enc.tile_offsets, enc.num_tiles() + 1, enc.non_zeros.len())?;
        if enc.nnz != enc.non_zeros.len() {
            return Err(IntegrityError::NnzMismatch {
                expected: enc.non_zeros.len(),
                got: enc.nnz,
            }
            .into());
        }
        Ok(())
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &TiledCsl,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.k, x)?;
        if ctx.checked() {
            self.validate(enc)?;
        }
        // Scatter conflicts measured from the real non-zero positions.
        let stats = FlashLlmStats::from_encoded(enc);
        let r = self.estimate(ctx.spec, &stats, x.cols());
        // The decoded tile product validates the format roundtrip too.
        Ok(finish_launch(
            ctx,
            self.name(),
            r,
            enc.decode().par_matmul_ref(x),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn functional_output_matches_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(128, 128, 0.6, ValueDist::Uniform, 51);
        let x = random_dense(128, 16, ValueDist::Uniform, 52);
        let r = FlashLlmSpmm::new().run(&spec, &w, &x);
        assert_eq!(r.output.unwrap(), w.matmul_ref(&x));
    }

    #[test]
    fn scatter_degree_expectation_is_calibrated() {
        let w = random_sparse(512, 512, 0.5, ValueDist::Uniform, 53);
        let enc = TiledCsl::encode(&w);
        let stats = FlashLlmStats::from_encoded(&enc);
        assert!(
            (stats.scatter_degree - EXPECTED_SCATTER_DEGREE).abs() < 0.3,
            "measured {}",
            stats.scatter_degree
        );
        // And conflicts genuinely exist — the effect Figure 12 reports
        // (SpInfer's decode has zero replays; see smbd tests).
        assert!(stats.scatter_degree > 1.2);
    }

    #[test]
    fn roughly_breaks_even_with_cublas_at_50_percent() {
        // Paper Fig. 10: Flash-LLM ≈ 1.00× cuBLAS at 50% sparsity.
        use crate::kernels::cublas::CublasGemm;
        let spec = GpuSpec::rtx4090();
        let fl = FlashLlmSpmm::new()
            .estimate(&spec, &FlashLlmStats::synthetic(8192, 8192, 0.5), 16)
            .time_us();
        let cb = CublasGemm::new().estimate(&spec, 8192, 8192, 16).time_us();
        let speedup = cb / fl;
        assert!(
            speedup > 0.8 && speedup < 1.25,
            "Flash-LLM speedup vs cuBLAS at 50%: {speedup}"
        );
    }

    #[test]
    fn wins_at_70_percent_sparsity() {
        use crate::kernels::cublas::CublasGemm;
        let spec = GpuSpec::rtx4090();
        let fl = FlashLlmSpmm::new()
            .estimate(&spec, &FlashLlmStats::synthetic(8192, 8192, 0.7), 16)
            .time_us();
        let cb = CublasGemm::new().estimate(&spec, 8192, 8192, 16).time_us();
        let speedup = cb / fl;
        assert!(speedup > 1.05, "speedup {speedup}");
    }

    #[test]
    fn loses_to_spinfer_across_sparsities() {
        use spinfer_core::{FormatStats, SpinferSpmm};
        let spec = GpuSpec::rtx4090();
        for &s in &[0.4, 0.5, 0.6, 0.7] {
            let fl = FlashLlmSpmm::new()
                .estimate(&spec, &FlashLlmStats::synthetic(8192, 8192, s), 16)
                .time_us();
            let sp = SpinferSpmm::new()
                .estimate(&spec, &FormatStats::synthetic(8192, 8192, s), 16)
                .time_us();
            assert!(sp < fl, "sparsity {s}: spinfer {sp} vs flash-llm {fl}");
        }
    }
}
