//! Baseline SpMM/GEMM kernels on the shared GPU simulator.

pub mod common;
pub mod cublas;
pub mod cusparse;
pub mod flash_llm;
pub mod smat;
pub mod sparta;
pub mod sputnik;

pub use cublas::CublasGemm;
pub use cusparse::CusparseSpmm;
pub use flash_llm::{FlashLlmSpmm, FlashLlmStats};
pub use smat::{SmatSpmm, SmatStats};
pub use sparta::{SpartaSpmm, SpartaStats};
pub use sputnik::SputnikSpmm;
