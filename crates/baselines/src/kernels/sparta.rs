//! SparTA's composite SpMM (Zheng et al., OSDI'22).
//!
//! Executes the decomposed matrix as two kernels: the 2:4 part on *sparse
//! Tensor Cores* (`mma.sp`, half the dense traffic and double the TC
//! throughput) and the CSR residual on CUDA cores. The two kernels run
//! back-to-back and both read/write the output, so the composition
//! overhead plus the residual's irregularity leave SparTA only marginally
//! ahead of cuBLAS at 50% sparsity (paper Fig. 10: 1.01×).

use crate::formats::sparta_fmt::SpartaFormat;
use crate::kernels::common::{
    auto_split_k, check_k, cuda_fma_work, finish_launch, gather, pad8, reduction_launch,
    single_launch, store_output, stream_ldgsts, tensor_core_work, validate_offsets,
};
use gpu_sim::counters::Counters;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// The SparTA baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpartaSpmm;

/// Statistics the analytic path needs.
#[derive(Clone, Copy, Debug)]
pub struct SpartaStats {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub k: usize,
    /// Residual (CSR) non-zeros.
    pub csr_nnz: usize,
}

impl SpartaStats {
    /// From a real decomposition.
    pub fn from_encoded(w: &SpartaFormat) -> Self {
        SpartaStats {
            m: w.m,
            k: w.k,
            csr_nnz: w.residual.nnz(),
        }
    }

    /// Expected statistics under uniform sparsity (paper Eq. 4).
    pub fn synthetic(m: usize, k: usize, sparsity: f64) -> Self {
        SpartaStats {
            m,
            k,
            csr_nnz: SpartaFormat::expected_csr_nnz(m, k, sparsity).round() as usize,
        }
    }
}

impl SpartaSpmm {
    /// Creates the kernel.
    pub fn new() -> Self {
        SpartaSpmm
    }

    /// Analytic launch chain: sparse-TC kernel + CUDA-core residual kernel.
    pub fn estimate(&self, spec: &GpuSpec, stats: &SpartaStats, n: usize) -> SpmmRun {
        let n_pad = pad8(n);
        let tile_n = n_pad.min(32);
        let grid_x = n_pad.div_ceil(tile_n);
        let m = stats.m;
        let k = stats.k;
        let m_tiles = m.div_ceil(128);
        let k_tiles = k.div_ceil(32);
        let split_k = auto_split_k(spec, m_tiles * grid_x, k_tiles);

        // --- Kernel 1: 2:4 sparse Tensor Core GEMM ---
        let mut c1 = Counters::new();
        // 2:4 payload: 2 B per kept slot (MK/2 slots) + 2-bit metadata.
        let w_reread = gpu_sim::timing::panel_reread_factor(spec, k, n_pad, tile_n);
        let w24_bytes = ((2 * m * k / 2) + (m * k / 16)) as u64 * w_reread;
        stream_ldgsts(&mut c1, w24_bytes);
        let m_reread = gpu_sim::timing::panel_reread_factor(spec, k, m, 128);
        let x_row_sectors = (tile_n * 2).div_ceil(32) as u64;
        let x_bytes = (k * grid_x) as u64 * m_reread * x_row_sectors * 32;
        stream_ldgsts(&mut c1, x_bytes);
        // mma.sp: half the mma issues of dense for the same logical tile.
        let n8 = (tile_n / 8) as u64;
        let tctiles = ((m.div_ceil(16)) * (k.div_ceil(16)) * grid_x) as u64;
        let mma_sp = tctiles * n8 / 2;
        tensor_core_work(&mut c1, mma_sp, tctiles / 2 + tctiles * n8.div_ceil(2) / 2);
        // Metadata decode.
        c1.cuda_int_insts += tctiles;
        c1.insts_issued += tctiles;
        store_output(&mut c1, (4 * m * n_pad * split_k) as u64);
        let l2 = [L2Reuse {
            buffer_bytes: (2 * k * n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        let mut chain = single_launch(
            "sparta_24_mma_sp",
            spec,
            c1,
            (m_tiles * grid_x * split_k) as u64,
            BlockResources {
                threads: 256,
                regs_per_thread: 80,
                smem_bytes: 32 * 1024,
            },
            (k_tiles / split_k).max(1) as f64,
            PipelineMode::AsyncDoubleBuffered,
            20.0,
            None,
            &l2,
        );
        if split_k > 1 {
            chain.push(reduction_launch(spec, m * n_pad, split_k));
        }

        // --- Kernel 2: CUDA-core CSR residual (accumulates into output) ---
        let mut c2 = Counters::new();
        let csr_bytes = (6 * stats.csr_nnz + 4 * (m + 1)) as u64;
        stream_ldgsts(&mut c2, csr_bytes);
        let gathers = (stats.csr_nnz as u64).div_ceil(8);
        let row_bytes = (n_pad * 2) as u64;
        gather(&mut c2, gathers, row_bytes, row_bytes.div_ceil(32));
        cuda_fma_work(&mut c2, 2 * stats.csr_nnz as u64 * n_pad as u64);
        // Read-modify-write of the output.
        let out_bytes = (4 * m * n_pad) as u64;
        c2.dram_read_bytes += out_bytes;
        c2.useful_read_bytes += out_bytes;
        store_output(&mut c2, out_bytes);
        let l2b = [L2Reuse {
            buffer_bytes: (2 * k * n_pad) as u64,
            requested_bytes: gathers * row_bytes.div_ceil(32) * 32,
        }];
        let residual = single_launch(
            "sparta_csr_residual",
            spec,
            c2,
            (m as u64).div_ceil(32).max(1),
            BlockResources {
                threads: 256,
                regs_per_thread: 48,
                smem_bytes: 8 * 1024,
            },
            (stats.csr_nnz as f64 / m.max(1) as f64 / 8.0).max(1.0),
            PipelineMode::Synchronous,
            8.0,
            Some(768.0),
            &l2b,
        );
        chain.push(residual.launches.into_iter().next().expect("one launch"));

        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for SpartaSpmm {
    type Encoded = SpartaFormat;

    fn name(&self) -> &'static str {
        "SparTA"
    }

    fn format_key(&self) -> &'static str {
        "sparta"
    }

    fn encode(&self, w: &DenseMatrix) -> SpartaFormat {
        SpartaFormat::encode(w)
    }

    fn validate(&self, enc: &SpartaFormat) -> Result<(), SpinferError> {
        // The 2:4 part is positional (fixed layout); structure lives in
        // the CSR residual.
        validate_offsets(
            &enc.residual.row_ptr,
            enc.residual.m + 1,
            enc.residual.values.len(),
        )
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &SpartaFormat,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.k, x)?;
        if ctx.checked() {
            self.validate(enc)?;
        }
        let stats = SpartaStats::from_encoded(enc);
        let r = self.estimate(ctx.spec, &stats, x.cols());
        // Fanned across host cores; bit-identical to the serial
        // reference (see `gpu_sim::exec`).
        Ok(finish_launch(
            ctx,
            self.name(),
            r,
            enc.decode().par_matmul_ref(x),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn functional_output_matches_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 64, 0.5, ValueDist::Uniform, 81);
        let x = random_dense(64, 16, ValueDist::Uniform, 82);
        let r = SpartaSpmm::new().run(&spec, &w, &x);
        assert_eq!(r.output.unwrap(), w.matmul_ref(&x));
    }

    #[test]
    fn marginal_gain_over_cublas_at_50_percent() {
        use crate::kernels::cublas::CublasGemm;
        let spec = GpuSpec::rtx4090();
        let sp = SpartaSpmm::new()
            .estimate(&spec, &SpartaStats::synthetic(8192, 8192, 0.5), 16)
            .time_us();
        let cb = CublasGemm::new().estimate(&spec, 8192, 8192, 16).time_us();
        let speedup = cb / sp;
        assert!(
            speedup > 0.85 && speedup < 1.3,
            "SparTA speedup vs cuBLAS at 50%: {speedup}"
        );
    }

    #[test]
    fn residual_shrinks_with_sparsity() {
        let s60 = SpartaStats::synthetic(4096, 4096, 0.6);
        let s80 = SpartaStats::synthetic(4096, 4096, 0.8);
        assert!(s80.csr_nnz < s60.csr_nnz);
    }

    #[test]
    fn two_kernel_chain() {
        let spec = GpuSpec::rtx4090();
        let r = SpartaSpmm::new().estimate(&spec, &SpartaStats::synthetic(4096, 4096, 0.5), 16);
        assert!(r.chain.launches.len() >= 2);
        assert!(r
            .chain
            .launches
            .iter()
            .any(|l| l.name == "sparta_csr_residual"));
    }
}
