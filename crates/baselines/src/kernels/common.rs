//! Shared counter-accounting helpers for baseline kernels.
//!
//! Baseline kernels follow the same two-path structure as SpInfer-SpMM:
//! a functional path producing bit-exact output, and an analytic path
//! producing the same counters from format statistics. Since none of the
//! baselines' *data paths* are under test (they reproduce published
//! designs), their functional paths compute outputs through the reference
//! product and reuse the analytic counter generators below; only
//! data-dependent quantities (Flash-LLM scatter conflicts, SMaT block
//! occupancy, SparTA residual size) are extracted from real encodings.

use gpu_sim::counters::Counters;
use gpu_sim::kernel::{LaunchChain, LaunchResult};
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, LaunchShape, PipelineMode};
use spinfer_core::error::IntegrityError;
use spinfer_core::spmm::{emit_chain_trace, LaunchCtx, SpmmRun};
use spinfer_core::SpinferError;

/// Rejects an activation whose row count does not match the weights' K.
pub fn check_k(expected_k: usize, x: &DenseMatrix) -> Result<(), SpinferError> {
    if x.rows() != expected_k {
        return Err(SpinferError::DimensionMismatch {
            expected_k,
            got: x.rows(),
        });
    }
    Ok(())
}

/// Structural validation shared by the offset-indexed baseline formats
/// (CSR row pointers, Tiled-CSL tile offsets, BCSR block-row pointers):
/// `offsets` must hold `expected_len` entries, be monotonically
/// non-decreasing, and end at the payload length `end`.
pub fn validate_offsets(
    offsets: &[u32],
    expected_len: usize,
    end: usize,
) -> Result<(), SpinferError> {
    if offsets.len() != expected_len {
        return Err(IntegrityError::OffsetCount {
            expected: expected_len,
            got: offsets.len(),
        }
        .into());
    }
    for (i, pair) in offsets.windows(2).enumerate() {
        if pair[1] < pair[0] {
            return Err(IntegrityError::OffsetOrder {
                gt: i,
                start: pair[0],
                end: pair[1],
            }
            .into());
        }
    }
    let got = offsets.last().copied().unwrap_or(0) as usize;
    if got != end {
        return Err(IntegrityError::OffsetEnd { expected: end, got }.into());
    }
    Ok(())
}

/// Finishes a baseline launch: attaches the functional output and, when
/// the context carries a trace sink, emits the per-launch chain trace.
pub fn finish_launch(
    ctx: &LaunchCtx<'_>,
    kernel: &'static str,
    mut run: SpmmRun,
    output: Vec<f32>,
) -> SpmmRun {
    run.output = Some(output);
    if let Some(sink) = ctx.sink {
        emit_chain_trace(sink, kernel, &run.chain);
    }
    run
}

/// Records a perfectly coalesced stream of `bytes` read via `LDGSTS.128`
/// (the cuBLAS/SpInfer data path: global → shared, no register staging).
pub fn stream_ldgsts(c: &mut Counters, bytes: u64) {
    c.dram_read_bytes += bytes;
    c.useful_read_bytes += bytes;
    let insts = bytes.div_ceil(512).max(1);
    c.ldgsts_insts += insts;
    c.insts_issued += insts;
    c.smem_store_transactions += bytes.div_ceil(128).max(1);
}

/// Records a coalesced stream of `bytes` read via `LDG.128` *through the
/// register file* (Flash-LLM's W path, Fig. 7): same DRAM traffic, but the
/// data additionally crosses the RF, costing stores into shared memory
/// later and extra issue slots.
pub fn stream_ldg_via_rf(c: &mut Counters, bytes: u64) {
    c.dram_read_bytes += bytes;
    c.useful_read_bytes += bytes;
    let insts = bytes.div_ceil(512).max(1);
    c.global_load_insts += insts;
    c.insts_issued += insts;
}

/// Records `count` warp-level gather instructions, each touching
/// `sectors_per` 32-byte sectors with `useful_per` useful bytes, with the
/// dependent-load flag (address produced by a prior load).
pub fn gather(c: &mut Counters, count: u64, useful_per: u64, sectors_per: u64) {
    c.dram_read_bytes += count * sectors_per * 32;
    c.useful_read_bytes += count * useful_per;
    c.global_load_insts += count;
    c.dependent_gathers += count;
    c.insts_issued += count;
}

/// Records a coalesced FP32 output store of `bytes`.
pub fn store_output(c: &mut Counters, bytes: u64) {
    c.dram_write_bytes += bytes;
    c.useful_write_bytes += bytes;
    c.insts_issued += bytes.div_ceil(512).max(1);
}

/// Records `count` warp-wide Tensor Core `mma.m16n8k16` issues plus the
/// `ldmatrix.x4` loads feeding them (`ldsm_per_mma` fractional x4 loads
/// per mma — A and B operands amortise differently per kernel).
pub fn tensor_core_work(c: &mut Counters, mma: u64, ldsm: u64) {
    c.mma_insts += mma;
    c.ldsm_insts += ldsm;
    c.smem_load_transactions += ldsm * 4;
    c.insts_issued += mma + ldsm;
}

/// Records CUDA-core FMA work: `flops` scalar FLOPs executed across warps
/// (2 FLOPs per lane-FMA, 32 lanes per warp instruction).
pub fn cuda_fma_work(c: &mut Counters, flops: u64) {
    let insts = flops.div_ceil(64).max(1);
    c.cuda_fp_insts += insts;
    c.insts_issued += insts;
}

/// Builds a `LaunchChain` with a single launch from assembled pieces.
#[allow(clippy::too_many_arguments)]
pub fn single_launch(
    name: &'static str,
    spec: &GpuSpec,
    counters: Counters,
    grid_blocks: u64,
    block: BlockResources,
    iters_per_block: f64,
    mode: PipelineMode,
    per_iter_fixed_cycles: f64,
    inflight_bytes_per_warp: Option<f64>,
    l2_reuse: &[L2Reuse],
) -> LaunchChain {
    let shape = LaunchShape {
        grid_blocks,
        block,
        iters_per_block,
        mode,
        per_iter_fixed_cycles,
        ramp_cycles: 600.0,
        inflight_bytes_per_warp,
        overlap_leak: None,
    };
    let mut chain = LaunchChain::new();
    chain.push(LaunchResult::from_execution(
        name, spec, shape, counters, l2_reuse,
    ));
    chain
}

/// Split-K factor filling the device to two blocks per SM, like the
/// `auto_split_k` heuristic in `spinfer-core`.
pub fn auto_split_k(spec: &GpuSpec, base_blocks: usize, k_tiles: usize) -> usize {
    let target = 2 * spec.sm_count as usize;
    if base_blocks == 0 {
        return 1;
    }
    (target.div_ceil(base_blocks)).clamp(1, k_tiles.max(1))
}

/// The split-K reduction pass shared by Tensor-Core baselines.
pub fn reduction_launch(spec: &GpuSpec, elems: usize, split_k: usize) -> LaunchResult {
    let read = (elems * split_k * 4) as u64;
    let write = (elems * 4) as u64;
    let mut c = Counters::new();
    c.dram_read_bytes = read;
    c.useful_read_bytes = read;
    c.dram_write_bytes = write;
    c.useful_write_bytes = write;
    c.cuda_fp_insts = (elems * (split_k - 1)) as u64 / 32;
    c.global_load_insts = read / 512;
    c.insts_issued = c.cuda_fp_insts + c.global_load_insts + write / 512;
    let shape = LaunchShape {
        grid_blocks: (elems as u64).div_ceil(1024).max(1),
        block: BlockResources {
            threads: 256,
            regs_per_thread: 32,
            smem_bytes: 0,
        },
        iters_per_block: 1.0,
        mode: PipelineMode::AsyncDoubleBuffered,
        per_iter_fixed_cycles: 0.0,
        ramp_cycles: 300.0,
        inflight_bytes_per_warp: Some(1024.0),
        overlap_leak: None,
    };
    LaunchResult::from_execution("splitk_reduce", spec, shape, c, &[])
}

/// Pads `n` up to a multiple of 8 (the `mma` N granularity).
pub fn pad8(n: usize) -> usize {
    n.max(8).div_ceil(8) * 8
}

/// Sectors per contiguous aligned segment of `bytes`.
pub fn sector_span(bytes: usize) -> u64 {
    (bytes as u64).div_ceil(32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_accounting() {
        let mut c = Counters::new();
        stream_ldgsts(&mut c, 1024);
        assert_eq!(c.dram_read_bytes, 1024);
        assert_eq!(c.ldgsts_insts, 2);
        assert_eq!(c.smem_store_transactions, 8);
    }

    #[test]
    fn gather_accounting() {
        let mut c = Counters::new();
        gather(&mut c, 10, 8, 1);
        assert_eq!(c.dram_read_bytes, 320);
        assert_eq!(c.useful_read_bytes, 80);
        assert_eq!(c.dependent_gathers, 10);
    }

    #[test]
    fn cuda_fma_counts_warp_instructions() {
        let mut c = Counters::new();
        cuda_fma_work(&mut c, 6400);
        assert_eq!(c.cuda_fp_insts, 100);
    }

    #[test]
    fn split_k_heuristic() {
        let spec = GpuSpec::rtx4090();
        assert_eq!(auto_split_k(&spec, 1000, 64), 1);
        assert!(auto_split_k(&spec, 16, 64) > 1);
        assert_eq!(auto_split_k(&spec, 1, 4), 4);
    }

    #[test]
    fn pad8_behaviour() {
        assert_eq!(pad8(1), 8);
        assert_eq!(pad8(8), 8);
        assert_eq!(pad8(9), 16);
    }
}
