//! SMaT-style BCSR Tensor-Core SpMM (Okanovic et al., 2024).
//!
//! Designed for highly sparse scientific matrices: only non-empty 16×16
//! blocks are stored and multiplied, so performance scales with *block*
//! density, not element density. At uniform LLM sparsities every block is
//! non-empty and SMaT degenerates to dense GEMM plus index overhead and a
//! less efficient small-block streaming pattern; with clustered extreme
//! sparsity (>99.7%) block skipping wins (paper Fig. 11's crossover).

use crate::formats::bcsr::Bcsr;
use crate::kernels::common::{
    check_k, finish_launch, pad8, single_launch, store_output, stream_ldgsts, tensor_core_work,
    validate_offsets,
};
use gpu_sim::counters::Counters;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// The SMaT baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmatSpmm;

/// Statistics the analytic path needs.
#[derive(Clone, Copy, Debug)]
pub struct SmatStats {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub k: usize,
    /// Stored (non-empty) 16×16 blocks.
    pub stored_blocks: usize,
}

impl SmatStats {
    /// From a real encoding.
    pub fn from_encoded(w: &Bcsr) -> Self {
        SmatStats {
            m: w.m,
            k: w.k,
            stored_blocks: w.num_blocks(),
        }
    }

    /// Expected statistics under *uniform* element sparsity.
    pub fn synthetic_uniform(m: usize, k: usize, sparsity: f64) -> Self {
        let slots = m.div_ceil(16) * k.div_ceil(16);
        let p = 1.0 - sparsity.powi(256);
        SmatStats {
            m,
            k,
            stored_blocks: (slots as f64 * p).round() as usize,
        }
    }

    /// Statistics for *clustered* sparsity where non-zeros concentrate in
    /// a `block_density` fraction of blocks (scientific matrices).
    pub fn synthetic_clustered(m: usize, k: usize, block_density: f64) -> Self {
        let slots = m.div_ceil(16) * k.div_ceil(16);
        SmatStats {
            m,
            k,
            stored_blocks: (slots as f64 * block_density.clamp(0.0, 1.0)).round() as usize,
        }
    }
}

impl SmatSpmm {
    /// Creates the kernel.
    pub fn new() -> Self {
        SmatSpmm
    }

    /// Analytic launch from block statistics.
    pub fn estimate(&self, spec: &GpuSpec, stats: &SmatStats, n: usize) -> SpmmRun {
        let n_pad = pad8(n);
        let tile_n = n_pad.min(32);
        let grid_x = n_pad.div_ceil(tile_n);
        let mut c = Counters::new();
        // Stored blocks stream densely (512 B each) plus BCSR indices.
        let w_reread = gpu_sim::timing::panel_reread_factor(spec, stats.k, n_pad, tile_n);
        let w_bytes =
            (stats.stored_blocks * (512 + 4) + 4 * (stats.m.div_ceil(16) + 1)) as u64 * w_reread;
        stream_ldgsts(&mut c, w_bytes);
        // X rows gathered per stored block (block-column indexed).
        let x_bytes = (stats.stored_blocks * 16 * tile_n * 2) as u64 * grid_x as u64;
        c.dram_read_bytes += x_bytes;
        c.useful_read_bytes += x_bytes;
        c.global_load_insts += x_bytes.div_ceil(512);
        c.insts_issued += x_bytes.div_ceil(512);
        // One mma chain per stored block.
        let n8 = (tile_n / 8) as u64;
        let blocks = stats.stored_blocks as u64 * grid_x as u64;
        tensor_core_work(&mut c, blocks * n8, blocks + blocks * n8.div_ceil(2));
        c.cuda_int_insts += blocks * 2;
        c.insts_issued += blocks * 2;
        store_output(&mut c, (4 * stats.m * n_pad) as u64);

        let l2 = [L2Reuse {
            buffer_bytes: (2 * stats.k * n_pad) as u64,
            requested_bytes: x_bytes,
        }];
        let grid = (stats.m.div_ceil(64) * grid_x) as u64;
        let avg_blocks_per_row = stats.stored_blocks as f64 / stats.m.div_ceil(16).max(1) as f64;
        let chain = single_launch(
            "smat_bcsr_spmm",
            spec,
            c,
            grid.max(1),
            BlockResources {
                threads: 128,
                regs_per_thread: 72,
                smem_bytes: 24 * 1024,
            },
            avg_blocks_per_row.max(1.0),
            PipelineMode::AsyncDoubleBuffered,
            28.0,
            Some(1536.0),
            &l2,
        );
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for SmatSpmm {
    type Encoded = Bcsr;

    fn name(&self) -> &'static str {
        "SMaT"
    }

    fn format_key(&self) -> &'static str {
        "bcsr"
    }

    fn encode(&self, w: &DenseMatrix) -> Bcsr {
        Bcsr::encode(w)
    }

    fn validate(&self, enc: &Bcsr) -> Result<(), SpinferError> {
        validate_offsets(
            &enc.row_ptr,
            enc.m.div_ceil(enc.block) + 1,
            enc.col_idx.len(),
        )
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &Bcsr,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.k, x)?;
        if ctx.checked() {
            self.validate(enc)?;
        }
        // Block occupancy measured from the real pattern.
        let stats = SmatStats::from_encoded(enc);
        let r = self.estimate(ctx.spec, &stats, x.cols());
        // Fanned across host cores; bit-identical to the serial
        // reference (see `gpu_sim::exec`).
        Ok(finish_launch(
            ctx,
            self.name(),
            r,
            enc.decode().par_matmul_ref(x),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn functional_output_matches_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(64, 64, 0.9, ValueDist::Uniform, 91);
        let x = random_dense(64, 8, ValueDist::Uniform, 92);
        let r = SmatSpmm::new().run(&spec, &w, &x);
        assert_eq!(r.output.unwrap(), w.matmul_ref(&x));
    }

    #[test]
    fn no_skipping_at_llm_sparsity() {
        let s = SmatStats::synthetic_uniform(4096, 4096, 0.5);
        assert_eq!(s.stored_blocks, 256 * 256);
    }

    #[test]
    fn slower_than_spinfer_at_llm_sparsity() {
        // Paper Fig. 11: SpInfer 2.12× over SMaT at 50%.
        use spinfer_core::{FormatStats, SpinferSpmm};
        let spec = GpuSpec::rtx4090();
        let sm = SmatSpmm::new()
            .estimate(&spec, &SmatStats::synthetic_uniform(8192, 8192, 0.5), 16)
            .time_us();
        let sp = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.5), 16)
            .time_us();
        let ratio = sm / sp;
        assert!(ratio > 1.5, "SpInfer/SMaT ratio {ratio}");
    }

    #[test]
    fn wins_at_clustered_extreme_sparsity() {
        // Block skipping beats SpInfer's bitmap floor when almost all
        // blocks are empty (the Fig. 11 crossover).
        use spinfer_core::{FormatStats, SpinferSpmm};
        let spec = GpuSpec::rtx4090();
        let sm = SmatSpmm::new()
            .estimate(
                &spec,
                &SmatStats::synthetic_clustered(8192, 8192, 0.005),
                16,
            )
            .time_us();
        let sp = SpinferSpmm::new()
            .estimate(&spec, &FormatStats::synthetic(8192, 8192, 0.999), 16)
            .time_us();
        assert!(sm < sp, "SMaT {sm} should beat SpInfer {sp} here");
    }

    #[test]
    fn time_scales_with_block_density() {
        let spec = GpuSpec::rtx4090();
        let dense = SmatSpmm::new()
            .estimate(&spec, &SmatStats::synthetic_clustered(8192, 8192, 1.0), 16)
            .time_us();
        let sparse = SmatSpmm::new()
            .estimate(&spec, &SmatStats::synthetic_clustered(8192, 8192, 0.1), 16)
            .time_us();
        assert!(sparse < dense * 0.3);
    }
}
