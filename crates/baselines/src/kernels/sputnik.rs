//! Sputnik-style CUDA-core SpMM (Gale et al., SC'20).
//!
//! One-dimensional tiling: each warp owns a strip of output rows, streams
//! its CSR values/indices with vector loads (`LDG.128`, reverse-offset
//! alignment), gathers rows of `X`, and accumulates with CUDA-core FMAs.
//! Well engineered for its class — but it pays 6 B per non-zero of CSR
//! traffic (CR < 1 below ~67% sparsity) and its FLOPs run on CUDA cores,
//! not Tensor Cores, so it trails dense cuBLAS at LLM sparsities (paper
//! Fig. 10 shows SpInfer ≈ 2.55× over it).

use crate::formats::csr::Csr;
use crate::kernels::common::{
    check_k, cuda_fma_work, finish_launch, gather, pad8, single_launch, store_output,
    stream_ldg_via_rf, validate_offsets,
};
use gpu_sim::counters::Counters;
use gpu_sim::matrix::DenseMatrix;
use gpu_sim::occupancy::BlockResources;
use gpu_sim::spec::GpuSpec;
use gpu_sim::timing::{L2Reuse, PipelineMode};
use spinfer_core::error::IntegrityError;
use spinfer_core::spmm::{LaunchCtx, SpmmKernel, SpmmRun};
use spinfer_core::SpinferError;

/// Values/indices per vector load (8 × (2 B + 4 B) ≈ one 128-bit load
/// pair); the gather granularity of the kernel.
const VECTOR_WIDTH: u64 = 8;

/// The Sputnik baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct SputnikSpmm;

impl SputnikSpmm {
    /// Creates the kernel.
    pub fn new() -> Self {
        SputnikSpmm
    }

    /// Analytic launch from matrix statistics, assuming balanced rows
    /// (the pattern per-row pruners produce).
    pub fn estimate(&self, spec: &GpuSpec, m: usize, k: usize, n: usize, nnz: usize) -> SpmmRun {
        self.estimate_with_imbalance(spec, m, k, n, nnz, 0.0)
    }

    /// Analytic launch with an explicit per-row non-zero coefficient of
    /// variation `row_cv` (`std / mean`). Row-per-warp scheduling makes
    /// the kernel finish with its slowest rows: the exposed tail scales
    /// with the imbalance (Sputnik's row-swizzle mitigates but does not
    /// remove it — modelled at half strength).
    pub fn estimate_with_imbalance(
        &self,
        spec: &GpuSpec,
        m: usize,
        k: usize,
        n: usize,
        nnz: usize,
        row_cv: f64,
    ) -> SpmmRun {
        let mut run = self.estimate_balanced(spec, m, k, n, nnz);
        let tail = 1.0 + 0.5 * row_cv.max(0.0);
        for l in &mut run.chain.launches {
            l.timing.time_sec *= tail;
            l.timing.cycles *= tail;
        }
        run
    }

    fn estimate_balanced(
        &self,
        spec: &GpuSpec,
        m: usize,
        k: usize,
        n: usize,
        nnz: usize,
    ) -> SpmmRun {
        let n_pad = pad8(n);
        let mut c = Counters::new();
        // CSR stream: 6 B per non-zero plus row pointers, vectorized.
        let csr_bytes = (6 * nnz + 4 * (m + 1)) as u64;
        stream_ldg_via_rf(&mut c, csr_bytes);
        // X gathers: one dependent gather per VECTOR_WIDTH non-zeros per
        // lane-row; each touches `n_pad × 2` contiguous bytes.
        let gathers = (nnz as u64).div_ceil(VECTOR_WIDTH);
        let row_bytes = (n_pad * 2) as u64;
        let x_requested = gathers * row_bytes.div_ceil(32) * 32;
        gather(&mut c, gathers, row_bytes, row_bytes.div_ceil(32));
        // FMAs on CUDA cores: 2 × nnz × N FLOPs.
        cuda_fma_work(&mut c, 2 * nnz as u64 * n_pad as u64);
        // Index arithmetic per vector.
        c.cuda_int_insts += gathers * 2;
        c.insts_issued += gathers * 2;
        store_output(&mut c, (4 * m * n_pad) as u64);

        let l2 = [L2Reuse {
            buffer_bytes: (2 * k * n_pad) as u64,
            requested_bytes: x_requested,
        }];
        // One warp per row strip; 32-row blocks.
        let grid = (m as u64).div_ceil(32).max(1);
        let chain = single_launch(
            "sputnik_spmm",
            spec,
            c,
            grid,
            BlockResources {
                threads: 256,
                regs_per_thread: 64,
                smem_bytes: 8 * 1024,
            },
            (nnz as f64 / m.max(1) as f64 / VECTOR_WIDTH as f64).max(1.0),
            PipelineMode::Synchronous,
            8.0,
            Some(768.0),
            &l2,
        );
        SpmmRun {
            output: None,
            chain,
        }
    }
}

impl SpmmKernel for SputnikSpmm {
    type Encoded = Csr;

    fn name(&self) -> &'static str {
        "Sputnik"
    }

    fn format_key(&self) -> &'static str {
        "csr"
    }

    fn encode(&self, w: &DenseMatrix) -> Csr {
        Csr::encode(w)
    }

    fn validate(&self, enc: &Csr) -> Result<(), SpinferError> {
        validate_offsets(&enc.row_ptr, enc.m + 1, enc.values.len())?;
        if enc.col_idx.len() != enc.values.len() {
            return Err(IntegrityError::NnzMismatch {
                expected: enc.values.len(),
                got: enc.col_idx.len(),
            }
            .into());
        }
        Ok(())
    }

    fn launch(
        &self,
        ctx: &LaunchCtx<'_>,
        enc: &Csr,
        x: &DenseMatrix,
    ) -> Result<SpmmRun, SpinferError> {
        check_k(enc.k, x)?;
        if ctx.checked() {
            self.validate(enc)?;
        }
        let r = self.estimate(ctx.spec, enc.m, enc.k, x.cols(), enc.nnz());
        // Fanned across host cores; bit-identical to the serial
        // reference (see `gpu_sim::exec`).
        Ok(finish_launch(ctx, self.name(), r, enc.par_spmm_ref(x)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn functional_output_matches_reference() {
        let spec = GpuSpec::rtx4090();
        let w = random_sparse(96, 96, 0.5, ValueDist::Uniform, 61);
        let x = random_dense(96, 16, ValueDist::Uniform, 62);
        let r = SputnikSpmm::new().run(&spec, &w, &x);
        let got = r.output.unwrap();
        let want = w.matmul_ref(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn slower_than_cublas_at_50_percent() {
        use crate::kernels::cublas::CublasGemm;
        let spec = GpuSpec::rtx4090();
        let nnz = 8192 * 8192 / 2;
        let sp = SputnikSpmm::new()
            .estimate(&spec, 8192, 8192, 16, nnz)
            .time_us();
        let cb = CublasGemm::new().estimate(&spec, 8192, 8192, 16).time_us();
        let speedup = cb / sp;
        assert!(speedup < 0.95, "sputnik speedup {speedup}");
        assert!(
            speedup > 0.3,
            "sputnik should not be catastrophic: {speedup}"
        );
    }

    #[test]
    fn row_imbalance_exposes_a_tail() {
        let spec = GpuSpec::rtx4090();
        let nnz = 4096 * 4096 / 2;
        let balanced = SputnikSpmm::new()
            .estimate_with_imbalance(&spec, 4096, 4096, 16, nnz, 0.0)
            .time_us();
        let skewed = SputnikSpmm::new()
            .estimate_with_imbalance(&spec, 4096, 4096, 16, nnz, 1.0)
            .time_us();
        assert!((skewed / balanced - 1.5).abs() < 1e-6);
    }

    #[test]
    fn improves_with_sparsity() {
        let spec = GpuSpec::rtx4090();
        let t50 = SputnikSpmm::new()
            .estimate(&spec, 4096, 4096, 16, 4096 * 4096 / 2)
            .time_us();
        let t90 = SputnikSpmm::new()
            .estimate(&spec, 4096, 4096, 16, 4096 * 4096 / 10)
            .time_us();
        assert!(t90 < t50 * 0.5);
    }
}
