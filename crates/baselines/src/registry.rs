//! The kernel registry: every SpMM kernel in the repo — SpInfer and the
//! six baselines — as a type-erased [`DynSpmmKernel`], addressable by
//! its paper-figure label.
//!
//! This is the one place that knows the full kernel roster. Sweeps, the
//! CLI, and the selector resolve kernels by name through
//! [`kernel_by_name`] instead of matching on concrete types, so adding
//! a kernel means adding one registry line.

use spinfer_core::spmm::DynSpmmKernel;
use spinfer_core::{SpinferError, SpinferSpmm, SpinferSpmmInt8};

use crate::kernels::{CublasGemm, CusparseSpmm, FlashLlmSpmm, SmatSpmm, SpartaSpmm, SputnikSpmm};

/// Every registered kernel, in the paper's Figure 10 roster order.
/// Names match the figure labels (`cuBLAS_TC`, `SpInfer`, `Flash-LLM`,
/// `SparTA`, `Sputnik`, `cuSPARSE`, `SMaT`), plus the quantized
/// `SpInfer-INT8` variant from the precision ablation.
pub fn registry() -> Vec<DynSpmmKernel> {
    vec![
        DynSpmmKernel::new(CublasGemm::new()),
        DynSpmmKernel::new(SpinferSpmm::new()),
        DynSpmmKernel::new(SpinferSpmmInt8::new()),
        DynSpmmKernel::new(FlashLlmSpmm::new()),
        DynSpmmKernel::new(SpartaSpmm::new()),
        DynSpmmKernel::new(SputnikSpmm::new()),
        DynSpmmKernel::new(CusparseSpmm::new()),
        DynSpmmKernel::new(SmatSpmm::new()),
    ]
}

/// Resolves a kernel by its registered name, or returns
/// [`SpinferError::UnknownKernel`] listing nothing but the offending
/// name — callers print the roster from [`registry`] when they want
/// suggestions.
pub fn kernel_by_name(name: &str) -> Result<DynSpmmKernel, SpinferError> {
    registry()
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| SpinferError::UnknownKernel {
            name: name.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_distinct_and_resolve() {
        let names: Vec<&str> = registry().iter().map(|k| k.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate kernel names");
        assert_eq!(names.len(), 8);
        for n in names {
            assert_eq!(kernel_by_name(n).expect("registered").name(), n);
        }
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = kernel_by_name("warp-speed-gemm").unwrap_err();
        assert_eq!(
            err,
            SpinferError::UnknownKernel {
                name: "warp-speed-gemm".to_string()
            }
        );
        assert!(err.to_string().contains("warp-speed-gemm"));
    }

    #[test]
    fn csr_kernels_share_a_format_key() {
        // Sputnik and cuSPARSE both consume CSR: an encode cache keyed
        // by format_key builds the encoding once for both.
        let sputnik = kernel_by_name("Sputnik").unwrap();
        let cusparse = kernel_by_name("cuSPARSE").unwrap();
        assert_eq!(sputnik.format_key(), cusparse.format_key());
        assert_eq!(sputnik.format_key(), "csr");
    }
}
