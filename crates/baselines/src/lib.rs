//! # spinfer-baselines — baseline formats and kernels
//!
//! Every system the SpInfer paper compares against, implemented from its
//! published design on the shared [`gpu_sim`] substrate:
//!
//! | Baseline | Format | Kernel |
//! |---|---|---|
//! | cuBLAS_TC | dense | [`kernels::CublasGemm`] |
//! | Flash-LLM | [`formats::TiledCsl`] (Eq. 2) | [`kernels::FlashLlmSpmm`] |
//! | SparTA | [`formats::SpartaFormat`] (Eqs. 4-5) | [`kernels::SpartaSpmm`] |
//! | Sputnik | [`formats::Csr`] (Eq. 3) | [`kernels::SputnikSpmm`] |
//! | cuSPARSE | [`formats::Csr`] | [`kernels::CusparseSpmm`] |
//! | SMaT | [`formats::Bcsr`] | [`kernels::SmatSpmm`] |
//!
//! All kernels expose the same two paths as `spinfer-core`'s kernel: a
//! functional `run` (bit-exact output) and an analytic `estimate` (same
//! counters from format statistics) for paper-scale sweeps.

pub mod formats;
pub mod kernels;
pub mod selector;

pub use formats::{Bcsr, Csr, SpartaFormat, TiledCsl};
pub use kernels::{
    CublasGemm, CusparseSpmm, FlashLlmSpmm, FlashLlmStats, SmatSpmm, SmatStats, SpartaSpmm,
    SpartaStats, SputnikSpmm,
};
pub use selector::{select, Route, Selection};
