//! # spinfer-baselines — baseline formats and kernels
//!
//! Every system the SpInfer paper compares against, implemented from its
//! published design on the shared [`gpu_sim`] substrate:
//!
//! | Baseline | Format | Kernel |
//! |---|---|---|
//! | cuBLAS_TC | dense | [`kernels::CublasGemm`] |
//! | Flash-LLM | [`formats::TiledCsl`] (Eq. 2) | [`kernels::FlashLlmSpmm`] |
//! | SparTA | [`formats::SpartaFormat`] (Eqs. 4-5) | [`kernels::SpartaSpmm`] |
//! | Sputnik | [`formats::Csr`] (Eq. 3) | [`kernels::SputnikSpmm`] |
//! | cuSPARSE | [`formats::Csr`] | [`kernels::CusparseSpmm`] |
//! | SMaT | [`formats::Bcsr`] | [`kernels::SmatSpmm`] |
//!
//! Every kernel implements the [`spinfer_core::spmm::SpmmKernel`]
//! contract — `encode` into its format, `launch` against a
//! [`spinfer_core::spmm::LaunchCtx`] (tracing and validation compose
//! through the context) — plus a kernel-specific analytic `estimate`
//! (same counters from format statistics) for paper-scale sweeps. The
//! [`registry()`] lists them all as type-erased handles; resolve one with
//! [`kernel_by_name`].

pub mod formats;
pub mod kernels;
pub mod registry;
pub mod selector;

pub use formats::{Bcsr, Csr, SpartaFormat, TiledCsl};
pub use kernels::{
    CublasGemm, CusparseSpmm, FlashLlmSpmm, FlashLlmStats, SmatSpmm, SmatStats, SpartaSpmm,
    SpartaStats, SputnikSpmm,
};
pub use registry::{kernel_by_name, registry};
pub use selector::{select, Route, Selection};
