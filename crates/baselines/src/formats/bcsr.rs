//! Block-CSR (BCSR) — the layout SMaT-style Tensor-Core SpMM uses.
//!
//! The matrix is partitioned into dense `B×B` blocks; only blocks with at
//! least one non-zero are stored (densely), indexed CSR-style at block
//! granularity. At scientific-workload sparsities (>99%) most blocks are
//! empty and skipped; at LLM pruning sparsities (~50%) virtually every
//! block is non-empty, so BCSR stores the *whole* dense matrix plus index
//! overhead — exactly why SMaT loses below ~99.7% sparsity (paper Fig. 11).

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Default block edge (matches the 16×16 `mma` tile).
pub const DEFAULT_BLOCK: usize = 16;

/// A sparse matrix in BCSR format.
#[derive(Clone, Debug)]
pub struct Bcsr {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Block edge length.
    pub block: usize,
    /// Block-row pointers (`m_blocks + 1`).
    pub row_ptr: Vec<u32>,
    /// Block-column index per stored block.
    pub col_idx: Vec<u32>,
    /// Stored blocks, each `block × block` row-major FP16.
    pub blocks: Vec<Half>,
    /// True non-zero count.
    pub nnz: usize,
}

impl Bcsr {
    /// Encodes with the default 16×16 block.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        Self::encode_with(matrix, DEFAULT_BLOCK)
    }

    /// Encodes with an explicit block edge.
    pub fn encode_with(matrix: &DenseMatrix, block: usize) -> Self {
        assert!(block > 0);
        let m = matrix.rows();
        let k = matrix.cols();
        let mb = m.div_ceil(block);
        let kb = k.div_ceil(block);
        let mut row_ptr = Vec::with_capacity(mb + 1);
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();
        let mut nnz = 0usize;
        row_ptr.push(0);
        for br in 0..mb {
            for bc in 0..kb {
                let mut any = false;
                let mut buf = vec![Half::ZERO; block * block];
                for lr in 0..block {
                    for lc in 0..block {
                        let (r, c) = (br * block + lr, bc * block + lc);
                        if r < m && c < k {
                            let v = matrix.get(r, c);
                            if !v.is_zero() {
                                any = true;
                                nnz += 1;
                                buf[lr * block + lc] = v;
                            }
                        }
                    }
                }
                if any {
                    col_idx.push(bc as u32);
                    blocks.extend(buf);
                }
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Bcsr {
            m,
            k,
            block,
            row_ptr,
            col_idx,
            blocks,
            nnz,
        }
    }

    /// Number of stored (non-empty) blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Total block slots in the matrix grid.
    pub fn total_block_slots(&self) -> usize {
        self.m.div_ceil(self.block) * self.k.div_ceil(self.block)
    }

    /// Fraction of block slots that are stored.
    pub fn block_density(&self) -> f64 {
        self.num_blocks() as f64 / self.total_block_slots().max(1) as f64
    }

    /// Storage bytes: dense blocks + block indices + block-row pointers.
    pub fn storage_bytes(&self) -> usize {
        2 * self.blocks.len() + 4 * self.col_idx.len() + 4 * self.row_ptr.len()
    }

    /// Compression ratio vs dense.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense.
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        let mb = self.m.div_ceil(self.block);
        for br in 0..mb {
            for i in self.row_ptr[br] as usize..self.row_ptr[br + 1] as usize {
                let bc = self.col_idx[i] as usize;
                let buf = &self.blocks[i * self.block * self.block..];
                for lr in 0..self.block {
                    for lc in 0..self.block {
                        let (r, c) = (br * self.block + lr, bc * self.block + lc);
                        if r < self.m && c < self.k {
                            let v = buf[lr * self.block + lc];
                            if !v.is_zero() {
                                out.set(r, c, v);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        for &s in &[0.5, 0.9, 0.999] {
            let m = random_sparse(128, 128, s, ValueDist::Uniform, 31);
            let enc = Bcsr::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
        }
    }

    #[test]
    fn all_blocks_stored_at_llm_sparsity() {
        // At 50%: P(16×16 block empty) = 0.5^256 ≈ 0 — no skipping.
        let m = random_sparse(256, 256, 0.5, ValueDist::Uniform, 32);
        let enc = Bcsr::encode(&m);
        assert_eq!(enc.block_density(), 1.0);
        // Storage exceeds dense: index overhead with zero skipping.
        assert!(enc.compression_ratio() < 1.0);
    }

    #[test]
    fn blocks_skipped_at_extreme_sparsity() {
        let m = random_sparse(256, 256, 0.999, ValueDist::Uniform, 33);
        let enc = Bcsr::encode(&m);
        assert!(enc.block_density() < 0.9);
        assert!(enc.compression_ratio() > 1.0);
    }

    #[test]
    fn unaligned_dims() {
        let m = random_sparse(100, 90, 0.7, ValueDist::Uniform, 34);
        let enc = Bcsr::encode(&m);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn custom_block_size() {
        let m = random_sparse(64, 64, 0.95, ValueDist::Uniform, 35);
        let enc = Bcsr::encode_with(&m, 8);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.block, 8);
    }
}
