//! Block-CSR (BCSR) — the layout SMaT-style Tensor-Core SpMM uses.
//!
//! The matrix is partitioned into dense `B×B` blocks; only blocks with at
//! least one non-zero are stored (densely), indexed CSR-style at block
//! granularity. At scientific-workload sparsities (>99%) most blocks are
//! empty and skipped; at LLM pruning sparsities (~50%) virtually every
//! block is non-empty, so BCSR stores the *whole* dense matrix plus index
//! overhead — exactly why SMaT loses below ~99.7% sparsity (paper Fig. 11).

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Default block edge (matches the 16×16 `mma` tile).
pub const DEFAULT_BLOCK: usize = 16;

/// A sparse matrix in BCSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct Bcsr {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Block edge length.
    pub block: usize,
    /// Block-row pointers (`m_blocks + 1`).
    pub row_ptr: Vec<u32>,
    /// Block-column index per stored block.
    pub col_idx: Vec<u32>,
    /// Stored blocks, each `block × block` row-major FP16.
    pub blocks: Vec<Half>,
    /// True non-zero count.
    pub nnz: usize,
}

impl Bcsr {
    /// Encodes with the default 16×16 block.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        Self::encode_with(matrix, DEFAULT_BLOCK)
    }

    /// Encodes with an explicit block edge.
    ///
    /// Two-pass scheme over block-row bands: pass 1 counts each
    /// block-row's stored blocks and non-zeros in parallel, a serial
    /// prefix sum builds `row_ptr`, and pass 2 writes each stored
    /// block's dense payload straight into its final pre-zeroed slot
    /// (no per-block scratch allocation). Both passes visit blocks in
    /// the serial row-major order, so the output is bit-identical at
    /// every job count.
    pub fn encode_with(matrix: &DenseMatrix, block: usize) -> Self {
        assert!(block > 0);
        let m = matrix.rows();
        let k = matrix.cols();
        let data = matrix.as_slice();
        let mb = m.div_ceil(block);
        let kb = k.div_ceil(block);
        let bands = gpu_sim::exec::chunk_ranges(mb, gpu_sim::exec::num_jobs());

        // Pass 1: per block-row (stored blocks, non-zeros).
        let band_counts: Vec<Vec<(u32, usize)>> =
            gpu_sim::exec::par_map_untraced(bands.clone(), |brs| {
                brs.map(|br| {
                    let mut stored = 0u32;
                    let mut row_nnz = 0usize;
                    for bc in 0..kb {
                        let cnt = block_nnz(data, m, k, block, br, bc);
                        stored += u32::from(cnt > 0);
                        row_nnz += cnt;
                    }
                    (stored, row_nnz)
                })
                .collect()
            });
        let mut row_ptr = Vec::with_capacity(mb + 1);
        row_ptr.push(0u32);
        let mut nblocks = 0usize;
        let mut nnz = 0usize;
        for &(stored, row_nnz) in band_counts.iter().flatten() {
            nblocks += stored as usize;
            nnz += row_nnz;
            row_ptr.push(nblocks as u32);
        }

        // Pass 2: fill disjoint per-band col_idx / blocks slices.
        let bb = block * block;
        let mut col_idx = vec![0u32; nblocks];
        let mut blocks = vec![Half::ZERO; nblocks * bb];
        let mut jobs = Vec::with_capacity(bands.len());
        let (mut c_rest, mut b_rest) = (col_idx.as_mut_slice(), blocks.as_mut_slice());
        for brs in bands {
            let len = (row_ptr[brs.end] - row_ptr[brs.start]) as usize;
            let (c_band, c_tail) = c_rest.split_at_mut(len);
            let (b_band, b_tail) = b_rest.split_at_mut(len * bb);
            c_rest = c_tail;
            b_rest = b_tail;
            jobs.push((brs, c_band, b_band));
        }
        gpu_sim::exec::par_map_untraced(jobs, |(brs, c_band, b_band)| {
            let mut i = 0usize;
            for br in brs {
                let rlim = block.min(m - br * block);
                for bc in 0..kb {
                    if block_nnz(data, m, k, block, br, bc) == 0 {
                        continue;
                    }
                    let clim = block.min(k - bc * block);
                    let buf = &mut b_band[i * bb..(i + 1) * bb];
                    for lr in 0..rlim {
                        let base = (br * block + lr) * k + bc * block;
                        for (lc, v) in data[base..base + clim].iter().enumerate() {
                            if !v.is_zero() {
                                buf[lr * block + lc] = *v;
                            }
                        }
                    }
                    c_band[i] = bc as u32;
                    i += 1;
                }
            }
            debug_assert_eq!(i, c_band.len(), "pass-2 fill disagrees with pass-1 count");
        });
        Bcsr {
            m,
            k,
            block,
            row_ptr,
            col_idx,
            blocks,
            nnz,
        }
    }

    /// Number of stored (non-empty) blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Total block slots in the matrix grid.
    pub fn total_block_slots(&self) -> usize {
        self.m.div_ceil(self.block) * self.k.div_ceil(self.block)
    }

    /// Fraction of block slots that are stored.
    pub fn block_density(&self) -> f64 {
        self.num_blocks() as f64 / self.total_block_slots().max(1) as f64
    }

    /// Storage bytes: dense blocks + block indices + block-row pointers.
    pub fn storage_bytes(&self) -> usize {
        2 * self.blocks.len() + 4 * self.col_idx.len() + 4 * self.row_ptr.len()
    }

    /// Compression ratio vs dense.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense.
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        let mb = self.m.div_ceil(self.block);
        for br in 0..mb {
            for i in self.row_ptr[br] as usize..self.row_ptr[br + 1] as usize {
                let bc = self.col_idx[i] as usize;
                let buf = &self.blocks[i * self.block * self.block..];
                for lr in 0..self.block {
                    for lc in 0..self.block {
                        let (r, c) = (br * self.block + lr, bc * self.block + lc);
                        if r < self.m && c < self.k {
                            let v = buf[lr * self.block + lc];
                            if !v.is_zero() {
                                out.set(r, c, v);
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Non-zero count of block `(br, bc)`, clamped to the logical extent.
#[inline]
fn block_nnz(data: &[Half], m: usize, k: usize, block: usize, br: usize, bc: usize) -> usize {
    let rlim = block.min(m - br * block);
    let clim = block.min(k - bc * block);
    let mut cnt = 0usize;
    for lr in 0..rlim {
        let base = (br * block + lr) * k + bc * block;
        cnt += data[base..base + clim]
            .iter()
            .filter(|v| !v.is_zero())
            .count();
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        for &s in &[0.5, 0.9, 0.999] {
            let m = random_sparse(128, 128, s, ValueDist::Uniform, 31);
            let enc = Bcsr::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
        }
    }

    #[test]
    fn all_blocks_stored_at_llm_sparsity() {
        // At 50%: P(16×16 block empty) = 0.5^256 ≈ 0 — no skipping.
        let m = random_sparse(256, 256, 0.5, ValueDist::Uniform, 32);
        let enc = Bcsr::encode(&m);
        assert_eq!(enc.block_density(), 1.0);
        // Storage exceeds dense: index overhead with zero skipping.
        assert!(enc.compression_ratio() < 1.0);
    }

    #[test]
    fn blocks_skipped_at_extreme_sparsity() {
        let m = random_sparse(256, 256, 0.999, ValueDist::Uniform, 33);
        let enc = Bcsr::encode(&m);
        assert!(enc.block_density() < 0.9);
        assert!(enc.compression_ratio() > 1.0);
    }

    #[test]
    fn unaligned_dims() {
        let m = random_sparse(100, 90, 0.7, ValueDist::Uniform, 34);
        let enc = Bcsr::encode(&m);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn custom_block_size() {
        let m = random_sparse(64, 64, 0.95, ValueDist::Uniform, 35);
        let enc = Bcsr::encode_with(&m, 8);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.block, 8);
    }
}
