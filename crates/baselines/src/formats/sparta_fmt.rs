//! SparTA's composable sparse format (paper §3.2.1, Eqs. 4–5).
//!
//! The matrix is decomposed into a 2:4 semi-structured part — at most two
//! non-zeros per group of four consecutive row elements, stored as two
//! FP16 values plus two 2-bit indices per group — and a CSR residual
//! holding any third/fourth non-zero of a group. Sparse Tensor Cores
//! execute the 2:4 part; CUDA cores execute the residual.
//!
//! Expected residual size under uniform sparsity `s` (Eq. 4):
//! `E = (MK/4) × (4(1−s)³s + 2(1−s)⁴)`, and total storage (Eq. 5):
//! `Stor = (2B + B/4) × MK/2 + Stor_CSR(E)`.

use crate::formats::csr::Csr;
use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// A sparse matrix decomposed as 2:4 + CSR residual.
#[derive(Clone, Debug, PartialEq)]
pub struct SpartaFormat {
    /// Rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Columns padded to a multiple of 4.
    pub k_pad: usize,
    /// Two FP16 values per 4-element group, row-major: `m × k_pad / 2`.
    pub nm_values: Vec<Half>,
    /// Per kept value, its 2-bit position within the group (packed four
    /// per byte in storage; kept unpacked here for clarity).
    pub nm_indices: Vec<u8>,
    /// Residual non-zeros that did not fit the 2:4 pattern.
    pub residual: Csr,
}

impl SpartaFormat {
    /// Decomposes a dense matrix. The first two non-zeros of each group
    /// (by position) go to the 2:4 part; the rest spill to CSR.
    ///
    /// Row bands are processed in parallel: each band fills its disjoint
    /// `nm_values` / `nm_indices` slice and collects spilled non-zeros as
    /// in-order `(col, value)` lists plus per-row counts. The residual
    /// CSR is then assembled directly from those lists — spills appear
    /// in ascending column order within each row, so the result is
    /// field-for-field identical to `Csr::encode` of the old dense
    /// spill matrix (which this replaces) at every job count.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        let m = matrix.rows();
        let k = matrix.cols();
        let data = matrix.as_slice();
        let k_pad = k.div_ceil(4) * 4;
        let gpr = k_pad / 4;
        let bands = gpu_sim::exec::chunk_ranges(m, gpu_sim::exec::num_jobs());

        let mut nm_values = vec![Half::ZERO; m * gpr * 2];
        let mut nm_indices = vec![0u8; m * gpr * 2];
        let mut jobs = Vec::with_capacity(bands.len());
        let (mut v_rest, mut i_rest) = (nm_values.as_mut_slice(), nm_indices.as_mut_slice());
        for rows in bands {
            let len = rows.len() * gpr * 2;
            let (v_band, v_tail) = v_rest.split_at_mut(len);
            let (i_band, i_tail) = i_rest.split_at_mut(len);
            v_rest = v_tail;
            i_rest = i_tail;
            jobs.push((rows, v_band, i_band));
        }
        type BandSpill = (Vec<u32>, Vec<u32>, Vec<Half>);
        let band_spills: Vec<BandSpill> =
            gpu_sim::exec::par_map_untraced(jobs, |(rows, v_band, i_band)| {
                let mut counts = Vec::with_capacity(rows.len());
                let mut cols = Vec::new();
                let mut vals = Vec::new();
                let r0 = rows.start;
                for r in rows {
                    let before = cols.len();
                    for g in 0..gpr {
                        let mut kept = 0usize;
                        for i in 0..4 {
                            let c = g * 4 + i;
                            if c >= k {
                                break;
                            }
                            let v = data[r * k + c];
                            if v.is_zero() {
                                continue;
                            }
                            if kept < 2 {
                                let slot = ((r - r0) * gpr + g) * 2 + kept;
                                v_band[slot] = v;
                                i_band[slot] = i as u8;
                                kept += 1;
                            } else {
                                cols.push(c as u32);
                                vals.push(v);
                            }
                        }
                    }
                    counts.push((cols.len() - before) as u32);
                }
                (counts, cols, vals)
            });

        // Assemble the residual CSR directly from the in-order spills.
        let total: usize = band_spills.iter().map(|(_, c, _)| c.len()).sum();
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0u32);
        let mut nnz = 0usize;
        let mut col_idx = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for (counts, cols, vals) in band_spills {
            for c in counts {
                nnz += c as usize;
                row_ptr.push(nnz as u32);
            }
            col_idx.extend_from_slice(&cols);
            values.extend_from_slice(&vals);
        }
        let residual = Csr {
            m,
            k,
            row_ptr,
            col_idx,
            values,
        };
        SpartaFormat {
            m,
            k,
            k_pad,
            nm_values,
            nm_indices,
            residual,
        }
    }

    /// Non-zeros carried by the 2:4 part.
    pub fn nm_nnz(&self) -> usize {
        self.nm_values.iter().filter(|v| !v.is_zero()).count()
    }

    /// Actual storage bytes: 2:4 values (2 B each, `MK/2` slots) + 2-bit
    /// indices (packed) + residual CSR.
    pub fn storage_bytes(&self) -> usize {
        let slots = self.m * self.k_pad / 2;
        2 * slots + slots.div_ceil(4) + self.residual.storage_bytes()
    }

    /// Paper Eq. 4: expected residual non-zeros under uniform sparsity.
    pub fn expected_csr_nnz(m: usize, k: usize, s: f64) -> f64 {
        let groups = (m * k) as f64 / 4.0;
        let d = 1.0 - s;
        groups * (4.0 * d.powi(3) * s + 2.0 * d.powi(4))
    }

    /// Paper Eq. 5: expected total storage under uniform sparsity.
    pub fn storage_bytes_formula(m: usize, k: usize, s: f64) -> f64 {
        let e_nnz = Self::expected_csr_nnz(m, k, s);
        (2.0 + 0.25) * (m * k) as f64 / 2.0
            + Csr::storage_bytes_formula(m, e_nnz.round() as usize) as f64
    }

    /// Compression ratio vs dense.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense (2:4 part + residual).
    pub fn decode(&self) -> DenseMatrix {
        let mut out = self.residual.decode();
        let groups_per_row = self.k_pad / 4;
        for r in 0..self.m {
            for g in 0..groups_per_row {
                for slot in 0..2 {
                    let i = (r * groups_per_row + g) * 2 + slot;
                    let v = self.nm_values[i];
                    if !v.is_zero() {
                        let c = g * 4 + self.nm_indices[i] as usize;
                        if c < self.k {
                            out.set(r, c, v);
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        for &s in &[0.3, 0.5, 0.7] {
            let m = random_sparse(64, 128, s, ValueDist::Uniform, 21);
            let enc = SpartaFormat::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
        }
    }

    #[test]
    fn roundtrip_unaligned_k() {
        let m = random_sparse(32, 50, 0.5, ValueDist::Uniform, 22);
        let enc = SpartaFormat::encode(&m);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn residual_is_empty_for_true_2_4_pattern() {
        // A matrix with exactly 2 non-zeros in each group of 4.
        let mut m = DenseMatrix::zeros(8, 16);
        for r in 0..8 {
            for g in 0..4 {
                m.set(r, g * 4, Half::ONE);
                m.set(r, g * 4 + 3, Half::from_f32(2.0));
            }
        }
        let enc = SpartaFormat::encode(&m);
        assert_eq!(enc.residual.nnz(), 0);
        assert_eq!(enc.decode(), m);
    }

    #[test]
    fn dense_matrix_spills_half_to_csr() {
        let m = random_sparse(32, 32, 0.0, ValueDist::Uniform, 23);
        let enc = SpartaFormat::encode(&m);
        // 4 non-zeros per group: 2 kept, 2 spilled.
        assert_eq!(enc.residual.nnz(), 32 * 32 / 2);
    }

    #[test]
    fn expected_csr_nnz_matches_measurement() {
        let s = 0.5;
        let m = random_sparse(512, 512, s, ValueDist::Uniform, 24);
        let enc = SpartaFormat::encode(&m);
        let expected = SpartaFormat::expected_csr_nnz(512, 512, s);
        let actual = enc.residual.nnz() as f64;
        assert!(
            (actual - expected).abs() / expected < 0.05,
            "expected {expected}, measured {actual}"
        );
    }

    #[test]
    fn cr_slightly_above_one_at_50_percent() {
        // Paper Figure 3: SparTA's CR is a bit above 1 at 50%.
        let m = random_sparse(1024, 1024, 0.5, ValueDist::Uniform, 25);
        let enc = SpartaFormat::encode(&m);
        let cr = enc.compression_ratio();
        assert!(cr > 1.0 && cr < 1.4, "CR {cr}");
    }

    #[test]
    fn formula_tracks_actual_storage() {
        let m = random_sparse(1024, 1024, 0.6, ValueDist::Uniform, 26);
        let enc = SpartaFormat::encode(&m);
        let formula = SpartaFormat::storage_bytes_formula(1024, 1024, 0.6);
        let actual = enc.storage_bytes() as f64;
        assert!((actual - formula).abs() / formula < 0.05);
    }
}
