//! Compressed Sparse Row format (paper §3.2.1, Eq. 3).
//!
//! CSR stores non-zero values with 32-bit column indices plus a row-pointer
//! array: `Stor_CSR = (2B + 4B) × NNZ + 4B × (M + 1)`. The 4-byte column
//! index per 2-byte value is why CSR's compression ratio stays below 1
//! until ~67% sparsity — the indexing-overhead problem SpInfer attacks.

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// A sparse matrix in CSR format.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// Rows.
    pub m: usize,
    /// Columns.
    pub k: usize,
    /// Row pointers, `m + 1` entries.
    pub row_ptr: Vec<u32>,
    /// Column index per non-zero.
    pub col_idx: Vec<u32>,
    /// Non-zero values.
    pub values: Vec<Half>,
}

impl Csr {
    /// Encodes a dense matrix.
    ///
    /// Two-pass scheme over row bands (see `gpu_sim::exec`): pass 1
    /// counts non-zeros per row in parallel, a serial prefix sum builds
    /// `row_ptr`, and pass 2 fills disjoint pre-allocated `col_idx` /
    /// `values` slices cut at band boundaries. Both passes visit rows
    /// in ascending order within a band and bands tile the row space in
    /// order, so the output is bit-identical to the serial row-major
    /// scan at every job count.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        let m = matrix.rows();
        let k = matrix.cols();
        let data = matrix.as_slice();
        let bands = gpu_sim::exec::chunk_ranges(m, gpu_sim::exec::num_jobs());

        // Pass 1: per-row non-zero counts.
        let band_counts: Vec<Vec<u32>> = gpu_sim::exec::par_map_untraced(bands.clone(), |rows| {
            rows.map(|r| {
                data[r * k..(r + 1) * k]
                    .iter()
                    .filter(|v| !v.is_zero())
                    .count() as u32
            })
            .collect()
        });
        let mut row_ptr = Vec::with_capacity(m + 1);
        row_ptr.push(0u32);
        let mut nnz = 0usize;
        for c in band_counts.iter().flatten() {
            nnz += *c as usize;
            row_ptr.push(nnz as u32);
        }

        // Pass 2: fill disjoint per-band slices.
        let mut col_idx = vec![0u32; nnz];
        let mut values = vec![Half::ZERO; nnz];
        let mut jobs = Vec::with_capacity(bands.len());
        let (mut c_rest, mut v_rest) = (col_idx.as_mut_slice(), values.as_mut_slice());
        for rows in bands {
            let len = (row_ptr[rows.end] - row_ptr[rows.start]) as usize;
            let (c_band, c_tail) = c_rest.split_at_mut(len);
            let (v_band, v_tail) = v_rest.split_at_mut(len);
            c_rest = c_tail;
            v_rest = v_tail;
            jobs.push((rows, c_band, v_band));
        }
        gpu_sim::exec::par_map_untraced(jobs, |(rows, c_band, v_band)| {
            let mut i = 0usize;
            for r in rows {
                for (c, v) in data[r * k..(r + 1) * k].iter().enumerate() {
                    if !v.is_zero() {
                        c_band[i] = c as u32;
                        v_band[i] = *v;
                        i += 1;
                    }
                }
            }
            debug_assert_eq!(i, c_band.len(), "pass-2 fill disagrees with pass-1 count");
        });
        Csr {
            m,
            k,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Actual storage bytes.
    pub fn storage_bytes(&self) -> usize {
        Self::storage_bytes_formula(self.m, self.nnz())
    }

    /// Paper Eq. 3: `(2B + 4B) × NNZ + 4B × (M + 1)`.
    pub fn storage_bytes_formula(m: usize, nnz: usize) -> usize {
        6 * nnz + 4 * (m + 1)
    }

    /// Compression ratio vs the dense matrix (paper Eq. 1).
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense (correctness oracle).
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        for r in 0..self.m {
            for i in self.row_ptr[r] as usize..self.row_ptr[r + 1] as usize {
                out.set(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
        out
    }

    /// Reference SpMM `self × x` with FP32 accumulation.
    pub fn spmm_ref(&self, x: &DenseMatrix) -> Vec<f32> {
        assert_eq!(x.rows(), self.k);
        let n = x.cols();
        let x_f32 = x.to_f32_vec();
        let v_f32 = gpu_sim::fp16::f16_to_f32_vec(&self.values);
        let mut out = vec![0.0f32; self.m * n];
        self.spmm_ref_rows(&v_f32, &x_f32, n, 0..self.m, &mut out);
        out
    }

    /// Serial inner loop for output rows `rows`, writing into `out`
    /// (densely packed from the first requested row). `x_f32` is the
    /// pre-converted activation matrix with `n` columns and `v_f32` the
    /// pre-converted nonzero values — hoisting every per-element
    /// `f16 → f32` conversion and the X row slicing out of the
    /// per-nonzero loop. Shared by [`Csr::spmm_ref`] and
    /// [`Csr::par_spmm_ref`] so accumulation order is identical by
    /// construction at every job count.
    fn spmm_ref_rows(
        &self,
        v_f32: &[f32],
        x_f32: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let r0 = rows.start;
        for r in rows {
            let out_row = &mut out[(r - r0) * n..(r - r0 + 1) * n];
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            for (&v, &c) in v_f32[lo..hi].iter().zip(&self.col_idx[lo..hi]) {
                let x_row = &x_f32[c as usize * n..(c as usize + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(x_row) {
                    *o += v * b;
                }
            }
        }
    }

    /// [`Csr::spmm_ref`] fanned across host cores via
    /// [`gpu_sim::exec`]: each worker computes a contiguous band of
    /// output rows with the serial per-row loop (one shared pre-converted
    /// X and value buffer read by all workers), so the result is
    /// bit-identical to `spmm_ref` at any job count.
    pub fn par_spmm_ref(&self, x: &DenseMatrix) -> Vec<f32> {
        assert_eq!(x.rows(), self.k);
        let n = x.cols();
        let x_f32 = x.to_f32_vec();
        let v_f32 = gpu_sim::fp16::f16_to_f32_vec(&self.values);
        let bands = gpu_sim::exec::par_chunks(self.m, |rows| {
            let mut band = vec![0.0f32; rows.len() * n];
            self.spmm_ref_rows(&v_f32, &x_f32, n, rows, &mut band);
            band
        });
        bands.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_dense, random_sparse, ValueDist};

    #[test]
    fn roundtrip() {
        let m = random_sparse(64, 96, 0.6, ValueDist::Uniform, 1);
        let enc = Csr::encode(&m);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.nnz(), m.nnz());
    }

    #[test]
    fn storage_formula() {
        let m = random_sparse(128, 128, 0.5, ValueDist::Uniform, 2);
        let enc = Csr::encode(&m);
        assert_eq!(enc.storage_bytes(), 6 * enc.nnz() + 4 * 129);
    }

    #[test]
    fn cr_below_one_at_half_sparsity() {
        // The paper's point: CSR *grows* memory at 50% sparsity.
        let m = random_sparse(512, 512, 0.5, ValueDist::Uniform, 3);
        let enc = Csr::encode(&m);
        assert!(
            enc.compression_ratio() < 1.0,
            "CR {}",
            enc.compression_ratio()
        );
    }

    #[test]
    fn cr_above_one_at_high_sparsity() {
        let m = random_sparse(512, 512, 0.9, ValueDist::Uniform, 4);
        let enc = Csr::encode(&m);
        assert!(enc.compression_ratio() > 2.0);
    }

    #[test]
    fn spmm_ref_matches_dense_reference() {
        let w = random_sparse(64, 64, 0.5, ValueDist::Uniform, 5);
        let x = random_dense(64, 8, ValueDist::Uniform, 6);
        let enc = Csr::encode(&w);
        let a = enc.spmm_ref(&x);
        let b = w.matmul_ref(&x);
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-4);
        }
    }

    #[test]
    fn par_spmm_ref_is_bit_identical_to_serial() {
        let w = random_sparse(123, 77, 0.7, ValueDist::Uniform, 7);
        let x = random_dense(77, 9, ValueDist::Uniform, 8);
        let enc = Csr::encode(&w);
        assert_eq!(enc.par_spmm_ref(&x), enc.spmm_ref(&x));
    }

    #[test]
    fn empty_rows_are_handled() {
        let mut m = DenseMatrix::zeros(4, 4);
        m.set(2, 1, Half::ONE);
        let enc = Csr::encode(&m);
        assert_eq!(enc.row_nnz(0), 0);
        assert_eq!(enc.row_nnz(2), 1);
        assert_eq!(enc.decode(), m);
    }
}
