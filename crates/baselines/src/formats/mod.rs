//! Baseline sparse matrix formats with the paper's storage equations.

pub mod bcsr;
pub mod csr;
pub mod sparta_fmt;
pub mod tiled_csl;

pub use bcsr::Bcsr;
pub use csr::Csr;
pub use sparta_fmt::SpartaFormat;
pub use tiled_csl::TiledCsl;
