//! Tiled-CSL — Flash-LLM's sparse format (paper §3.2.1, Eq. 2).
//!
//! Non-zeros are grouped by tile. Each entry packs the FP16 value with a
//! 16-bit *in-tile position* into one 32-bit word (`NonZeros`); a
//! `TileOffsets` array marks each tile's start:
//! `Stor_Tiled-CSL = 4B × NT + 4B × NNZ`. The 16-bit per-element position
//! makes the index overhead equal to the payload — CR reaches 1.0 only at
//! 50% sparsity.

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Default Flash-LLM tile height (rows).
pub const TILE_ROWS: usize = 64;
/// Default Flash-LLM tile width (columns).
pub const TILE_COLS: usize = 64;

/// One packed non-zero: value in the low half, in-tile position in the
/// high half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedNz(pub u32);

impl PackedNz {
    /// Packs a value and its in-tile position.
    pub fn new(value: Half, pos: u16) -> Self {
        PackedNz(u32::from(value.to_bits()) | (u32::from(pos) << 16))
    }

    /// The FP16 value.
    pub fn value(self) -> Half {
        Half::from_bits((self.0 & 0xFFFF) as u16)
    }

    /// The in-tile position (row-major within the tile).
    pub fn pos(self) -> u16 {
        (self.0 >> 16) as u16
    }
}

/// A sparse matrix in Tiled-CSL format.
#[derive(Clone, Debug)]
pub struct TiledCsl {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Rows padded to the tile grid.
    pub m_pad: usize,
    /// Columns padded to the tile grid.
    pub k_pad: usize,
    /// Start of each tile in `non_zeros`, plus end sentinel.
    pub tile_offsets: Vec<u32>,
    /// Packed (value, position) entries, tile-major (row-major tiles).
    pub non_zeros: Vec<PackedNz>,
    /// True non-zero count.
    pub nnz: usize,
}

impl TiledCsl {
    /// Encodes a dense matrix with 64×64 tiles.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        let m = matrix.rows();
        let k = matrix.cols();
        let m_pad = m.div_ceil(TILE_ROWS) * TILE_ROWS;
        let k_pad = k.div_ceil(TILE_COLS) * TILE_COLS;
        let ty = m_pad / TILE_ROWS;
        let tx = k_pad / TILE_COLS;
        let mut tile_offsets = Vec::with_capacity(ty * tx + 1);
        let mut non_zeros = Vec::new();
        for t_r in 0..ty {
            for t_c in 0..tx {
                tile_offsets.push(non_zeros.len() as u32);
                for lr in 0..TILE_ROWS {
                    for lc in 0..TILE_COLS {
                        let (r, c) = (t_r * TILE_ROWS + lr, t_c * TILE_COLS + lc);
                        if r < m && c < k {
                            let v = matrix.get(r, c);
                            if !v.is_zero() {
                                let pos = (lr * TILE_COLS + lc) as u16;
                                non_zeros.push(PackedNz::new(v, pos));
                            }
                        }
                    }
                }
            }
        }
        tile_offsets.push(non_zeros.len() as u32);
        let nnz = non_zeros.len();
        TiledCsl {
            m,
            k,
            m_pad,
            k_pad,
            tile_offsets,
            non_zeros,
            nnz,
        }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tile_offsets.len() - 1
    }

    /// Tiles along M.
    pub fn tiles_y(&self) -> usize {
        self.m_pad / TILE_ROWS
    }

    /// Tiles along K.
    pub fn tiles_x(&self) -> usize {
        self.k_pad / TILE_COLS
    }

    /// Entries of one tile.
    pub fn tile_entries(&self, t: usize) -> &[PackedNz] {
        &self.non_zeros[self.tile_offsets[t] as usize..self.tile_offsets[t + 1] as usize]
    }

    /// Actual storage bytes.
    pub fn storage_bytes(&self) -> usize {
        4 * self.num_tiles() + 4 * self.nnz
    }

    /// Paper Eq. 2: `4B × NT + 4B × NNZ`.
    pub fn storage_bytes_formula(m: usize, k: usize, nnz: usize) -> usize {
        let nt = m.div_ceil(TILE_ROWS) * k.div_ceil(TILE_COLS);
        4 * nt + 4 * nnz
    }

    /// Compression ratio vs dense.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense.
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        let tx = self.tiles_x();
        for t in 0..self.num_tiles() {
            let (t_r, t_c) = (t / tx, t % tx);
            for e in self.tile_entries(t) {
                let pos = e.pos() as usize;
                let r = t_r * TILE_ROWS + pos / TILE_COLS;
                let c = t_c * TILE_COLS + pos % TILE_COLS;
                if r < self.m && c < self.k {
                    out.set(r, c, e.value());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn packed_nz_roundtrip() {
        let p = PackedNz::new(Half::from_f32(2.5), 4095);
        assert_eq!(p.value().to_f32(), 2.5);
        assert_eq!(p.pos(), 4095);
    }

    #[test]
    fn roundtrip() {
        for &s in &[0.3, 0.5, 0.8] {
            let m = random_sparse(128, 192, s, ValueDist::Uniform, 11);
            let enc = TiledCsl::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
        }
    }

    #[test]
    fn roundtrip_unaligned() {
        let m = random_sparse(70, 100, 0.5, ValueDist::Uniform, 12);
        let enc = TiledCsl::encode(&m);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.m_pad, 128);
        assert_eq!(enc.k_pad, 128);
    }

    #[test]
    fn storage_matches_formula() {
        let m = random_sparse(256, 256, 0.6, ValueDist::Uniform, 13);
        let enc = TiledCsl::encode(&m);
        assert_eq!(
            enc.storage_bytes(),
            TiledCsl::storage_bytes_formula(256, 256, enc.nnz)
        );
    }

    #[test]
    fn cr_is_one_at_exactly_half_sparsity() {
        // 4B per non-zero vs 2B per dense element: CR = 2B·MK / 4B·NNZ
        // ≈ 1 / (2(1−s)) → exactly 1.0 at s = 0.5 (plus tiny tile offsets).
        let m = random_sparse(1024, 1024, 0.5, ValueDist::Uniform, 14);
        let enc = TiledCsl::encode(&m);
        let cr = enc.compression_ratio();
        assert!((cr - 1.0).abs() < 0.03, "CR {cr}");
    }

    #[test]
    fn cr_below_one_at_40_percent() {
        let m = random_sparse(1024, 1024, 0.4, ValueDist::Uniform, 15);
        assert!(TiledCsl::encode(&m).compression_ratio() < 1.0);
    }
}
