//! Tiled-CSL — Flash-LLM's sparse format (paper §3.2.1, Eq. 2).
//!
//! Non-zeros are grouped by tile. Each entry packs the FP16 value with a
//! 16-bit *in-tile position* into one 32-bit word (`NonZeros`); a
//! `TileOffsets` array marks each tile's start:
//! `Stor_Tiled-CSL = 4B × NT + 4B × NNZ`. The 16-bit per-element position
//! makes the index overhead equal to the payload — CR reaches 1.0 only at
//! 50% sparsity.

use gpu_sim::fp16::Half;
use gpu_sim::matrix::DenseMatrix;

/// Default Flash-LLM tile height (rows).
pub const TILE_ROWS: usize = 64;
/// Default Flash-LLM tile width (columns).
pub const TILE_COLS: usize = 64;

/// One packed non-zero: value in the low half, in-tile position in the
/// high half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackedNz(pub u32);

impl PackedNz {
    /// Packs a value and its in-tile position.
    pub fn new(value: Half, pos: u16) -> Self {
        PackedNz(u32::from(value.to_bits()) | (u32::from(pos) << 16))
    }

    /// The FP16 value.
    pub fn value(self) -> Half {
        Half::from_bits((self.0 & 0xFFFF) as u16)
    }

    /// The in-tile position (row-major within the tile).
    pub fn pos(self) -> u16 {
        (self.0 >> 16) as u16
    }
}

/// A sparse matrix in Tiled-CSL format.
#[derive(Clone, Debug, PartialEq)]
pub struct TiledCsl {
    /// Logical rows.
    pub m: usize,
    /// Logical columns.
    pub k: usize,
    /// Rows padded to the tile grid.
    pub m_pad: usize,
    /// Columns padded to the tile grid.
    pub k_pad: usize,
    /// Start of each tile in `non_zeros`, plus end sentinel.
    pub tile_offsets: Vec<u32>,
    /// Packed (value, position) entries, tile-major (row-major tiles).
    pub non_zeros: Vec<PackedNz>,
    /// True non-zero count.
    pub nnz: usize,
}

impl TiledCsl {
    /// Encodes a dense matrix with 64×64 tiles.
    ///
    /// Two-pass scheme over the row-major tile grid: pass 1 counts each
    /// tile's non-zeros in parallel (row-sliced scans clamped to the
    /// logical extent — overhanging tile cells were always skipped), a
    /// serial prefix sum builds `tile_offsets`, and pass 2 fills each
    /// tile's disjoint `non_zeros` span. Entries are emitted in the
    /// serial scan order (row-major within the tile), so the encoding
    /// is bit-identical at every job count.
    pub fn encode(matrix: &DenseMatrix) -> Self {
        let m = matrix.rows();
        let k = matrix.cols();
        let data = matrix.as_slice();
        let m_pad = m.div_ceil(TILE_ROWS) * TILE_ROWS;
        let k_pad = k.div_ceil(TILE_COLS) * TILE_COLS;
        let ty = m_pad / TILE_ROWS;
        let tx = k_pad / TILE_COLS;
        let nt = ty * tx;

        // Pass 1: per-tile counts.
        let counts: Vec<usize> = gpu_sim::exec::par_map_untraced((0..nt).collect(), |t| {
            let mut count = 0usize;
            for_each_tile_row(data, m, k, t / tx, t % tx, |row, _| {
                count += row.iter().filter(|v| !v.is_zero()).count();
            });
            count
        });
        let mut tile_offsets = Vec::with_capacity(nt + 1);
        tile_offsets.push(0u32);
        let mut nnz = 0usize;
        for c in &counts {
            nnz += c;
            tile_offsets.push(nnz as u32);
        }

        // Pass 2: fill disjoint per-tile spans.
        let mut non_zeros = vec![PackedNz(0); nnz];
        let mut spans = Vec::with_capacity(nt);
        let mut rest = non_zeros.as_mut_slice();
        for (t, &count) in counts.iter().enumerate() {
            let (span, tail) = rest.split_at_mut(count);
            rest = tail;
            spans.push((t, span));
        }
        gpu_sim::exec::par_map_untraced(spans, |(t, span)| {
            let mut i = 0usize;
            for_each_tile_row(data, m, k, t / tx, t % tx, |row, lr| {
                for (lc, v) in row.iter().enumerate() {
                    if !v.is_zero() {
                        span[i] = PackedNz::new(*v, (lr * TILE_COLS + lc) as u16);
                        i += 1;
                    }
                }
            });
            debug_assert_eq!(i, span.len(), "pass-2 fill disagrees with pass-1 count");
        });
        TiledCsl {
            m,
            k,
            m_pad,
            k_pad,
            tile_offsets,
            non_zeros,
            nnz,
        }
    }

    /// Number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.tile_offsets.len() - 1
    }

    /// Tiles along M.
    pub fn tiles_y(&self) -> usize {
        self.m_pad / TILE_ROWS
    }

    /// Tiles along K.
    pub fn tiles_x(&self) -> usize {
        self.k_pad / TILE_COLS
    }

    /// Entries of one tile.
    pub fn tile_entries(&self, t: usize) -> &[PackedNz] {
        &self.non_zeros[self.tile_offsets[t] as usize..self.tile_offsets[t + 1] as usize]
    }

    /// Actual storage bytes.
    pub fn storage_bytes(&self) -> usize {
        4 * self.num_tiles() + 4 * self.nnz
    }

    /// Paper Eq. 2: `4B × NT + 4B × NNZ`.
    pub fn storage_bytes_formula(m: usize, k: usize, nnz: usize) -> usize {
        let nt = m.div_ceil(TILE_ROWS) * k.div_ceil(TILE_COLS);
        4 * nt + 4 * nnz
    }

    /// Compression ratio vs dense.
    pub fn compression_ratio(&self) -> f64 {
        (2 * self.m * self.k) as f64 / self.storage_bytes() as f64
    }

    /// Decodes back to dense.
    pub fn decode(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.m, self.k);
        let tx = self.tiles_x();
        for t in 0..self.num_tiles() {
            let (t_r, t_c) = (t / tx, t % tx);
            for e in self.tile_entries(t) {
                let pos = e.pos() as usize;
                let r = t_r * TILE_ROWS + pos / TILE_COLS;
                let c = t_c * TILE_COLS + pos % TILE_COLS;
                if r < self.m && c < self.k {
                    out.set(r, c, e.value());
                }
            }
        }
        out
    }
}

/// Visits each in-bounds row of tile `(t_r, t_c)` as a dense slice
/// clamped to the logical matrix extent, calling `f(row, lr)` with the
/// local row index. Overhanging tile cells (row ≥ `m` or col ≥ `k`)
/// are never visited, matching the serial scan's bounds guard.
#[inline]
fn for_each_tile_row(
    data: &[Half],
    m: usize,
    k: usize,
    t_r: usize,
    t_c: usize,
    mut f: impl FnMut(&[Half], usize),
) {
    let r0 = t_r * TILE_ROWS;
    let c0 = t_c * TILE_COLS;
    let rlim = TILE_ROWS.min(m.saturating_sub(r0));
    let clim = TILE_COLS.min(k.saturating_sub(c0));
    for lr in 0..rlim {
        let base = (r0 + lr) * k + c0;
        f(&data[base..base + clim], lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::matrix::{random_sparse, ValueDist};

    #[test]
    fn packed_nz_roundtrip() {
        let p = PackedNz::new(Half::from_f32(2.5), 4095);
        assert_eq!(p.value().to_f32(), 2.5);
        assert_eq!(p.pos(), 4095);
    }

    #[test]
    fn roundtrip() {
        for &s in &[0.3, 0.5, 0.8] {
            let m = random_sparse(128, 192, s, ValueDist::Uniform, 11);
            let enc = TiledCsl::encode(&m);
            assert_eq!(enc.decode(), m, "sparsity {s}");
        }
    }

    #[test]
    fn roundtrip_unaligned() {
        let m = random_sparse(70, 100, 0.5, ValueDist::Uniform, 12);
        let enc = TiledCsl::encode(&m);
        assert_eq!(enc.decode(), m);
        assert_eq!(enc.m_pad, 128);
        assert_eq!(enc.k_pad, 128);
    }

    #[test]
    fn storage_matches_formula() {
        let m = random_sparse(256, 256, 0.6, ValueDist::Uniform, 13);
        let enc = TiledCsl::encode(&m);
        assert_eq!(
            enc.storage_bytes(),
            TiledCsl::storage_bytes_formula(256, 256, enc.nnz)
        );
    }

    #[test]
    fn cr_is_one_at_exactly_half_sparsity() {
        // 4B per non-zero vs 2B per dense element: CR = 2B·MK / 4B·NNZ
        // ≈ 1 / (2(1−s)) → exactly 1.0 at s = 0.5 (plus tiny tile offsets).
        let m = random_sparse(1024, 1024, 0.5, ValueDist::Uniform, 14);
        let enc = TiledCsl::encode(&m);
        let cr = enc.compression_ratio();
        assert!((cr - 1.0).abs() < 0.03, "CR {cr}");
    }

    #[test]
    fn cr_below_one_at_40_percent() {
        let m = random_sparse(1024, 1024, 0.4, ValueDist::Uniform, 15);
        assert!(TiledCsl::encode(&m).compression_ratio() < 1.0);
    }
}
