//! Analytical kernel timing model.
//!
//! Simulated kernels execute functionally and record [`Counters`]; this
//! module converts those counters plus launch geometry into estimated
//! time. The model is deliberately first-order and documented — the goal
//! is reproducing the paper's *shape* (who wins, by what factor, where
//! crossovers fall), not cycle-exact numbers:
//!
//! * **Memory bound** (`T_mem`): DRAM sector traffic over achieved
//!   bandwidth. Achieved bandwidth = peak × streaming efficiency × a
//!   Little's-law latency-hiding factor (resident warps × bytes in flight
//!   per warp must cover `bandwidth × latency`). Decode-phase SpMM lives
//!   here, so compression ratio converts directly into speedup — the
//!   paper's §3.2.2 argument.
//! * **Tensor-core bound** (`T_tc`): mma instructions at peak throughput.
//!   Dominates in prefill (Figure 16).
//! * **CUDA-core / shared-memory chain** (`T_chain`): integer + FP
//!   instructions and shared-memory wavefronts (including bank-conflict
//!   replays). SMBD decoding and Flash-LLM's scatter live here.
//! * **Issue bound** (`T_issue`): total warp instructions over the
//!   schedulers' issue rate.
//!
//! With the asynchronous pipeline (paper §4.3.4) the kernel runs at the
//! *maximum* of these; without it the stages serialize per iteration.

use crate::counters::Counters;
use crate::occupancy::{occupancy, BlockResources, Occupancy};
use crate::spec::GpuSpec;

/// Streaming efficiency of a well-coalesced kernel relative to peak DRAM
/// bandwidth (DRAM refresh, command overhead, imperfect row locality).
pub const BASE_MEM_EFF: f64 = 0.92;
/// Warp-instructions per cycle per SM for the integer/logic pipe.
pub const INT_WIPC: f64 = 2.0;
/// Warp-instructions per cycle per SM for the FP32 pipe.
pub const FP_WIPC: f64 = 2.0;
/// Shared-memory wavefronts per cycle per SM (128 B/cycle).
pub const SMEM_TPC: f64 = 1.0;
/// Total warp-instruction issue slots per cycle per SM.
pub const ISSUE_WIPC: f64 = 4.0;
/// Independent dependent-gather chains a warp sustains in flight
/// (memory-level parallelism of index-then-load sequences).
pub const DEP_GATHER_ILP: f64 = 2.0;
/// Fraction of the non-dominant pipeline stages that leaks past the
/// overlap in async mode (barriers, wait_group stalls, imperfect
/// scheduling). 0 would be a perfect pipeline; measured kernels leak.
/// Kernels without double buffering (only inter-warp overlap) set a
/// higher per-launch leak via [`LaunchShape::overlap_leak`].
pub const OVERLAP_LEAK: f64 = 0.10;

/// How the kernel schedules its loads relative to compute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Double-buffered `cp.async` pipeline: memory, decode and Tensor Core
    /// stages overlap (SpInfer with AsyncPipe, cuBLAS).
    AsyncDoubleBuffered,
    /// Loads complete before compute each iteration (classic
    /// load-sync-compute): stages serialize.
    Synchronous,
}

impl PipelineMode {
    /// Bytes a warp keeps in flight towards global memory, used by the
    /// latency-hiding factor. Asynchronous copies prefetch deeply; a
    /// synchronous vector load keeps one instruction per lane outstanding;
    /// scalar gather loops keep even less.
    fn default_inflight_bytes_per_warp(self) -> f64 {
        match self {
            PipelineMode::AsyncDoubleBuffered => 2048.0,
            PipelineMode::Synchronous => 768.0,
        }
    }
}

/// Launch geometry and schedule description supplied by a kernel.
#[derive(Clone, Debug)]
pub struct LaunchShape {
    /// Total thread blocks in the grid.
    pub grid_blocks: u64,
    /// Per-block resources (for occupancy).
    pub block: BlockResources,
    /// Main-loop iterations per block (K-dimension tiles).
    pub iters_per_block: f64,
    /// Pipeline discipline.
    pub mode: PipelineMode,
    /// Exposed fixed cycles per iteration (barriers, pipeline bubbles).
    pub per_iter_fixed_cycles: f64,
    /// One-off cycles per block (prologue load + epilogue store latency).
    pub ramp_cycles: f64,
    /// Override for bytes-in-flight per warp; `None` uses the mode default.
    pub inflight_bytes_per_warp: Option<f64>,
    /// Override for the async-mode overlap leak; `None` uses
    /// [`OVERLAP_LEAK`]. Kernels with a single buffer (no prefetch
    /// pipeline) overlap only through warp interleaving and leak more.
    pub overlap_leak: Option<f64>,
}

/// A buffer with reuse: if it fits in L2, repeated reads hit L2 rather
/// than DRAM. Used for the dense `X` operand, which is tiny in the decode
/// phase and re-read by every block row.
#[derive(Clone, Copy, Debug)]
pub struct L2Reuse {
    /// Size of the underlying buffer in bytes.
    pub buffer_bytes: u64,
    /// Total sector traffic the kernel generated against it.
    pub requested_bytes: u64,
}

/// Fraction of L2 usable for a streaming-reuse buffer.
const L2_USABLE: f64 = 0.8;

/// How many times a GEMM operand panel is effectively streamed from DRAM.
///
/// With swizzled block rasterization, blocks in one wave cover a window
/// of the orthogonal dimension and share the panel through L2. The window
/// is what fits in (a fair share of) L2 for a `K`-deep panel, at least
/// 512; `dim` is the orthogonal extent (`N` for the W panel, `M` for the
/// X panel) and `tile` the per-block tile along it. Returns the effective
/// stream count in `[1, dim/tile]`.
pub fn panel_reread_factor(spec: &GpuSpec, k: usize, dim: usize, tile: usize) -> u64 {
    let window = ((spec.l2_bytes as f64 * 0.4) / (2.0 * k.max(1) as f64)).max(512.0) as usize;
    let tiles = dim.div_ceil(tile.max(1)) as u64;
    (dim.div_ceil(window) as u64).clamp(1, tiles.max(1))
}

/// Effective DRAM bytes for a buffer under the L2 reuse model.
pub fn l2_effective_bytes(spec: &GpuSpec, reuse: &L2Reuse) -> u64 {
    if (reuse.buffer_bytes as f64) <= L2_USABLE * spec.l2_bytes as f64 {
        // Compulsory traffic only: each byte fetched from DRAM once.
        reuse.requested_bytes.min(reuse.buffer_bytes.max(1))
    } else {
        reuse.requested_bytes
    }
}

/// What bound the kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bound {
    /// DRAM bandwidth.
    Memory,
    /// Tensor Core throughput.
    TensorCore,
    /// CUDA-core + shared-memory chain.
    CudaChain,
    /// Instruction issue.
    Issue,
}

/// Timing estimate with Nsight-style derived metrics (paper Fig. 12 / Tab. 1).
#[derive(Clone, Debug)]
pub struct KernelTiming {
    /// Total kernel cycles.
    pub cycles: f64,
    /// Total kernel time in seconds.
    pub time_sec: f64,
    /// Achieved fraction of peak DRAM bandwidth ("Max BW" in Table 1).
    pub bw_util: f64,
    /// Tensor Core pipe utilisation ("TC Pipe UTIL").
    pub tc_util: f64,
    /// Issue-slot busy fraction.
    pub issue_util: f64,
    /// Average warp cycles per issued instruction.
    pub warp_cycles_per_inst: f64,
    /// Dominant bound.
    pub bound: Bound,
    /// Occupancy achieved.
    pub occupancy: Occupancy,
    /// Effective DRAM bytes after L2 filtering.
    pub dram_bytes: u64,
}

/// Estimates kernel time from counters and launch shape.
///
/// `l2_reuse` lists buffers whose repeated reads may be absorbed by L2;
/// their absorbed traffic is subtracted from the counter's DRAM reads.
pub fn estimate_time(
    spec: &GpuSpec,
    shape: &LaunchShape,
    counters: &Counters,
    l2_reuse: &[L2Reuse],
) -> KernelTiming {
    let occ = occupancy(spec, &shape.block);
    let sm = f64::from(spec.sm_count);
    let active_sms = sm.min(shape.grid_blocks as f64);
    let resident_blocks = (shape.grid_blocks as f64).min(active_sms * f64::from(occ.blocks_per_sm));
    let warps_per_block = f64::from(shape.block.threads.div_ceil(spec.warp_size));
    let resident_warps = resident_blocks * warps_per_block;

    // --- Memory bound ---
    let mut dram_bytes = counters.dram_total_bytes();
    for r in l2_reuse {
        let eff = l2_effective_bytes(spec, r);
        dram_bytes = dram_bytes.saturating_sub(r.requested_bytes - eff);
    }
    let device_bpc = spec.dram_bandwidth / spec.clock_hz; // Bytes per cycle.
    let inflight = shape
        .inflight_bytes_per_warp
        .unwrap_or_else(|| shape.mode.default_inflight_bytes_per_warp());
    let needed_inflight = device_bpc * f64::from(spec.dram_latency_cycles);
    let latency_factor = ((resident_warps * inflight) / needed_inflight).min(1.0);
    let mem_eff = BASE_MEM_EFF * latency_factor.max(1e-3);
    let t_mem = dram_bytes as f64 / (device_bpc * mem_eff);

    // --- Tensor core bound ---
    let flops_per_mma = 2.0 * 16.0 * 8.0 * 16.0;
    let mma_cycles_each = flops_per_mma / spec.tc_flops_per_cycle_per_sm;
    // The integer pipe retires `mma.s8` at twice the FP16 rate on every
    // modeled part (Ampere/Ada Tensor Cores double INT8 throughput), so
    // each s8 instruction costs half the FP16 cycles. TIMING_MODEL.md §12.
    let tc_insts_fp16_equiv = counters.mma_insts as f64 + counters.mma_s8_insts as f64 / 2.0;
    let t_tc = tc_insts_fp16_equiv * mma_cycles_each / active_sms;

    // --- CUDA-core + shared-memory chain ---
    let smem_total = (counters.smem_load_transactions + counters.smem_store_transactions) as f64;
    let t_smem = smem_total / (SMEM_TPC * active_sms);
    let t_int = (counters.cuda_int_insts + counters.shfl_insts) as f64 / (INT_WIPC * active_sms);
    let t_fp = counters.cuda_fp_insts as f64 / (FP_WIPC * active_sms);
    // Dependent gathers (CSR-style index-then-load) serialize on each
    // warp's critical path; warps on an SM overlap each other's chains.
    let warps_per_sm_active = (resident_warps / active_sms).max(1.0);
    let t_dep = counters.dependent_gathers as f64 * f64::from(spec.l2_latency_cycles)
        / (active_sms * warps_per_sm_active * DEP_GATHER_ILP);
    let t_chain = t_smem + t_int.max(t_fp) + t_dep;

    // --- Issue bound ---
    let t_issue = counters.insts_issued as f64 / (ISSUE_WIPC * active_sms);

    // --- Fixed overheads ---
    let waves = (shape.grid_blocks as f64 / resident_blocks.max(1.0)).ceil();
    let t_fixed = waves * shape.iters_per_block * shape.per_iter_fixed_cycles
        + waves * shape.ramp_cycles
        + f64::from(spec.dram_latency_cycles); // First-load exposure.

    let (steady, bound) = match shape.mode {
        PipelineMode::AsyncDoubleBuffered => {
            let candidates = [
                (t_mem, Bound::Memory),
                (t_tc, Bound::TensorCore),
                (t_chain, Bound::CudaChain),
                (t_issue, Bound::Issue),
            ];
            let (max, bound) = candidates
                .into_iter()
                .max_by(|a, b| a.0.total_cmp(&b.0))
                .unwrap();
            // Imperfect overlap: a fraction of the hidden stages leaks.
            let leak = shape.overlap_leak.unwrap_or(OVERLAP_LEAK);
            let total = t_mem + t_tc + t_chain;
            (max + leak * (total - max).max(0.0), bound)
        }
        PipelineMode::Synchronous => {
            let total = t_mem + t_chain + t_tc;
            let bound = if t_mem >= t_chain && t_mem >= t_tc {
                Bound::Memory
            } else if t_chain >= t_tc {
                Bound::CudaChain
            } else {
                Bound::TensorCore
            };
            (total.max(t_issue), bound)
        }
    };

    let cycles = steady + t_fixed;
    let time_sec = spec.cycles_to_sec(cycles);

    let bw_util = (dram_bytes as f64 / device_bpc) / cycles;
    let tc_util = t_tc * active_sms / (sm * cycles);
    let issue_util = counters.insts_issued as f64 / (ISSUE_WIPC * sm * cycles);
    let warp_cycles_per_inst = if counters.insts_issued == 0 {
        0.0
    } else {
        resident_warps.max(1.0) * cycles / counters.insts_issued as f64
    };

    KernelTiming {
        cycles,
        time_sec,
        bw_util,
        tc_util,
        issue_util,
        warp_cycles_per_inst,
        bound,
        occupancy: occ,
        dram_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(grid: u64, mode: PipelineMode) -> LaunchShape {
        LaunchShape {
            grid_blocks: grid,
            block: BlockResources {
                threads: 128,
                regs_per_thread: 64,
                smem_bytes: 32 * 1024,
            },
            iters_per_block: 128.0,
            mode,
            per_iter_fixed_cycles: 20.0,
            ramp_cycles: 500.0,
            inflight_bytes_per_warp: None,
            overlap_leak: None,
        }
    }

    fn mem_heavy_counters(bytes: u64) -> Counters {
        let mut c = Counters::new();
        c.dram_read_bytes = bytes;
        c.useful_read_bytes = bytes;
        c.insts_issued = bytes / 512;
        c.ldgsts_insts = bytes / 512;
        c
    }

    #[test]
    fn memory_bound_kernel_time_tracks_bytes() {
        let spec = GpuSpec::rtx4090();
        let s = shape(1024, PipelineMode::AsyncDoubleBuffered);
        let t1 = estimate_time(&spec, &s, &mem_heavy_counters(256 << 20), &[]);
        let t2 = estimate_time(&spec, &s, &mem_heavy_counters(512 << 20), &[]);
        assert_eq!(t1.bound, Bound::Memory);
        let ratio = t2.time_sec / t1.time_sec;
        assert!((ratio - 2.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn async_mode_overlaps_sync_mode_does_not() {
        let spec = GpuSpec::rtx4090();
        let mut c = mem_heavy_counters(256 << 20);
        // Substantial CUDA-core decode work.
        c.cuda_int_insts = 40_000_000;
        c.smem_load_transactions = 10_000_000;
        let t_async = estimate_time(
            &spec,
            &shape(1024, PipelineMode::AsyncDoubleBuffered),
            &c,
            &[],
        );
        let t_sync = estimate_time(&spec, &shape(1024, PipelineMode::Synchronous), &c, &[]);
        assert!(t_sync.time_sec > t_async.time_sec * 1.2);
    }

    #[test]
    fn full_device_streaming_achieves_high_bw_util() {
        let spec = GpuSpec::rtx4090();
        let t = estimate_time(
            &spec,
            &shape(4096, PipelineMode::AsyncDoubleBuffered),
            &mem_heavy_counters(1 << 30),
            &[],
        );
        assert!(t.bw_util > 0.8, "bw_util {}", t.bw_util);
        assert!(t.bw_util <= 1.0);
    }

    #[test]
    fn tiny_grid_underutilises_bandwidth() {
        let spec = GpuSpec::rtx4090();
        let t_small = estimate_time(
            &spec,
            &shape(4, PipelineMode::AsyncDoubleBuffered),
            &mem_heavy_counters(64 << 20),
            &[],
        );
        let t_big = estimate_time(
            &spec,
            &shape(4096, PipelineMode::AsyncDoubleBuffered),
            &mem_heavy_counters(64 << 20),
            &[],
        );
        assert!(t_small.time_sec > 2.0 * t_big.time_sec);
    }

    #[test]
    fn compute_bound_when_mma_dominates() {
        let spec = GpuSpec::rtx4090();
        let mut c = Counters::new();
        c.dram_read_bytes = 1 << 20;
        c.mma_insts = 200_000_000;
        c.insts_issued = 200_000_000;
        let t = estimate_time(
            &spec,
            &shape(4096, PipelineMode::AsyncDoubleBuffered),
            &c,
            &[],
        );
        assert_eq!(t.bound, Bound::TensorCore);
        assert!(t.tc_util > 0.5);
    }

    #[test]
    fn s8_mma_costs_half_the_fp16_cycles() {
        // A Tensor-Core-bound kernel with the same instruction count on
        // the integer pipe must run ~2x faster: mma.s8 is priced at twice
        // the FP16 throughput.
        let spec = GpuSpec::rtx4090();
        let s = shape(4096, PipelineMode::AsyncDoubleBuffered);
        let mut fp16 = Counters::new();
        fp16.dram_read_bytes = 1 << 20;
        fp16.mma_insts = 200_000_000;
        fp16.insts_issued = 200_000_000;
        let mut s8 = Counters::new();
        s8.dram_read_bytes = 1 << 20;
        s8.mma_s8_insts = 200_000_000;
        s8.insts_issued = 200_000_000;
        let t_fp16 = estimate_time(&spec, &s, &fp16, &[]);
        let t_s8 = estimate_time(&spec, &s, &s8, &[]);
        assert_eq!(t_fp16.bound, Bound::TensorCore);
        let ratio = t_fp16.time_sec / t_s8.time_sec;
        assert!(ratio > 1.5 && ratio < 2.1, "ratio {ratio}");
        // And the integer pipe is still monotone: more s8 work is slower.
        let mut more = s8.clone();
        more.mma_s8_insts *= 2;
        assert!(estimate_time(&spec, &s, &more, &[]).time_sec > t_s8.time_sec);
    }

    #[test]
    fn l2_reuse_discounts_repeated_reads() {
        let spec = GpuSpec::rtx4090();
        let mut c = mem_heavy_counters(512 << 20);
        // 448 MiB of that traffic is re-reads of a 1 MiB buffer.
        let reuse = L2Reuse {
            buffer_bytes: 1 << 20,
            requested_bytes: 448 << 20,
        };
        let t = estimate_time(
            &spec,
            &shape(1024, PipelineMode::AsyncDoubleBuffered),
            &c,
            &[reuse],
        );
        assert_eq!(t.dram_bytes, (64 << 20) + (1 << 20));
        // A buffer larger than L2 gets no discount.
        let big = L2Reuse {
            buffer_bytes: 1 << 30,
            requested_bytes: 448 << 20,
        };
        c.dram_read_bytes = 512 << 20;
        let t2 = estimate_time(
            &spec,
            &shape(1024, PipelineMode::AsyncDoubleBuffered),
            &c,
            &[big],
        );
        assert_eq!(t2.dram_bytes, 512 << 20);
    }

    #[test]
    fn empty_counters_yield_finite_fixed_cost() {
        // A kernel that does nothing still pays ramp + first-load latency;
        // the estimate must be finite and positive, never NaN.
        let spec = GpuSpec::rtx4090();
        let t = estimate_time(
            &spec,
            &shape(1, PipelineMode::AsyncDoubleBuffered),
            &Counters::new(),
            &[],
        );
        assert!(t.time_sec.is_finite() && t.time_sec > 0.0);
        assert_eq!(t.warp_cycles_per_inst, 0.0);
        assert!(t.bw_util == 0.0);
    }

    #[test]
    fn time_is_monotone_in_every_counter_class() {
        let spec = GpuSpec::rtx4090();
        let s = shape(1024, PipelineMode::AsyncDoubleBuffered);
        let base = mem_heavy_counters(64 << 20);
        let t0 = estimate_time(&spec, &s, &base, &[]).time_sec;
        for grow in [
            |c: &mut Counters| c.dram_read_bytes += 512 << 20,
            |c: &mut Counters| c.mma_insts += 500_000_000,
            |c: &mut Counters| c.cuda_int_insts += 800_000_000,
            |c: &mut Counters| c.smem_load_transactions += 800_000_000,
            |c: &mut Counters| c.dependent_gathers += 50_000_000,
        ] {
            let mut c = base.clone();
            grow(&mut c);
            let t = estimate_time(&spec, &s, &c, &[]).time_sec;
            assert!(
                t > t0,
                "growing a counter class must not speed the kernel up"
            );
        }
    }

    #[test]
    fn utilisations_are_bounded() {
        let spec = GpuSpec::rtx4090();
        for mode in [PipelineMode::AsyncDoubleBuffered, PipelineMode::Synchronous] {
            let mut c = mem_heavy_counters(256 << 20);
            c.mma_insts = 10_000_000;
            c.cuda_int_insts = 5_000_000;
            let t = estimate_time(&spec, &shape(2048, mode), &c, &[]);
            assert!(t.bw_util >= 0.0 && t.bw_util <= 1.0, "bw {}", t.bw_util);
            assert!(t.tc_util >= 0.0 && t.tc_util <= 1.0, "tc {}", t.tc_util);
            assert!(t.issue_util >= 0.0 && t.issue_util <= 1.0);
        }
    }

    #[test]
    fn panel_reread_factor_limits() {
        let spec = GpuSpec::rtx4090();
        // Decode batches never re-read; huge N is capped by tile count.
        assert_eq!(panel_reread_factor(&spec, 8192, 16, 16), 1);
        let f = panel_reread_factor(&spec, 8192, 1 << 20, 128);
        assert!(f >= 1);
        assert!(f <= (1u64 << 20) / 128);
        // Degenerate k.
        assert!(panel_reread_factor(&spec, 0, 4096, 128) >= 1);
    }

    #[test]
    fn warp_cycles_per_inst_positive() {
        let spec = GpuSpec::rtx4090();
        let t = estimate_time(
            &spec,
            &shape(1024, PipelineMode::AsyncDoubleBuffered),
            &mem_heavy_counters(128 << 20),
            &[],
        );
        assert!(t.warp_cycles_per_inst > 0.0);
    }
}
