//! Deterministic trace recording keyed by *simulated* time.
//!
//! The simulator reports where estimated kernel time goes (paper Figures
//! 9–12) only as end-of-run aggregate [`Counters`]. This module adds the
//! instrumentation seam that turns those aggregates into a timeline: a
//! [`TraceSink`] that kernels, the pipeline model, the host worker pool,
//! and the serving loop record *spans* into.
//!
//! Two invariants (mirroring the fault seam in [`crate::fault`]):
//!
//! 1. **Off the golden path.** Instrumented code takes `Option<&TraceSink>`
//!    and every recording site is behind `if let Some(..)`. With `None` the
//!    code path is the pre-existing one — outputs, counters, and golden
//!    digests are bit-identical. With a sink attached, tracing only *reads*
//!    simulation state; counters and outputs still never change.
//! 2. **Simulated time only.** Timestamps are derived from deterministic
//!    simulation quantities (counter-based attribution weights scaled to
//!    the launch's estimated time, discrete-event cycles, the serving
//!    clock, or ordinal task indices for the host pool) — never from
//!    wall-clock. The same run produces byte-identical traces at any host
//!    `--jobs` count.
//!
//! The `spinfer-obs` crate consumes the recorded [`Trace`] (Chrome-trace
//! export, per-phase breakdowns, metrics registry).

use crate::counters::Counters;
use std::sync::Mutex;

/// A trace track: Chrome-trace `(pid, tid)` pair. Processes group related
/// tracks (one per subsystem), threads are the individual timelines.
pub type TrackId = (u32, u32);

/// Well-known process ids used by the in-tree instrumentation.
pub mod pids {
    /// SpInfer SpMM kernel: one compute + one cp.async track per block row.
    pub const KERNEL: u32 = 1;
    /// Discrete-event pipeline model: one track per execution unit.
    pub const PIPELINE: u32 = 2;
    /// Host worker pool (ordinal task clock).
    pub const HOST_POOL: u32 = 3;
    /// Serving simulation (iteration-level continuous batching).
    pub const SERVING: u32 = 4;
    /// Sweep grid points (serial point clock).
    pub const SWEEP: u32 = 5;
    /// Fleet cluster simulation: one track per replica (cluster clock).
    pub const CLUSTER: u32 = 6;
}

/// Event flavour, mapping onto Chrome-trace phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Complete span (`ph:"X"`): `ts_us`..`ts_us + dur_us`.
    Span,
    /// Instantaneous marker (`ph:"i"`).
    Instant,
    /// Flow start (`ph:"s"`), paired by `flow_id` with a [`EventKind::FlowEnd`].
    FlowStart,
    /// Flow end (`ph:"f"`).
    FlowEnd,
}

/// One recorded trace event. Names are `&'static str` so recording never
/// allocates per event in kernel hot paths.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Timeline this event belongs to.
    pub track: TrackId,
    /// Event name (the phase, for spans).
    pub name: &'static str,
    /// Category; exporters and breakdowns filter on it. Kernel compute
    /// phases use `"phase"`, cp.async in-flight windows `"cp.async"`.
    pub cat: &'static str,
    /// Start timestamp in simulated microseconds (or the track's
    /// documented logical clock).
    pub ts_us: f64,
    /// Duration in the same unit (spans only; 0 otherwise).
    pub dur_us: f64,
    /// Event flavour.
    pub kind: EventKind,
    /// Pairing id for flow events; 0 otherwise.
    pub flow_id: u64,
    /// Optional single argument (kept scalar so events stay `Copy`-cheap).
    pub arg: Option<(&'static str, f64)>,
}

impl TraceEvent {
    /// Convenience constructor for a complete span.
    pub fn span(
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        ts_us: f64,
        dur_us: f64,
    ) -> Self {
        TraceEvent {
            track,
            name,
            cat,
            ts_us,
            dur_us,
            kind: EventKind::Span,
            flow_id: 0,
            arg: None,
        }
    }

    /// Attaches a single numeric argument (shown in the trace viewer).
    #[must_use]
    pub fn with_arg(mut self, key: &'static str, value: f64) -> Self {
        self.arg = Some((key, value));
        self
    }

    /// Convenience constructor for an instant marker.
    pub fn instant(track: TrackId, name: &'static str, cat: &'static str, ts_us: f64) -> Self {
        TraceEvent {
            track,
            name,
            cat,
            ts_us,
            dur_us: 0.0,
            kind: EventKind::Instant,
            flow_id: 0,
            arg: None,
        }
    }

    /// Convenience constructor for one end of a flow arrow.
    pub fn flow(
        track: TrackId,
        name: &'static str,
        cat: &'static str,
        ts_us: f64,
        start: bool,
        flow_id: u64,
    ) -> Self {
        TraceEvent {
            track,
            name,
            cat,
            ts_us,
            dur_us: 0.0,
            kind: if start {
                EventKind::FlowStart
            } else {
                EventKind::FlowEnd
            },
            flow_id,
            arg: None,
        }
    }
}

/// A finished, canonically ordered trace: what [`TraceSink::finish`]
/// returns and what exporters consume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Events in canonical order (stable sort by track, then timestamp).
    pub events: Vec<TraceEvent>,
    /// Human-readable track names, `(track, process name, thread name)`.
    pub tracks: Vec<(TrackId, String, String)>,
}

impl Trace {
    /// Total duration of all events named `name` (spans only).
    pub fn phase_total_us(&self, name: &str) -> f64 {
        self.events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.name == name)
            .map(|e| e.dur_us)
            .sum()
    }

    /// Sorted list of distinct span names in a category.
    pub fn phase_names(&self, cat: &str) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.cat == cat)
            .map(|e| e.name)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }
}

#[derive(Default)]
struct SinkInner {
    events: Vec<TraceEvent>,
    tracks: Vec<(TrackId, String, String)>,
}

/// Thread-safe span collector. Recording sites batch events locally (a
/// plain `Vec` owned by the worker task) and flush once via [`extend`],
/// so the mutex is taken once per task, not per event, and each track's
/// events land contiguously regardless of thread interleaving.
///
/// [`extend`]: TraceSink::extend
#[derive(Default)]
pub struct TraceSink {
    inner: Mutex<SinkInner>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Records a single event.
    pub fn record(&self, ev: TraceEvent) {
        self.inner
            .lock()
            .expect("trace sink poisoned")
            .events
            .push(ev);
    }

    /// Flushes a batch of events recorded locally by one task.
    pub fn extend(&self, evs: Vec<TraceEvent>) {
        if evs.is_empty() {
            return;
        }
        self.inner
            .lock()
            .expect("trace sink poisoned")
            .events
            .extend(evs);
    }

    /// Registers a human-readable name for a track. Last write wins; the
    /// canonical trace deduplicates by track id.
    pub fn name_track(&self, track: TrackId, process: &str, thread: &str) {
        self.inner
            .lock()
            .expect("trace sink poisoned")
            .tracks
            .push((track, process.to_string(), thread.to_string()));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace sink poisoned").events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the sink into a canonically ordered [`Trace`]: events are
    /// stable-sorted by `(pid, tid, ts_us)` so the result is independent
    /// of which host thread flushed first (each track is written by
    /// exactly one task, and per-track order is preserved by the stable
    /// sort). Track names are deduplicated by id (last registration wins)
    /// and sorted by id.
    pub fn finish(&self) -> Trace {
        let mut inner = self.inner.lock().expect("trace sink poisoned");
        let mut events = std::mem::take(&mut inner.events);
        let mut tracks = std::mem::take(&mut inner.tracks);
        drop(inner);
        events.sort_by(|a, b| a.track.cmp(&b.track).then(a.ts_us.total_cmp(&b.ts_us)));
        tracks.reverse(); // last registration wins after dedup-by-first-seen
        let mut seen = std::collections::BTreeSet::new();
        tracks.retain(|(id, _, _)| seen.insert(*id));
        tracks.sort_by_key(|(id, _, _)| *id);
        Trace { events, tracks }
    }
}

/// Deterministic *attribution weight* of a counter set, in abstract issue
/// cycles. This is **not** the timing model ([`crate::timing`] stays the
/// single source of truth for estimated kernel time): the weight's only
/// job is to split a launch's total simulated time across phases in
/// proportion to the events each phase generated, so only the ratios
/// matter. Constants are fixed so traces are stable across runs and
/// `--jobs` counts.
pub fn attribution_weight(c: &Counters) -> u64 {
    c.dram_read_bytes / 16
        + c.dram_write_bytes / 16
        + 4 * c.global_load_insts
        + 4 * c.ldgsts_insts
        + 2 * (c.smem_load_transactions + c.smem_store_transactions)
        + 2 * c.smem_bank_conflicts
        + 4 * c.ldsm_insts
        + 8 * c.mma_insts
        + c.cuda_int_insts
        + c.cuda_fp_insts
        + c.shfl_insts
        + 40 * c.dependent_gathers
        + 20 * c.barriers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_orders_by_track_then_time() {
        let sink = TraceSink::new();
        // Flush two tracks out of order, as racing workers would.
        sink.extend(vec![
            TraceEvent::span((1, 2), "b", "phase", 0.0, 1.0),
            TraceEvent::span((1, 2), "b2", "phase", 1.0, 1.0),
        ]);
        sink.extend(vec![TraceEvent::span((1, 1), "a", "phase", 5.0, 1.0)]);
        let t = sink.finish();
        let names: Vec<_> = t.events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["a", "b", "b2"]);
    }

    #[test]
    fn finish_is_insensitive_to_flush_interleaving() {
        let make = |order: &[usize]| {
            let sink = TraceSink::new();
            let batches = [
                vec![
                    TraceEvent::span((1, 0), "t0.a", "phase", 0.0, 1.0),
                    TraceEvent::span((1, 0), "t0.b", "phase", 1.0, 1.0),
                ],
                vec![TraceEvent::span((1, 1), "t1.a", "phase", 0.5, 1.0)],
                vec![TraceEvent::span((1, 2), "t2.a", "phase", 0.25, 1.0)],
            ];
            for &i in order {
                sink.extend(batches[i].clone());
            }
            sink.finish()
        };
        assert_eq!(make(&[0, 1, 2]), make(&[2, 1, 0]));
        assert_eq!(make(&[0, 1, 2]), make(&[1, 2, 0]));
    }

    #[test]
    fn track_names_dedup_last_wins() {
        let sink = TraceSink::new();
        sink.name_track((1, 0), "kernel", "old");
        sink.name_track((1, 0), "kernel", "new");
        sink.name_track((1, 1), "kernel", "other");
        let t = sink.finish();
        assert_eq!(
            t.tracks,
            vec![
                ((1, 0), "kernel".to_string(), "new".to_string()),
                ((1, 1), "kernel".to_string(), "other".to_string()),
            ]
        );
    }

    #[test]
    fn attribution_weight_is_additive_over_merge() {
        let mut a = Counters::new();
        a.dram_read_bytes = 4096;
        a.mma_insts = 7;
        a.barriers = 3;
        let mut b = Counters::new();
        b.smem_load_transactions = 11;
        b.cuda_int_insts = 100;
        b.dram_read_bytes = 1024;
        let (wa, wb) = (attribution_weight(&a), attribution_weight(&b));
        let mut m = a.clone();
        m.merge(&b);
        // Byte divisors stay exact because traffic arrives in 32B sectors.
        assert_eq!(attribution_weight(&m), wa + wb);
    }

    #[test]
    fn phase_total_sums_spans_only() {
        let sink = TraceSink::new();
        sink.record(TraceEvent::span((1, 0), "mma", "phase", 0.0, 2.0));
        sink.record(TraceEvent::span((1, 0), "mma", "phase", 2.0, 3.0));
        sink.record(TraceEvent::instant((1, 0), "mma", "phase", 9.0));
        let t = sink.finish();
        assert_eq!(t.phase_total_us("mma"), 5.0);
        assert_eq!(t.phase_names("phase"), vec!["mma"]);
    }
}
