//! Cycle-level pipeline simulator for one thread block.
//!
//! The analytical timing model (`timing`) assumes that with double
//! buffering the per-iteration stages overlap up to a leak factor, and
//! that without it they serialize. This module checks that assumption
//! from first principles: a discrete-event simulation of one block's
//! main loop, with stages as tasks, buffers as dependencies, and
//! execution units as exclusive resources.
//!
//! Stages per iteration `i` (paper Algorithm 1):
//!
//! * `LoadW(i)`  — cp.async of bitmap+values into buffer `i % depth`
//!   (DRAM unit);
//! * `LoadX(i)`  — cp.async of the dense tile (DRAM unit);
//! * `Decode(i)` — SMBD, needs `LoadW(i)` done and the CUDA unit;
//! * `Mma(i)`    — needs `Decode(i)`, `LoadX(i)` and the TC unit;
//! * with buffer depth `d`, `LoadW(i)` also needs `Mma(i-d)` done
//!   (its buffer must be free).
//!
//! With depth 2 the loads run ahead of compute (the paper's AsyncPipe);
//! with depth 1 every iteration serializes load → decode → mma.

/// Per-iteration stage durations in cycles.
#[derive(Clone, Copy, Debug)]
pub struct StageCosts {
    /// cp.async of the W tile (DRAM-bound portion).
    pub load_w: u64,
    /// cp.async of the X tile.
    pub load_x: u64,
    /// SMBD decode on CUDA cores / shared memory.
    pub decode: u64,
    /// Tensor-core computation.
    pub mma: u64,
}

/// Outcome of simulating a block's main loop.
#[derive(Clone, Copy, Debug)]
pub struct PipelineResult {
    /// Total cycles from first load to last mma retirement.
    pub total_cycles: u64,
    /// Cycles the Tensor Core unit was busy.
    pub tc_busy: u64,
    /// Cycles the DRAM unit was busy.
    pub dram_busy: u64,
    /// Tensor-core utilisation over the run.
    pub tc_util: f64,
}

/// Simulates `iters` iterations with `depth` shared-memory buffers
/// (1 = no double buffering, 2 = the paper's AsyncPipe).
///
/// # Panics
///
/// Panics if `depth == 0` or `iters == 0`.
pub fn simulate_block(iters: usize, depth: usize, costs: StageCosts) -> PipelineResult {
    simulate_block_traced(iters, depth, costs, None)
}

/// [`simulate_block`] with optional span recording: each stage instance
/// becomes a span on its execution unit's track (DRAM / CUDA / TC),
/// timestamped in discrete-event *cycles* (1 cycle = 1 trace µs —
/// pipeline tracks carry their own clock and say so in the track name).
/// With `sink` absent this is exactly `simulate_block`.
///
/// # Panics
///
/// Panics if `depth == 0` or `iters == 0`.
pub fn simulate_block_traced(
    iters: usize,
    depth: usize,
    costs: StageCosts,
    sink: Option<&crate::trace::TraceSink>,
) -> PipelineResult {
    assert!(depth >= 1, "at least one buffer required");
    assert!(iters >= 1, "at least one iteration required");

    // Unit-ready times (exclusive resources).
    let mut dram_free = 0u64;
    let mut cuda_free = 0u64;
    let mut tc_free = 0u64;

    // Completion times per iteration.
    let mut loadw_done = vec![0u64; iters];
    let mut loadx_done = vec![0u64; iters];
    let mut decode_done = vec![0u64; iters];
    let mut mma_done = vec![0u64; iters];

    let mut tc_busy = 0u64;
    let mut dram_busy = 0u64;

    use crate::trace::{pids, TraceEvent};
    const DRAM: (u32, u32) = (pids::PIPELINE, 0);
    const CUDA: (u32, u32) = (pids::PIPELINE, 1);
    const TC: (u32, u32) = (pids::PIPELINE, 2);
    let mut spans: Vec<TraceEvent> = Vec::new();

    for i in 0..iters {
        // Buffer reuse dependency: the slot is free once iteration i-depth
        // finished consuming it.
        let buffer_free = if i >= depth { mma_done[i - depth] } else { 0 };

        // LoadW then LoadX issue in order on the DRAM unit.
        let w_start = dram_free.max(buffer_free);
        loadw_done[i] = w_start + costs.load_w;
        dram_busy += costs.load_w;
        let x_start = loadw_done[i].max(buffer_free);
        loadx_done[i] = x_start + costs.load_x;
        dram_busy += costs.load_x;
        dram_free = loadx_done[i];

        // Decode needs its W tile and the CUDA unit. Without double
        // buffering it also waits for the previous iteration's compute
        // (the block synchronises before reusing the single buffer).
        let serial_gate = if depth == 1 && i > 0 {
            mma_done[i - 1]
        } else {
            0
        };
        let d_start = loadw_done[i].max(cuda_free).max(serial_gate);
        decode_done[i] = d_start + costs.decode;
        cuda_free = decode_done[i];

        // MMA needs decode + X + the TC unit.
        let m_start = decode_done[i].max(loadx_done[i]).max(tc_free);
        mma_done[i] = m_start + costs.mma;
        tc_busy += costs.mma;
        tc_free = mma_done[i];

        if sink.is_some() {
            spans.push(TraceEvent::span(
                DRAM,
                "load_w",
                "phase",
                w_start as f64,
                costs.load_w as f64,
            ));
            spans.push(TraceEvent::span(
                DRAM,
                "load_x",
                "phase",
                x_start as f64,
                costs.load_x as f64,
            ));
            spans.push(TraceEvent::span(
                CUDA,
                "decode",
                "phase",
                d_start as f64,
                costs.decode as f64,
            ));
            spans.push(TraceEvent::span(
                TC,
                "mma",
                "phase",
                m_start as f64,
                costs.mma as f64,
            ));
        }
    }

    if let Some(sink) = sink {
        sink.name_track(DRAM, "pipeline model (cycles)", "DRAM unit");
        sink.name_track(CUDA, "pipeline model (cycles)", "CUDA unit");
        sink.name_track(TC, "pipeline model (cycles)", "Tensor Core unit");
        sink.extend(spans);
    }

    let total_cycles = mma_done[iters - 1];
    PipelineResult {
        total_cycles,
        tc_busy,
        dram_busy,
        tc_util: tc_busy as f64 / total_cycles.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs(load_w: u64, load_x: u64, decode: u64, mma: u64) -> StageCosts {
        StageCosts {
            load_w,
            load_x,
            decode,
            mma,
        }
    }

    #[test]
    fn single_iteration_is_the_critical_path() {
        let r = simulate_block(1, 2, costs(100, 50, 30, 40));
        // LoadW(100) -> max(decode done 130, loadx done 150) -> mma 190.
        assert_eq!(r.total_cycles, 190);
    }

    #[test]
    fn memory_bound_steady_state_approaches_dram_time() {
        // Loads dominate: with depth 2, steady-state cycles/iter ≈
        // load_w + load_x; compute hides underneath.
        let iters = 200;
        let r = simulate_block(iters, 2, costs(100, 60, 30, 20));
        let per_iter = r.total_cycles as f64 / iters as f64;
        assert!(
            (per_iter - 160.0).abs() < 8.0,
            "per-iter {per_iter} should approach 160"
        );
    }

    #[test]
    fn compute_bound_steady_state_approaches_tc_time() {
        let iters = 200;
        let r = simulate_block(iters, 2, costs(10, 10, 20, 100));
        let per_iter = r.total_cycles as f64 / iters as f64;
        // TC is the bottleneck; decode overlaps under it.
        assert!((per_iter - 100.0).abs() < 8.0, "per-iter {per_iter}");
        assert!(r.tc_util > 0.9);
    }

    #[test]
    fn double_buffering_beats_single_buffering() {
        // The paper's AsyncPipe claim, derived rather than assumed.
        let c = costs(100, 60, 50, 40);
        let double = simulate_block(100, 2, c);
        let single = simulate_block(100, 1, c);
        assert!(
            single.total_cycles as f64 > 1.2 * double.total_cycles as f64,
            "single {} vs double {}",
            single.total_cycles,
            double.total_cycles
        );
    }

    #[test]
    fn single_buffer_serializes_stages() {
        // With one buffer each iteration's load cannot start before the
        // previous compute drained: per-iter ≈ sum of stages.
        let iters = 100;
        let c = costs(100, 60, 50, 40);
        let r = simulate_block(iters, 1, c);
        let per_iter = r.total_cycles as f64 / iters as f64;
        // decode (50) overlaps LoadX (60): expected ≈ 100+60+40 = 200,
        // plus scheduling slack.
        assert!(per_iter > 190.0 && per_iter < 260.0, "per-iter {per_iter}");
    }

    #[test]
    fn deeper_pipelines_do_not_help_beyond_the_bottleneck() {
        let c = costs(100, 60, 30, 20);
        let d2 = simulate_block(200, 2, c);
        let d4 = simulate_block(200, 4, c);
        let gain = d2.total_cycles as f64 / d4.total_cycles as f64;
        assert!(gain < 1.05, "depth 4 gains only marginally: {gain}");
    }

    #[test]
    fn matches_analytical_overlap_model_in_both_regimes() {
        // The analytical model says: async steady ≈ max(mem, chain, tc)
        // with a small leak. Check the pipeline lands within 15% of the
        // max() for both a memory-bound and a compute-bound mix.
        for c in [costs(120, 40, 50, 30), costs(20, 10, 40, 110)] {
            let iters = 300;
            let r = simulate_block(iters, 2, c);
            let per_iter = r.total_cycles as f64 / iters as f64;
            let mem = (c.load_w + c.load_x) as f64;
            let analytic_max = mem.max(c.decode as f64).max(c.mma as f64);
            let ratio = per_iter / analytic_max;
            assert!(
                (1.0..1.15).contains(&ratio),
                "pipeline {per_iter} vs analytic max {analytic_max}"
            );
        }
    }

    #[test]
    fn utilisation_counters_are_consistent() {
        let r = simulate_block(50, 2, costs(10, 10, 10, 10));
        assert_eq!(r.tc_busy, 500);
        assert_eq!(r.dram_busy, 1000);
        assert!(r.tc_util > 0.0 && r.tc_util <= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one buffer")]
    fn zero_depth_panics() {
        simulate_block(1, 0, costs(1, 1, 1, 1));
    }

    #[test]
    fn traced_run_matches_untraced_and_records_every_stage() {
        use crate::trace::{EventKind, TraceSink};
        let c = costs(100, 60, 50, 40);
        let plain = simulate_block(32, 2, c);
        let sink = TraceSink::new();
        let traced = simulate_block_traced(32, 2, c, Some(&sink));
        assert_eq!(plain.total_cycles, traced.total_cycles);
        assert_eq!(plain.tc_busy, traced.tc_busy);
        assert_eq!(plain.dram_busy, traced.dram_busy);
        let t = sink.finish();
        // 4 stage spans per iteration, all with non-negative durations,
        // and the TC track's busy time matches the result counter.
        let spans: Vec<_> = t
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span)
            .collect();
        assert_eq!(spans.len(), 32 * 4);
        assert!(spans.iter().all(|e| e.dur_us >= 0.0));
        assert_eq!(t.phase_total_us("mma"), traced.tc_busy as f64);
        assert_eq!(
            t.phase_total_us("load_w") + t.phase_total_us("load_x"),
            traced.dram_busy as f64
        );
        // The last event on the TC track ends at total_cycles.
        let tc_end = t
            .events
            .iter()
            .filter(|e| e.track == (crate::trace::pids::PIPELINE, 2))
            .map(|e| e.ts_us + e.dur_us)
            .fold(0.0f64, f64::max);
        assert_eq!(tc_end, traced.total_cycles as f64);
    }
}
