//! Dense FP16 matrices and workload generators.
//!
//! The paper's SpMM computes `O[M×N] = Ws[M×K] × X[K×N]` where `Ws` is the
//! (sparse) weight matrix and `X` the dense activations. All host-side
//! matrices here are row-major FP16; reference products accumulate in FP32,
//! matching Tensor Core semantics.

use crate::fp16::Half;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major FP16 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Half>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![Half::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Half>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major `f32` data (converted to FP16).
    pub fn from_f32(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols);
        DenseMatrix {
            rows,
            cols,
            data: data.iter().copied().map(Half::from_f32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Half {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Half) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Half] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Half] {
        &mut self.data
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|h| !h.is_zero()).count()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Storage footprint of the dense representation in bytes (2B/element),
    /// the numerator of the paper's compression-ratio metric (Eq. 1).
    pub fn dense_bytes(&self) -> usize {
        2 * self.rows * self.cols
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Reference matrix product `self × rhs` with FP32 accumulation.
    ///
    /// This is the golden model every simulated kernel is validated
    /// against; the output is FP32 to match the `mma` accumulator type.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_ref(&self, rhs: &DenseMatrix) -> Vec<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        // Convert the right operand once: the f16→f32 conversion of
        // each rhs element is hoisted out of the per-output-row loop
        // (it is value-exact, so results are unchanged).
        let rhs_f32 = rhs.to_f32_vec();
        let mut out = vec![0.0f32; self.rows * rhs.cols];
        self.matmul_ref_rows(&rhs_f32, rhs.cols, 0..self.rows, &mut out);
        out
    }

    /// Row-major `f32` conversion of every element, in one batch LUT
    /// sweep ([`crate::fp16::f16_to_f32_vec`]).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        crate::fp16::f16_to_f32_vec(&self.data)
    }

    /// Serial inner loop of the reference product for output rows
    /// `rows`, writing into `out` (densely packed starting at the first
    /// requested row). `rhs_f32` is the pre-converted right operand with
    /// `n` columns. Shared by [`Self::matmul_ref`] and
    /// [`Self::par_matmul_ref`] so the accumulation order — ascending
    /// `k` per output row, skipping zero lhs elements — is identical by
    /// construction at every job count.
    fn matmul_ref_rows(
        &self,
        rhs_f32: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let r0 = rows.start;
        // One reusable lhs-row conversion buffer per band: each row is
        // batch-converted through the FP16 LUT before the MAC loop. The
        // zero-skip test sees the identical f32 values (±0.0 included),
        // so the accumulation stream is unchanged.
        let mut lhs_f32 = vec![0.0f32; self.cols];
        for r in rows {
            crate::fp16::f16_to_f32_slice(
                &self.data[r * self.cols..(r + 1) * self.cols],
                &mut lhs_f32,
            );
            let out_row = &mut out[(r - r0) * n..(r - r0 + 1) * n];
            for (k, &a) in lhs_f32.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs_f32[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// [`DenseMatrix::matmul_ref`] fanned across host cores (see
    /// [`crate::exec`]).
    ///
    /// Each worker computes a contiguous band of output rows with the
    /// serial element loop, so every `out[r][c]` accumulates in the
    /// same order as `matmul_ref` and the result is bit-identical at
    /// any job count.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn par_matmul_ref(&self, rhs: &DenseMatrix) -> Vec<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let n = rhs.cols;
        // One shared conversion of rhs, read by every worker — the
        // serial band loop previously re-converted each rhs element
        // once per output row.
        let rhs_f32 = rhs.to_f32_vec();
        let bands = crate::exec::par_chunks(self.rows, |rows| {
            let mut band = vec![0.0f32; rows.len() * n];
            self.matmul_ref_rows(&rhs_f32, n, rows, &mut band);
            band
        });
        bands.concat()
    }
}

/// Distribution of non-zero values in generated matrices.
#[derive(Clone, Copy, Debug)]
pub enum ValueDist {
    /// Uniform in `[-1, 1]`, quantised to FP16.
    Uniform,
    /// Approximately normal (sum of uniforms), scaled to the given std-dev.
    Normal { std: f32 },
}

/// Generates a dense matrix with i.i.d. values (no sparsity).
pub fn random_dense(rows: usize, cols: usize, dist: ValueDist, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(Half::from_f32(sample(&mut rng, dist)));
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Generates a sparse matrix where each element is zero with probability
/// `sparsity`, matching the uniform-random model the paper uses for kernel
/// benchmarks (non-zeros follow `dist`). Exact zeros are re-rolled so that
/// "non-zero" positions genuinely carry non-zero values.
pub fn random_sparse(
    rows: usize,
    cols: usize,
    sparsity: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        if rng.gen::<f64>() < sparsity {
            data.push(Half::ZERO);
        } else {
            data.push(nonzero_sample(&mut rng, dist));
        }
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Generates a sparse matrix with an *exact* number of non-zeros per row
/// (balanced), the pattern magnitude-style per-row pruning produces.
pub fn random_sparse_balanced(
    rows: usize,
    cols: usize,
    sparsity: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity));
    let keep_per_row = ((cols as f64) * (1.0 - sparsity)).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = DenseMatrix::zeros(rows, cols);
    let mut idx: Vec<usize> = (0..cols).collect();
    for r in 0..rows {
        // Partial Fisher-Yates: choose `keep_per_row` distinct columns.
        for i in 0..keep_per_row.min(cols) {
            let j = rng.gen_range(i..cols);
            idx.swap(i, j);
        }
        for &c in idx.iter().take(keep_per_row) {
            out.set(r, c, nonzero_sample(&mut rng, dist));
        }
    }
    out
}

/// Generates an extremely sparse matrix whose non-zeros cluster into a
/// `block_density` fraction of `block×block` tiles (each chosen tile is
/// `fill` dense inside) — the structure of scientific/graph matrices that
/// block-skipping kernels like SMaT exploit (paper Fig. 11).
pub fn random_sparse_clustered(
    rows: usize,
    cols: usize,
    block: usize,
    block_density: f64,
    fill: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!(block > 0);
    assert!((0.0..=1.0).contains(&block_density) && (0.0..=1.0).contains(&fill));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = DenseMatrix::zeros(rows, cols);
    for br in 0..rows.div_ceil(block) {
        for bc in 0..cols.div_ceil(block) {
            if rng.gen::<f64>() >= block_density {
                continue;
            }
            for lr in 0..block {
                for lc in 0..block {
                    let (r, c) = (br * block + lr, bc * block + lc);
                    if r < rows && c < cols && rng.gen::<f64>() < fill {
                        out.set(r, c, nonzero_sample(&mut rng, dist));
                    }
                }
            }
        }
    }
    out
}

fn sample(rng: &mut StdRng, dist: ValueDist) -> f32 {
    match dist {
        ValueDist::Uniform => Uniform::new_inclusive(-1.0f32, 1.0).sample(rng),
        ValueDist::Normal { std } => {
            // Irwin-Hall approximation: sum of 12 uniforms minus 6 is ~N(0,1).
            let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
            s * std
        }
    }
}

fn nonzero_sample(rng: &mut StdRng, dist: ValueDist) -> Half {
    loop {
        let h = Half::from_f32(sample(rng, dist));
        if !h.is_zero() {
            return h;
        }
    }
}

/// Order-sensitive FNV-1a digest over the raw bit patterns of an FP32
/// buffer. Golden-output regression tests pin this value: any change to
/// a single output bit (or to the element order) changes the digest.
pub fn checksum_f32(xs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in xs {
        for byte in x.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Maximum absolute difference between a kernel output and the reference.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Relative L2 error `‖a−b‖₂ / max(‖b‖₂, ε)`.
pub fn rel_l2_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        num += f64::from(x - y) * f64::from(x - y);
        den += f64::from(*y) * f64::from(*y);
    }
    (num.sqrt() / den.sqrt().max(1e-30)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_full_sparsity() {
        let m = DenseMatrix::zeros(8, 8);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
        assert_eq!(m.dense_bytes(), 128);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(4, 6);
        m.set(2, 5, Half::from_f32(2.5));
        assert_eq!(m.get(2, 5).to_f32(), 2.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn transpose_involution() {
        let m = random_dense(7, 13, ValueDist::Uniform, 1);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn random_sparse_hits_target_sparsity() {
        let m = random_sparse(256, 256, 0.6, ValueDist::Uniform, 42);
        let s = m.sparsity();
        assert!((s - 0.6).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn balanced_sparsity_is_exact_per_row() {
        let m = random_sparse_balanced(64, 100, 0.7, ValueDist::Uniform, 7);
        for r in 0..64 {
            let nnz_row = (0..100).filter(|&c| !m.get(r, c).is_zero()).count();
            assert_eq!(nnz_row, 30, "row {r}");
        }
    }

    #[test]
    fn matmul_ref_identity() {
        let mut id = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            id.set(i, i, Half::ONE);
        }
        let x = random_dense(4, 3, ValueDist::Uniform, 3);
        let y = id.matmul_ref(&x);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(y[r * 3 + c], x.get(r, c).to_f32());
            }
        }
    }

    #[test]
    fn matmul_ref_small_known() {
        // [1 2; 3 4] x [5; 6] = [17; 39]
        let a = DenseMatrix::from_f32(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_f32(2, 1, &[5.0, 6.0]);
        assert_eq!(a.matmul_ref(&b), vec![17.0, 39.0]);
    }

    #[test]
    fn par_matmul_ref_is_bit_identical_to_serial() {
        let a = random_sparse(97, 130, 0.6, ValueDist::Uniform, 11);
        let x = random_dense(130, 13, ValueDist::Uniform, 12);
        assert_eq!(a.par_matmul_ref(&x), a.matmul_ref(&x));
    }

    #[test]
    fn error_metrics() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(rel_l2_error(&a, &a) < 1e-12);
    }

    #[test]
    fn clustered_generator_concentrates_nonzeros() {
        let m = random_sparse_clustered(256, 256, 16, 0.1, 0.8, ValueDist::Uniform, 17);
        // Count non-empty 16x16 blocks.
        let mut nonempty = 0;
        for br in 0..16 {
            for bc in 0..16 {
                let any = (0..16)
                    .any(|lr| (0..16).any(|lc| !m.get(br * 16 + lr, bc * 16 + lc).is_zero()));
                if any {
                    nonempty += 1;
                }
            }
        }
        let density = f64::from(nonempty) / 256.0;
        assert!((density - 0.1).abs() < 0.07, "block density {density}");
        // Overall sparsity is extreme even though blocks are dense inside.
        assert!(m.sparsity() > 0.88);
    }

    #[test]
    fn normal_dist_generates_fp16_range_values() {
        let m = random_dense(32, 32, ValueDist::Normal { std: 0.02 }, 9);
        assert!(m.as_slice().iter().all(|h| !h.is_nan() && !h.is_infinite()));
    }
}
