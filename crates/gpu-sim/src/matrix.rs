//! Dense FP16 matrices and workload generators.
//!
//! The paper's SpMM computes `O[M×N] = Ws[M×K] × X[K×N]` where `Ws` is the
//! (sparse) weight matrix and `X` the dense activations. All host-side
//! matrices here are row-major FP16; reference products accumulate in FP32,
//! matching Tensor Core semantics.

use crate::fp16::Half;
use rand::distributions::{Distribution, Uniform};
use rand::rngs::{BufferedRng, StdRng, BUFFER_WORDS};
use rand::{f32_from_word, Rng, RngCore, SeedableRng};

/// A dense row-major FP16 matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Half>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![Half::ZERO; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Half>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {rows}x{cols}",
            data.len()
        );
        DenseMatrix { rows, cols, data }
    }

    /// Creates a matrix from row-major `f32` data (converted to FP16).
    pub fn from_f32(rows: usize, cols: usize, data: &[f32]) -> Self {
        assert_eq!(data.len(), rows * cols);
        DenseMatrix {
            rows,
            cols,
            data: data.iter().copied().map(Half::from_f32).collect(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Half {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Half) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[Half] {
        &self.data
    }

    /// Mutable row-major backing slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Half] {
        &mut self.data
    }

    /// Number of non-zero elements.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|h| !h.is_zero()).count()
    }

    /// Fraction of elements that are zero, in `[0, 1]`.
    pub fn sparsity(&self) -> f64 {
        1.0 - self.nnz() as f64 / (self.rows * self.cols) as f64
    }

    /// Storage footprint of the dense representation in bytes (2B/element),
    /// the numerator of the paper's compression-ratio metric (Eq. 1).
    pub fn dense_bytes(&self) -> usize {
        2 * self.rows * self.cols
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Reference matrix product `self × rhs` with FP32 accumulation.
    ///
    /// This is the golden model every simulated kernel is validated
    /// against; the output is FP32 to match the `mma` accumulator type.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_ref(&self, rhs: &DenseMatrix) -> Vec<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        // Convert the right operand once: the f16→f32 conversion of
        // each rhs element is hoisted out of the per-output-row loop
        // (it is value-exact, so results are unchanged).
        let rhs_f32 = rhs.to_f32_vec();
        let mut out = vec![0.0f32; self.rows * rhs.cols];
        self.matmul_ref_rows(&rhs_f32, rhs.cols, 0..self.rows, &mut out);
        out
    }

    /// Row-major `f32` conversion of every element, in one batch LUT
    /// sweep ([`crate::fp16::f16_to_f32_vec`]).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        crate::fp16::f16_to_f32_vec(&self.data)
    }

    /// Serial inner loop of the reference product for output rows
    /// `rows`, writing into `out` (densely packed starting at the first
    /// requested row). `rhs_f32` is the pre-converted right operand with
    /// `n` columns. Shared by [`Self::matmul_ref`] and
    /// [`Self::par_matmul_ref`] so the accumulation order — ascending
    /// `k` per output row, skipping zero lhs elements — is identical by
    /// construction at every job count.
    fn matmul_ref_rows(
        &self,
        rhs_f32: &[f32],
        n: usize,
        rows: std::ops::Range<usize>,
        out: &mut [f32],
    ) {
        let r0 = rows.start;
        // One reusable lhs-row conversion buffer per band: each row is
        // batch-converted through the FP16 LUT before the MAC loop. The
        // zero-skip test sees the identical f32 values (±0.0 included),
        // so the accumulation stream is unchanged.
        let mut lhs_f32 = vec![0.0f32; self.cols];
        for r in rows {
            crate::fp16::f16_to_f32_slice(
                &self.data[r * self.cols..(r + 1) * self.cols],
                &mut lhs_f32,
            );
            let out_row = &mut out[(r - r0) * n..(r - r0 + 1) * n];
            for (k, &a) in lhs_f32.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs_f32[k * n..(k + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// [`DenseMatrix::matmul_ref`] fanned across host cores (see
    /// [`crate::exec`]).
    ///
    /// Each worker computes a contiguous band of output rows with the
    /// serial element loop, so every `out[r][c]` accumulates in the
    /// same order as `matmul_ref` and the result is bit-identical at
    /// any job count.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn par_matmul_ref(&self, rhs: &DenseMatrix) -> Vec<f32> {
        assert_eq!(self.cols, rhs.rows, "inner dimension mismatch");
        let n = rhs.cols;
        // One shared conversion of rhs, read by every worker — the
        // serial band loop previously re-converted each rhs element
        // once per output row.
        let rhs_f32 = rhs.to_f32_vec();
        let bands = crate::exec::par_chunks(self.rows, |rows| {
            let mut band = vec![0.0f32; rows.len() * n];
            self.matmul_ref_rows(&rhs_f32, n, rows, &mut band);
            band
        });
        bands.concat()
    }
}

/// Distribution of non-zero values in generated matrices.
#[derive(Clone, Copy, Debug)]
pub enum ValueDist {
    /// Uniform in `[-1, 1]`, quantised to FP16.
    Uniform,
    /// Approximately normal (sum of uniforms), scaled to the given std-dev.
    Normal { std: f32 },
}

/// Staging-chunk size (elements) shared by the batched generator paths:
/// one full [`BufferedRng`] refill's worth of words.
const GEN_CHUNK: usize = BUFFER_WORDS;

/// One `Uniform::new_inclusive(-1.0, 1.0)` draw applied to a raw word —
/// exactly `lo + u·(hi − lo)` with the `Standard` f32 mapping, the
/// expression `sample(rng, ValueDist::Uniform)` evaluates per element.
#[inline]
fn uniform_pm1(w: u64) -> f32 {
    -1.0f32 + f32_from_word(w) * 2.0f32
}

/// Generates a dense matrix with i.i.d. values (no sparsity).
///
/// Batched form of [`random_dense_oracle`], byte-identical by
/// construction (and pinned by tests): every element consumes a fixed
/// number of words — one for `Uniform`, twelve for `Normal` — so whole
/// chunks of raw words are mapped through the same per-word formulas
/// the serial draw path applies, then batch-converted to FP16.
pub fn random_dense(rows: usize, cols: usize, dist: ValueDist, seed: u64) -> DenseMatrix {
    let n = rows * cols;
    let mut rng = BufferedRng::new(StdRng::seed_from_u64(seed));
    let mut data = vec![Half::ZERO; n];
    let mut tmp = [0.0f32; GEN_CHUNK];
    let mut i = 0;
    while i < n {
        let (words_per_elem, words) = match dist {
            ValueDist::Uniform => (1, rng.buffered(1)),
            ValueDist::Normal { .. } => (12, rng.buffered(12)),
        };
        let cnt = (words.len() / words_per_elem).min(n - i).min(GEN_CHUNK);
        match dist {
            ValueDist::Uniform => {
                for (slot, &w) in tmp[..cnt].iter_mut().zip(words) {
                    *slot = uniform_pm1(w);
                }
            }
            ValueDist::Normal { std } => {
                for (e, slot) in tmp[..cnt].iter_mut().enumerate() {
                    // Irwin-Hall: sum of 12 uniforms minus 6, summed in
                    // the same ascending-draw order as the serial path.
                    let mut s = 0.0f32;
                    for &w in &words[e * 12..e * 12 + 12] {
                        s += f32_from_word(w);
                    }
                    *slot = (s - 6.0) * std;
                }
            }
        }
        rng.advance(cnt * words_per_elem);
        crate::fp16::f32_to_f16_slice(&tmp[..cnt], &mut data[i..i + cnt]);
        i += cnt;
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// The original element-at-a-time generator [`random_dense`] batches:
/// one `sample` draw per element. Retained as the stream oracle the
/// batched path is pinned against.
pub fn random_dense_oracle(rows: usize, cols: usize, dist: ValueDist, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(Half::from_f32(sample(&mut rng, dist)));
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// Generates a sparse matrix where each element is zero with probability
/// `sparsity`, matching the uniform-random model the paper uses for kernel
/// benchmarks (non-zeros follow `dist`). Exact zeros are re-rolled so that
/// "non-zero" positions genuinely carry non-zero values.
///
/// Batched form of [`random_sparse_oracle`], byte-identical by
/// construction (and pinned by tests). `Uniform` non-zeros take the
/// chunked optimistic path (see `fill_sparse_uniform`); `Normal`
/// keeps the per-element draw loop — it is off the sweep hot path and
/// its re-roll probability is distribution-dependent.
pub fn random_sparse(
    rows: usize,
    cols: usize,
    sparsity: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let n = rows * cols;
    let mut rng = BufferedRng::new(StdRng::seed_from_u64(seed));
    let mut data = vec![Half::ZERO; n];
    match dist {
        ValueDist::Uniform => fill_sparse_uniform(&mut rng, sparsity, &mut data, false),
        ValueDist::Normal { .. } => {
            for slot in data.iter_mut() {
                *slot = sparse_element(&mut rng, sparsity, dist);
            }
        }
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// The original element-at-a-time generator [`random_sparse`] batches:
/// one f64 gate draw per element, then the re-rolling non-zero sample
/// for kept positions. Retained as the stream oracle the batched path
/// is pinned against.
pub fn random_sparse_oracle(
    rows: usize,
    cols: usize,
    sparsity: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(sparse_element(&mut rng, sparsity, dist));
    }
    DenseMatrix::from_vec(rows, cols, data)
}

/// One element of the serial sparse draw sequence: a gate draw, then
/// (if kept) the re-rolling non-zero sample.
#[inline]
fn sparse_element<R: RngCore>(rng: &mut R, sparsity: f64, dist: ValueDist) -> Half {
    if rng.gen::<f64>() < sparsity {
        Half::ZERO
    } else {
        nonzero_sample(rng, dist)
    }
}

/// Chunked optimistic filler for `Uniform` sparse matrices,
/// byte-identical to the serial per-element loop.
///
/// Each chunk peeks a run of buffered raw words and maps them through
/// the exact per-word draw formulas, assuming no kept draw lands on
/// exact `0.0` (the only case where the serial path would re-roll and
/// consume extra words). Uniform `[-1, 1]` samples are multiples of
/// 2⁻²³, which FP16 conversion only underflows to zero for `0.0`
/// itself, so `x == 0.0` detects the hazard exactly; it strikes with
/// probability 2⁻²⁴ per kept element. On a hit the chunk's words are
/// *not* consumed — the whole run is replayed through
/// [`sparse_element`], which re-serves the identical words from the
/// buffer and performs the true re-roll sequence.
///
/// `force_replay` pretends every chunk hit the hazard, driving the
/// replay path deterministically for tests (the rare path must also be
/// byte-faithful, including its word accounting across chunks).
fn fill_sparse_uniform(
    rng: &mut BufferedRng<StdRng>,
    sparsity: f64,
    data: &mut [Half],
    force_replay: bool,
) {
    // Integer form of the gate compare. `f64_from_word(w) = u · 2⁻⁵³`
    // with `u = w >> 11 < 2⁵³`, and both `u · 2⁻⁵³` (a 53-bit integer
    // scaled by a power of two) and `T = sparsity · 2⁵³` (a mantissa
    // rescaling, no overflow for sparsity ≤ 1) are exact, so the f64
    // compare `u · 2⁻⁵³ < sparsity` is the real-number compare `u < T`.
    // For integer `u` that is `u < ceil(T)` (when `T` is an integer,
    // `ceil(T) = T`), a pure integer compare per word.
    let thresh = (sparsity * 9007199254740992.0).ceil() as u64; // 2⁵³
    debug_assert!((0.0..=1.0).contains(&sparsity));
    let n = data.len();
    let mut tmp = [0.0f32; GEN_CHUNK];
    let mut i = 0;
    while i < n {
        // Worst case two words per element (gate + value).
        let words = rng.buffered(2);
        let avail = words.len();
        let lim = (n - i).min(GEN_CHUNK);
        let (wp, cnt, replay) = scan_sparse_run(words, thresh, &mut tmp, lim, avail, force_replay);
        let out = &mut data[i..i + cnt];
        if replay {
            // Rare path: leave the peeked words unconsumed and replay
            // the run through the exact serial logic.
            for slot in out.iter_mut() {
                *slot = sparse_element(rng, sparsity, ValueDist::Uniform);
            }
        } else {
            rng.advance(wp);
            crate::fp16::f32_to_f16_slice(&tmp[..cnt], out);
        }
        i += cnt;
    }
}

/// One optimistic run of the sparse scan: maps buffered words to `f32`
/// samples in `tmp` until `lim` elements are produced or fewer than two
/// words remain. Returns `(words consumed, elements produced, hazard)`.
/// Dispatch wrapper: see [`scan_sparse_run_generic`] for the logic.
#[inline]
fn scan_sparse_run(
    words: &[u64],
    thresh: u64,
    tmp: &mut [f32; GEN_CHUNK],
    lim: usize,
    avail: usize,
    force_replay: bool,
) -> (usize, usize, bool) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 requirement was just checked at runtime.
        return unsafe { scan_sparse_run_avx2(words, thresh, tmp, lim, avail, force_replay) };
    }
    scan_sparse_run_generic(words, thresh, tmp, lim, avail, force_replay)
}

/// The same scan compiled with AVX2/BMI enabled (see
/// [`crate::fp16::f32_to_f16_slice`] for why the baseline SSE2 build
/// can't vectorize these patterns). Identical arithmetic — invisible to
/// the stream-fidelity pins.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2 (which implies the BMI1
/// and LZCNT levels enabled here).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,bmi1,bmi2,lzcnt,popcnt")]
unsafe fn scan_sparse_run_avx2(
    words: &[u64],
    thresh: u64,
    tmp: &mut [f32; GEN_CHUNK],
    lim: usize,
    avail: usize,
    force_replay: bool,
) -> (usize, usize, bool) {
    scan_sparse_run_generic(words, thresh, tmp, lim, avail, force_replay)
}

#[inline]
fn scan_sparse_run_generic(
    words: &[u64],
    thresh: u64,
    tmp: &mut [f32; GEN_CHUNK],
    lim: usize,
    avail: usize,
    force_replay: bool,
) -> (usize, usize, bool) {
    let mut wp = 0usize;
    let mut cnt = 0usize;
    let mut replay = force_replay;

    // Block path: classify 64 words at once. Each block starts at a gate
    // word (the scalar loop below also always stops at element
    // boundaries), `k` collects per-word kept-gate decisions, and
    // [`value_word_mask`] splits the block into gate words and value
    // words without walking the serial word-position chain. Elements are
    // emitted in gate-word order — zeros via one bulk fill, kept values
    // by rank — which is exactly the serial emission order. A block
    // needs one lookahead word (`wp + 65`) in case bit 63 is a kept
    // gate, and room for its worst case of 64 elements.
    while wp + 65 <= avail && cnt + 64 <= lim {
        let mut k = 0u64;
        for (j, &w) in words[wp..wp + 64].iter().enumerate() {
            k |= u64::from((w >> 11) >= thresh) << j;
        }
        let gates = !value_word_mask(k);
        let elems = gates.count_ones() as usize;
        tmp[cnt..cnt + elems].fill(0.0);
        let mut kept_gates = gates & k;
        let consumed_lookahead = (kept_gates >> 63) as usize;
        while kept_gates != 0 {
            let j = kept_gates.trailing_zeros() as usize;
            kept_gates &= kept_gates - 1;
            let rank = (gates & ((1u64 << j) - 1)).count_ones() as usize;
            let x = uniform_pm1(words[wp + j + 1]);
            tmp[cnt + rank] = x;
            replay |= x == 0.0;
        }
        cnt += elems;
        wp += 64 + consumed_lookahead;
    }

    // Scalar tail: remaining elements / buffered words, one at a time.
    while cnt < lim && wp + 2 <= avail {
        let gate = (words[wp] >> 11) < thresh;
        let x = uniform_pm1(words[wp + 1]);
        wp += 2 - gate as usize;
        let kept = !gate;
        tmp[cnt] = if kept { x } else { 0.0 };
        replay |= kept && x == 0.0;
        cnt += 1;
    }
    (wp, cnt, replay)
}

/// Given that word 0 of a 64-word run is a gate word and bit `j` of `k`
/// says "word `j`'s draw keeps the element *if* word `j` is a gate",
/// returns the mask of words that are value words — the solution of
/// `v[j] = k[j-1] & !v[j-1]`, `v[0] = 0`: a word is a value word exactly
/// when an odd-length run of kept-gate bits immediately precedes it.
///
/// Branch-free run-parity form (the carry-propagation technique
/// simdjson uses for escaped-character masks): runs of `k` starting on
/// even positions keep their odd members, runs starting on odd
/// positions keep their even members, and one 64-bit add propagates
/// each run's start parity to its members. Pinned against the serial
/// recurrence in `value_word_mask_matches_serial_recurrence`.
#[inline]
fn value_word_mask(k: u64) -> u64 {
    const EVEN: u64 = 0x5555_5555_5555_5555;
    let follows_kept = k << 1;
    let odd_starts = k & !EVEN & !follows_kept;
    let (sum, _) = odd_starts.overflowing_add(k);
    let invert = sum << 1;
    (EVEN ^ invert) & follows_kept
}

/// Generates a sparse matrix with an *exact* number of non-zeros per row
/// (balanced), the pattern magnitude-style per-row pruning produces.
pub fn random_sparse_balanced(
    rows: usize,
    cols: usize,
    sparsity: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!((0.0..=1.0).contains(&sparsity));
    let keep_per_row = ((cols as f64) * (1.0 - sparsity)).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = DenseMatrix::zeros(rows, cols);
    let mut idx: Vec<usize> = (0..cols).collect();
    for r in 0..rows {
        // Partial Fisher-Yates: choose `keep_per_row` distinct columns.
        for i in 0..keep_per_row.min(cols) {
            let j = rng.gen_range(i..cols);
            idx.swap(i, j);
        }
        for &c in idx.iter().take(keep_per_row) {
            out.set(r, c, nonzero_sample(&mut rng, dist));
        }
    }
    out
}

/// Generates an extremely sparse matrix whose non-zeros cluster into a
/// `block_density` fraction of `block×block` tiles (each chosen tile is
/// `fill` dense inside) — the structure of scientific/graph matrices that
/// block-skipping kernels like SMaT exploit (paper Fig. 11).
pub fn random_sparse_clustered(
    rows: usize,
    cols: usize,
    block: usize,
    block_density: f64,
    fill: f64,
    dist: ValueDist,
    seed: u64,
) -> DenseMatrix {
    assert!(block > 0);
    assert!((0.0..=1.0).contains(&block_density) && (0.0..=1.0).contains(&fill));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = DenseMatrix::zeros(rows, cols);
    for br in 0..rows.div_ceil(block) {
        for bc in 0..cols.div_ceil(block) {
            if rng.gen::<f64>() >= block_density {
                continue;
            }
            for lr in 0..block {
                for lc in 0..block {
                    let (r, c) = (br * block + lr, bc * block + lc);
                    if r < rows && c < cols && rng.gen::<f64>() < fill {
                        out.set(r, c, nonzero_sample(&mut rng, dist));
                    }
                }
            }
        }
    }
    out
}

fn sample<R: RngCore>(rng: &mut R, dist: ValueDist) -> f32 {
    match dist {
        ValueDist::Uniform => Uniform::new_inclusive(-1.0f32, 1.0).sample(rng),
        ValueDist::Normal { std } => {
            // Irwin-Hall approximation: sum of 12 uniforms minus 6 is ~N(0,1).
            let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
            s * std
        }
    }
}

fn nonzero_sample<R: RngCore>(rng: &mut R, dist: ValueDist) -> Half {
    loop {
        let h = Half::from_f32(sample(rng, dist));
        if !h.is_zero() {
            return h;
        }
    }
}

/// Order-sensitive FNV-1a digest over the raw bit patterns of an FP32
/// buffer. Golden-output regression tests pin this value: any change to
/// a single output bit (or to the element order) changes the digest.
pub fn checksum_f32(xs: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in xs {
        for byte in x.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Maximum absolute difference between a kernel output and the reference.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Relative L2 error `‖a−b‖₂ / max(‖b‖₂, ε)`.
pub fn rel_l2_error(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (x, y) in a.iter().zip(b) {
        num += f64::from(x - y) * f64::from(x - y);
        den += f64::from(*y) * f64::from(*y);
    }
    (num.sqrt() / den.sqrt().max(1e-30)) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_full_sparsity() {
        let m = DenseMatrix::zeros(8, 8);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.sparsity(), 1.0);
        assert_eq!(m.dense_bytes(), 128);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut m = DenseMatrix::zeros(4, 6);
        m.set(2, 5, Half::from_f32(2.5));
        assert_eq!(m.get(2, 5).to_f32(), 2.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn transpose_involution() {
        let m = random_dense(7, 13, ValueDist::Uniform, 1);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn random_sparse_hits_target_sparsity() {
        let m = random_sparse(256, 256, 0.6, ValueDist::Uniform, 42);
        let s = m.sparsity();
        assert!((s - 0.6).abs() < 0.02, "sparsity {s}");
    }

    #[test]
    fn balanced_sparsity_is_exact_per_row() {
        let m = random_sparse_balanced(64, 100, 0.7, ValueDist::Uniform, 7);
        for r in 0..64 {
            let nnz_row = (0..100).filter(|&c| !m.get(r, c).is_zero()).count();
            assert_eq!(nnz_row, 30, "row {r}");
        }
    }

    #[test]
    fn matmul_ref_identity() {
        let mut id = DenseMatrix::zeros(4, 4);
        for i in 0..4 {
            id.set(i, i, Half::ONE);
        }
        let x = random_dense(4, 3, ValueDist::Uniform, 3);
        let y = id.matmul_ref(&x);
        for r in 0..4 {
            for c in 0..3 {
                assert_eq!(y[r * 3 + c], x.get(r, c).to_f32());
            }
        }
    }

    #[test]
    fn matmul_ref_small_known() {
        // [1 2; 3 4] x [5; 6] = [17; 39]
        let a = DenseMatrix::from_f32(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = DenseMatrix::from_f32(2, 1, &[5.0, 6.0]);
        assert_eq!(a.matmul_ref(&b), vec![17.0, 39.0]);
    }

    #[test]
    fn par_matmul_ref_is_bit_identical_to_serial() {
        let a = random_sparse(97, 130, 0.6, ValueDist::Uniform, 11);
        let x = random_dense(130, 13, ValueDist::Uniform, 12);
        assert_eq!(a.par_matmul_ref(&x), a.matmul_ref(&x));
    }

    #[test]
    fn error_metrics() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.5, 3.0];
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(rel_l2_error(&a, &a) < 1e-12);
    }

    #[test]
    fn clustered_generator_concentrates_nonzeros() {
        let m = random_sparse_clustered(256, 256, 16, 0.1, 0.8, ValueDist::Uniform, 17);
        // Count non-empty 16x16 blocks.
        let mut nonempty = 0;
        for br in 0..16 {
            for bc in 0..16 {
                let any = (0..16)
                    .any(|lr| (0..16).any(|lc| !m.get(br * 16 + lr, bc * 16 + lc).is_zero()));
                if any {
                    nonempty += 1;
                }
            }
        }
        let density = f64::from(nonempty) / 256.0;
        assert!((density - 0.1).abs() < 0.07, "block density {density}");
        // Overall sparsity is extreme even though blocks are dense inside.
        assert!(m.sparsity() > 0.88);
    }

    #[test]
    fn normal_dist_generates_fp16_range_values() {
        let m = random_dense(32, 32, ValueDist::Normal { std: 0.02 }, 9);
        assert!(m.as_slice().iter().all(|h| !h.is_nan() && !h.is_infinite()));
    }

    #[test]
    fn batched_dense_generator_matches_oracle() {
        // Shapes straddling the chunk size, both distributions.
        for (r, c) in [(1, 1), (3, 5), (16, 32), (7, 111), (64, 64), (37, 53)] {
            for dist in [ValueDist::Uniform, ValueDist::Normal { std: 0.02 }] {
                for seed in [0u64, 1, 42, u64::MAX] {
                    let a = random_dense(r, c, dist, seed);
                    let b = random_dense_oracle(r, c, dist, seed);
                    assert_eq!(a, b, "dense {r}x{c} {dist:?} seed {seed}");
                }
            }
        }
    }

    /// Serial form of the [`value_word_mask`] recurrence
    /// `v[j] = k[j-1] & !v[j-1]`, `v[0] = 0`.
    fn value_word_mask_serial(k: u64) -> u64 {
        let mut v = 0u64;
        for j in 1..64 {
            let prev_gate_kept = (k >> (j - 1)) & 1 == 1 && (v >> (j - 1)) & 1 == 0;
            v |= u64::from(prev_gate_kept) << j;
        }
        v
    }

    #[test]
    fn value_word_mask_matches_serial_recurrence() {
        // Structured patterns: empty, full, alternating phases, run
        // boundaries at the word edges, single bits.
        let structured = [
            0u64,
            !0,
            0x5555_5555_5555_5555,
            0xAAAA_AAAA_AAAA_AAAA,
            1,
            1 << 63,
            0b111,
            0b110,
            (1 << 63) | (1 << 62),
            !0 << 60,
            !0 >> 60,
            0x00FF_FF00_0FF0_F0F0,
        ];
        for k in structured {
            assert_eq!(value_word_mask(k), value_word_mask_serial(k), "k={k:#018x}");
        }
        // And a deterministic pseudo-random sweep.
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4096 {
            let k = rng.next_u64();
            assert_eq!(value_word_mask(k), value_word_mask_serial(k), "k={k:#018x}");
        }
    }

    #[test]
    fn batched_sparse_generator_matches_oracle() {
        // Shapes above 129 words exercise the 64-word block classifier;
        // the small ones exercise the scalar tail only.
        for (r, c) in [(1, 1), (16, 32), (7, 111), (64, 64), (129, 65), (200, 173)] {
            for sparsity in [0.0, 0.3, 0.6, 0.95, 1.0] {
                for seed in [0u64, 7, 42] {
                    let a = random_sparse(r, c, sparsity, ValueDist::Uniform, seed);
                    let b = random_sparse_oracle(r, c, sparsity, ValueDist::Uniform, seed);
                    assert_eq!(a, b, "sparse {r}x{c} s={sparsity} seed {seed}");
                }
            }
        }
        // Normal keeps the serial element loop but now runs buffered.
        let a = random_sparse(48, 48, 0.5, ValueDist::Normal { std: 0.02 }, 5);
        let b = random_sparse_oracle(48, 48, 0.5, ValueDist::Normal { std: 0.02 }, 5);
        assert_eq!(a, b);
    }

    /// The optimistic filler's rare path — decline to consume the
    /// peeked words and replay the run serially — must also be
    /// byte-faithful, including word accounting across chunk
    /// boundaries. The 2⁻²⁴-per-element hazard never fires organically
    /// at test sizes, so force it on every chunk.
    #[test]
    fn sparse_replay_path_matches_oracle() {
        for (r, c) in [(16, 32), (7, 111), (129, 65)] {
            for sparsity in [0.0, 0.3, 0.6, 1.0] {
                for seed in [0u64, 7, 42] {
                    let n = r * c;
                    let mut rng = BufferedRng::new(StdRng::seed_from_u64(seed));
                    let mut data = vec![Half::ZERO; n];
                    fill_sparse_uniform(&mut rng, sparsity, &mut data, true);
                    let replayed = DenseMatrix::from_vec(r, c, data);
                    let oracle = random_sparse_oracle(r, c, sparsity, ValueDist::Uniform, seed);
                    assert_eq!(replayed, oracle, "replay {r}x{c} s={sparsity} seed {seed}");
                }
            }
        }
    }
}
