//! CUDA occupancy calculator.
//!
//! Occupancy — resident warps per SM relative to the maximum — is limited
//! by whichever resource runs out first: registers, shared memory, thread
//! slots, or block slots. The paper's micro-analysis (Figure 12) credits
//! SpInfer's low register usage with higher occupancy than Flash-LLM; this
//! module makes that effect a computed quantity rather than an assumption.

use crate::spec::GpuSpec;

/// Resource requirements of one thread block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockResources {
    /// Threads per block (multiple of the warp size for our kernels).
    pub threads: u32,
    /// 32-bit registers per thread.
    pub regs_per_thread: u32,
    /// Static + dynamic shared memory per block in bytes.
    pub smem_bytes: u32,
}

/// Occupancy outcome for a kernel on a given device.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Occupancy {
    /// Thread blocks resident per SM.
    pub blocks_per_sm: u32,
    /// Warps resident per SM.
    pub warps_per_sm: u32,
    /// `warps_per_sm` / device maximum, in `(0, 1]`.
    pub fraction: f64,
    /// Which resource bound first.
    pub limiter: Limiter,
}

/// The resource that limits occupancy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Limiter {
    /// Register file exhausted first.
    Registers,
    /// Shared memory exhausted first.
    SharedMemory,
    /// Thread slots exhausted first.
    Threads,
    /// Block slots exhausted first.
    Blocks,
}

/// Register allocation granularity (registers are allocated per warp in
/// chunks of 256 on Ampere/Ada).
const REG_ALLOC_UNIT: u32 = 256;
/// Shared memory allocation granularity in bytes.
const SMEM_ALLOC_UNIT: u32 = 128;

/// Why a block shape cannot launch on a device at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaunchError {
    /// Zero threads or more than the device's per-block maximum.
    InvalidThreadCount,
    /// More shared memory than the per-block limit.
    SharedMemoryExceeded,
    /// More registers per thread than the architecture allows.
    RegistersExceeded,
    /// Resources admit zero resident blocks.
    NoResidency,
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidThreadCount => write!(f, "invalid thread count for this device"),
            LaunchError::SharedMemoryExceeded => {
                write!(
                    f,
                    "block requests more shared memory than the device block limit"
                )
            }
            LaunchError::RegistersExceeded => {
                write!(f, "registers/thread exceeds the device limit")
            }
            LaunchError::NoResidency => write!(f, "kernel cannot achieve residency"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// Fallible occupancy computation: returns a [`LaunchError`] where
/// [`occupancy`] would panic.
pub fn try_occupancy(spec: &GpuSpec, block: &BlockResources) -> Result<Occupancy, LaunchError> {
    if block.threads < 1 || block.threads > spec.max_threads_per_block {
        return Err(LaunchError::InvalidThreadCount);
    }
    if block.smem_bytes as usize > spec.smem_per_block {
        return Err(LaunchError::SharedMemoryExceeded);
    }
    if block.regs_per_thread > spec.max_regs_per_thread {
        return Err(LaunchError::RegistersExceeded);
    }
    let occ = occupancy_unchecked(spec, block);
    if occ.blocks_per_sm < 1 {
        return Err(LaunchError::NoResidency);
    }
    Ok(occ)
}

/// Computes occupancy for a block shape on a device.
///
/// # Panics
///
/// Panics if the block cannot run at all (e.g. more shared memory than the
/// device offers) — launch failure, not zero occupancy. Use
/// [`try_occupancy`] for a fallible variant.
pub fn occupancy(spec: &GpuSpec, block: &BlockResources) -> Occupancy {
    match try_occupancy(spec, block) {
        Ok(o) => o,
        Err(LaunchError::SharedMemoryExceeded) => panic!(
            "block requests {} B shared memory, device block limit is {} B",
            block.smem_bytes, spec.smem_per_block
        ),
        Err(LaunchError::RegistersExceeded) => panic!(
            "{} registers/thread exceeds device limit {}",
            block.regs_per_thread, spec.max_regs_per_thread
        ),
        Err(e) => panic!("{e}"),
    }
}

fn occupancy_unchecked(spec: &GpuSpec, block: &BlockResources) -> Occupancy {
    let warps_per_block = block.threads.div_ceil(spec.warp_size);

    // Registers: allocated per warp, rounded to the allocation unit.
    let regs_per_warp =
        (block.regs_per_thread * spec.warp_size).div_ceil(REG_ALLOC_UNIT) * REG_ALLOC_UNIT;
    let regs_per_block = regs_per_warp * warps_per_block;
    let by_regs = spec
        .regs_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(spec.max_blocks_per_sm);

    // Shared memory, rounded to its allocation unit.
    let smem_per_block = block.smem_bytes.div_ceil(SMEM_ALLOC_UNIT) * SMEM_ALLOC_UNIT;
    let by_smem = (spec.smem_per_sm as u32)
        .checked_div(smem_per_block)
        .unwrap_or(spec.max_blocks_per_sm);

    let by_threads = spec.max_threads_per_sm / block.threads;
    let by_blocks = spec.max_blocks_per_sm;

    let blocks = by_regs.min(by_smem).min(by_threads).min(by_blocks);

    // Tie-break in favour of architectural limits so "no pressure at all"
    // reports `Blocks`, not a coincidentally-equal resource bound.
    let limiter = if blocks == by_blocks {
        Limiter::Blocks
    } else if blocks == by_threads {
        Limiter::Threads
    } else if blocks == by_smem {
        Limiter::SharedMemory
    } else {
        Limiter::Registers
    };

    let warps = blocks * warps_per_block;
    let max_warps = spec.max_threads_per_sm / spec.warp_size;
    Occupancy {
        blocks_per_sm: blocks,
        warps_per_sm: warps,
        fraction: f64::from(warps) / f64::from(max_warps),
        limiter,
    }
}

#[cfg(test)]
mod fallible_tests {
    use super::*;
    use crate::spec::GpuSpec;

    #[test]
    fn try_occupancy_reports_typed_errors() {
        let spec = GpuSpec::rtx4090();
        let base = BlockResources {
            threads: 128,
            regs_per_thread: 64,
            smem_bytes: 16 * 1024,
        };
        assert!(try_occupancy(&spec, &base).is_ok());
        assert_eq!(
            try_occupancy(&spec, &BlockResources { threads: 0, ..base }).unwrap_err(),
            LaunchError::InvalidThreadCount
        );
        assert_eq!(
            try_occupancy(
                &spec,
                &BlockResources {
                    smem_bytes: 200 * 1024,
                    ..base
                }
            )
            .unwrap_err(),
            LaunchError::SharedMemoryExceeded
        );
        assert_eq!(
            try_occupancy(
                &spec,
                &BlockResources {
                    regs_per_thread: 300,
                    ..base
                }
            )
            .unwrap_err(),
            LaunchError::RegistersExceeded
        );
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(LaunchError::NoResidency.to_string().contains("residency"));
        assert!(LaunchError::SharedMemoryExceeded
            .to_string()
            .contains("shared memory"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> GpuSpec {
        GpuSpec::rtx4090()
    }

    #[test]
    fn small_block_is_block_slot_limited() {
        let o = occupancy(
            &spec(),
            &BlockResources {
                threads: 32,
                regs_per_thread: 32,
                smem_bytes: 0,
            },
        );
        assert_eq!(o.blocks_per_sm, 24);
        assert_eq!(o.limiter, Limiter::Blocks);
    }

    #[test]
    fn register_pressure_cuts_occupancy() {
        let light = occupancy(
            &spec(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 64,
                smem_bytes: 16 * 1024,
            },
        );
        let heavy = occupancy(
            &spec(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 192,
                smem_bytes: 16 * 1024,
            },
        );
        assert!(heavy.warps_per_sm < light.warps_per_sm);
        assert_eq!(heavy.limiter, Limiter::Registers);
    }

    #[test]
    fn smem_pressure_limits_blocks() {
        let o = occupancy(
            &spec(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 32,
                smem_bytes: 48 * 1024,
            },
        );
        // 100 KB/SM with 48 KB blocks -> 2 blocks.
        assert_eq!(o.blocks_per_sm, 2);
        assert_eq!(o.limiter, Limiter::SharedMemory);
    }

    #[test]
    fn thread_limit() {
        let o = occupancy(
            &spec(),
            &BlockResources {
                threads: 1024,
                regs_per_thread: 32,
                smem_bytes: 0,
            },
        );
        // 1536 threads/SM with 1024-thread blocks -> 1 block, 32 warps.
        assert_eq!(o.blocks_per_sm, 1);
        assert_eq!(o.warps_per_sm, 32);
    }

    #[test]
    fn fraction_is_bounded() {
        let o = occupancy(
            &spec(),
            &BlockResources {
                threads: 256,
                regs_per_thread: 64,
                smem_bytes: 32 * 1024,
            },
        );
        assert!(o.fraction > 0.0 && o.fraction <= 1.0);
    }

    #[test]
    #[should_panic(expected = "shared memory")]
    fn oversized_smem_panics() {
        occupancy(
            &spec(),
            &BlockResources {
                threads: 128,
                regs_per_thread: 32,
                smem_bytes: 128 * 1024,
            },
        );
    }
}
