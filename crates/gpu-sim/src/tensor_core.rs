//! Functional emulation of the PTX `mma.m16n8k16.row.col.f32.f16.f16.f32`
//! Tensor Core instruction (paper Listing 1).
//!
//! The emulation is *fragment-level*: each of the 32 lanes of a warp holds
//! the exact registers the real instruction expects —
//!
//! * `A` (16×16 FP16, row-major): four `.f16x2` registers `Ra0..Ra3` per
//!   lane. With `group = lane / 4` and `tid = lane % 4`:
//!   - `Ra0` = `A[group][2*tid]`, `A[group][2*tid+1]` (top-left 8×8)
//!   - `Ra1` = `A[group+8][2*tid..]` (bottom-left)
//!   - `Ra2` = `A[group][2*tid+8..]` (top-right)
//!   - `Ra3` = `A[group+8][2*tid+8..]` (bottom-right)
//! * `B` (16×8 FP16, column-major operand): two registers `Rb0`, `Rb1`:
//!   - `Rb0` = `B[2*tid][group]`, `B[2*tid+1][group]`
//!   - `Rb1` = `B[2*tid+8][group]`, `B[2*tid+9][group]`
//! * `C`/`D` (16×8 FP32): four registers:
//!   - `c0,c1` = `C[group][2*tid..]`, `c2,c3` = `C[group+8][2*tid..]`
//!
//! The `Ra0..Ra3` ↔ 8×8 quadrant correspondence (top-left, bottom-left,
//! top-right, bottom-right — i.e. column-major quadrants) is exactly why
//! TCA-BME stores its 2×2 `BitmapTile`s in column-major order (paper
//! §4.2.1), and the within-quadrant rule "lane `l` holds row-major
//! elements `2l` and `2l+1`" is why `MaskedPopCount` uses offset `2l`
//! (paper Algorithm 2). SpInfer's decoder and every Tensor-Core baseline
//! share this single implementation, so a layout bug cannot cancel out.

use crate::counters::Counters;
use crate::fp16::{pack_f16x2, unpack_f16x2, unpack_f16x2_f32, Half};

/// Rows of the `mma` A operand / D result.
pub const MMA_M: usize = 16;
/// Columns of the B operand / D result.
pub const MMA_N: usize = 8;
/// Inner (reduction) dimension.
pub const MMA_K: usize = 16;

/// Quadrant origins `(row, col)` of the A-fragment registers `Ra0..Ra3`
/// inside their 16×16 tile: top-left, bottom-left, top-right,
/// bottom-right — the column-major quadrant order TCA-BME stores its
/// `BitmapTile`s in (paper §4.2.1).
pub const QUAD_ORIGINS: [(usize, usize); 4] = [(0, 0), (8, 0), (0, 8), (8, 8)];

/// Unpacks one packed `.f16x2` register into two `f32` slots of a
/// row-major tile view — the low half at `lo_rc`, the high half at
/// `hi_rc`. Every fragment `to_f32_rows` view funnels through here, so
/// the register→`f32` LUT conversion has a single owner.
#[inline]
fn unpack_reg_at<const C: usize, const R: usize>(
    t: &mut [[f32; C]; R],
    reg: u32,
    lo_rc: (usize, usize),
    hi_rc: (usize, usize),
) {
    let (lo, hi) = unpack_f16x2_f32(reg);
    t[lo_rc.0][lo_rc.1] = lo;
    t[hi_rc.0][hi_rc.1] = hi;
}

/// Per-warp A fragment: `regs[lane][r]` is the `.f16x2` register `Ra{r}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragA {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 4]; 32],
}

/// Per-warp B fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragB {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 2]; 32],
}

/// Per-warp FP32 accumulator fragment.
#[derive(Clone, Debug, PartialEq)]
pub struct FragC {
    /// FP32 registers, indexed `[lane][reg]`.
    pub regs: [[f32; 4]; 32],
}

impl FragA {
    /// An all-zero fragment.
    pub fn zero() -> Self {
        FragA { regs: [[0; 4]; 32] }
    }

    /// Builds the fragment from a dense 16×16 tile given as a row-major
    /// accessor `tile(row, col)`.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragA::zero();
        for lane in 0..32 {
            let (qr, qc) = lane_quadrant_coords(lane);
            for (reg, &(dr, dc)) in QUAD_ORIGINS.iter().enumerate() {
                let lo = tile(qr + dr, qc + dc);
                let hi = tile(qr + dr, qc + dc + 1);
                f.regs[lane][reg] = pack_f16x2(lo, hi);
            }
        }
        f
    }

    /// Reconstructs the dense 16×16 tile this fragment represents.
    pub fn to_tile(&self) -> [[Half; MMA_K]; MMA_M] {
        let mut t = [[Half::ZERO; MMA_K]; MMA_M];
        for lane in 0..32 {
            let (qr, qc) = lane_quadrant_coords(lane);
            for (reg, &(dr, dc)) in QUAD_ORIGINS.iter().enumerate() {
                let (lo, hi) = unpack_f16x2(self.regs[lane][reg]);
                t[qr + dr][qc + dc] = lo;
                t[qr + dr][qc + dc + 1] = hi;
            }
        }
        t
    }

    /// Decode-once `f32` view of the 16×16 A tile: every element is
    /// unpacked and converted exactly once, so an mma MAC loop over the
    /// returned rows performs no per-element bit-decode. Decoding an A
    /// fragment once and reusing the view across the N-blocks it
    /// multiplies is the simulator's main serial hot-path optimisation.
    pub fn to_f32_rows(&self) -> [[f32; MMA_K]; MMA_M] {
        let mut t = [[0.0f32; MMA_K]; MMA_M];
        for (lane, regs) in self.regs.iter().enumerate() {
            let (qr, qc) = lane_quadrant_coords(lane);
            for (&reg, &(dr, dc)) in regs.iter().zip(&QUAD_ORIGINS) {
                unpack_reg_at(&mut t, reg, (qr + dr, qc + dc), (qr + dr, qc + dc + 1));
            }
        }
        t
    }
}

impl FragB {
    /// An all-zero fragment.
    pub fn zero() -> Self {
        FragB { regs: [[0; 2]; 32] }
    }

    /// Builds the fragment from a dense 16×8 tile accessor `tile(k, n)`.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragB::zero();
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = pack_f16x2(tile(2 * tid, group), tile(2 * tid + 1, group));
            f.regs[lane][1] = pack_f16x2(tile(2 * tid + 8, group), tile(2 * tid + 9, group));
        }
        f
    }

    /// Reconstructs the dense 16×8 tile.
    pub fn to_tile(&self) -> [[Half; MMA_N]; MMA_K] {
        let mut t = [[Half::ZERO; MMA_N]; MMA_K];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            let (b0, b1) = unpack_f16x2(self.regs[lane][0]);
            let (b2, b3) = unpack_f16x2(self.regs[lane][1]);
            t[2 * tid][group] = b0;
            t[2 * tid + 1][group] = b1;
            t[2 * tid + 8][group] = b2;
            t[2 * tid + 9][group] = b3;
        }
        t
    }

    /// Decode-once `f32` view of the 16×8 B tile (row-major `[k][n]`),
    /// the B-side counterpart of [`FragA::to_f32_rows`].
    pub fn to_f32_rows(&self) -> [[f32; MMA_N]; MMA_K] {
        let mut t = [[0.0f32; MMA_N]; MMA_K];
        for (lane, regs) in self.regs.iter().enumerate() {
            // B pairs run down a column: register r covers rows
            // `2*tid + 8r` and `2*tid + 8r + 1` of column `group`.
            let (group, col2) = lane_quadrant_coords(lane);
            for (r, &reg) in regs.iter().enumerate() {
                let k = col2 + 8 * r;
                unpack_reg_at(&mut t, reg, (k, group), (k + 1, group));
            }
        }
        t
    }
}

impl FragC {
    /// An all-zero accumulator.
    pub fn zero() -> Self {
        FragC {
            regs: [[0.0; 4]; 32],
        }
    }

    /// Builds the fragment from a dense 16×8 FP32 accessor.
    pub fn from_tile<F: Fn(usize, usize) -> f32>(tile: F) -> Self {
        let mut f = FragC::zero();
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = tile(group, 2 * tid);
            f.regs[lane][1] = tile(group, 2 * tid + 1);
            f.regs[lane][2] = tile(group + 8, 2 * tid);
            f.regs[lane][3] = tile(group + 8, 2 * tid + 1);
        }
        f
    }

    /// Reconstructs the dense 16×8 FP32 tile.
    pub fn to_tile(&self) -> [[f32; MMA_N]; MMA_M] {
        let mut t = [[0.0; MMA_N]; MMA_M];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            t[group][2 * tid] = self.regs[lane][0];
            t[group][2 * tid + 1] = self.regs[lane][1];
            t[group + 8][2 * tid] = self.regs[lane][2];
            t[group + 8][2 * tid + 1] = self.regs[lane][3];
        }
        t
    }
}

/// The accumulator register holding output element `(m, n)`: inverting
/// the `FragC` layout (`regs[lane] = [C[g][2t], C[g][2t+1], C[g+8][2t],
/// C[g+8][2t+1]]` with `g = lane/4`, `t = lane%4`) gives `lane =
/// (m%8)*4 + n/2`, `reg = 2*(m/8) + n%2`. Because the map is a
/// bijection, the MAC loops below update `acc.regs` in place instead of
/// round-tripping through `to_tile`/`from_tile`.
#[inline]
fn acc_slot(m: usize, n: usize) -> (usize, usize) {
    ((m % 8) * 4 + n / 2, 2 * (m / 8) + n % 2)
}

/// Whether the explicit-SIMD MAC panel is live: compiled in via the
/// `simd` feature *and* supported by the host CPU (AVX2, detected once
/// per process). With the feature off, or on a non-x86_64 target, this
/// is `false` and every mma runs the scalar flat panel — which is
/// bit-identical, so the answer never changes results, only wall-clock.
pub fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// One output row of the MAC sweep: `sums[n] += a_row[k] * b[k*ld + n]`
/// for every `k` ascending — the flat panel every mma entry point
/// drives. `sums.len()` must be a multiple of [`MMA_N`]; `b` must cover
/// `(a_row.len() - 1) * ld + sums.len()` elements.
///
/// Per output element the partial products accumulate in ascending-`k`
/// order exactly as the scalar oracles do, and the AVX2 path issues the
/// same per-lane multiply *then* add — never a fused multiply-add,
/// which would skip the intermediate rounding — so the oracle, flat,
/// and SIMD paths are bit-identical (`tests/simd_equiv.rs`).
#[inline]
fn mac_panel(sums: &mut [f32], a_row: &[f32], b: &[f32], ld: usize) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_active() {
        // SAFETY: `simd_active` verified AVX2 support at runtime.
        unsafe { mac_panel_avx2(sums, a_row, b, ld) };
        return;
    }
    mac_panel_flat(sums, a_row, b, ld);
}

/// Scalar fallback of [`mac_panel`]: contiguous-slice iteration the
/// auto-vectorizer handles well. Compiled on every target, `simd`
/// feature or not — it is the portable definition of the MAC sweep.
fn mac_panel_flat(sums: &mut [f32], a_row: &[f32], b: &[f32], ld: usize) {
    for (k, &av) in a_row.iter().enumerate() {
        let brow = &b[k * ld..k * ld + sums.len()];
        for (s, &bv) in sums.iter_mut().zip(brow) {
            *s += av * bv;
        }
    }
}

/// AVX2 [`mac_panel`]: broadcast `a_row[k]`, then 8-lane multiply and
/// add down the contiguous B row. Unfused mul+add keeps every lane's
/// rounding identical to the scalar path.
///
/// # Safety
///
/// The caller must ensure the CPU supports AVX2.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[target_feature(enable = "avx2")]
unsafe fn mac_panel_avx2(sums: &mut [f32], a_row: &[f32], b: &[f32], ld: usize) {
    use core::arch::x86_64::{
        _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };
    let n = sums.len();
    debug_assert_eq!(n % MMA_N, 0);
    for (k, &av) in a_row.iter().enumerate() {
        let brow = &b[k * ld..k * ld + n];
        let va = _mm256_set1_ps(av);
        let mut off = 0;
        while off + 8 <= n {
            // SAFETY: `off + 8 <= n` bounds both slices.
            unsafe {
                let vb = _mm256_loadu_ps(brow.as_ptr().add(off));
                let vs = _mm256_loadu_ps(sums.as_ptr().add(off));
                let prod = _mm256_mul_ps(va, vb);
                _mm256_storeu_ps(sums.as_mut_ptr().add(off), _mm256_add_ps(vs, prod));
            }
            off += 8;
        }
    }
}

/// Folds one output row of MAC sums into the accumulator fragment — a
/// single add per element, completing the ascending-`k`-then-one-add
/// order the fragment path pins. `sums` holds [`MMA_N`] columns.
#[inline]
fn add_sums(acc: &mut FragC, m: usize, sums: &[f32]) {
    for (n, &s) in sums.iter().enumerate() {
        let (lane, reg) = acc_slot(m, n);
        acc.regs[lane][reg] += s;
    }
}

/// Executes one warp-wide `mma.m16n8k16`: `acc = A × B + acc`, FP16 inputs
/// with FP32 accumulation, recording one `mma` instruction.
pub fn mma_m16n8k16(counters: &mut Counters, a: &FragA, b: &FragB, acc: &mut FragC) {
    mma_m16n8k16_f32(counters, &a.to_f32_rows(), &b.to_f32_rows(), acc);
}

/// Decode-once `mma.m16n8k16` on pre-decoded operand views
/// ([`FragA::to_f32_rows`] / [`FragB::to_f32_rows`]): the MAC sweep runs
/// on flat `f32` slices through the shared MAC panel — no per-element
/// bit-decode, no closure dispatch — and accumulates into `acc.regs` in
/// place. Per output element the partial products still sum in
/// ascending-`k` order into a local `f32` which is then added to the
/// accumulator once, so results are bit-identical to the fragment-level
/// path and to [`mma_m16n8k16_f32_scalar`].
pub fn mma_m16n8k16_f32(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[[f32; MMA_N]; MMA_K],
    acc: &mut FragC,
) {
    let bf = b.as_flattened();
    for (m, a_row) in a.iter().enumerate() {
        let mut sums = [0.0f32; MMA_N];
        mac_panel(&mut sums, a_row, bf, MMA_N);
        add_sums(acc, m, &sums);
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// Retained scalar oracle of [`mma_m16n8k16_f32`]: the pre-vectorization
/// n-inner loop, kept so the proptest equivalence suite and the hotpath
/// microbenchmarks can pin the flat/SIMD panels against an independent
/// definition. Identical counter writes.
pub fn mma_m16n8k16_f32_scalar(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[[f32; MMA_N]; MMA_K],
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        for n in 0..MMA_N {
            let mut sum = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                sum += av * b[k][n];
            }
            let (lane, reg) = acc_slot(m, n);
            acc.regs[lane][reg] += sum;
        }
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// [`mma_m16n8k16_f32`] reading B from a row-major `f32` buffer with
/// leading dimension `ld` (`B[k][n] = b[k * ld + n]`). This is the SpMM
/// hot path: the X activation tile is converted to `f32` once per
/// GroupTile column and every mma strides straight into that buffer —
/// no per-N-block `FragB` construction at all. `b` must cover
/// `(MMA_K - 1) * ld + MMA_N` elements.
pub fn mma_m16n8k16_bslice(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[f32],
    ld: usize,
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        let mut sums = [0.0f32; MMA_N];
        mac_panel(&mut sums, a_row, b, ld);
        add_sums(acc, m, &sums);
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// Retained scalar oracle of [`mma_m16n8k16_bslice`]; see
/// [`mma_m16n8k16_f32_scalar`] for the oracle policy.
pub fn mma_m16n8k16_bslice_scalar(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[f32],
    ld: usize,
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        for n in 0..MMA_N {
            let mut sum = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                sum += av * b[k * ld + n];
            }
            let (lane, reg) = acc_slot(m, n);
            acc.regs[lane][reg] += sum;
        }
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// Widest N-tile batch [`mma_m16n8k16_bslice_ntiles`] accepts: 16
/// accumulator tiles cover a 128-column X window, the widest `tile_n`
/// the SpMM launch geometry produces.
pub const MAX_NTILES: usize = 16;

/// Batched [`mma_m16n8k16_bslice`]: one sweep of the A tile across
/// `accs.len()` *adjacent* 8-column accumulator tiles (`accs[j]` covers
/// B columns `j*8 .. j*8+8`). Loading each `a_row[k]` once and running
/// the MAC panel over the whole contiguous `accs.len() * 8`-column B
/// row replaces `accs.len()` separate strided sweeps — the N-loop
/// amortization of the SpMM hot path.
///
/// Records one `mma` instruction per tile (identical counter totals to
/// the per-tile calls), and each output element still accumulates its
/// partial products in ascending-`k` order before a single add into its
/// accumulator, so results are bit-identical to looping
/// [`mma_m16n8k16_bslice`] over the tiles.
pub fn mma_m16n8k16_bslice_ntiles(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[f32],
    ld: usize,
    accs: &mut [FragC],
) {
    assert!(
        accs.len() <= MAX_NTILES,
        "N-tile batch of {} exceeds MAX_NTILES = {MAX_NTILES}",
        accs.len()
    );
    let ntot = accs.len() * MMA_N;
    let mut sums = [0.0f32; MAX_NTILES * MMA_N];
    for (m, a_row) in a.iter().enumerate() {
        let sums = &mut sums[..ntot];
        sums.fill(0.0);
        mac_panel(sums, a_row, b, ld);
        for (j, acc) in accs.iter_mut().enumerate() {
            add_sums(acc, m, &sums[j * MMA_N..(j + 1) * MMA_N]);
        }
    }
    counters.mma_insts += accs.len() as u64;
    counters.insts_issued += accs.len() as u64;
}

/// 16×8 `i32` accumulator tile for the integer Tensor Core path
/// (`mma.m16n8k16.s8.s8.s32`). Plain row-major — the INT8 SpMM block
/// loop keeps one per N-tile and folds it into `f32` output with the
/// GroupTile scale in the epilogue, so there is no fragment round-trip
/// to model.
pub type AccS8 = [[i32; MMA_N]; MMA_M];

/// Batched warp-wide `mma.m16n8k16` on INT8 operands with `i32`
/// accumulation — the integer-pipe counterpart of
/// [`mma_m16n8k16_bslice_ntiles`]. `a` holds a 16×16 tile of weight
/// codes (i8 widened to `i32` by the decoder), `b` a row-major `i32`
/// activation-code buffer with leading dimension `ld` (`accs[j]` covers
/// B columns `j*8 .. j*8+8`; `b` must span `(MMA_K-1) * ld +
/// accs.len() * 8` elements).
///
/// Integer accumulation is exact and associative, so unlike the FP16
/// path there is no rounding-order contract to pin — but the sweep
/// still visits `k` ascending for symmetry with the float panel.
/// Records one `mma.s8` instruction per tile (`mma_s8_insts`, priced at
/// twice the FP16 per-instruction Tensor Core throughput by the timing
/// model) plus the matching issue slots.
pub fn mma_m16n8k16_s8_ntiles(
    counters: &mut Counters,
    a: &[[i32; MMA_K]; MMA_M],
    b: &[i32],
    ld: usize,
    accs: &mut [AccS8],
) {
    assert!(
        accs.len() <= MAX_NTILES,
        "N-tile batch of {} exceeds MAX_NTILES = {MAX_NTILES}",
        accs.len()
    );
    for (m, a_row) in a.iter().enumerate() {
        for (k, &av) in a_row.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let brow = &b[k * ld..];
            for (j, acc) in accs.iter_mut().enumerate() {
                let arow = &mut acc[m];
                for (n, s) in arow.iter_mut().enumerate() {
                    *s += av * brow[j * MMA_N + n];
                }
            }
        }
    }
    counters.mma_s8_insts += accs.len() as u64;
    counters.insts_issued += accs.len() as u64;
}

/// Retained scalar oracle of [`mma_m16n8k16_s8_ntiles`] for a single
/// accumulator tile: the textbook n-inner triple loop with no zero-skip.
/// Identical counter writes per tile.
pub fn mma_m16n8k16_s8_scalar(
    counters: &mut Counters,
    a: &[[i32; MMA_K]; MMA_M],
    b: &[i32],
    ld: usize,
    acc: &mut AccS8,
) {
    for m in 0..MMA_M {
        for n in 0..MMA_N {
            let mut sum = 0i32;
            for k in 0..MMA_K {
                sum += a[m][k] * b[k * ld + n];
            }
            acc[m][n] += sum;
        }
    }
    counters.mma_s8_insts += 1;
    counters.insts_issued += 1;
}

/// Maps a lane and register index to the quadrant-local `(row, col)` the
/// register's *low* half occupies inside its 8×8 quadrant. The high half
/// is at `(row, col + 1)`.
///
/// Exposed for decoders: within a quadrant, lane `l` owns row-major
/// elements `2l` (low) and `2l + 1` (high).
#[inline]
pub fn lane_quadrant_coords(lane: usize) -> (usize, usize) {
    (lane / 4, (lane % 4) * 2)
}

/// Per-warp A fragment of the smaller `mma.m16n8k8` instruction: two
/// `.f16x2` registers per lane covering a 16×8 A tile (the left half of
/// the m16n8k16 fragment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragAK8 {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 2]; 32],
}

impl FragAK8 {
    /// Builds the fragment from a dense 16×8 tile accessor.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragAK8 { regs: [[0; 2]; 32] };
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = pack_f16x2(tile(group, 2 * tid), tile(group, 2 * tid + 1));
            f.regs[lane][1] = pack_f16x2(tile(group + 8, 2 * tid), tile(group + 8, 2 * tid + 1));
        }
        f
    }

    /// Decode-once `f32` view of the 16×8 A tile, the k8 counterpart of
    /// [`FragA::to_f32_rows`].
    pub fn to_f32_rows(&self) -> [[f32; 8]; MMA_M] {
        let mut t = [[0.0f32; 8]; MMA_M];
        for (lane, regs) in self.regs.iter().enumerate() {
            let (qr, qc) = lane_quadrant_coords(lane);
            // The k8 fragment is the left half of the k16 fragment:
            // registers cover the TL and BL quadrants only.
            for (&reg, &(dr, dc)) in regs.iter().zip(&QUAD_ORIGINS[..2]) {
                unpack_reg_at(&mut t, reg, (qr + dr, qc + dc), (qr + dr, qc + dc + 1));
            }
        }
        t
    }
}

/// Executes one warp-wide `mma.m16n8k8`: `acc += A[16×8] × B[8×8]`,
/// where `b_tile(k, n)` supplies the 8×8 B operand. The paper's §4.2.1
/// microbenchmark compares this against [`mma_m16n8k16`]: two k8 issues
/// cover one k16 tile, so the larger shape halves instruction count (and
/// on hardware sustains higher throughput), which is why TCA-BME aligns
/// TCTiles with m16n8k16.
pub fn mma_m16n8k8<F: Fn(usize, usize) -> Half>(
    counters: &mut Counters,
    a: &FragAK8,
    b_tile: F,
    acc: &mut FragC,
) {
    // Decode the 8×8 B operand once, then run the flat-f32 MAC loop.
    let mut bt = [[0.0f32; MMA_N]; 8];
    for (k, row) in bt.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            *v = b_tile(k, n).to_f32();
        }
    }
    mma_m16n8k8_f32(counters, &a.to_f32_rows(), &bt, acc);
}

/// Decode-once `mma.m16n8k8` on pre-decoded operand views; see
/// [`mma_m16n8k16_f32`] for the bit-identity argument.
pub fn mma_m16n8k8_f32(
    counters: &mut Counters,
    a: &[[f32; 8]; MMA_M],
    b: &[[f32; MMA_N]; 8],
    acc: &mut FragC,
) {
    let bf = b.as_flattened();
    for (m, a_row) in a.iter().enumerate() {
        let mut sums = [0.0f32; MMA_N];
        mac_panel(&mut sums, a_row, bf, MMA_N);
        add_sums(acc, m, &sums);
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{random_dense, ValueDist};

    fn tile_a_from(m: &crate::matrix::DenseMatrix) -> FragA {
        FragA::from_tile(|r, c| m.get(r, c))
    }

    fn tile_b_from(m: &crate::matrix::DenseMatrix) -> FragB {
        FragB::from_tile(|r, c| m.get(r, c))
    }

    #[test]
    fn frag_a_roundtrip() {
        let m = random_dense(16, 16, ValueDist::Uniform, 11);
        let t = tile_a_from(&m).to_tile();
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(t[r][c], m.get(r, c));
            }
        }
    }

    #[test]
    fn frag_b_roundtrip() {
        let m = random_dense(16, 8, ValueDist::Uniform, 12);
        let t = tile_b_from(&m).to_tile();
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(t[r][c], m.get(r, c));
            }
        }
    }

    #[test]
    fn frag_c_roundtrip() {
        let f = FragC::from_tile(|r, c| (r * 8 + c) as f32);
        let t = f.to_tile();
        for (r, row) in t.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(*v, (r * 8 + c) as f32);
            }
        }
    }

    #[test]
    fn quadrant_register_mapping_matches_paper() {
        // Ra0 must be the TOP-LEFT quadrant: set only A[0][0] and check it
        // appears in lane 0's Ra0 low half.
        let f = FragA::from_tile(|r, c| {
            if r == 0 && c == 0 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][0], u32::from(Half::ONE.to_bits()));
        for lane in 1..32 {
            assert_eq!(f.regs[lane], [0, 0, 0, 0]);
        }
        // Ra1 = bottom-left: A[8][0] -> lane 0 reg 1.
        let f = FragA::from_tile(|r, c| {
            if r == 8 && c == 0 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][1], u32::from(Half::ONE.to_bits()));
        // Ra2 = top-right: A[0][8] -> lane 0 reg 2.
        let f = FragA::from_tile(|r, c| {
            if r == 0 && c == 8 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][2], u32::from(Half::ONE.to_bits()));
        // Ra3 = bottom-right: A[8][8] -> lane 0 reg 3.
        let f = FragA::from_tile(|r, c| {
            if r == 8 && c == 8 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][3], u32::from(Half::ONE.to_bits()));
    }

    #[test]
    fn lane_owns_rowmajor_elements_2l_and_2l_plus_1() {
        // Inside the top-left quadrant, quadrant-linear index of lane l's
        // low half must be 2l (paper Algorithm 2's offset).
        for lane in 0..32 {
            let (r, c) = lane_quadrant_coords(lane);
            assert_eq!(r * 8 + c, 2 * lane);
        }
    }

    #[test]
    fn mma_matches_reference_product() {
        let a = random_dense(16, 16, ValueDist::Uniform, 21);
        let b = random_dense(16, 8, ValueDist::Uniform, 22);
        let mut counters = Counters::new();
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut acc = FragC::zero();
        mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                let diff = (d[r][c] - reference[r * 8 + c]).abs();
                assert!(diff < 1e-4, "({r},{c}) diff {diff}");
            }
        }
        assert_eq!(counters.mma_insts, 1);
    }

    #[test]
    fn mma_accumulates_into_c() {
        let a = random_dense(16, 16, ValueDist::Uniform, 31);
        let b = random_dense(16, 8, ValueDist::Uniform, 32);
        let mut counters = Counters::new();
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut acc = FragC::from_tile(|_, _| 5.0);
        mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                assert!((d[r][c] - (reference[r * 8 + c] + 5.0)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn two_k8_issues_equal_one_k16_issue() {
        // The §4.2.1 microbenchmark's correctness side: splitting a 16×16
        // A tile into two m16n8k8 issues reproduces the m16n8k16 result,
        // at twice the instruction count.
        let a = random_dense(16, 16, ValueDist::Uniform, 61);
        let b = random_dense(16, 8, ValueDist::Uniform, 62);
        let mut c16 = Counters::new();
        let mut acc16 = FragC::zero();
        mma_m16n8k16(
            &mut c16,
            &FragA::from_tile(|r, c| a.get(r, c)),
            &FragB::from_tile(|r, c| b.get(r, c)),
            &mut acc16,
        );
        let mut c8 = Counters::new();
        let mut acc8 = FragC::zero();
        for half in 0..2 {
            let fa = FragAK8::from_tile(|r, c| a.get(r, c + 8 * half));
            mma_m16n8k8(&mut c8, &fa, |k, n| b.get(k + 8 * half, n), &mut acc8);
        }
        let t16 = acc16.to_tile();
        let t8 = acc8.to_tile();
        for r in 0..16 {
            for c in 0..8 {
                assert!((t16[r][c] - t8[r][c]).abs() < 1e-4);
            }
        }
        assert_eq!(c16.mma_insts, 1);
        assert_eq!(c8.mma_insts, 2, "k8 needs twice the issues");
    }

    #[test]
    fn acc_slot_inverts_fragc_layout() {
        // The in-place accumulator update relies on acc_slot being the
        // exact inverse of the FragC register layout.
        let f = FragC::from_tile(|r, c| (r * 8 + c) as f32);
        for m in 0..MMA_M {
            for n in 0..MMA_N {
                let (lane, reg) = acc_slot(m, n);
                assert_eq!(f.regs[lane][reg], (m * 8 + n) as f32, "({m},{n})");
            }
        }
    }

    #[test]
    fn f32_views_match_half_tiles() {
        let a = random_dense(16, 16, ValueDist::Uniform, 71);
        let b = random_dense(16, 8, ValueDist::Uniform, 72);
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let (at, av) = (fa.to_tile(), fa.to_f32_rows());
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(av[r][c].to_bits(), at[r][c].to_f32().to_bits());
            }
        }
        let (bt, bv) = (fb.to_tile(), fb.to_f32_rows());
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(bv[r][c].to_bits(), bt[r][c].to_f32().to_bits());
            }
        }
        let fa8 = FragAK8::from_tile(|r, c| a.get(r, c));
        let a8 = fa8.to_f32_rows();
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(a8[r][c].to_bits(), a.get(r, c).to_f32().to_bits());
            }
        }
    }

    #[test]
    fn bslice_path_is_bit_identical_to_fragment_path() {
        // The strided-B entry point used by the SpMM hot path must
        // reproduce the fragment-level mma exactly, including a
        // non-trivial leading dimension and a non-zero accumulator.
        let a = random_dense(16, 16, ValueDist::Uniform, 81);
        let b = random_dense(16, 8, ValueDist::Uniform, 82);
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut c_ref = Counters::new();
        let mut acc_ref = FragC::from_tile(|r, c| (r + c) as f32 * 0.25);
        mma_m16n8k16(&mut c_ref, &fa, &fb, &mut acc_ref);

        // Embed B at column offset 3 of a wider ld=13 buffer.
        let ld = 13;
        let mut buf = vec![0.0f32; 16 * ld];
        for k in 0..16 {
            for n in 0..8 {
                buf[k * ld + 3 + n] = b.get(k, n).to_f32();
            }
        }
        let mut c_fast = Counters::new();
        let mut acc_fast = FragC::from_tile(|r, c| (r + c) as f32 * 0.25);
        mma_m16n8k16_bslice(&mut c_fast, &fa.to_f32_rows(), &buf[3..], ld, &mut acc_fast);

        assert_eq!(acc_ref.regs, acc_fast.regs);
        assert_eq!(c_ref.mma_insts, c_fast.mma_insts);
        assert_eq!(c_ref.insts_issued, c_fast.insts_issued);
    }

    #[test]
    fn batched_ntiles_is_bit_identical_to_per_tile_calls() {
        // The N-tile-amortized entry point must reproduce the per-tile
        // bslice loop bitwise — accumulators, counters, everything — for
        // every batch width up to MAX_NTILES.
        let a = random_dense(16, 16, ValueDist::Uniform, 91);
        let fa = tile_a_from(&a).to_f32_rows();
        for ntiles in 1..=MAX_NTILES {
            let ld = ntiles * MMA_N + 5; // non-trivial leading dimension
            let b = random_dense(16, ld, ValueDist::Uniform, 92 + ntiles as u64);
            let bf: Vec<f32> = (0..16)
                .flat_map(|k| (0..ld).map(move |n| (k, n)))
                .map(|(k, n)| b.get(k, n).to_f32())
                .collect();
            let seed_acc = |j: usize| FragC::from_tile(|r, c| (r * 8 + c + j) as f32 * 0.5);

            let mut c_ref = Counters::new();
            let mut ref_accs: Vec<FragC> = (0..ntiles).map(seed_acc).collect();
            for (j, acc) in ref_accs.iter_mut().enumerate() {
                mma_m16n8k16_bslice(&mut c_ref, &fa, &bf[j * MMA_N..], ld, acc);
            }

            let mut c_bat = Counters::new();
            let mut bat_accs: Vec<FragC> = (0..ntiles).map(seed_acc).collect();
            mma_m16n8k16_bslice_ntiles(&mut c_bat, &fa, &bf, ld, &mut bat_accs);

            for (j, (r, b)) in ref_accs.iter().zip(&bat_accs).enumerate() {
                assert_eq!(r.regs, b.regs, "ntiles={ntiles} tile {j}");
            }
            assert_eq!(c_ref.mma_insts, c_bat.mma_insts, "ntiles={ntiles}");
            assert_eq!(c_ref.insts_issued, c_bat.insts_issued, "ntiles={ntiles}");
        }
    }

    #[test]
    fn vectorized_panels_match_scalar_oracles() {
        // The flat/SIMD MAC panels must be bitwise-equal to the retained
        // pre-vectorization oracles (the proptest suite widens this; this
        // is the fast in-crate smoke check).
        let a = random_dense(16, 16, ValueDist::Uniform, 101);
        let b = random_dense(16, 8, ValueDist::Uniform, 102);
        let fa = tile_a_from(&a).to_f32_rows();
        let fb = tile_b_from(&b).to_f32_rows();
        let seed_acc = || FragC::from_tile(|r, c| (r * 8) as f32 - c as f32);

        let (mut c1, mut c2) = (Counters::new(), Counters::new());
        let (mut x1, mut x2) = (seed_acc(), seed_acc());
        mma_m16n8k16_f32(&mut c1, &fa, &fb, &mut x1);
        mma_m16n8k16_f32_scalar(&mut c2, &fa, &fb, &mut x2);
        assert_eq!(x1.regs, x2.regs);
        assert_eq!(c1, c2);

        let ld = 11;
        let mut buf = vec![0.0f32; 16 * ld];
        for k in 0..16 {
            for n in 0..8 {
                buf[k * ld + n] = fb[k][n];
            }
        }
        let (mut c1, mut c2) = (Counters::new(), Counters::new());
        let (mut x1, mut x2) = (seed_acc(), seed_acc());
        mma_m16n8k16_bslice(&mut c1, &fa, &buf, ld, &mut x1);
        mma_m16n8k16_bslice_scalar(&mut c2, &fa, &buf, ld, &mut x2);
        assert_eq!(x1.regs, x2.regs);
        assert_eq!(c1, c2);
    }

    #[test]
    fn two_step_k_accumulation_equals_k32_product() {
        // Splitting K=32 into two mma calls must equal one 16x32 * 32x8
        // reference product.
        let a = random_dense(16, 32, ValueDist::Uniform, 41);
        let b = random_dense(32, 8, ValueDist::Uniform, 42);
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        for step in 0..2 {
            let fa = FragA::from_tile(|r, c| a.get(r, c + 16 * step));
            let fb = FragB::from_tile(|r, c| b.get(r + 16 * step, c));
            mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        }
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                assert!((d[r][c] - reference[r * 8 + c]).abs() < 1e-3);
            }
        }
        assert_eq!(counters.mma_insts, 2);
    }

    /// Deterministic i8-range code tile: values in [-127, 127].
    fn code_tile(seed: i32) -> [[i32; MMA_K]; MMA_M] {
        let mut t = [[0i32; MMA_K]; MMA_M];
        for (m, row) in t.iter_mut().enumerate() {
            for (k, v) in row.iter_mut().enumerate() {
                let h = (m as i32)
                    .wrapping_mul(31)
                    .wrapping_add(k as i32)
                    .wrapping_mul(seed.wrapping_mul(2).wrapping_add(1));
                *v = (h.rem_euclid(255)) - 127;
            }
        }
        t
    }

    #[test]
    fn s8_ntiles_matches_scalar_oracle() {
        // The zero-skipping batched integer path must agree bit-exactly
        // with the textbook triple loop on every tile of the batch.
        let a = code_tile(7);
        let ld = 3 * MMA_N;
        let mut b = vec![0i32; MMA_K * ld];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i32).wrapping_mul(37).rem_euclid(255)) - 127;
        }
        let mut c1 = Counters::new();
        let mut batched = [[[0i32; MMA_N]; MMA_M]; 3];
        mma_m16n8k16_s8_ntiles(&mut c1, &a, &b, ld, &mut batched);
        let mut c2 = Counters::new();
        let mut oracle = [[[0i32; MMA_N]; MMA_M]; 3];
        for (j, acc) in oracle.iter_mut().enumerate() {
            mma_m16n8k16_s8_scalar(&mut c2, &a, &b[j * MMA_N..], ld, acc);
        }
        assert_eq!(batched, oracle);
        assert_eq!(c1.mma_s8_insts, 3);
        assert_eq!(c2.mma_s8_insts, 3);
        assert_eq!(c1.insts_issued, 3);
        assert_eq!(c1.mma_insts, 0, "integer mma must not count as FP16 mma");
    }

    #[test]
    fn s8_accumulation_is_exact_at_full_scale() {
        // All-127 operands: each dot product is 127 * 127 * 16 = 258064,
        // well inside i32 but outside f32's 2^24 exact-integer window —
        // the reason the path carries i32 accumulators.
        let a = [[127i32; MMA_K]; MMA_M];
        let b = vec![127i32; MMA_K * MMA_N];
        let mut counters = Counters::new();
        let mut acc = [[[0i32; MMA_N]; MMA_M]; 1];
        mma_m16n8k16_s8_ntiles(&mut counters, &a, &b, MMA_N, &mut acc);
        for row in &acc[0] {
            for &v in row {
                assert_eq!(v, 127 * 127 * 16);
            }
        }
    }

    #[test]
    fn s8_accumulates_on_top_of_existing_values() {
        // Two successive K-steps must sum, mirroring the FragC contract.
        let a = code_tile(11);
        let b: Vec<i32> = (0..MMA_K * MMA_N).map(|i| (i as i32 % 200) - 100).collect();
        let mut counters = Counters::new();
        let mut once = [[[0i32; MMA_N]; MMA_M]; 1];
        mma_m16n8k16_s8_ntiles(&mut counters, &a, &b, MMA_N, &mut once);
        let mut twice = [[[0i32; MMA_N]; MMA_M]; 1];
        mma_m16n8k16_s8_ntiles(&mut counters, &a, &b, MMA_N, &mut twice);
        mma_m16n8k16_s8_ntiles(&mut counters, &a, &b, MMA_N, &mut twice);
        for m in 0..MMA_M {
            for n in 0..MMA_N {
                assert_eq!(twice[0][m][n], 2 * once[0][m][n]);
            }
        }
        assert_eq!(counters.mma_s8_insts, 3);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_NTILES")]
    fn s8_rejects_oversized_batches() {
        let a = [[0i32; MMA_K]; MMA_M];
        let b = vec![0i32; MMA_K * (MAX_NTILES + 1) * MMA_N];
        let mut counters = Counters::new();
        let mut accs = vec![[[0i32; MMA_N]; MMA_M]; MAX_NTILES + 1];
        mma_m16n8k16_s8_ntiles(&mut counters, &a, &b, (MAX_NTILES + 1) * MMA_N, &mut accs);
    }
}
