//! Functional emulation of the PTX `mma.m16n8k16.row.col.f32.f16.f16.f32`
//! Tensor Core instruction (paper Listing 1).
//!
//! The emulation is *fragment-level*: each of the 32 lanes of a warp holds
//! the exact registers the real instruction expects —
//!
//! * `A` (16×16 FP16, row-major): four `.f16x2` registers `Ra0..Ra3` per
//!   lane. With `group = lane / 4` and `tid = lane % 4`:
//!   - `Ra0` = `A[group][2*tid]`, `A[group][2*tid+1]` (top-left 8×8)
//!   - `Ra1` = `A[group+8][2*tid..]` (bottom-left)
//!   - `Ra2` = `A[group][2*tid+8..]` (top-right)
//!   - `Ra3` = `A[group+8][2*tid+8..]` (bottom-right)
//! * `B` (16×8 FP16, column-major operand): two registers `Rb0`, `Rb1`:
//!   - `Rb0` = `B[2*tid][group]`, `B[2*tid+1][group]`
//!   - `Rb1` = `B[2*tid+8][group]`, `B[2*tid+9][group]`
//! * `C`/`D` (16×8 FP32): four registers:
//!   - `c0,c1` = `C[group][2*tid..]`, `c2,c3` = `C[group+8][2*tid..]`
//!
//! The `Ra0..Ra3` ↔ 8×8 quadrant correspondence (top-left, bottom-left,
//! top-right, bottom-right — i.e. column-major quadrants) is exactly why
//! TCA-BME stores its 2×2 `BitmapTile`s in column-major order (paper
//! §4.2.1), and the within-quadrant rule "lane `l` holds row-major
//! elements `2l` and `2l+1`" is why `MaskedPopCount` uses offset `2l`
//! (paper Algorithm 2). SpInfer's decoder and every Tensor-Core baseline
//! share this single implementation, so a layout bug cannot cancel out.

use crate::counters::Counters;
use crate::fp16::{pack_f16x2, unpack_f16x2, unpack_f16x2_f32, Half};

/// Rows of the `mma` A operand / D result.
pub const MMA_M: usize = 16;
/// Columns of the B operand / D result.
pub const MMA_N: usize = 8;
/// Inner (reduction) dimension.
pub const MMA_K: usize = 16;

/// Per-warp A fragment: `regs[lane][r]` is the `.f16x2` register `Ra{r}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragA {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 4]; 32],
}

/// Per-warp B fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragB {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 2]; 32],
}

/// Per-warp FP32 accumulator fragment.
#[derive(Clone, Debug, PartialEq)]
pub struct FragC {
    /// FP32 registers, indexed `[lane][reg]`.
    pub regs: [[f32; 4]; 32],
}

impl FragA {
    /// An all-zero fragment.
    pub fn zero() -> Self {
        FragA { regs: [[0; 4]; 32] }
    }

    /// Builds the fragment from a dense 16×16 tile given as a row-major
    /// accessor `tile(row, col)`.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragA::zero();
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            for (reg, (dr, dc)) in [(0usize, 0usize), (8, 0), (0, 8), (8, 8)]
                .iter()
                .enumerate()
            {
                let lo = tile(group + dr, 2 * tid + dc);
                let hi = tile(group + dr, 2 * tid + dc + 1);
                f.regs[lane][reg] = pack_f16x2(lo, hi);
            }
        }
        f
    }

    /// Reconstructs the dense 16×16 tile this fragment represents.
    pub fn to_tile(&self) -> [[Half; MMA_K]; MMA_M] {
        let mut t = [[Half::ZERO; MMA_K]; MMA_M];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            for (reg, (dr, dc)) in [(0usize, 0usize), (8, 0), (0, 8), (8, 8)]
                .iter()
                .enumerate()
            {
                let (lo, hi) = unpack_f16x2(self.regs[lane][reg]);
                t[group + dr][2 * tid + dc] = lo;
                t[group + dr][2 * tid + dc + 1] = hi;
            }
        }
        t
    }

    /// Decode-once `f32` view of the 16×16 A tile: every element is
    /// unpacked and converted exactly once, so an mma MAC loop over the
    /// returned rows performs no per-element bit-decode. Decoding an A
    /// fragment once and reusing the view across the N-blocks it
    /// multiplies is the simulator's main serial hot-path optimisation.
    pub fn to_f32_rows(&self) -> [[f32; MMA_K]; MMA_M] {
        let mut t = [[0.0f32; MMA_K]; MMA_M];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            for (reg, (dr, dc)) in [(0usize, 0usize), (8, 0), (0, 8), (8, 8)]
                .iter()
                .enumerate()
            {
                let (lo, hi) = unpack_f16x2_f32(self.regs[lane][reg]);
                t[group + dr][2 * tid + dc] = lo;
                t[group + dr][2 * tid + dc + 1] = hi;
            }
        }
        t
    }
}

impl FragB {
    /// An all-zero fragment.
    pub fn zero() -> Self {
        FragB { regs: [[0; 2]; 32] }
    }

    /// Builds the fragment from a dense 16×8 tile accessor `tile(k, n)`.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragB::zero();
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = pack_f16x2(tile(2 * tid, group), tile(2 * tid + 1, group));
            f.regs[lane][1] = pack_f16x2(tile(2 * tid + 8, group), tile(2 * tid + 9, group));
        }
        f
    }

    /// Reconstructs the dense 16×8 tile.
    pub fn to_tile(&self) -> [[Half; MMA_N]; MMA_K] {
        let mut t = [[Half::ZERO; MMA_N]; MMA_K];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            let (b0, b1) = unpack_f16x2(self.regs[lane][0]);
            let (b2, b3) = unpack_f16x2(self.regs[lane][1]);
            t[2 * tid][group] = b0;
            t[2 * tid + 1][group] = b1;
            t[2 * tid + 8][group] = b2;
            t[2 * tid + 9][group] = b3;
        }
        t
    }

    /// Decode-once `f32` view of the 16×8 B tile (row-major `[k][n]`),
    /// the B-side counterpart of [`FragA::to_f32_rows`].
    pub fn to_f32_rows(&self) -> [[f32; MMA_N]; MMA_K] {
        let mut t = [[0.0f32; MMA_N]; MMA_K];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            let (b0, b1) = unpack_f16x2_f32(self.regs[lane][0]);
            let (b2, b3) = unpack_f16x2_f32(self.regs[lane][1]);
            t[2 * tid][group] = b0;
            t[2 * tid + 1][group] = b1;
            t[2 * tid + 8][group] = b2;
            t[2 * tid + 9][group] = b3;
        }
        t
    }
}

impl FragC {
    /// An all-zero accumulator.
    pub fn zero() -> Self {
        FragC {
            regs: [[0.0; 4]; 32],
        }
    }

    /// Builds the fragment from a dense 16×8 FP32 accessor.
    pub fn from_tile<F: Fn(usize, usize) -> f32>(tile: F) -> Self {
        let mut f = FragC::zero();
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = tile(group, 2 * tid);
            f.regs[lane][1] = tile(group, 2 * tid + 1);
            f.regs[lane][2] = tile(group + 8, 2 * tid);
            f.regs[lane][3] = tile(group + 8, 2 * tid + 1);
        }
        f
    }

    /// Reconstructs the dense 16×8 FP32 tile.
    pub fn to_tile(&self) -> [[f32; MMA_N]; MMA_M] {
        let mut t = [[0.0; MMA_N]; MMA_M];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            t[group][2 * tid] = self.regs[lane][0];
            t[group][2 * tid + 1] = self.regs[lane][1];
            t[group + 8][2 * tid] = self.regs[lane][2];
            t[group + 8][2 * tid + 1] = self.regs[lane][3];
        }
        t
    }
}

/// The accumulator register holding output element `(m, n)`: inverting
/// the `FragC` layout (`regs[lane] = [C[g][2t], C[g][2t+1], C[g+8][2t],
/// C[g+8][2t+1]]` with `g = lane/4`, `t = lane%4`) gives `lane =
/// (m%8)*4 + n/2`, `reg = 2*(m/8) + n%2`. Because the map is a
/// bijection, the MAC loops below update `acc.regs` in place instead of
/// round-tripping through `to_tile`/`from_tile`.
#[inline]
fn acc_slot(m: usize, n: usize) -> (usize, usize) {
    ((m % 8) * 4 + n / 2, 2 * (m / 8) + n % 2)
}

/// Executes one warp-wide `mma.m16n8k16`: `acc = A × B + acc`, FP16 inputs
/// with FP32 accumulation, recording one `mma` instruction.
pub fn mma_m16n8k16(counters: &mut Counters, a: &FragA, b: &FragB, acc: &mut FragC) {
    mma_m16n8k16_f32(counters, &a.to_f32_rows(), &b.to_f32_rows(), acc);
}

/// Decode-once `mma.m16n8k16` on pre-decoded operand views
/// ([`FragA::to_f32_rows`] / [`FragB::to_f32_rows`]): the MAC loop runs
/// on flat `f32` arrays — no per-element bit-decode, no closure
/// dispatch — and accumulates into `acc.regs` in place. Per output
/// element the partial products still sum in ascending-`k` order into a
/// local `f32` which is then added to the accumulator once, so results
/// are bit-identical to the fragment-level path.
pub fn mma_m16n8k16_f32(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[[f32; MMA_N]; MMA_K],
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        for n in 0..MMA_N {
            let mut sum = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                sum += av * b[k][n];
            }
            let (lane, reg) = acc_slot(m, n);
            acc.regs[lane][reg] += sum;
        }
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// [`mma_m16n8k16_f32`] reading B from a row-major `f32` buffer with
/// leading dimension `ld` (`B[k][n] = b[k * ld + n]`). This is the SpMM
/// hot path: the X activation tile is converted to `f32` once per
/// GroupTile column and every mma strides straight into that buffer —
/// no per-N-block `FragB` construction at all. `b` must cover
/// `(MMA_K - 1) * ld + MMA_N` elements.
pub fn mma_m16n8k16_bslice(
    counters: &mut Counters,
    a: &[[f32; MMA_K]; MMA_M],
    b: &[f32],
    ld: usize,
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        for n in 0..MMA_N {
            let mut sum = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                sum += av * b[k * ld + n];
            }
            let (lane, reg) = acc_slot(m, n);
            acc.regs[lane][reg] += sum;
        }
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

/// Maps a lane and register index to the quadrant-local `(row, col)` the
/// register's *low* half occupies inside its 8×8 quadrant. The high half
/// is at `(row, col + 1)`.
///
/// Exposed for decoders: within a quadrant, lane `l` owns row-major
/// elements `2l` (low) and `2l + 1` (high).
#[inline]
pub fn lane_quadrant_coords(lane: usize) -> (usize, usize) {
    (lane / 4, (lane % 4) * 2)
}

/// Per-warp A fragment of the smaller `mma.m16n8k8` instruction: two
/// `.f16x2` registers per lane covering a 16×8 A tile (the left half of
/// the m16n8k16 fragment).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragAK8 {
    /// Packed `.f16x2` registers, indexed `[lane][reg]`.
    pub regs: [[u32; 2]; 32],
}

impl FragAK8 {
    /// Builds the fragment from a dense 16×8 tile accessor.
    pub fn from_tile<F: Fn(usize, usize) -> Half>(tile: F) -> Self {
        let mut f = FragAK8 { regs: [[0; 2]; 32] };
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            f.regs[lane][0] = pack_f16x2(tile(group, 2 * tid), tile(group, 2 * tid + 1));
            f.regs[lane][1] = pack_f16x2(tile(group + 8, 2 * tid), tile(group + 8, 2 * tid + 1));
        }
        f
    }

    /// Decode-once `f32` view of the 16×8 A tile, the k8 counterpart of
    /// [`FragA::to_f32_rows`].
    pub fn to_f32_rows(&self) -> [[f32; 8]; MMA_M] {
        let mut t = [[0.0f32; 8]; MMA_M];
        for lane in 0..32 {
            let group = lane / 4;
            let tid = lane % 4;
            let (l0, h0) = unpack_f16x2_f32(self.regs[lane][0]);
            let (l1, h1) = unpack_f16x2_f32(self.regs[lane][1]);
            t[group][2 * tid] = l0;
            t[group][2 * tid + 1] = h0;
            t[group + 8][2 * tid] = l1;
            t[group + 8][2 * tid + 1] = h1;
        }
        t
    }
}

/// Executes one warp-wide `mma.m16n8k8`: `acc += A[16×8] × B[8×8]`,
/// where `b_tile(k, n)` supplies the 8×8 B operand. The paper's §4.2.1
/// microbenchmark compares this against [`mma_m16n8k16`]: two k8 issues
/// cover one k16 tile, so the larger shape halves instruction count (and
/// on hardware sustains higher throughput), which is why TCA-BME aligns
/// TCTiles with m16n8k16.
pub fn mma_m16n8k8<F: Fn(usize, usize) -> Half>(
    counters: &mut Counters,
    a: &FragAK8,
    b_tile: F,
    acc: &mut FragC,
) {
    // Decode the 8×8 B operand once, then run the flat-f32 MAC loop.
    let mut bt = [[0.0f32; MMA_N]; 8];
    for (k, row) in bt.iter_mut().enumerate() {
        for (n, v) in row.iter_mut().enumerate() {
            *v = b_tile(k, n).to_f32();
        }
    }
    mma_m16n8k8_f32(counters, &a.to_f32_rows(), &bt, acc);
}

/// Decode-once `mma.m16n8k8` on pre-decoded operand views; see
/// [`mma_m16n8k16_f32`] for the bit-identity argument.
pub fn mma_m16n8k8_f32(
    counters: &mut Counters,
    a: &[[f32; 8]; MMA_M],
    b: &[[f32; MMA_N]; 8],
    acc: &mut FragC,
) {
    for (m, a_row) in a.iter().enumerate() {
        for n in 0..MMA_N {
            let mut sum = 0.0f32;
            for (k, &av) in a_row.iter().enumerate() {
                sum += av * b[k][n];
            }
            let (lane, reg) = acc_slot(m, n);
            acc.regs[lane][reg] += sum;
        }
    }
    counters.mma_insts += 1;
    counters.insts_issued += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{random_dense, ValueDist};

    fn tile_a_from(m: &crate::matrix::DenseMatrix) -> FragA {
        FragA::from_tile(|r, c| m.get(r, c))
    }

    fn tile_b_from(m: &crate::matrix::DenseMatrix) -> FragB {
        FragB::from_tile(|r, c| m.get(r, c))
    }

    #[test]
    fn frag_a_roundtrip() {
        let m = random_dense(16, 16, ValueDist::Uniform, 11);
        let t = tile_a_from(&m).to_tile();
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(t[r][c], m.get(r, c));
            }
        }
    }

    #[test]
    fn frag_b_roundtrip() {
        let m = random_dense(16, 8, ValueDist::Uniform, 12);
        let t = tile_b_from(&m).to_tile();
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(t[r][c], m.get(r, c));
            }
        }
    }

    #[test]
    fn frag_c_roundtrip() {
        let f = FragC::from_tile(|r, c| (r * 8 + c) as f32);
        let t = f.to_tile();
        for (r, row) in t.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(*v, (r * 8 + c) as f32);
            }
        }
    }

    #[test]
    fn quadrant_register_mapping_matches_paper() {
        // Ra0 must be the TOP-LEFT quadrant: set only A[0][0] and check it
        // appears in lane 0's Ra0 low half.
        let f = FragA::from_tile(|r, c| {
            if r == 0 && c == 0 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][0], u32::from(Half::ONE.to_bits()));
        for lane in 1..32 {
            assert_eq!(f.regs[lane], [0, 0, 0, 0]);
        }
        // Ra1 = bottom-left: A[8][0] -> lane 0 reg 1.
        let f = FragA::from_tile(|r, c| {
            if r == 8 && c == 0 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][1], u32::from(Half::ONE.to_bits()));
        // Ra2 = top-right: A[0][8] -> lane 0 reg 2.
        let f = FragA::from_tile(|r, c| {
            if r == 0 && c == 8 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][2], u32::from(Half::ONE.to_bits()));
        // Ra3 = bottom-right: A[8][8] -> lane 0 reg 3.
        let f = FragA::from_tile(|r, c| {
            if r == 8 && c == 8 {
                Half::ONE
            } else {
                Half::ZERO
            }
        });
        assert_eq!(f.regs[0][3], u32::from(Half::ONE.to_bits()));
    }

    #[test]
    fn lane_owns_rowmajor_elements_2l_and_2l_plus_1() {
        // Inside the top-left quadrant, quadrant-linear index of lane l's
        // low half must be 2l (paper Algorithm 2's offset).
        for lane in 0..32 {
            let (r, c) = lane_quadrant_coords(lane);
            assert_eq!(r * 8 + c, 2 * lane);
        }
    }

    #[test]
    fn mma_matches_reference_product() {
        let a = random_dense(16, 16, ValueDist::Uniform, 21);
        let b = random_dense(16, 8, ValueDist::Uniform, 22);
        let mut counters = Counters::new();
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut acc = FragC::zero();
        mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                let diff = (d[r][c] - reference[r * 8 + c]).abs();
                assert!(diff < 1e-4, "({r},{c}) diff {diff}");
            }
        }
        assert_eq!(counters.mma_insts, 1);
    }

    #[test]
    fn mma_accumulates_into_c() {
        let a = random_dense(16, 16, ValueDist::Uniform, 31);
        let b = random_dense(16, 8, ValueDist::Uniform, 32);
        let mut counters = Counters::new();
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut acc = FragC::from_tile(|_, _| 5.0);
        mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                assert!((d[r][c] - (reference[r * 8 + c] + 5.0)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn two_k8_issues_equal_one_k16_issue() {
        // The §4.2.1 microbenchmark's correctness side: splitting a 16×16
        // A tile into two m16n8k8 issues reproduces the m16n8k16 result,
        // at twice the instruction count.
        let a = random_dense(16, 16, ValueDist::Uniform, 61);
        let b = random_dense(16, 8, ValueDist::Uniform, 62);
        let mut c16 = Counters::new();
        let mut acc16 = FragC::zero();
        mma_m16n8k16(
            &mut c16,
            &FragA::from_tile(|r, c| a.get(r, c)),
            &FragB::from_tile(|r, c| b.get(r, c)),
            &mut acc16,
        );
        let mut c8 = Counters::new();
        let mut acc8 = FragC::zero();
        for half in 0..2 {
            let fa = FragAK8::from_tile(|r, c| a.get(r, c + 8 * half));
            mma_m16n8k8(&mut c8, &fa, |k, n| b.get(k + 8 * half, n), &mut acc8);
        }
        let t16 = acc16.to_tile();
        let t8 = acc8.to_tile();
        for r in 0..16 {
            for c in 0..8 {
                assert!((t16[r][c] - t8[r][c]).abs() < 1e-4);
            }
        }
        assert_eq!(c16.mma_insts, 1);
        assert_eq!(c8.mma_insts, 2, "k8 needs twice the issues");
    }

    #[test]
    fn acc_slot_inverts_fragc_layout() {
        // The in-place accumulator update relies on acc_slot being the
        // exact inverse of the FragC register layout.
        let f = FragC::from_tile(|r, c| (r * 8 + c) as f32);
        for m in 0..MMA_M {
            for n in 0..MMA_N {
                let (lane, reg) = acc_slot(m, n);
                assert_eq!(f.regs[lane][reg], (m * 8 + n) as f32, "({m},{n})");
            }
        }
    }

    #[test]
    fn f32_views_match_half_tiles() {
        let a = random_dense(16, 16, ValueDist::Uniform, 71);
        let b = random_dense(16, 8, ValueDist::Uniform, 72);
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let (at, av) = (fa.to_tile(), fa.to_f32_rows());
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(av[r][c].to_bits(), at[r][c].to_f32().to_bits());
            }
        }
        let (bt, bv) = (fb.to_tile(), fb.to_f32_rows());
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(bv[r][c].to_bits(), bt[r][c].to_f32().to_bits());
            }
        }
        let fa8 = FragAK8::from_tile(|r, c| a.get(r, c));
        let a8 = fa8.to_f32_rows();
        for r in 0..16 {
            for c in 0..8 {
                assert_eq!(a8[r][c].to_bits(), a.get(r, c).to_f32().to_bits());
            }
        }
    }

    #[test]
    fn bslice_path_is_bit_identical_to_fragment_path() {
        // The strided-B entry point used by the SpMM hot path must
        // reproduce the fragment-level mma exactly, including a
        // non-trivial leading dimension and a non-zero accumulator.
        let a = random_dense(16, 16, ValueDist::Uniform, 81);
        let b = random_dense(16, 8, ValueDist::Uniform, 82);
        let fa = tile_a_from(&a);
        let fb = tile_b_from(&b);
        let mut c_ref = Counters::new();
        let mut acc_ref = FragC::from_tile(|r, c| (r + c) as f32 * 0.25);
        mma_m16n8k16(&mut c_ref, &fa, &fb, &mut acc_ref);

        // Embed B at column offset 3 of a wider ld=13 buffer.
        let ld = 13;
        let mut buf = vec![0.0f32; 16 * ld];
        for k in 0..16 {
            for n in 0..8 {
                buf[k * ld + 3 + n] = b.get(k, n).to_f32();
            }
        }
        let mut c_fast = Counters::new();
        let mut acc_fast = FragC::from_tile(|r, c| (r + c) as f32 * 0.25);
        mma_m16n8k16_bslice(&mut c_fast, &fa.to_f32_rows(), &buf[3..], ld, &mut acc_fast);

        assert_eq!(acc_ref.regs, acc_fast.regs);
        assert_eq!(c_ref.mma_insts, c_fast.mma_insts);
        assert_eq!(c_ref.insts_issued, c_fast.insts_issued);
    }

    #[test]
    fn two_step_k_accumulation_equals_k32_product() {
        // Splitting K=32 into two mma calls must equal one 16x32 * 32x8
        // reference product.
        let a = random_dense(16, 32, ValueDist::Uniform, 41);
        let b = random_dense(32, 8, ValueDist::Uniform, 42);
        let mut counters = Counters::new();
        let mut acc = FragC::zero();
        for step in 0..2 {
            let fa = FragA::from_tile(|r, c| a.get(r, c + 16 * step));
            let fb = FragB::from_tile(|r, c| b.get(r + 16 * step, c));
            mma_m16n8k16(&mut counters, &fa, &fb, &mut acc);
        }
        let d = acc.to_tile();
        let reference = a.matmul_ref(&b);
        for r in 0..16 {
            for c in 0..8 {
                assert!((d[r][c] - reference[r * 8 + c]).abs() < 1e-3);
            }
        }
        assert_eq!(counters.mma_insts, 2);
    }
}
